"""Figure 5: compilation time, Isaria vs Diospyros.

The paper reports Isaria's automatically generated rule set compiles
an average of 2.1x slower than Diospyros's hand-written 28 rules —
the price of ~an order of magnitude more rules, which phasing and
pruning keep from being far worse.  The shape to reproduce: Isaria
slower than Diospyros on most kernels, with QR the most expensive.
"""

from __future__ import annotations

from conftest import suite_results

from repro.bench import print_table


def test_fig5_compile_times(benchmark, spec, isaria, diospyros):
    rows = benchmark.pedantic(
        lambda: suite_results(spec, isaria, diospyros),
        rounds=1,
        iterations=1,
    )
    table = []
    ratios = []
    for row in rows:
        dios = row.measurements.get("diospyros")
        isar = row.measurements.get("isaria")
        if dios is None or isar is None or dios.error or isar.error:
            continue
        ratio = (
            isar.compile_time / dios.compile_time
            if dios.compile_time
            else float("inf")
        )
        ratios.append(ratio)
        table.append(
            [
                row.key,
                f"{dios.compile_time:.1f}s",
                f"{isar.compile_time:.1f}s",
                f"{ratio:.1f}x",
            ]
        )
    print_table(
        ["kernel", "diospyros", "isaria", "isaria/diospyros"],
        table,
        title="Figure 5: compile times (Isaria pays for its larger, "
        "synthesized rule set)",
    )
    mean = sum(ratios) / len(ratios)
    print(f"\nmean slowdown: {mean:.1f}x (paper: 2.1x average)")
    # Isaria must not be implausibly fast (that would mean its rules
    # did nothing) nor catastrophically slow.
    assert mean > 0.8, mean
