"""Figure 8: the synthesized rules by aggregate cost and differential.

The paper plots all 294 synthesized rules in the (aggregate cost,
cost differential) plane and observes clean clusters: expansion rules
at moderate aggregate and small differential, optimization rules at
tiny aggregate, and compilation rules far out on both axes (the Vec
literal's construction cost, ~4 digits).  This benchmark computes the
same scatter for our rule set and checks the cluster geometry.
"""

from __future__ import annotations

from repro.bench import print_table
from repro.phases import (
    aggregate_cost,
    assign_phase,
    cost_differential,
    default_params,
    Phase,
)


def test_fig8_rule_scatter(benchmark, spec, isaria):
    cost_model = isaria.cost_model
    params = default_params(spec)

    def experiment():
        points = []
        for rule in isaria.ruleset.all_rules():
            points.append(
                (
                    aggregate_cost(cost_model, rule),
                    cost_differential(cost_model, rule),
                    assign_phase(cost_model, rule, params),
                )
            )
        return points

    points = benchmark.pedantic(experiment, rounds=1, iterations=1)

    summary = []
    for phase in Phase:
        cluster = [(ca, cd) for ca, cd, p in points if p is phase]
        if not cluster:
            continue
        cas = sorted(ca for ca, _ in cluster)
        cds = sorted(cd for _, cd in cluster)
        summary.append(
            [
                phase.value,
                len(cluster),
                f"{cas[0]:.0f}..{cas[-1]:.0f}",
                f"{cds[0]:.0f}..{cds[-1]:.0f}",
            ]
        )
    print_table(
        ["phase", "rules", "aggregate cost range",
         "cost differential range"],
        summary,
        title=(
            f"Figure 8: {len(points)} rules by cost metrics "
            f"(alpha={params.alpha}, beta={params.beta}; paper: 294 "
            "rules, alpha=15, beta=12)"
        ),
    )

    expansion = [(ca, cd) for ca, cd, p in points if p is Phase.EXPANSION]
    compilation = [
        (ca, cd) for ca, cd, p in points if p is Phase.COMPILATION
    ]
    optimization = [
        (ca, cd) for ca, cd, p in points if p is Phase.OPTIMIZATION
    ]
    # All three phases are populated.
    assert expansion and compilation and optimization
    # Cluster geometry (the paper's Fig. 8 shape):
    # optimization rules live at small aggregate cost...
    assert max(ca for ca, _ in optimization) <= params.beta
    # ...expansion rules above beta with bounded differential...
    assert min(ca for ca, _ in expansion) > params.beta
    assert all(cd <= params.alpha for _, cd in expansion)
    # ...and compilation rules have a huge differential (the Vec
    # literal's ~1000/lane construction cost).
    assert min(cd for _, cd in compilation) > params.alpha
    assert max(cd for _, cd in compilation) > 1000
