"""Figure 7 / §5.3: offline rule-generation budget vs kernel quality.

The paper sweeps the rule synthesis timeout from 60s to 60,000s and
finds diminishing returns: small kernels barely improve, larger ones
gain from extra vectorization rules.  Our sweep scales the budgets to
the Python substrate; the independent variable is the same (wall-clock
offline budget, which gates enumeration depth and how many candidates
survive), and the measured quantity is the same (compiled-kernel
speedup over scalar).
"""

from __future__ import annotations

from conftest import ABLATION_CONV_SIZES

from repro.bench import print_table
from repro.bench.harness import measure_baseline, measure_compiled
from repro.core import IsariaFramework
from repro.kernels import conv2d_kernel
from repro.ruler import SynthesisConfig

BUDGETS = (2.0, 10.0, 60.0, 240.0)


def test_fig7_rulegen_budget(benchmark, spec):
    def experiment():
        results = {}
        for budget in BUDGETS:
            framework = IsariaFramework(
                spec,
                synthesis_config=SynthesisConfig.budgeted(budget),
            )
            compiler = framework.generate_compiler()
            per_kernel = {}
            for size in ABLATION_CONV_SIZES:
                instance = conv2d_kernel(*size)
                scalar = measure_baseline("scalar", instance, spec)
                isaria = measure_compiled("isaria", compiler, instance)
                per_kernel[instance.key] = (
                    scalar.cycles / isaria.cycles
                    if isaria.error is None and isaria.cycles
                    else None
                )
            results[budget] = (
                len(compiler.ruleset),
                compiler.synthesis.aborted,
                per_kernel,
            )
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    kernels = [f"2dconv-{r}x{c}-{fr}x{fc}"
               for r, c, fr, fc in ABLATION_CONV_SIZES]
    table = []
    for budget, (n_rules, aborted, per_kernel) in results.items():
        table.append(
            [f"{budget:.0f}s", n_rules, "yes" if aborted else "no"]
            + [
                f"{per_kernel[k]:.2f}x" if per_kernel[k] else "-"
                for k in kernels
            ]
        )
    print_table(
        ["budget", "rules", "aborted"] + kernels,
        table,
        title="Figure 7: rule-synthesis budget vs compiled kernel "
        "speedup",
    )

    # More budget helps overall: the largest budget yields at least as
    # many rules as the smallest (intermediate budgets can dip — a
    # budget that aborts mid-minimization keeps fewer rules than a
    # smaller budget that finished a shallower enumeration, an effect
    # the paper also observes as non-monotonicity in Fig. 7).
    rule_counts = [results[b][0] for b in BUDGETS]
    assert rule_counts[-1] >= rule_counts[0], rule_counts

    # The largest budget must vectorize at least one conv kernel.
    best = results[BUDGETS[-1]][2]
    assert any(v and v > 1.2 for v in best.values()), best
