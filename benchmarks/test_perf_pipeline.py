"""Serializable-e-graph pipeline benchmark: snapshots pay for themselves.

Two scenarios, both measured end-to-end on bundled-suite kernels and
both asserting **byte-identical compiled programs** between the paths
they compare (the snapshot layer must never change an answer, only
when work happens):

``pipelined`` — the *budget-retry* workflow.  A batch is compiled
under a tight optimization budget, found wanting, and recompiled with
the full budget — the everyday loop when tuning saturation limits.
The legacy per-kernel-parallel path (``REPRO_LEGACY_PIPELINE=1``, the
pre-snapshot system) pays for every round and every optimization
iteration twice.  The staged pipeline with ``REPRO_CHECKPOINT_DIR``
and ``REPRO_EXPANSION_CACHE`` set replays the retry from
content-addressed phase snapshots and resumes the tripped
optimization saturation from its checkpoint, paying only for the
*new* iterations.  The measured ratio is recovered saturation work;
on multicore hosts the staged pool adds stage-level overlap on top
(this CI host has one core, so none of the ratio comes from
concurrency).

``expansion_cache`` — a cold compile of one suite kernel against the
identical compile answered from the expansion cache.

Results go to ``BENCH_pipeline.json`` at the repo root; the floors
asserted here (1.3x / 1.5x) are the PR's acceptance bars and
``tests/test_bench_schemas.py`` holds the committed numbers to them.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path

from repro.bench.report import write_bench_json
from repro.compiler.compile import CompileOptions
from repro.compiler.frontend import trace_kernel
from repro.compiler.pipeline import compile_many
from repro.kernels import default_suite

_REPO_ROOT = Path(__file__).resolve().parent.parent
_PIPELINE_FLOOR = 1.3
_CACHE_FLOOR = 1.5

# A representative slice of the bundled suite: one dot-product, one
# convolution, one matmul (~6s each serially at default limits).
_RETRY_KERNELS = ["qprod", "2dconv-3x3-2x2", "matmul-2x3x3"]
_CACHE_KERNEL = "matmul-2x2x2"
_JOBS = 2


def _suite_kernels(spec, keys):
    by_key = {k.key: k for k in default_suite(width=spec.vector_width)}
    return [by_key[key] for key in keys]


def _fingerprint(kernel):
    """Everything that must agree for "byte-identical compile"."""
    return (
        kernel.name,
        str(kernel.compiled_term),
        kernel.report.final_cost,
        len(kernel.report.rounds),
        [str(i) for i in kernel.machine_program.instrs],
    )


def _tight_options() -> CompileOptions:
    """Default limits with a deliberately small optimization budget."""
    base = CompileOptions()
    return dataclasses.replace(
        base,
        optimization_limits=dataclasses.replace(
            base.optimization_limits, max_iterations=2
        ),
    )


def _timed_batch(compiler, kernels, options):
    t0 = time.monotonic()
    compiled = compile_many(
        compiler, kernels, options=options, validate=False, jobs=_JOBS
    )
    return time.monotonic() - t0, [_fingerprint(k) for k in compiled]


def test_perf_pipeline(benchmark, spec, isaria, monkeypatch, tmp_path):
    kernels = _suite_kernels(spec, _RETRY_KERNELS)
    tight, full = _tight_options(), CompileOptions()
    for name in (
        "REPRO_EXPANSION_CACHE",
        "REPRO_CHECKPOINT_DIR",
        "REPRO_LEGACY_PIPELINE",
    ):
        monkeypatch.delenv(name, raising=False)
    monkeypatch.setenv("REPRO_PARALLEL", str(_JOBS))

    # Warm the parent's in-process caches (pattern compilation etc.)
    # before timing anything: both arms' worker pools fork from this
    # process, so neither inherits an advantage.
    warmup = trace_kernel(
        "warmup",
        lambda x, y: [x[i] + y[i] for i in range(4)],
        {"x": 4, "y": 4},
        spec.vector_width,
    )
    compile_many(isaria, [warmup], validate=False)

    def experiment():
        # --- legacy arm: the pre-snapshot system -----------------------
        monkeypatch.setenv("REPRO_LEGACY_PIPELINE", "1")
        legacy_initial_s, _ = _timed_batch(isaria, kernels, tight)
        legacy_retry_s, legacy_final = _timed_batch(isaria, kernels, full)
        monkeypatch.delenv("REPRO_LEGACY_PIPELINE")

        # --- staged arm: snapshots on ---------------------------------
        monkeypatch.setenv(
            "REPRO_EXPANSION_CACHE", str(tmp_path / "cache")
        )
        monkeypatch.setenv(
            "REPRO_CHECKPOINT_DIR", str(tmp_path / "ckpt")
        )
        staged_initial_s, _ = _timed_batch(isaria, kernels, tight)
        staged_retry_s, staged_final = _timed_batch(isaria, kernels, full)
        monkeypatch.delenv("REPRO_EXPANSION_CACHE")
        monkeypatch.delenv("REPRO_CHECKPOINT_DIR")

        # --- expansion-cache arm: cold vs warm single compile ----------
        (cache_kernel,) = _suite_kernels(spec, [_CACHE_KERNEL])
        monkeypatch.setenv(
            "REPRO_EXPANSION_CACHE", str(tmp_path / "cache2")
        )
        t0 = time.monotonic()
        cold = isaria.compile_kernel(cache_kernel, validate=False)
        cold_s = time.monotonic() - t0
        t0 = time.monotonic()
        warm = isaria.compile_kernel(cache_kernel, validate=False)
        warm_s = time.monotonic() - t0
        monkeypatch.delenv("REPRO_EXPANSION_CACHE")

        return {
            "legacy": (legacy_initial_s, legacy_retry_s, legacy_final),
            "staged": (staged_initial_s, staged_retry_s, staged_final),
            "cache": (cold_s, warm_s, cold, warm),
        }

    out = benchmark.pedantic(experiment, rounds=1, iterations=1)
    legacy_initial_s, legacy_retry_s, legacy_final = out["legacy"]
    staged_initial_s, staged_retry_s, staged_final = out["staged"]
    cold_s, warm_s, cold, warm = out["cache"]

    # The snapshot layer must not change a single compiled program.
    assert staged_final == legacy_final
    assert _fingerprint(warm) == _fingerprint(cold)

    legacy_s = legacy_initial_s + legacy_retry_s
    staged_s = staged_initial_s + staged_retry_s
    pipelined_speedup = legacy_s / staged_s
    cache_speedup = cold_s / warm_s

    payload = {
        "pipelined": {
            "scenario": "budget-retry",
            "kernels": _RETRY_KERNELS,
            "jobs": _JOBS,
            "tight_optimization_iterations": 2,
            "legacy_initial_s": legacy_initial_s,
            "legacy_retry_s": legacy_retry_s,
            "legacy_s": legacy_s,
            "staged_initial_s": staged_initial_s,
            "staged_retry_s": staged_retry_s,
            "staged_s": staged_s,
            "speedup": pipelined_speedup,
            "identical": staged_final == legacy_final,
        },
        "expansion_cache": {
            "kernel": _CACHE_KERNEL,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "speedup": cache_speedup,
            "identical": _fingerprint(warm) == _fingerprint(cold),
        },
    }
    write_bench_json(
        _REPO_ROOT / "BENCH_pipeline.json",
        "compile-pipeline",
        payload,
        floors={
            "pipelined": _PIPELINE_FLOOR,
            "expansion_cache": _CACHE_FLOOR,
        },
    )
    print(
        f"\nbudget-retry: legacy {legacy_s:.2f}s "
        f"({legacy_initial_s:.2f}+{legacy_retry_s:.2f}) -> staged "
        f"{staged_s:.2f}s ({staged_initial_s:.2f}+{staged_retry_s:.2f}) "
        f"= {pipelined_speedup:.2f}x\n"
        f"expansion cache: cold {cold_s:.2f}s -> warm {warm_s:.2f}s "
        f"= {cache_speedup:.2f}x"
    )
    assert pipelined_speedup >= _PIPELINE_FLOOR, (
        f"budget-retry speedup {pipelined_speedup:.2f}x below "
        f"{_PIPELINE_FLOOR}x floor"
    )
    assert cache_speedup >= _CACHE_FLOOR, (
        f"warm-cache speedup {cache_speedup:.2f}x below "
        f"{_CACHE_FLOOR}x floor"
    )
