"""Adaptive-scheduling benchmark: default backoff vs. autotuned spec.

The workload is the saturation bench's skewed corpus — one wide
``(+ _ _)`` class that four fail-late rules rescan every iteration
without ever merging anything, plus a cheap driver rule.  The
autotuner profiles a *small* instance of that family (the offline
step a kernel family would run once), emits a ``ScheduleSpec``, and
the benchmark then compares default vs. tuned saturation on the
*large* instance — the spec transfers across scale because it keys on
rule names, not graph size.

Because the tuned schedule only disables rules that never merge (and
the autotuner validates extracted-cost parity before emitting), the
two runs must produce byte-identical extracted programs; the measured
ratio is pure wasted-matcher time eliminated.  Results go to
``BENCH_schedule.json`` at the repo root.

The speedup floor asserted here (1.3x) is the PR's acceptance bar;
the measured ratio is typically 10x+ on this corpus.
"""

from __future__ import annotations

from pathlib import Path

from repro.bench.report import write_bench_json
from repro.tools.autotune import autotune, measure, skewed_workload

_REPO_ROOT = Path(__file__).resolve().parent.parent
_REPEATS = 3
_FLOOR = 1.3

# Small instance the autotuner profiles/searches on; large instance
# the before/after comparison runs on (the saturation bench's scale).
_TUNE_SIZES = dict(n_plus=300, n_mul=40, n_vec=30, n_driver=8)
_BENCH_SIZES = dict(n_plus=2000, n_mul=150, n_vec=100, n_driver=12)


def _best_of(workload, spec, repeats=_REPEATS):
    best = None
    for _ in range(repeats):
        m = measure(workload, spec)
        if best is None or m.elapsed < best.elapsed:
            best = m
    return best


def test_perf_schedule_speedup(benchmark):
    result = autotune([skewed_workload(**_TUNE_SIZES)], seed=0)
    spec = result.spec
    assert not spec.is_default(), "autotuner found nothing to tune"

    bench_workload = skewed_workload(**_BENCH_SIZES)

    def experiment():
        default = _best_of(bench_workload, None)
        tuned = _best_of(bench_workload, spec)
        return default, tuned

    default, tuned = benchmark.pedantic(experiment, rounds=1, iterations=1)

    # Disabled rules never merged anything, so the rule closure — and
    # therefore the extracted program — is identical by construction.
    assert tuned.extracted == default.extracted
    assert tuned.cost == default.cost
    assert tuned.stop_reason == default.stop_reason == "saturated"

    speedup = default.elapsed / tuned.elapsed
    payload = {
        "workload": {
            "family": "skewed",
            "tune_sizes": _TUNE_SIZES,
            "bench_sizes": _BENCH_SIZES,
            "seed": result.seed,
        },
        "schedule": {
            "spec": spec.to_dict(),
            "decisions": result.decisions,
            "tuning_visit_reduction": result.visit_reduction,
        },
        "default": {
            "saturation_time": default.elapsed,
            "node_visits": default.node_visits,
            "n_iterations": default.n_iterations,
            "cost": default.cost,
        },
        "tuned": {
            "saturation_time": tuned.elapsed,
            "node_visits": tuned.node_visits,
            "n_iterations": tuned.n_iterations,
            "cost": tuned.cost,
        },
        "speedup": speedup,
        "repeats": _REPEATS,
    }
    write_bench_json(
        _REPO_ROOT / "BENCH_schedule.json",
        "adaptive-schedule",
        payload,
        floors={"speedup": _FLOOR},
    )
    print(
        f"\nadaptive schedule: default {default.elapsed:.3f}s -> tuned "
        f"{tuned.elapsed:.3f}s ({speedup:.2f}x); "
        f"visits {default.node_visits} -> {tuned.node_visits}"
    )
    assert speedup >= _FLOOR, (
        f"tuned-schedule speedup {speedup:.2f}x below {_FLOOR}x floor"
    )
