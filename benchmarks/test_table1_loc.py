"""Table 1: lines of code per Isaria component.

The paper's Table 1 reports the framework's small footprint — notably
that the per-ISA *inputs* (spec + cost function) are ~160 lines, the
point being that retargeting is cheap.  We report the same breakdown
for this reproduction, plus the substrate packages the paper consumed
as external dependencies (egg, Rosette, the Tensilica toolchain) and
we had to build.
"""

from __future__ import annotations

from repro.bench import print_table
from repro.bench.loc import TABLE1_COMPONENTS, component_loc

PAPER_LOC = {
    "ISA specification": 73,
    "Cost function": 90,
    "Offline framework": 1113,
    "Compile implementation": 819,
    "Total (Table 1 scope)": 2095,
}


def test_table1_loc(benchmark):
    loc = benchmark.pedantic(component_loc, rounds=1, iterations=1)

    table = []
    for name, count in loc.items():
        table.append([name, count, PAPER_LOC.get(name, "-")])
    print_table(
        ["component", "this repo (LoC)", "paper (LoC)"],
        table,
        title="Table 1: lines of code by component",
    )

    # Every Table 1 component exists and is non-trivial.
    for name in TABLE1_COMPONENTS:
        assert loc[name] > 30, name
    # The retargeting inputs stay small relative to the framework,
    # the paper's headline point.
    inputs = loc["ISA specification"] + loc["Cost function"]
    framework = (
        loc["Offline framework"] + loc["Compile implementation"]
    )
    assert inputs * 3 < framework, (inputs, framework)
