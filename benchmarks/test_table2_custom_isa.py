"""Table 2 / §5.4: exploring ISA customizations.

The paper's workflow: add ``VecMulSub`` and ``VecSqrtSgn`` to the ISA
spec and cost model (a few lines each), re-run the offline stage to
get four compilers (every combination of the two instructions), and
measure QR decomposition under each.  No compiler code is written by
hand — that is the point of the experiment.

We reproduce the full workflow.  The offline stage for the custom
instructions runs a *focused* incremental synthesis (size-6 terms over
the custom ops' neighbourhood — the interesting bridges like
``(* (sqrt a) (sgn (neg b))) ~> (sqrtsgn a b)`` are 6-node terms that
are intractable to enumerate over the full ISA in Python; see
DESIGN.md) and merges the result with the base rule set.
"""

from __future__ import annotations

from repro.bench import print_table
from repro.bench.harness import measure_compiled
from repro.core import GeneratedCompiler, load_pregenerated_rules
from repro.core.customize import merge_rules, synthesize_custom_rules
from repro.isa import customized_spec
from repro.kernels import qr_kernel
from repro.phases import CostModel, assign_phases, default_params

_CUSTOM_OPS = {
    "mulsub": ("mulsub", "VecMulSub"),
    "sqrtsgn": ("sqrtsgn", "VecSqrtSgn"),
}
_NEIGHBOURHOODS = {
    "mulsub": ("-", "*", "neg", "mac"),
    "sqrtsgn": ("*", "sqrt", "sgn", "neg"),
}


def _generate_compiler(spec, customs, base_rules):
    rules = list(base_rules)
    for custom in customs:
        focused = synthesize_custom_rules(
            spec,
            _CUSTOM_OPS[custom],
            neighbourhood=_NEIGHBOURHOODS[custom],
            time_budget=150.0,
        )
        rules = merge_rules(rules, focused)
    cost_model = CostModel(spec)
    ruleset = assign_phases(cost_model, rules, default_params(spec))
    return GeneratedCompiler(
        spec=spec, cost_model=cost_model, ruleset=ruleset
    )


def test_table2_custom_isa(benchmark, spec):
    base_rules = load_pregenerated_rules()
    instance = qr_kernel(3)

    def experiment():
        results = {}
        for mulsub in (False, True):
            for sqrtsgn in (False, True):
                custom = customized_spec(
                    spec, mulsub=mulsub, sqrtsgn=sqrtsgn
                )
                customs = []
                if mulsub:
                    customs.append("mulsub")
                if sqrtsgn:
                    customs.append("sqrtsgn")
                compiler = _generate_compiler(custom, customs, base_rules)
                m = measure_compiled("isaria", compiler, instance)
                if m.error is None:
                    results[(mulsub, sqrtsgn)] = (m.cycles, m.correct)
                else:  # pragma: no cover - surfaced in the table
                    results[(mulsub, sqrtsgn)] = (None, False)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    base_cycles = results[(False, False)][0]

    def cell(mulsub, sqrtsgn):
        cycles, _ = results[(mulsub, sqrtsgn)]
        if cycles is None or base_cycles is None:
            return "-"
        gain = (base_cycles - cycles) / base_cycles * 100.0
        return f"{cycles} cyc ({gain:+.1f}%)"

    print_table(
        ["", "VecMulSub", "no VecMulSub"],
        [
            ["VecSqrtSgn", cell(True, True), cell(False, True)],
            ["no VecSqrtSgn", cell(True, False),
             f"{base_cycles} cyc (base)"],
        ],
        title="Table 2: QR decomposition with custom instructions "
        "(paper: +0.5%..+2.0%)",
    )

    # All four compilers produce correct kernels.
    for key, (cycles, correct) in results.items():
        assert cycles is not None and correct, key
    # Custom instructions must not make the kernel slower.
    for key, (cycles, _) in results.items():
        assert cycles <= base_cycles * 1.05, (key, cycles, base_cycles)