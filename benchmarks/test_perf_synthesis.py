"""Offline-stage benchmark: batched cvec evaluation vs the legacy
per-environment path, end to end through ``synthesize_rules``.

The workload is the real offline pipeline on the bundled ISAs —
enumeration, candidate extraction, verification, and lane
generalization.  Minimization is disabled: it is saturation-bound
(benchmarked separately in ``BENCH_saturation.json``) and identical on
both paths, so including it would only dilute the ratio under
measurement.  Everything else runs exactly as a
``generate_compiler`` call would.

Both configurations synthesize the *same rules* — the batched
evaluator is proven cvec-identical to the legacy oracle
(``tests/test_cvec_differential.py``), and this benchmark re-asserts
rule-list equality end to end.  Results (with the ``SynthesisPerf``
counter breakdown) go to ``BENCH_synthesis.json`` at the repo root so
CI can archive them and future PRs can compare.

The speedup floor asserted here (2x on the main ISA) is the PR's
acceptance bar; the measured ratio is typically 2.5x+.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.bench.report import write_bench_json
from repro.isa import fusion_g3_spec
from repro.isa.custom import customized_spec
from repro.ruler import SynthesisConfig, synthesize_rules

_REPO_ROOT = Path(__file__).resolve().parent.parent
_REPEATS = 2

# fusion-g3 at size 4 is the bar-setting workload; the fully
# customized ISA (Table 2's mulsub + sqrtsgn point) runs a smaller
# focused configuration to keep total bench time reasonable while
# still covering custom lane semantics (sqrt's float path included).
_WORKLOADS = [
    (
        "fusion-g3",
        lambda: fusion_g3_spec(),
        SynthesisConfig(max_term_size=4, minimize=False),
    ),
    (
        "custom-mulsub-sqrtsgn",
        lambda: customized_spec(
            fusion_g3_spec(), mulsub=True, sqrtsgn=True
        ),
        SynthesisConfig(
            max_term_size=3, minimize=False,
        ),
    ),
]


def _rule_key(result):
    return [(r.name, str(r.lhs), str(r.rhs)) for r in result.rules]


def _run_once(spec, config):
    t0 = time.perf_counter()
    result = synthesize_rules(spec, config)
    return time.perf_counter() - t0, result


def _timed(spec, config, env: dict) -> tuple:
    saved = {k: os.environ.get(k) for k in env}
    os.environ.update(env)
    try:
        best = None
        for _ in range(_REPEATS):
            run = _run_once(spec, config)
            if best is None or run[0] < best[0]:
                best = run
        return best
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def test_perf_synthesis_speedup(benchmark):
    def experiment():
        rows = []
        for name, make_spec, config in _WORKLOADS:
            spec = make_spec()
            new_t, new = _timed(spec, config, {})
            old_t, old = _timed(spec, config, {"REPRO_LEGACY_CVEC": "1"})
            rows.append((name, new_t, new, old_t, old))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    results = {}
    lines = []
    for name, new_t, new, old_t, old in rows:
        # Parity: both paths synthesize the identical rule list.
        assert _rule_key(new) == _rule_key(old), name
        assert new.perf.backend == "batched"
        assert old.perf.backend == "legacy"
        assert new.perf.legacy_evals == 0
        assert old.perf.batched_evals == 0
        speedup = old_t / new_t
        results[name] = {
            "new": {
                "elapsed": new_t,
                "stage_times": new.stage_times,
                "perf": new.perf.as_dict(),
            },
            "legacy": {
                "elapsed": old_t,
                "stage_times": old.stage_times,
                "perf": old.perf.as_dict(),
            },
            "n_enumerated": new.n_enumerated,
            "n_candidates": new.n_candidates,
            "n_rules": len(new.rules),
            "speedup": speedup,
        }
        lines.append(
            f"{name}: legacy {old_t:.2f}s -> new {new_t:.2f}s "
            f"({speedup:.2f}x), {len(new.rules)} rules"
        )

    payload = {
        "workloads": results,
        "repeats": _REPEATS,
    }
    write_bench_json(
        _REPO_ROOT / "BENCH_synthesis.json", "synthesis-offline-stage",
        payload,
        floors={"fusion-g3": 2.0, "custom-mulsub-sqrtsgn": 1.2},
    )
    print("\n" + "\n".join(lines))

    bar = results["fusion-g3"]["speedup"]
    assert bar >= 2.0, f"offline-stage speedup {bar:.2f}x below 2x floor"
    # The custom ISA must also clearly win; its smaller size-3 run has
    # proportionally more fixed overhead, so the floor is lower.
    assert results["custom-mulsub-sqrtsgn"]["speedup"] >= 1.2