"""Section 5.2 / Figure 6: the rule-phasing and pruning ablations.

Two experiments on the 2D convolution grid:

1. **No phasing** (a single equality saturation over all synthesized
   rules): the paper reports running out of memory with no vectorized
   extraction on any benchmark.  Our equivalent: the saturation hits
   its node budget and the extracted program keeps its (expensive)
   scalar form.
2. **No pruning** (the e-graph is retained across the Fig. 3 loop
   instead of restarting from the extracted program): slower compiles
   and bigger graphs; pruning trades a little completeness for
   tractability.
"""

from __future__ import annotations

import dataclasses

from conftest import ABLATION_CONV_SIZES

from repro.bench import print_table
from repro.kernels import conv2d_kernel


def _compile(isaria, instance, **overrides):
    options = dataclasses.replace(isaria.options, **overrides)
    compiled, report = isaria.compile_term(
        instance.program.term, options=options
    )
    return compiled, report


def _vectorized(term) -> bool:
    from repro.lang.term import subterms

    return any(sub.op.startswith("Vec") and sub.op != "Vec"
               for sub in subterms(term))


def test_fig6_phasing_and_pruning(benchmark, isaria):
    def experiment():
        rows = []
        for size in ABLATION_CONV_SIZES:
            instance = conv2d_kernel(*size)
            base_term, base = _compile(isaria, instance)
            nophase_term, nophase = _compile(isaria, instance,
                                             phased=False)
            noprune_term, noprune = _compile(isaria, instance,
                                             pruning=False)
            rows.append(
                (instance.key, (base_term, base),
                 (nophase_term, nophase), (noprune_term, noprune))
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = []
    for key, (bt, base), (pt, nophase), (rt, noprune) in rows:
        table.append(
            [
                key,
                f"{base.final_cost:.0f}",
                f"{nophase.final_cost:.0f}",
                f"{noprune.final_cost:.0f}",
                f"{base.elapsed:.0f}s/{noprune.elapsed:.0f}s",
                f"{base.peak_nodes}/{nophase.peak_nodes}",
                "yes" if _vectorized(bt) else "no",
                "yes" if _vectorized(pt) else "no",
            ]
        )
    print_table(
        ["kernel", "cost", "cost(no-phase)", "cost(no-prune)",
         "time prune/none", "peak nodes base/no-phase",
         "vec?", "vec(no-phase)?"],
        table,
        title="Fig 6 / 5.2: phasing and pruning ablations",
    )

    for key, (bt, base), (pt, nophase), (rt, noprune) in rows:
        # Phased compilation must vectorize; unphased saturation on the
        # full rule set must fail to (the paper's OOM analogue: the
        # node budget trips before any vectorization survives
        # extraction).
        assert _vectorized(bt), key
        assert base.final_cost < nophase.final_cost, key
        # Pruning keeps the search cheaper or equal in peak graph size.
        assert base.peak_nodes <= noprune.peak_nodes * 1.2, key
