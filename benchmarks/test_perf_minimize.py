"""Cost-pruned vs full rulesets: size, saturation time, output parity.

The dominance-pruning claim (:mod:`repro.ruler.cost_prune`) in one
benchmark: build the same family compilers twice in one process —
once under ``REPRO_LEGACY_COSTPRUNE=1`` (the full, unpruned rulesets)
and once on the default cost-pruned path — then compile the same
kernels under *fixpoint-regime* saturation budgets (deterministic
iteration/node caps, effectively unbounded match budgets, no backoff
banning) and check three things:

- **size**: at least one bundled ISA's ruleset shrinks by ≥ 20 %;
- **speed**: total saturation time over the kernel matrix improves by
  ≥ 1.2× (the pruned set matches strictly less, the e-graphs close
  over the same terms);
- **parity**: every kernel compiles to a byte-identical term — or a
  strictly cheaper one — under the pruned ruleset.  Canonical
  tie-breaking in extraction plus the derivability rescue make the
  compiled program a function of the e-graph's term set, not of which
  redundant rules happened to populate it.

The matrix covers the fusion-g3 and masked families at widths 4 and 8.
Results go to ``BENCH_minimize.json`` at the repo root;
``tests/test_bench_schemas.py`` holds the committed numbers to the
floors asserted here.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.bench.report import write_bench_json
from repro.compiler.compile import CompileOptions
from repro.compiler.frontend import trace_kernel
from repro.core.pregen import (
    DEFAULT_RULES_FILE,
    FULL_RULES_FILE,
    family_compiler,
    load_pregenerated_rules,
)
from repro.egraph.runner import RunnerLimits
from repro.isa.families import isa_family
from repro.kernels import default_suite

_REPO_ROOT = Path(__file__).resolve().parent.parent

_RULESET_REDUCTION_FLOOR = 0.2
_SATURATION_SPEEDUP_FLOOR = 1.2

# (family, width) matrix.  fusion-g3 at width 4 is the paper's base
# ISA and gets real suite kernels; the other cells get elementwise
# kernels sized to exercise both lane packing and reduction chains.
_SPECS = (
    ("fusion-g3", 4),
    ("fusion-g3", 8),
    ("masked", 4),
    ("masked", 8),
)
_SUITE_KERNELS = ("matmul-2x2x2", "qprod")
_EW_LENGTH = 16


def _fixpoint(iterations: int, nodes: int) -> RunnerLimits:
    """Deterministic saturate-to-budget limits.

    Match budgets are effectively unbounded and backoff banning is off,
    so both rulesets drive their e-graphs to the same iteration/node
    frontier and the full set's extra matching work is pure overhead —
    the regime where the pruning speedup is a measurement, not noise.
    """
    return RunnerLimits(
        max_iterations=iterations,
        max_nodes=nodes,
        time_limit=600.0,
        match_limit=10**9,
        ban_length=0,
        match_work=10**9,
    )


def _options() -> CompileOptions:
    return CompileOptions(
        max_rounds=2,
        expansion_limits=_fixpoint(2, 3_000),
        compilation_limits=_fixpoint(6, 6_000),
        optimization_limits=_fixpoint(2, 4_000),
    )


def _kernels_for(family: str, width: int, spec) -> list:
    """``(key, program)`` pairs for one matrix cell."""
    if (family, width) == ("fusion-g3", 4):
        suite = default_suite(spec=spec)
        return [
            (inst.key, inst.program)
            for inst in suite
            if inst.key in _SUITE_KERNELS
        ]

    def mac(a, b, c):
        return [a[i] * b[i] + c[i] for i in range(_EW_LENGTH)]

    def dot(a, b):
        s = 0.0
        for i in range(_EW_LENGTH):
            s = s + a[i] * b[i]
        return [s]

    n = _EW_LENGTH
    return [
        (
            f"ew-mac-{n}-w{width}",
            trace_kernel(
                f"ew-mac-{n}-w{width}", mac,
                {"a": n, "b": n, "c": n}, width=width,
            ),
        ),
        (
            f"ew-dot-{n}-w{width}",
            trace_kernel(
                f"ew-dot-{n}-w{width}", dot,
                {"a": n, "b": n}, width=width,
            ),
        ),
    ]


def _build_compilers(legacy: bool) -> dict:
    """One compiler per matrix cell, full or pruned.

    ``family_compiler`` reads ``REPRO_LEGACY_COSTPRUNE`` when it
    builds, so the flag is toggled around the builds and always
    restored — the rest of the benchmark session sees the default
    (pruned) path.
    """
    saved = os.environ.get("REPRO_LEGACY_COSTPRUNE")
    try:
        if legacy:
            os.environ["REPRO_LEGACY_COSTPRUNE"] = "1"
        else:
            os.environ.pop("REPRO_LEGACY_COSTPRUNE", None)
        options = _options()
        built = {}
        for family, width in _SPECS:
            spec = isa_family(family).spec(width)
            t0 = time.monotonic()
            compiler = family_compiler(spec, compile_options=options)
            built[(family, width)] = {
                "compiler": compiler,
                "build_s": time.monotonic() - t0,
                "n_rules": len(compiler.ruleset),
            }
        return built
    finally:
        if saved is None:
            os.environ.pop("REPRO_LEGACY_COSTPRUNE", None)
        else:
            os.environ["REPRO_LEGACY_COSTPRUNE"] = saved


def _compile_matrix(built: dict) -> list[dict]:
    rows = []
    for family, width in _SPECS:
        cell = built[(family, width)]
        compiler = cell["compiler"]
        spec = isa_family(family).spec(width)
        for key, program in _kernels_for(family, width, spec):
            t0 = time.monotonic()
            compiled = compiler.compile_kernel(program, validate=False)
            compile_s = time.monotonic() - t0
            term = compiled.compiled_term
            rows.append({
                "family": family,
                "width": width,
                "kernel": key,
                "compile_s": compile_s,
                "cost": compiler.cost_model.term_cost(term),
                "term": str(term),
            })
    return rows


def test_perf_minimize(benchmark):
    def experiment():
        full = _build_compilers(legacy=True)
        pruned = _build_compilers(legacy=False)
        return {
            "full": full,
            "pruned": pruned,
            "full_rows": _compile_matrix(full),
            "pruned_rows": _compile_matrix(pruned),
        }

    out = benchmark.pedantic(experiment, rounds=1, iterations=1)
    full, pruned = out["full"], out["pruned"]
    full_rows, pruned_rows = out["full_rows"], out["pruned_rows"]

    # -- ruleset size ------------------------------------------------
    cells = []
    for family, width in _SPECS:
        n_full = full[(family, width)]["n_rules"]
        n_pruned = pruned[(family, width)]["n_rules"]
        assert 0 < n_pruned <= n_full, (family, width)
        cells.append({
            "family": family,
            "width": width,
            "rules_full": n_full,
            "rules_pruned": n_pruned,
            "reduction_rate": 1.0 - n_pruned / n_full,
            "build_full_s": full[(family, width)]["build_s"],
            "build_pruned_s": pruned[(family, width)]["build_s"],
        })
    reduction = max(c["reduction_rate"] for c in cells)

    # The shipped single-lane files document the same relationship.
    shipped_full = len(load_pregenerated_rules(FULL_RULES_FILE))
    shipped_pruned = len(load_pregenerated_rules(DEFAULT_RULES_FILE))

    # -- parity ------------------------------------------------------
    assert len(full_rows) == len(pruned_rows)
    kernels = []
    identical = 0
    for frow, prow in zip(full_rows, pruned_rows):
        assert (frow["family"], frow["width"], frow["kernel"]) == (
            prow["family"], prow["width"], prow["kernel"],
        )
        same = frow["term"] == prow["term"]
        identical += same
        key = f"{frow['family']}-w{frow['width']}/{frow['kernel']}"
        assert prow["cost"] <= frow["cost"], (
            f"{key}: pruned ruleset compiled a costlier program "
            f"({prow['cost']} vs {frow['cost']})"
        )
        assert same or prow["cost"] < frow["cost"], (
            f"{key}: pruned output differs without being cheaper"
        )
        kernels.append({
            "family": frow["family"],
            "width": frow["width"],
            "kernel": frow["kernel"],
            "full_s": frow["compile_s"],
            "pruned_s": prow["compile_s"],
            "full_cost": frow["cost"],
            "pruned_cost": prow["cost"],
            "identical": same,
        })

    # -- speed -------------------------------------------------------
    full_s = sum(r["compile_s"] for r in full_rows)
    pruned_s = sum(r["compile_s"] for r in pruned_rows)
    speedup = full_s / pruned_s

    payload = {
        "saturation_speedup": speedup,
        "ruleset_reduction_rate": reduction,
        "full_compile_s": full_s,
        "pruned_compile_s": pruned_s,
        "identical_kernels": identical,
        "total_kernels": len(kernels),
        "shipped_rules_full": shipped_full,
        "shipped_rules_pruned": shipped_pruned,
        "shipped_reduction_rate": 1.0 - shipped_pruned / shipped_full,
        "cells": cells,
        "kernels": kernels,
    }
    write_bench_json(
        _REPO_ROOT / "BENCH_minimize.json",
        "rule-minimization",
        payload,
        floors={
            "saturation_speedup": _SATURATION_SPEEDUP_FLOOR,
            "ruleset_reduction_rate": _RULESET_REDUCTION_FLOOR,
        },
    )
    print("\nrule minimization (full vs pruned):")
    for cell in cells:
        print(
            f"  {cell['family']}-w{cell['width']}: "
            f"{cell['rules_full']} -> {cell['rules_pruned']} rules "
            f"({cell['reduction_rate']:.1%})"
        )
    print(
        f"  saturation: {full_s:.2f}s -> {pruned_s:.2f}s "
        f"({speedup:.2f}x), {identical}/{len(kernels)} byte-identical"
    )
    assert reduction >= _RULESET_REDUCTION_FLOOR, (
        f"best ruleset reduction {reduction:.3f} below "
        f"{_RULESET_REDUCTION_FLOOR}"
    )
    assert speedup >= _SATURATION_SPEEDUP_FLOOR, (
        f"saturation speedup {speedup:.2f}x below "
        f"{_SATURATION_SPEEDUP_FLOOR}x"
    )
