"""Ablations for this reproduction's own design choices (DESIGN.md).

Beyond the paper's ablations (Fig. 6), DESIGN.md documents two
adaptations that keep equality saturation tractable on a Python
e-graph.  This module measures both:

1. **Frontier matching** in the compilation phase — without it, every
   iteration re-matches the whole graph and lift chains starve;
2. **Front-end chunk alignment** — without it, the search must align
   lanes through expansion rewrites, which the paper's egg could
   afford and we cannot.
"""

from __future__ import annotations

import dataclasses

from repro.bench import print_table
from repro.egraph.runner import run_saturation
from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor
from repro.kernels import matmul_kernel, quaternion_product_kernel


def test_frontier_matching_ablation(benchmark, isaria):
    """Compilation phase with and without frontier matching.

    Run after an expansion pass: frontier matching matters exactly
    when the e-graph is already crowded with scalar variants.
    """
    instance = matmul_kernel(2, 2, 2)
    program = instance.program.term

    def run(frontier: bool):
        egraph = EGraph()
        root = egraph.add_term(program)
        run_saturation(
            egraph,
            list(isaria.ruleset.expansion),
            isaria.options.expansion_limits,
        )
        report = run_saturation(
            egraph,
            list(isaria.ruleset.compilation),
            isaria.options.compilation_limits,
            frontier=frontier,
        )
        cost = Extractor(egraph, isaria.cost_model).best_cost(
            egraph.find(root)
        )
        return cost, report.n_iterations, egraph.n_nodes

    results = benchmark.pedantic(
        lambda: {f: run(f) for f in (True, False)},
        rounds=1,
        iterations=1,
    )
    with_f, without_f = results[True], results[False]
    print_table(
        ["config", "extracted cost", "iterations", "nodes"],
        [
            ["frontier", f"{with_f[0]:.0f}", with_f[1], with_f[2]],
            ["full rematch", f"{without_f[0]:.0f}", without_f[1],
             without_f[2]],
        ],
        title="DESIGN ablation: frontier matching (compilation after "
        "expansion, matmul-2x2x2)",
    )
    # Frontier must never be meaningfully worse.
    assert with_f[0] <= without_f[0] * 1.05


def test_alignment_ablation(benchmark, isaria):
    """Compile the aligned vs the raw (unaligned) trace."""
    instances = [matmul_kernel(2, 2, 2), quaternion_product_kernel()]
    options = dataclasses.replace(isaria.options, max_rounds=3)

    def run():
        rows = {}
        for instance in instances:
            _t, aligned = isaria.compile_term(
                instance.program.term, options=options
            )
            _t, raw = isaria.compile_term(
                instance.program.raw_term, options=options
            )
            rows[instance.key] = (aligned.final_cost, raw.final_cost)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        ["kernel", "aligned front end", "raw front end"],
        [
            [key, f"{a:.0f}", f"{r:.0f}"]
            for key, (a, r) in rows.items()
        ],
        title="DESIGN ablation: front-end chunk alignment "
        "(extraction cost)",
    )
    # Alignment must help (or at least not hurt) on the irregular
    # quaternion product.
    aligned, raw = rows["qprod"]
    assert aligned <= raw
