"""Figure 4: kernel speedups over the scalar Clang baseline.

Reproduces the paper's headline comparison: for every kernel in the
suite, cycles for Clang-auto-vectorized (SLP), the Nature library,
Diospyros, and Isaria, normalized to unvectorized scalar code.

Paper shapes this must (and does) reproduce:

- Isaria is comparable to Diospyros across the suite;
- both equality-saturation compilers beat the SLP auto-vectorizer on
  irregular kernels (2D convolution boundaries);
- the Nature library has no entry for QR (and trails searched,
  size-specialized code on small irregular sizes).
"""

from __future__ import annotations

from conftest import suite_results

from repro.bench import format_speedup, print_table


def _rows_to_table(rows):
    table = []
    for row in rows:
        table.append(
            [
                row.key,
                row.cycles("scalar"),
                format_speedup(row.speedup("slp")),
                format_speedup(row.speedup("nature")),
                format_speedup(row.speedup("diospyros")),
                format_speedup(row.speedup("isaria")),
            ]
        )
    return table


def test_fig4_kernel_speedups(benchmark, spec, isaria, diospyros):
    rows = benchmark.pedantic(
        lambda: suite_results(spec, isaria, diospyros),
        rounds=1,
        iterations=1,
    )
    print_table(
        ["kernel", "scalar cyc", "clang-slp", "nature", "diospyros",
         "isaria"],
        _rows_to_table(rows),
        title="Figure 4: speedup over scalar baseline (higher is better)",
    )

    # Everything measured must be numerically correct.
    for row in rows:
        for system, m in row.measurements.items():
            if m.error is None:
                assert m.correct, f"{row.key}/{system} produced wrong output"

    # Nature omits QR (paper: "the library omits some smaller
    # irregular sizes" / kernels).
    qr_rows = [r for r in rows if r.family == "QrD"]
    assert all(r.measurements["nature"].error for r in qr_rows)

    # Isaria meaningfully vectorizes the regular kernels.
    matmul = {
        r.key: r.speedup("isaria") for r in rows if r.family == "MatMul"
    }
    assert max(matmul.values()) > 1.5, matmul

    # Isaria is in the same league as Diospyros on average (the paper
    # reports a 34% edge for Isaria; we only require comparability).
    ratios = [
        r.speedup("isaria") / r.speedup("diospyros")
        for r in rows
        if r.speedup("diospyros") and r.speedup("isaria")
    ]
    mean_ratio = sum(ratios) / len(ratios)
    assert 0.5 < mean_ratio, f"Isaria far behind Diospyros: {mean_ratio}"
