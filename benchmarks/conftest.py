"""Shared fixtures and caches for the experiment benchmarks.

Every paper table/figure has one module here.  Expensive artifacts
(the generated compiler, the full-suite measurement sweep) are built
once per session and shared; each benchmark then reports its slice of
the results in the paper's format.

Set ``REPRO_BENCH_FULL=1`` for the larger kernel grid (slower).
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import run_suite
from repro.compiler.diospyros import DiospyrosCompiler
from repro.core.pregen import default_compiler
from repro.isa import fusion_g3_spec
from repro.kernels import default_suite

FULL = bool(os.environ.get("REPRO_BENCH_FULL"))

# The benchmark kernel grid (paper Fig. 4's x-axis, scaled — see
# EXPERIMENTS.md for the size mapping).
CONV2D_SIZES = (
    [(3, 3, 2, 2), (3, 3, 3, 3), (4, 4, 2, 2), (4, 4, 3, 3),
     (6, 6, 3, 3), (8, 8, 3, 3)]
    if FULL
    else [(3, 3, 2, 2), (3, 3, 3, 3), (4, 4, 2, 2), (4, 4, 3, 3)]
)
MATMUL_SIZES = (
    [(2, 2, 2), (2, 3, 3), (3, 3, 3), (4, 4, 4), (5, 5, 5), (6, 6, 6)]
    if FULL
    else [(2, 2, 2), (2, 3, 3), (3, 3, 3), (4, 4, 4)]
)
QR_SIZES = [3, 4] if FULL else [3]

# Ablation experiments use a small, fast subset.
ABLATION_CONV_SIZES = [(3, 3, 2, 2), (3, 3, 3, 3), (4, 4, 2, 2)]


def bench_suite():
    return default_suite(
        conv2d_sizes=CONV2D_SIZES,
        matmul_sizes=MATMUL_SIZES,
        qr_sizes=QR_SIZES,
    )


@pytest.fixture(scope="session")
def spec():
    return fusion_g3_spec()


@pytest.fixture(scope="session")
def isaria(spec):
    return default_compiler(spec)


@pytest.fixture(scope="session")
def diospyros(spec):
    return DiospyrosCompiler(spec)


_RESULTS_CACHE: dict = {}


def suite_results(spec, isaria, diospyros):
    """Fig. 4/5's full measurement sweep, computed once per session."""
    if "rows" not in _RESULTS_CACHE:
        _RESULTS_CACHE["rows"] = run_suite(
            bench_suite(),
            spec,
            isaria=isaria,
            diospyros=diospyros,
            systems=("scalar", "slp", "nature"),
        )
    return _RESULTS_CACHE["rows"]
