"""Saturation hot-path microbenchmark: compiled e-matching + the
incremental op-index vs. the legacy (recursive matcher + per-iteration
rescan) path.

The workload concentrates on the saturation engine's dominant cost in
real compiles — e-matching over wide e-classes.  Wide classes are
built directly (the shape assoc/comm explosions produce), and most
rules are *fail-late*: they scan large cross products and reject every
candidate, so the measured time is almost pure matcher work with no
confounding apply/union cost.  A small driver rule keeps the run going
for multiple iterations so the per-iteration op-index path is
exercised too.

Both configurations run the same rules to saturation on the same
graph, so their final e-graphs agree; the measured ratio is pure
engine overhead.  Results (with the matcher/index/rebuild/extract
timing breakdown from ``SaturationPerf``) go to
``BENCH_saturation.json`` at the repo root so CI can archive them and
future PRs can compare.

The speedup floor asserted here (2x) is the PR's acceptance bar; the
measured ratio is typically 3x+.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.bench.report import write_bench_json
from repro.egraph.compile_pattern import compiled_cache_size
from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.egraph.rewrite import parse_rewrite
from repro.isa import fusion_g3_spec
from repro.lang.parser import parse
from repro.phases.cost import CostModel

_REPO_ROOT = Path(__file__).resolve().parent.parent
_REPEATS = 2

# ``drive-comm`` is the only rule that matches: it flips a handful of
# ``-`` pairs, forcing a second full iteration (and a second op-index
# build).  The rest are the shapes synthesized vectorizing rulesets
# are full of — nested lift patterns and nonlinear lane checks — on
# classes where they scan everything and bind nothing.
_RULES = [
    parse_rewrite("drive-comm", "(- ?a ?b) => (- ?b ?a)"),
    parse_rewrite(
        "mul-lift", "(* (+ ?a ?b) (+ ?c ?d)) => (* (+ ?b ?a) (+ ?d ?c))"
    ),
    parse_rewrite(
        "mul-lift-flip",
        "(* (+ ?a ?b) (+ ?c ?d)) => (* (+ ?d ?c) (+ ?b ?a))",
    ),
    parse_rewrite("mul-sq", "(* (+ ?a ?a) ?c) => (* ?c (+ ?a ?a))"),
    parse_rewrite(
        "vec-sq", "(Vec (+ ?a ?a) ?b ?c ?d) => (Vec (+ ?a ?a) ?d ?c ?b)"
    ),
]

_LIMITS = RunnerLimits(
    max_iterations=10,
    max_nodes=10**9,
    time_limit=300.0,
    # Caps must not bind: candidate ordering differs between the two
    # index builds, and a binding cap would make the runs diverge.
    match_limit=10**9,
    match_work=10**9,
)

_N_PLUS = 2000   # width of the (+ _ _) class every heavy rule scans
_N_MUL = 150     # (* (+ ...) k) nodes rooting the nested scans
_N_VEC = 100     # (Vec (+ ...) ...) nodes rooting the lane checks
_N_DRIVER = 12   # subtraction pairs that actually rewrite


def _build():
    g = EGraph()
    plus = g.add_term(parse("(+ (Get a 0) (Get b 0))"))
    for i in range(1, _N_PLUS):
        g.union(plus, g.add_term(parse(f"(+ (Get a {i}) (Get b {i}))")))
    mul = g.add_term(parse("(* (+ (Get a 0) (Get b 0)) (Get k 0))"))
    for i in range(1, _N_MUL):
        g.union(mul, g.add_term(parse(
            f"(* (+ (Get a {i}) (Get b {i})) (Get k {i}))"
        )))
    vec = g.add_term(parse(
        "(Vec (+ (Get a 0) (Get b 0)) (Get c 0) (Get d 0) (Get e 0))"
    ))
    for i in range(1, _N_VEC):
        g.union(vec, g.add_term(parse(
            f"(Vec (+ (Get a {i}) (Get b {i})) "
            f"(Get c {i}) (Get d {i}) (Get e {i}))"
        )))
    for i in range(_N_DRIVER):
        g.add_term(parse(f"(- (Get p {i}) (Get q {i}))"))
    g.rebuild()
    return g, [mul, vec]


def _run_once():
    g, roots = _build()
    t0 = time.perf_counter()
    report = run_saturation(g, _RULES, _LIMITS)
    elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    extractor = Extractor(g, CostModel(fusion_g3_spec()))
    cost = sum(extractor.best(g.find(r))[0] for r in roots)
    extract_time = time.perf_counter() - t0
    fingerprint = (g.n_classes, g.n_nodes, report.stop_reason.value, cost)
    return elapsed, extract_time, report, fingerprint


def _timed(env: dict) -> tuple:
    saved = {k: os.environ.get(k) for k in env}
    os.environ.update(env)
    try:
        best = None
        for _ in range(_REPEATS):
            run = _run_once()
            if best is None or run[0] < best[0]:
                best = run
        return best
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def test_perf_saturation_speedup(benchmark):
    def experiment():
        new = _timed({})
        legacy = _timed(
            {"REPRO_LEGACY_EMATCH": "1", "REPRO_LEGACY_INDEX": "1"}
        )
        return new, legacy

    new, legacy = benchmark.pedantic(experiment, rounds=1, iterations=1)
    new_t, new_extract, new_report, new_fp = new
    old_t, old_extract, old_report, old_fp = legacy

    # Same rule closure → identical final graphs and extraction costs.
    assert new_fp == old_fp, (new_fp, old_fp)
    assert new_report.saturated and old_report.saturated
    assert new_report.perf.node_visits == old_report.perf.node_visits

    speedup = old_t / new_t
    payload = {
        "workload": {
            "n_rules": len(_RULES),
            "wide_class_width": _N_PLUS,
            "final_nodes": new_fp[1],
            "final_classes": new_fp[0],
            "stop_reason": new_fp[2],
        },
        "new": {
            "saturation_time": new_t,
            "extract_time": new_extract,
            "perf": new_report.perf.as_dict(),
        },
        "legacy": {
            "saturation_time": old_t,
            "extract_time": old_extract,
            "perf": old_report.perf.as_dict(),
        },
        "speedup": speedup,
        "compiled_patterns_cached": compiled_cache_size(),
        "repeats": _REPEATS,
    }
    write_bench_json(
        _REPO_ROOT / "BENCH_saturation.json", "saturation-hot-path", payload,
        floors={"speedup": 2.0},
    )
    print(
        f"\nsaturation hot path: legacy {old_t:.3f}s -> new {new_t:.3f}s "
        f"({speedup:.2f}x); node visits {new_report.perf.node_visits}"
    )
    assert speedup >= 2.0, f"hot-path speedup {speedup:.2f}x below 2x floor"
