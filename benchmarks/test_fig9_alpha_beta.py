"""Figure 9 / §5.5: sensitivity to the alpha/beta phase thresholds.

The paper sweeps alpha x beta on one 2D convolution kernel and plots
estimated cycles: a wide dark (good) region — the thresholds are easy
to choose — bounded by bad corners, e.g. top-right where every rule
lands in the optimization phase and compilation reduces to a single
timed-out saturation.

We sweep a scaled grid on a scaled conv kernel and report the
extraction cost (the paper's "estimated cycles") per cell.
"""

from __future__ import annotations

from repro.bench import print_table
from repro.kernels import conv2d_kernel
from repro.phases import PhaseParams, assign_phases

ALPHAS = (5.0, 25.0, 200.0, 10_000.0)
BETAS = (4.0, 12.0, 60.0, 10_000.0)


def test_fig9_alpha_beta(benchmark, spec, isaria):
    instance = conv2d_kernel(3, 3, 2, 2)
    rules = isaria.ruleset.all_rules()
    cost_model = isaria.cost_model

    def experiment():
        from repro.compiler.compile import compile_term

        grid = {}
        for alpha in ALPHAS:
            for beta in BETAS:
                ruleset = assign_phases(
                    cost_model, rules, PhaseParams(alpha=alpha, beta=beta)
                )
                _term, report = compile_term(
                    instance.program.term,
                    ruleset,
                    cost_model,
                    isaria.options,
                )
                grid[(alpha, beta)] = report.final_cost
        return grid

    grid = benchmark.pedantic(experiment, rounds=1, iterations=1)

    table = []
    for alpha in ALPHAS:
        table.append(
            [f"alpha={alpha:g}"]
            + [f"{grid[(alpha, beta)]:.0f}" for beta in BETAS]
        )
    print_table(
        ["(estimated cost)"] + [f"beta={b:g}" for b in BETAS],
        table,
        title="Figure 9: alpha/beta sweep on 2dconv-3x3-2x2 "
        "(lower is better; paper highlights alpha=15, beta=12)",
    )

    default_cell = grid[(25.0, 12.0)]
    degenerate = grid[(10_000.0, 10_000.0)]
    # The default-region cell vectorizes...
    assert default_cell < 2_000, default_cell
    # ...and the everything-is-optimization corner does not (the
    # paper's top-right gray/timeout region).
    assert degenerate > default_cell * 2, (default_cell, degenerate)
