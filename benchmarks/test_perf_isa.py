"""ISA-family lane-width sweep: cycles and lane utilization.

Compiles the same elementwise kernels for every bundled non-base ISA
family (avx-like, masked) at widths 4/8/16 — each compiler built by
re-generalizing the shipped single-lane algebra at the target width
(:func:`~repro.core.pregen.family_compiler`) — runs the compiled code
on the cycle simulator, and checks output values against a plain
Python reference.  Two workloads per (family, width):

- **lane-multiple** (length 16): every width divides it, so compiled
  code should fill its lanes — utilization floor 0.9 across all
  families;
- **non-lane-multiple** (length 11): no width divides it.  On the
  masked family the tail must compile to prefix-masked vector code
  with **zero scalar instructions** and utilization ≥ 0.5; unmasked
  families pay the scalar/insert tail and their (unfloored)
  utilization is recorded for comparison.

Results go to ``BENCH_isa.json`` at the repo root;
``tests/test_bench_schemas.py`` holds the committed numbers to the
floors asserted here.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.bench.report import write_bench_json
from repro.compiler.compile import CompileOptions
from repro.compiler.frontend import trace_kernel
from repro.core.pregen import family_compiler
from repro.egraph.runner import RunnerLimits
from repro.isa.families import isa_family

_REPO_ROOT = Path(__file__).resolve().parent.parent

_WIDTHS = (4, 8, 16)
_FAMILIES = ("avx-like", "masked")
_LANE_MULTIPLE_UTIL_FLOOR = 0.9
_MASKED_TAIL_UTIL_FLOOR = 0.5

_LANE_MULTIPLE_LEN = 16
_NON_MULTIPLE_LEN = 11


def _options() -> CompileOptions:
    """Tight budgets: elementwise kernels lift in one round."""
    return CompileOptions(
        max_rounds=1,
        expansion_limits=RunnerLimits(
            max_iterations=2, max_nodes=2_000, time_limit=2.0
        ),
        compilation_limits=RunnerLimits(
            max_iterations=4, max_nodes=4_000, time_limit=2.0
        ),
        optimization_limits=RunnerLimits(
            max_iterations=2, max_nodes=2_000, time_limit=2.0
        ),
    )


def _mac_kernel(length: int, width: int):
    def mac(a, b, c):
        return [a[i] * b[i] + c[i] for i in range(length)]

    program = trace_kernel(
        f"ew-mac-{length}", mac,
        {"a": length, "b": length, "c": length}, width=width,
    )
    return program, mac


def _inputs(length: int) -> dict:
    return {
        "a": [float(i + 1) for i in range(length)],
        "b": [float(2 * i - 3) for i in range(length)],
        "c": [float(i * i % 7) for i in range(length)],
    }


def _measure(compiler, length: int, width: int) -> dict:
    program, mac = _mac_kernel(length, width)
    t0 = time.monotonic()
    compiled = compiler.compile_kernel(program)
    compile_s = time.monotonic() - t0
    opcodes = [i.opcode for i in compiled.machine_program.instrs]
    scalar_tail = sum(1 for op in opcodes if op.startswith("s."))
    inputs = _inputs(length)
    result = compiled.run(inputs)
    got = list(result.memory[compiled.output][:length])
    want = [float(x) for x in mac(inputs["a"], inputs["b"], inputs["c"])]
    return {
        "kernel": program.name,
        "length": length,
        "compile_s": compile_s,
        "cycles": result.cycles,
        "n_instructions": result.n_instructions,
        "scalar_instructions": scalar_tail,
        "masked_ops": result.masked_ops,
        "lane_utilization": result.lane_utilization,
        "masked_op_share": result.masked_op_share,
        "correct": got == want,
    }


def test_perf_isa(benchmark):
    options = _options()

    def experiment():
        rows = []
        for family_name in _FAMILIES:
            family = isa_family(family_name)
            for width in _WIDTHS:
                spec = family.spec(width)
                t0 = time.monotonic()
                compiler = family_compiler(spec, compile_options=options)
                build_s = time.monotonic() - t0
                for length in (_LANE_MULTIPLE_LEN, _NON_MULTIPLE_LEN):
                    row = _measure(compiler, length, width)
                    row.update(
                        family=family_name,
                        isa=spec.name,
                        width=width,
                        compiler_build_s=build_s,
                        masked_family=family.masked,
                    )
                    rows.append(row)
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    assert len(rows) == len(_FAMILIES) * len(_WIDTHS) * 2
    for row in rows:
        assert row["correct"], f"{row['isa']}/{row['kernel']}: wrong values"

    multiples = [
        r for r in rows if r["length"] % r["width"] == 0
    ]
    masked_tails = [
        r for r in rows
        if r["masked_family"] and r["length"] % r["width"]
    ]
    lane_multiple_util = min(r["lane_utilization"] for r in multiples)
    masked_tail_util = min(r["lane_utilization"] for r in masked_tails)

    # The tentpole's tail-masking claim: non-lane-multiple kernels on
    # the masked family compile without a scalar epilogue.
    for row in masked_tails:
        assert row["scalar_instructions"] == 0, (
            f"{row['isa']}/{row['kernel']}: "
            f"{row['scalar_instructions']} scalar tail instructions"
        )
        assert row["masked_ops"] > 0, (
            f"{row['isa']}/{row['kernel']}: no masked ops in a "
            "non-lane-multiple kernel"
        )

    payload = {
        "rows": rows,
        "widths": list(_WIDTHS),
        "families": list(_FAMILIES),
        "lane_multiple_utilization_rate": lane_multiple_util,
        "masked_tail_utilization_rate": masked_tail_util,
    }
    write_bench_json(
        _REPO_ROOT / "BENCH_isa.json",
        "isa-families",
        payload,
        floors={
            "lane_multiple_utilization_rate": _LANE_MULTIPLE_UTIL_FLOOR,
            "masked_tail_utilization_rate": _MASKED_TAIL_UTIL_FLOOR,
        },
    )
    by_isa = {}
    for row in rows:
        by_isa.setdefault(row["isa"], []).append(row)
    print("\nisa sweep (cycles @ util):")
    for isa, isa_rows in by_isa.items():
        cells = ", ".join(
            f"{r['kernel']}: {r['cycles']}c @ {r['lane_utilization']:.3f}"
            for r in isa_rows
        )
        print(f"  {isa}: {cells}")
    assert lane_multiple_util >= _LANE_MULTIPLE_UTIL_FLOOR, (
        f"lane-multiple utilization {lane_multiple_util:.3f} below "
        f"{_LANE_MULTIPLE_UTIL_FLOOR}"
    )
    assert masked_tail_util >= _MASKED_TAIL_UTIL_FLOOR, (
        f"masked-tail utilization {masked_tail_util:.3f} below "
        f"{_MASKED_TAIL_UTIL_FLOOR}"
    )
