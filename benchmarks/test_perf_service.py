"""Compile-service load generator: the result cache pays for itself.

Boots a real :class:`~repro.service.server.CompileService` (in-process
background thread, fresh registry) and drives it with N concurrent
clients × M kernels × R rounds — the service analogue of the paper's
"compile the suite" workload, with repetition because real traffic
repeats.  Three properties are measured and asserted:

- **repeat hit rate** — after each kernel's first request, every
  repeat must be answered from the content-addressed result cache or
  the in-flight dedupe map (floor 0.9: at most 10% of repeats may
  slip through to the compile pool);
- **warm p50 speedup** — the median cache-hit latency must be ≥ 5×
  better than the median cold-compile latency (the entire point of
  fronting ``compile_many`` with a service);
- **byte identity** — every payload the service returns must equal
  the wire encoding of a direct ``compile_many`` run of the same
  kernel: the service layer must never change an answer.

Results (p50/p99 latency per tier, hit rates, throughput) go to
``BENCH_service.json`` at the repo root; the floors asserted here are
the PR's acceptance bars and ``tests/test_bench_schemas.py`` holds
the committed numbers to them.  ``docs/service.md`` derives its
capacity-planning notes from this file.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.bench.report import write_bench_json
from repro.compiler.compile import CompileOptions
from repro.compiler.frontend import trace_kernel
from repro.compiler.pipeline import compile_many
from repro.egraph.runner import RunnerLimits
from repro.kernels.specs import kernel_spec_hash
from repro.service import (
    ArtifactRegistry,
    BackgroundServer,
    CompileClient,
    protocol,
)
from repro.service.server import ServiceConfig

_REPO_ROOT = Path(__file__).resolve().parent.parent
_HIT_RATE_FLOOR = 0.9
_WARM_P50_FLOOR = 5.0

_N_CLIENTS = 4
_N_ROUNDS = 3


def _workload():
    """M tiny kernels (distinct spec hashes, sub-second compiles)."""
    return [
        trace_kernel(
            "svc-add", lambda a, b: [a[i] + b[i] for i in range(4)],
            {"a": 4, "b": 4}, width=4,
        ),
        trace_kernel(
            "svc-mul", lambda a, b: [a[i] * b[i] for i in range(4)],
            {"a": 4, "b": 4}, width=4,
        ),
        trace_kernel(
            "svc-mac", lambda a, b, c: [a[i] * b[i] + c[i] for i in range(4)],
            {"a": 4, "b": 4, "c": 4}, width=4,
        ),
        trace_kernel(
            "svc-sub", lambda a, b: [a[i] - b[i] for i in range(4)],
            {"a": 4, "b": 4}, width=4,
        ),
    ]


def _options() -> CompileOptions:
    """Tight budgets so the load test measures the service, not eqsat."""
    return CompileOptions(
        max_rounds=1,
        expansion_limits=RunnerLimits(
            max_iterations=2, max_nodes=2_000, time_limit=2.0
        ),
        compilation_limits=RunnerLimits(
            max_iterations=4, max_nodes=4_000, time_limit=2.0
        ),
        optimization_limits=RunnerLimits(
            max_iterations=2, max_nodes=2_000, time_limit=2.0
        ),
    )


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _client_loop(port, kernels, options, rounds, barrier, samples):
    with CompileClient(port=port) as client:
        barrier.wait()
        for _ in range(rounds):
            for kernel in kernels:
                t0 = time.monotonic()
                response = client.compile(kernel, options=options)
                samples.append(
                    {
                        "kernel": kernel.name,
                        "latency_s": time.monotonic() - t0,
                        "cached": response["cached"],
                        "deduped": response["deduped"],
                        "result": response["result"],
                    }
                )


def test_perf_service(benchmark, tmp_path, monkeypatch):
    for name in ("REPRO_EXPANSION_CACHE", "REPRO_CHECKPOINT_DIR"):
        monkeypatch.delenv(name, raising=False)
    kernels = _workload()
    options = _options()
    registry = ArtifactRegistry(tmp_path / "registry")
    # Bootstrap outside the timed window: artifact publication is a
    # one-time operator step, not part of serving latency.
    registry.entry_for("fusion-g3")

    def experiment():
        samples: list = []
        t0 = time.monotonic()
        with BackgroundServer(
            config=ServiceConfig(port=0, batch_window=0.02),
            registry=registry,
        ) as server:
            barrier = threading.Barrier(_N_CLIENTS)
            per_client = [list() for _ in range(_N_CLIENTS)]
            threads = [
                threading.Thread(
                    target=_client_loop,
                    args=(server.port, kernels, options, _N_ROUNDS,
                          barrier, per_client[i]),
                )
                for i in range(_N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for client_samples in per_client:
                samples.extend(client_samples)
        return samples, time.monotonic() - t0

    samples, wall_s = benchmark.pedantic(experiment, rounds=1, iterations=1)
    total = len(samples)
    assert total == _N_CLIENTS * _N_ROUNDS * len(kernels)

    cold = [s for s in samples if not s["cached"] and not s["deduped"]]
    warm = [s for s in samples if s["cached"]]
    deduped = [s for s in samples if s["deduped"]]
    # Repeats: everything past each kernel's first request.  A repeat
    # is a hit when the compile pool never saw it (cache or dedupe).
    repeats = total - len(kernels)
    repeat_hits = len(warm) + len(deduped) - max(
        0, len(kernels) - len(cold)
    )
    repeat_hit_rate = repeat_hits / repeats

    cold_p50 = _percentile([s["latency_s"] for s in cold], 0.50)
    warm_p50 = _percentile([s["latency_s"] for s in warm], 0.50)
    warm_p50_speedup = cold_p50 / warm_p50
    all_latencies = [s["latency_s"] for s in samples]

    # Byte identity: every served payload equals a direct compile_many.
    direct = compile_many(
        registry.compiler_for("fusion-g3"), kernels, options=options
    )
    expected = {
        kernel.name: protocol.compiled_to_wire(
            compiled, kernel_spec_hash(kernel)
        )
        for kernel, compiled in zip(kernels, direct)
    }
    identical = all(
        s["result"] == expected[s["kernel"]] for s in samples
    )
    assert identical, "service results diverged from direct compile_many"

    payload = {
        "workload": {
            "clients": _N_CLIENTS,
            "kernels": [k.name for k in kernels],
            "rounds": _N_ROUNDS,
            "requests": total,
            "wall_s": wall_s,
            "requests_per_s": total / wall_s,
        },
        "latency": {
            "p50_s": _percentile(all_latencies, 0.50),
            "p99_s": _percentile(all_latencies, 0.99),
            "cold_p50_s": cold_p50,
            "cold_p99_s": _percentile([s["latency_s"] for s in cold], 0.99),
            "warm_p50_s": warm_p50,
            "warm_p99_s": _percentile([s["latency_s"] for s in warm], 0.99),
        },
        "tiers": {
            "compiled": len(cold),
            "cache_hits": len(warm),
            "deduped": len(deduped),
        },
        "repeat_hit_rate": repeat_hit_rate,
        "warm_p50_speedup": warm_p50_speedup,
        "identical_to_compile_many": identical,
    }
    write_bench_json(
        _REPO_ROOT / "BENCH_service.json",
        "compile-service",
        payload,
        floors={
            "repeat_hit_rate": _HIT_RATE_FLOOR,
            "warm_p50_speedup": _WARM_P50_FLOOR,
        },
    )
    print(
        f"\nservice load: {total} requests from {_N_CLIENTS} clients in "
        f"{wall_s:.2f}s ({total / wall_s:.1f} req/s)\n"
        f"tiers: {len(cold)} compiled, {len(warm)} cache hits, "
        f"{len(deduped)} deduped -> repeat hit rate "
        f"{repeat_hit_rate:.3f}\n"
        f"latency: cold p50 {cold_p50 * 1e3:.1f}ms, warm p50 "
        f"{warm_p50 * 1e3:.1f}ms = {warm_p50_speedup:.1f}x"
    )
    assert repeat_hit_rate >= _HIT_RATE_FLOOR, (
        f"repeat hit rate {repeat_hit_rate:.3f} below {_HIT_RATE_FLOOR}"
    )
    assert warm_p50_speedup >= _WARM_P50_FLOOR, (
        f"warm p50 speedup {warm_p50_speedup:.1f}x below "
        f"{_WARM_P50_FLOOR}x floor"
    )
