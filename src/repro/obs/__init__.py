"""Structured tracing for the compile pipeline (observability).

Every stage of the pipeline — offline rule synthesis, phase
assignment, each bounded ``EqSat`` call (and each of its iterations),
extraction, lowering, and instruction scheduling — reports what it did
as a tree of *spans*.  A span has a name, a wall-clock start and
duration, and a payload of counters (rules fired, e-nodes/e-classes,
match budget spent, prune decisions, ...).  Compiling one kernel with
tracing enabled yields a single coherent trace covering the whole
Fig. 3 loop, which ``python -m repro.tools.trace_report`` renders as a
timeline table.

Tracing is **off by default** and costs nothing when off: every
instrumentation site asks :func:`current_tracer` for the process-wide
tracer, and with tracing disabled that returns a singleton
:class:`NullTracer` whose spans are shared no-op objects.  Guard any
payload *construction* that is itself expensive behind
``span.enabled``.

Enable via the ``REPRO_TRACE`` environment variable:

- unset / ``0`` — disabled (the default);
- ``1`` / ``stderr`` — spans are printed to stderr as JSONL;
- any other value — treated as a file path; spans are appended as
  JSONL (append mode, so offline synthesis and per-kernel compiles
  accumulate into one trace file).

or programmatically, e.g. in tests::

    from repro.obs import Tracer, ListSink, use_tracer

    sink = ListSink()
    with use_tracer(Tracer(sink)):
        compiler.compile_kernel(program)
    assert any(e["name"] == "eqsat" for e in sink.events)

See ``docs/observability.md`` for the span schema and a worked
example.
"""

from repro.obs.sinks import JsonlFileSink, ListSink, NullSink, StderrSink
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    set_tracer,
    tracer_from_env,
    use_tracer,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "set_tracer",
    "use_tracer",
    "tracer_from_env",
    "NullSink",
    "ListSink",
    "StderrSink",
    "JsonlFileSink",
]
