"""The tracer: nested spans with counter payloads.

Design constraints (in priority order):

1. **Zero overhead when disabled.**  Instrumentation sites run inside
   the saturation loop; with tracing off they must cost one function
   call, no allocation.  :data:`NULL_TRACER` therefore hands out a
   single shared :class:`NullSpan` whose every method is a no-op, and
   exposes ``enabled = False`` so callers can skip building expensive
   payloads altogether.
2. **Exception safety.**  Spans are context managers; a span that
   exits on an exception is still emitted (flagged ``"error"``), so a
   crashed compile leaves a readable partial trace.
3. **Retroactive spans.**  Pipeline stages that already measure their
   own stage times (e.g. :func:`repro.ruler.synthesize.synthesize_rules`)
   can report them via :meth:`Tracer.record` without restructuring
   their timing code.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time

from repro.obs.sinks import JsonlFileSink, NullSink, StderrSink

_FALSY = ("", "0", "false", "no", "off")
_STDERR = ("1", "true", "yes", "on", "stderr")


class Span:
    """One timed, named region of the pipeline.

    Use as a context manager (via :meth:`Tracer.span`); call
    :meth:`add` to attach counters to the payload at any point before
    exit.  ``enabled`` is ``True`` on real spans and ``False`` on the
    shared null span, so hot paths can guard payload construction.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "attrs",
        "_tracer", "_wall", "_t0", "duration",
    )

    enabled = True

    def __init__(self, tracer: "Tracer", name: str, span_id: int,
                 parent_id: int | None, attrs: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer
        self._wall = time.time()
        self._t0 = time.perf_counter()
        self.duration: float | None = None

    def add(self, **attrs) -> "Span":
        """Merge counters into this span's payload; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish(error=exc_type is not None)
        return False

    def finish(self, error: bool = False) -> None:
        """Stop the clock and emit the span (idempotent)."""
        if self.duration is not None:
            return
        self.duration = time.perf_counter() - self._t0
        if error:
            self.attrs["error"] = True
        self._tracer._finish(self)


class NullSpan:
    """The shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    enabled = False
    name = ""
    attrs: dict = {}
    duration = 0.0

    def add(self, **attrs) -> "NullSpan":
        """Ignore the payload; returns ``self``."""
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def finish(self, error: bool = False) -> None:
        """Nothing to emit."""


_NULL_SPAN = NullSpan()


class Tracer:
    """Produces nested spans and emits them to a sink as they finish.

    Nesting is tracked per thread: a span opened while another is open
    becomes its child (worker processes each build their own tracer
    from ``REPRO_TRACE``, so cross-process traces share a file, not a
    parent chain).  Events are emitted at span *finish*, so children
    appear in the output before their parents; consumers rebuild the
    tree from ``id``/``parent`` (see ``repro.tools.trace_report``).
    """

    enabled = True

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else NullSink()
        self._lock = threading.Lock()
        self._next_id = 0
        self._local = threading.local()

    # -- span lifecycle --------------------------------------------------

    def span(self, name: str, **attrs) -> Span:
        """Open a child span of the innermost open span on this thread.

        Returns the :class:`Span` (a context manager — exiting the
        ``with`` block finishes and emits it).
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(self, name, span_id, parent_id, dict(attrs))
        stack.append(span)
        return span

    def record(self, name: str, duration: float, **attrs) -> None:
        """Emit an already-measured span of ``duration`` seconds.

        For stages that time themselves: the span is stamped as ending
        *now* and starting ``duration`` ago, and is parented under the
        innermost open span.
        """
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        span = Span(self, name, span_id, parent_id, dict(attrs))
        span._wall -= duration
        span.duration = duration
        self.sink.emit(self._event(span))

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, span: Span) -> None:
        stack = self._stack()
        # Pop through abandoned children (a span leaked by an exception
        # swallowed between enter and exit) so nesting self-heals.
        while stack and stack[-1] is not span:
            stack.pop()
        if stack:
            stack.pop()
        self.sink.emit(self._event(span))

    @staticmethod
    def _event(span: Span) -> dict:
        event = {
            "name": span.name,
            "id": span.span_id,
            "ts": span._wall,
            "dur": span.duration,
        }
        if span.parent_id is not None:
            event["parent"] = span.parent_id
        if span.attrs:
            event["attrs"] = span.attrs
        return event

    def close(self) -> None:
        """Close the sink (flush file sinks)."""
        self.sink.close()


class NullTracer:
    """The disabled tracer: every span is the shared null span."""

    enabled = False
    sink = NullSink()

    def span(self, name: str, **attrs) -> NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def record(self, name: str, duration: float, **attrs) -> None:
        """Discard the measurement."""

    def close(self) -> None:
        """Nothing to close."""


NULL_TRACER = NullTracer()

# Explicit tracer (set_tracer/use_tracer) wins over the environment;
# the env-derived tracer is cached per REPRO_TRACE value so repeated
# current_tracer() calls cost one dict lookup and one comparison.
_explicit: Tracer | NullTracer | None = None
_env_cache: tuple[str | None, Tracer | NullTracer] = (None, NULL_TRACER)


def tracer_from_env(value: str | None = None) -> Tracer | NullTracer:
    """Build the tracer ``REPRO_TRACE`` (or ``value``) asks for.

    Falsy (unset/``0``/``off``) → :data:`NULL_TRACER`; ``1``/``stderr``
    → a tracer printing JSONL to stderr; anything else → a tracer
    appending JSONL to that file path.
    """
    if value is None:
        value = os.environ.get("REPRO_TRACE", "")
    value = value.strip()
    if value.lower() in _FALSY:
        return NULL_TRACER
    if value.lower() in _STDERR:
        return Tracer(StderrSink())
    return Tracer(JsonlFileSink(value))


def current_tracer() -> Tracer | NullTracer:
    """The process-wide tracer every instrumentation site consults.

    An explicitly installed tracer (:func:`set_tracer` /
    :func:`use_tracer`) takes precedence; otherwise the tracer derives
    from ``REPRO_TRACE``, re-read on every call (cheap, and lets tests
    monkeypatch the environment) but rebuilt only when it changes.
    """
    if _explicit is not None:
        return _explicit
    global _env_cache
    raw = os.environ.get("REPRO_TRACE", "")
    cached_value, cached_tracer = _env_cache
    if raw == cached_value:
        return cached_tracer
    tracer = tracer_from_env(raw)
    _env_cache = (raw, tracer)
    return tracer


def set_tracer(tracer: Tracer | NullTracer | None) -> None:
    """Install ``tracer`` process-wide (``None`` reverts to the env)."""
    global _explicit
    _explicit = tracer


@contextlib.contextmanager
def use_tracer(tracer: Tracer | NullTracer):
    """Context manager: install ``tracer`` for the dynamic extent.

    The previous explicit tracer (usually none) is restored on exit;
    the tracer's sink is *not* closed, so callers can keep asserting
    against it.
    """
    global _explicit
    previous = _explicit
    _explicit = tracer
    try:
        yield tracer
    finally:
        _explicit = previous
