"""Span sinks: where finished spans go.

A sink is anything with ``emit(event: dict)`` (and an optional
``close()``).  The tracer calls ``emit`` once per span, when the span
finishes; the event dict is already JSON-ready (see
``docs/observability.md`` for the schema).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


class NullSink:
    """Discards every event (the sink behind :class:`NullTracer`)."""

    def emit(self, event: dict) -> None:
        """Drop ``event``."""

    def close(self) -> None:
        """Nothing to release."""


class ListSink:
    """Collects events in memory — the sink tests assert against."""

    def __init__(self):
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        """Append ``event`` to :attr:`events`."""
        self.events.append(event)

    def close(self) -> None:
        """Nothing to release (events stay available)."""

    def by_name(self, name: str) -> list[dict]:
        """All collected events with span name ``name``."""
        return [e for e in self.events if e.get("name") == name]


class StderrSink:
    """Writes one JSON line per span to stderr (``REPRO_TRACE=1``)."""

    def emit(self, event: dict) -> None:
        """Print ``event`` as one JSON line on stderr."""
        print(json.dumps(event, default=str), file=sys.stderr)

    def close(self) -> None:
        """stderr is not ours to close."""


class JsonlFileSink:
    """Appends one JSON line per span to a file (``REPRO_TRACE=path``).

    The file is opened lazily on the first event and in append mode,
    so separate pipeline stages (or worker processes, each re-reading
    ``REPRO_TRACE`` from its environment) accumulate into one trace.
    Each event is written with a single ``write`` call and flushed, so
    concurrent appenders interleave whole lines, not fragments.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._file = None

    def emit(self, event: dict) -> None:
        """Append ``event`` as one JSON line (opens the file lazily)."""
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("a")
        self._file.write(json.dumps(event, default=str) + "\n")
        self._file.flush()

    def close(self) -> None:
        """Close the underlying file (re-opens on the next emit)."""
        if self._file is not None:
            self._file.close()
            self._file = None
