"""First-class compiler artifacts: the offline stage as a file.

The paper's central economic argument (§5.3) is that the offline stage
— Ruler-style rule synthesis plus cost-based phase assignment — runs
**once per instruction set** and is amortized over every compilation.
A :class:`CompilerArtifact` makes that product durable: one versioned
JSON file holding the phased rule set *with its phase assignment*, the
α/β phase parameters, the cost-model parameters, the default
:class:`~repro.compiler.compile.CompileOptions`, and the synthesis
provenance (candidate counts and stage timings).  Loading an artifact
yields a working :class:`~repro.core.framework.GeneratedCompiler`
without re-running either ``synthesize_rules`` or ``assign_phases``.

Artifacts are keyed by a **semantics-aware fingerprint**: each
instruction's ``lane_fn`` is evaluated on a fixed grid of probe inputs
and the results are hashed, so editing an instruction's *behaviour* (a
§5.4 customization) misses the cache even when its name, arity, and
cost are unchanged.  This supersedes the name/cost-only fingerprint of
the legacy rule cache (``repro.core.cache``, kept as a thin shim).

Build, inspect, and use artifacts from the command line with
``repro-artifact`` (``python -m repro.tools.artifact_cli``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.compiler.compile import CompileOptions
from repro.egraph.rewrite import Rewrite, parse_rewrite
from repro.egraph.runner import RunnerLimits
from repro.egraph.scheduling import ScheduleError, ScheduleSpec
from repro.isa.spec import Instruction, IsaSpec
from repro.obs import current_tracer
from repro.phases.assign import PhaseParams
from repro.phases.ruleset import PhasedRuleSet
from repro.ruler.synthesize import SynthesisConfig, SynthesisResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.framework import GeneratedCompiler

ARTIFACT_KIND = "repro-compiler-artifact"
ARTIFACT_VERSION = 3

# Versions this reader loads.  v2 artifacts predate the optional
# ``schedule`` field and load with the default (backoff) schedule;
# everything else about the two formats is identical.
_SUPPORTED_VERSIONS = (2, ARTIFACT_VERSION)

# Version folded into the semantics fingerprint.  Deliberately *not*
# ARTIFACT_VERSION: v3 only added an optional field, so v2 artifacts
# must keep matching their specs.  Bump this (invalidating every
# cache) only when probed semantics themselves change meaning.
_SEMANTICS_VERSION = 2

# Fixed probe grid for the semantics hash.  The values exercise sign,
# zero (division/sgn edge cases), fractional, and >1 magnitudes; they
# are part of the artifact format and must never change silently —
# bump _SEMANTICS_VERSION instead.
_SEMANTIC_PROBES = (-2.5, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0, 3.25)


class ArtifactError(ValueError):
    """An artifact file is malformed or does not match the given ISA."""


# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def _lane_semantics_digest(instr: Instruction) -> str:
    """Hash of the instruction's behaviour on the fixed probe grid.

    The lane function is applied to every tuple in the probe product
    (``8 ** arity`` evaluations); exceptions and ``None`` (undefined)
    results are folded in as distinguished tokens.
    """
    out = []
    for args in itertools.product(_SEMANTIC_PROBES, repeat=instr.arity):
        try:
            value = instr.lane_fn(*args)
        except Exception:
            value = "!raise"
        out.append(repr(value))
    digest = hashlib.sha256("|".join(out).encode()).hexdigest()
    return digest[:16]


def spec_semantics_hash(spec: IsaSpec) -> str:
    """Semantics-aware hash of an ISA spec (no synthesis config).

    Covers the structural cost-model knobs plus, per instruction, its
    signature *and* its probed lane semantics — so two specs differing
    only in a ``lane_fn`` body hash differently.
    """
    parts = [
        str(_SEMANTICS_VERSION),
        spec.name,
        str(spec.vector_width),
        str(spec.leaf_cost),
        str(spec.vec_lane_literal_cost),
        str(spec.vec_lane_compute_cost),
        str(spec.vec_contiguous_cost),
        str(spec.concat_cost),
    ]
    # Family extensions join the hash only when switched on, so every
    # pre-existing fusion-g3 artifact keeps its fingerprint.
    if spec.masked:
        parts.append(f"masked/{spec.mask_cost}")
    if spec.vec_unaligned_cost is not None:
        parts.append(f"unaligned/{spec.vec_unaligned_cost}")
    for instr in sorted(spec.instructions, key=lambda i: i.name):
        parts.append(
            f"{instr.name}/{instr.arity}/{instr.kind.value}/"
            f"{instr.base_cost}/{instr.vector_of}/{instr.commutative}/"
            f"{_lane_semantics_digest(instr)}"
        )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def spec_fingerprint(spec: IsaSpec, config: SynthesisConfig) -> str:
    """Stable key for (ISA, synthesis config) pairs.

    Semantics-aware: includes :func:`spec_semantics_hash`, so editing a
    lane function changes the fingerprint (the legacy cache's stale-hit
    hole, fixed).
    """
    parts = [spec_semantics_hash(spec)]
    parts.extend(
        str(x)
        for x in (
            config.max_term_size,
            config.variables,
            config.constants,
            config.n_cvec_random,
            config.cvec_seed,
            config.n_verify_samples,
            config.verify_seed,
            config.minimize,
            config.op_allowlist,
        )
    )
    # cost_prune joins the key only when switched *off*, so every
    # pre-existing artifact (written before the knob existed, default
    # True) keeps its fingerprint.
    if not config.cost_prune:
        parts.append("cost_prune=False")
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def artifact_fingerprint(
    spec: IsaSpec, config: SynthesisConfig, params: PhaseParams
) -> str:
    """Cache key for a full artifact: spec semantics + config + α/β.

    Phase parameters are part of the offline product (they decide the
    per-phase rule membership the artifact persists), so two artifacts
    assigned with different α/β must never collide.
    """
    base = spec_fingerprint(spec, config)
    tail = f"{params.alpha!r}/{params.beta!r}"
    return hashlib.sha256(f"{base}|{tail}".encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# flat rule text (the legacy cache format, still used by pregen data)
# ---------------------------------------------------------------------------


def rules_to_text(rules: list[Rewrite], header: str = "") -> str:
    """Serialize rules, one per line, with optional ``#`` header."""
    lines = [f"# {line}" for line in header.splitlines() if line]
    for rule in rules:
        lines.append(f"{rule.name}\t{rule}")
    return "\n".join(lines) + "\n"


def rules_from_text(text: str) -> list[Rewrite]:
    """Parse rules serialized by :func:`rules_to_text`."""
    rules: list[Rewrite] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, body = line.partition("\t")
        if not body:
            raise ValueError(f"malformed rule line: {line!r}")
        rules.append(parse_rewrite(name, body))
    return rules


# ---------------------------------------------------------------------------
# options / config (de)serialization
# ---------------------------------------------------------------------------


def _options_to_dict(options: CompileOptions) -> dict:
    return dataclasses.asdict(options)


def _options_from_dict(data: dict) -> CompileOptions:
    """Rebuild :class:`CompileOptions`, tolerating missing/extra keys.

    Unknown keys (from a newer writer) are dropped; missing keys fall
    back to the dataclass defaults, so artifacts stay loadable across
    small option-set changes within one format version.
    """
    kwargs = {}
    for f in dataclasses.fields(CompileOptions):
        if f.name not in data:
            continue
        value = data[f.name]
        if f.name.endswith("_limits") and isinstance(value, dict):
            known = {lf.name for lf in dataclasses.fields(RunnerLimits)}
            value = RunnerLimits(
                **{k: v for k, v in value.items() if k in known}
            )
        kwargs[f.name] = value
    return CompileOptions(**kwargs)


def _config_to_dict(config: SynthesisConfig) -> dict:
    return dataclasses.asdict(config)


def provenance_from_synthesis(result: SynthesisResult) -> dict:
    """Summarize a :class:`SynthesisResult` for artifact provenance.

    Counts and timings only — the rules themselves live in the phased
    rule set; this records *how* they were produced.
    """
    return {
        "source": "synthesized",
        "n_rules": len(result.rules),
        "n_single_lane_rules": len(result.single_lane_rules),
        "n_enumerated": result.n_enumerated,
        "n_representatives": result.n_representatives,
        "n_pairs": result.n_pairs,
        "n_candidates": result.n_candidates,
        "n_verified": result.n_verified,
        "n_unsound": result.n_unsound,
        "elapsed": result.elapsed,
        "aborted": result.aborted,
        "stage_times": dict(result.stage_times),
    }


# ---------------------------------------------------------------------------
# the artifact itself
# ---------------------------------------------------------------------------


@dataclass
class CompilerArtifact:
    """The serialized product of the offline stage, as one value.

    Everything a compile server needs to answer requests for one ISA:
    the phased rule set (with phase membership baked in), the α/β used
    to assign it, the cost-model parameters, default compile options,
    and provenance of the synthesis run.  ``spec_hash`` ties the
    artifact to the *semantics* of the ISA it was built from;
    ``fingerprint`` is the cache key (spec + synthesis config + α/β).
    """

    isa_name: str
    vector_width: int
    spec_hash: str
    fingerprint: str
    ruleset: PhasedRuleSet
    options: CompileOptions = field(default_factory=CompileOptions)
    cost_params: dict = field(default_factory=dict)
    synthesis_config: dict = field(default_factory=dict)
    provenance: dict = field(default_factory=dict)
    # Dominance-pruning provenance (repro.ruler.cost_prune): kept /
    # dropped counts and the cost-model digest pruning ran under.
    # None for unpruned rulesets and every pre-existing artifact.
    pruning: dict | None = None
    # Tuned saturation schedule (its own versioned document; see
    # repro.egraph.scheduling).  None — including every pre-v3
    # artifact — compiles with the default backoff scheduler.
    schedule: ScheduleSpec | None = None
    created: float = 0.0
    version: int = ARTIFACT_VERSION

    # -- construction ----------------------------------------------------

    @classmethod
    def from_compiler(
        cls,
        compiler: "GeneratedCompiler",
        config: SynthesisConfig | None = None,
        provenance: dict | None = None,
    ) -> "CompilerArtifact":
        """Capture a generated compiler as an artifact.

        ``config`` is the synthesis configuration the compiler's rules
        came from (used for the fingerprint; defaults to the stock
        config).  ``provenance`` overrides the synthesis summary — by
        default it is derived from ``compiler.synthesis`` when present.
        """
        spec = compiler.spec
        config = config or SynthesisConfig()
        pruning = None
        if provenance is None:
            if compiler.synthesis is not None:
                provenance = provenance_from_synthesis(compiler.synthesis)
            else:
                provenance = {"source": "unknown"}
        if compiler.synthesis is not None:
            pruning = getattr(compiler.synthesis, "pruning", None)
        return cls(
            isa_name=spec.name,
            vector_width=spec.vector_width,
            spec_hash=spec_semantics_hash(spec),
            fingerprint=artifact_fingerprint(
                spec, config, compiler.ruleset.params
            ),
            ruleset=compiler.ruleset,
            options=compiler.options,
            cost_params={
                "leaf_cost": spec.leaf_cost,
                "vec_lane_literal_cost": spec.vec_lane_literal_cost,
                "vec_lane_compute_cost": spec.vec_lane_compute_cost,
                "vec_contiguous_cost": spec.vec_contiguous_cost,
                "concat_cost": spec.concat_cost,
            },
            synthesis_config=_config_to_dict(config),
            provenance=provenance,
            pruning=pruning,
            schedule=compiler.schedule,
            created=time.time(),
        )

    # -- (de)serialization -----------------------------------------------

    def to_json(self) -> str:
        """The artifact as a JSON document (the on-disk format)."""
        params = self.ruleset.params
        doc = {
            "kind": ARTIFACT_KIND,
            "version": self.version,
            "isa": {
                "name": self.isa_name,
                "vector_width": self.vector_width,
                "spec_hash": self.spec_hash,
            },
            "fingerprint": self.fingerprint,
            "phase_params": {"alpha": params.alpha, "beta": params.beta},
            "phase_counts": self.ruleset.counts(),
            "ruleset": self.ruleset.to_text(),
            "options": _options_to_dict(self.options),
            "cost_params": dict(self.cost_params),
            "synthesis_config": dict(self.synthesis_config),
            "provenance": dict(self.provenance),
            "pruning": (
                dict(self.pruning) if self.pruning is not None else None
            ),
            "schedule": (
                self.schedule.to_dict() if self.schedule else None
            ),
            "created": self.created,
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CompilerArtifact":
        """Parse :meth:`to_json` output; :class:`ArtifactError` if bad."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"artifact is not valid JSON: {exc}")
        if not isinstance(doc, dict) or doc.get("kind") != ARTIFACT_KIND:
            raise ArtifactError("not a compiler artifact file")
        version = doc.get("version")
        if version not in _SUPPORTED_VERSIONS:
            raise ArtifactError(
                f"unsupported artifact version {version!r} "
                f"(this reader handles {_SUPPORTED_VERSIONS})"
            )
        schedule_doc = doc.get("schedule")
        try:
            schedule = (
                ScheduleSpec.from_dict(schedule_doc)
                if schedule_doc is not None
                else None
            )
        except ScheduleError as exc:
            raise ArtifactError(f"malformed artifact schedule: {exc}")
        try:
            isa = doc["isa"]
            ruleset = PhasedRuleSet.from_text(doc["ruleset"])
            return cls(
                isa_name=isa["name"],
                vector_width=int(isa["vector_width"]),
                spec_hash=isa["spec_hash"],
                fingerprint=doc["fingerprint"],
                ruleset=ruleset,
                options=_options_from_dict(doc.get("options", {})),
                cost_params=dict(doc.get("cost_params", {})),
                synthesis_config=dict(doc.get("synthesis_config", {})),
                provenance=dict(doc.get("provenance", {})),
                pruning=(
                    dict(doc["pruning"])
                    if isinstance(doc.get("pruning"), dict)
                    else None
                ),
                schedule=schedule,
                created=float(doc.get("created", 0.0)),
                version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ArtifactError(f"malformed artifact: {exc}")

    def save(self, path: Path | str) -> Path:
        """Write the artifact to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Path | str) -> "CompilerArtifact":
        """Read an artifact file; :class:`ArtifactError` if unusable."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ArtifactError(f"cannot read artifact {path}: {exc}")
        return cls.from_json(text)

    # -- use -------------------------------------------------------------

    def matches_spec(self, spec: IsaSpec) -> bool:
        """True when ``spec``'s probed semantics match this artifact."""
        return spec_semantics_hash(spec) == self.spec_hash

    def to_compiler(
        self,
        spec: IsaSpec,
        options: CompileOptions | None = None,
        check: bool = True,
    ) -> "GeneratedCompiler":
        """Reconstruct the generated compiler for ``spec``.

        Skips both rule synthesis and phase assignment — the whole
        point of the artifact.  With ``check`` (default) the spec's
        semantics hash must match the artifact's, so a stale artifact
        cannot silently compile against changed instruction behaviour.
        """
        from repro.core.framework import GeneratedCompiler

        return GeneratedCompiler.from_artifact(
            self, spec, options=options, check=check
        )

    def summary(self) -> str:
        """Multi-line human-readable description (CLI ``inspect``)."""
        counts = self.ruleset.counts()
        params = self.ruleset.params
        prov = self.provenance
        lines = [
            f"compiler artifact v{self.version} for ISA "
            f"{self.isa_name!r} (width {self.vector_width})",
            f"  fingerprint:  {self.fingerprint}  "
            f"(spec semantics {self.spec_hash})",
            f"  rules:        {len(self.ruleset)} "
            f"({counts['expansion']} expansion, "
            f"{counts['compilation']} compilation, "
            f"{counts['optimization']} optimization)",
            f"  phase params: alpha={params.alpha} beta={params.beta}",
            f"  cost params:  "
            + " ".join(f"{k}={v}" for k, v in self.cost_params.items()),
            "  schedule:     "
            + (
                self.schedule.summary()
                if self.schedule is not None
                else "default (backoff scheduler)"
            ),
        ]
        if self.pruning is not None:
            # One line per pruning stage (single_lane / full_width),
            # or the flat kept/dropped form the pregen path records.
            for stage, info in sorted(self.pruning.items()):
                if not isinstance(info, dict):
                    continue
                lines.append(
                    f"  pruning:      {stage}: "
                    f"kept {info.get('n_kept', '?')}"
                    f"/{info.get('n_in', '?')} "
                    f"({info.get('n_dominated', '?')} dominated, "
                    f"{info.get('n_rescued', '?')} rescued; "
                    f"cost model {info.get('cost_model_digest', '?')})"
                )
        source = prov.get("source", "unknown")
        if source == "synthesized":
            lines.append(
                f"  provenance:   synthesized "
                f"({prov.get('n_candidates', '?')} candidates, "
                f"{prov.get('n_verified', '?')} verified, "
                f"{prov.get('n_unsound', '?')} unsound, "
                f"{prov.get('elapsed', 0.0):.1f}s offline)"
            )
            stages = prov.get("stage_times") or {}
            if stages:
                lines.append(
                    "  stage times:  "
                    + " ".join(f"{k}={v:.2f}s" for k, v in stages.items())
                )
        else:
            lines.append(f"  provenance:   {source}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# the on-disk artifact cache
# ---------------------------------------------------------------------------


def default_cache_dir() -> Path:
    """Cache directory (``REPRO_RULE_CACHE`` overrides the default)."""
    env = os.environ.get("REPRO_RULE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-isaria"


def artifact_cache_path(
    spec: IsaSpec,
    config: SynthesisConfig,
    params: PhaseParams,
    cache_dir: Path | None = None,
) -> Path:
    """Where the artifact for this offline configuration lives."""
    cache_dir = cache_dir or default_cache_dir()
    fp = artifact_fingerprint(spec, config, params)
    return cache_dir / f"artifact-{fp}.json"


def load_cached_artifact(
    spec: IsaSpec,
    config: SynthesisConfig,
    params: PhaseParams,
    cache_dir: Path | None = None,
) -> CompilerArtifact | None:
    """The cached artifact for this configuration, or None.

    A corrupt or truncated artifact file is treated as a **miss** (and
    reported through the tracer), never an error: the caller simply
    re-runs the offline stage and overwrites it.
    """
    path = artifact_cache_path(spec, config, params, cache_dir)
    if not path.exists():
        return None
    try:
        artifact = CompilerArtifact.load(path)
    except ArtifactError as exc:
        # Local import: repro.core.cache imports this module at load
        # time, so the shared corrupt-entry policy is bound lazily.
        from repro.core.cache import corrupt_entry_miss

        corrupt_entry_miss("artifact_cache", path, exc)
        return None
    if artifact.spec_hash != spec_semantics_hash(spec):
        # Fingerprint collision or hand-edited file: safer to rebuild.
        current_tracer().record(
            "artifact.cache_mismatch", 0.0, path=str(path)
        )
        return None
    return artifact


def store_artifact(
    artifact: CompilerArtifact,
    spec: IsaSpec,
    config: SynthesisConfig,
    cache_dir: Path | None = None,
) -> Path:
    """Write ``artifact`` into the cache; returns the file path."""
    path = artifact_cache_path(
        spec, config, artifact.ruleset.params, cache_dir
    )
    return artifact.save(path)
