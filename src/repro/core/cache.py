"""Persistence for offline synthesis results.

The offline stage (rule synthesis + phase assignment) runs once per
instruction set and is then amortized over every compilation (paper
§5.3).  This module makes that concrete: rule sets serialize to a
plain-text format (one ``name<TAB>lhs => rhs`` line per rule) keyed by
a fingerprint of the ISA spec and synthesis configuration, so a
generated compiler can be cached on disk or shipped with the package.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.egraph.rewrite import Rewrite, parse_rewrite
from repro.isa.spec import IsaSpec
from repro.ruler.synthesize import SynthesisConfig

_FORMAT_VERSION = "1"


def spec_fingerprint(spec: IsaSpec, config: SynthesisConfig) -> str:
    """Stable key for (ISA, synthesis config) pairs."""
    parts = [
        _FORMAT_VERSION,
        spec.name,
        str(spec.vector_width),
        str(spec.leaf_cost),
        str(spec.vec_lane_literal_cost),
        str(spec.vec_lane_compute_cost),
        str(spec.vec_contiguous_cost),
        str(spec.concat_cost),
    ]
    for instr in sorted(spec.instructions, key=lambda i: i.name):
        parts.append(
            f"{instr.name}/{instr.arity}/{instr.kind.value}/"
            f"{instr.base_cost}/{instr.vector_of}"
        )
    parts.extend(
        str(x)
        for x in (
            config.max_term_size,
            config.variables,
            config.constants,
            config.n_cvec_random,
            config.cvec_seed,
            config.n_verify_samples,
            config.verify_seed,
            config.minimize,
            config.op_allowlist,
        )
    )
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:16]


def rules_to_text(rules: list[Rewrite], header: str = "") -> str:
    """Serialize rules, one per line, with optional ``#`` header."""
    lines = [f"# {line}" for line in header.splitlines() if line]
    for rule in rules:
        lines.append(f"{rule.name}\t{rule}")
    return "\n".join(lines) + "\n"


def rules_from_text(text: str) -> list[Rewrite]:
    """Parse rules serialized by :func:`rules_to_text`."""
    rules: list[Rewrite] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, body = line.partition("\t")
        if not body:
            raise ValueError(f"malformed rule line: {line!r}")
        rules.append(parse_rewrite(name, body))
    return rules


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_RULE_CACHE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-isaria"


def load_cached_rules(
    spec: IsaSpec,
    config: SynthesisConfig,
    cache_dir: Path | None = None,
) -> list[Rewrite] | None:
    """Cached rules for this (spec, config), or None."""
    cache_dir = cache_dir or default_cache_dir()
    path = cache_dir / f"rules-{spec_fingerprint(spec, config)}.txt"
    if not path.exists():
        return None
    return rules_from_text(path.read_text())


def store_cached_rules(
    spec: IsaSpec,
    config: SynthesisConfig,
    rules: list[Rewrite],
    cache_dir: Path | None = None,
) -> Path:
    """Write rules to the cache; returns the file path."""
    cache_dir = cache_dir or default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"rules-{spec_fingerprint(spec, config)}.txt"
    header = (
        f"Isaria synthesized rules for ISA {spec.name!r} "
        f"(term size {config.max_term_size})"
    )
    path.write_text(rules_to_text(rules, header=header))
    return path
