"""Legacy flat rule cache (superseded by :mod:`repro.core.artifact`).

The artifact module is the real persistence layer now: it stores the
*whole* offline product (phased rules, parameters, provenance) in one
versioned JSON file keyed by a semantics-aware fingerprint.  This shim
keeps the original flat-text API alive for the pregenerated rule data
files (``src/repro/data/*.txt``) and any external callers:
``rules_to_text``/``rules_from_text``, ``spec_fingerprint`` (now the
semantics-aware version), and a tolerant ``load_cached_rules`` that
treats corrupt cache entries as misses instead of crashing.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.artifact import (
    default_cache_dir,
    rules_from_text,
    rules_to_text,
    spec_fingerprint,
)
from repro.egraph.rewrite import Rewrite
from repro.isa.spec import IsaSpec
from repro.obs import current_tracer
from repro.ruler.synthesize import SynthesisConfig

__all__ = [
    "default_cache_dir",
    "load_cached_rules",
    "rules_from_text",
    "rules_to_text",
    "spec_fingerprint",
    "store_cached_rules",
]


def load_cached_rules(
    spec: IsaSpec,
    config: SynthesisConfig,
    cache_dir: Path | None = None,
) -> list[Rewrite] | None:
    """Cached rules for this (spec, config), or None.

    A corrupt or truncated cache file is a *miss*, not an error: the
    problem is reported through the tracer and the caller re-runs
    synthesis, overwriting the bad entry.
    """
    cache_dir = cache_dir or default_cache_dir()
    path = cache_dir / f"rules-{spec_fingerprint(spec, config)}.txt"
    if not path.exists():
        return None
    try:
        return rules_from_text(path.read_text())
    except (ValueError, OSError) as exc:
        current_tracer().record(
            "cache.corrupt", 0.0, path=str(path), error=str(exc)
        )
        return None


def store_cached_rules(
    spec: IsaSpec,
    config: SynthesisConfig,
    rules: list[Rewrite],
    cache_dir: Path | None = None,
) -> Path:
    """Write rules to the cache; returns the file path."""
    cache_dir = cache_dir or default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"rules-{spec_fingerprint(spec, config)}.txt"
    header = (
        f"Isaria synthesized rules for ISA {spec.name!r} "
        f"(term size {config.max_term_size})"
    )
    path.write_text(rules_to_text(rules, header=header))
    return path
