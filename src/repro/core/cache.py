"""On-disk caches of the artifact registry.

Two layers live here:

- the **expansion cache** (:class:`ExpansionCache`) — content-
  addressed phase-boundary e-graph snapshots, so repeat compiles of a
  kernel restore the saturated state of a phase instead of re-running
  its ``EqSat`` call.  Off by default; ``REPRO_EXPANSION_CACHE``
  enables it (see :func:`expansion_cache_from_env`).  Entries live
  next to the compiler artifacts, under
  ``<registry>/expansion/<key>.snap``;
- the **legacy flat rule cache** (superseded by
  :mod:`repro.core.artifact`, which stores the whole offline product
  in one versioned JSON file).  The shim keeps the original flat-text
  API alive for the pregenerated rule data files
  (``src/repro/data/*.txt``) and any external callers.

Both layers share the corrupt-entry policy PR 4 set for artifacts: a
truncated, garbled, or schema-mismatched entry is a tracer-logged
**miss** that triggers a clean rebuild, never an error.  That policy
has exactly one implementation — :func:`corrupt_entry_miss` — which
every on-disk layer (expansion cache, legacy rule shim, artifact
cache, service registry) routes through, so the recovery behaviour
and the ``<layer>.corrupt`` trace-event shape cannot drift apart
again.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path

from repro.core.artifact import (
    default_cache_dir,
    rules_from_text,
    rules_to_text,
    spec_fingerprint,
)
from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite
from repro.egraph.snapshot import (
    SNAPSHOT_VERSION,
    SnapshotError,
    load_snapshot_meta,
    save_egraph,
)
from repro.isa.spec import IsaSpec
from repro.obs import current_tracer
from repro.ruler.synthesize import SynthesisConfig

__all__ = [
    "ExpansionCache",
    "corrupt_entry_miss",
    "default_cache_dir",
    "expansion_cache_dir",
    "expansion_cache_from_env",
    "load_cached_rules",
    "rules_from_text",
    "rules_to_text",
    "spec_fingerprint",
    "store_cached_rules",
]

_FALSY = ("0", "false", "no", "off")
_DEFAULT_ON = ("1", "true", "yes", "on")


def corrupt_entry_miss(layer: str, path, error) -> None:
    """Record a corrupt/truncated on-disk cache entry as a **miss**.

    The single implementation of the repo-wide recovery policy: a bad
    entry is reported through the tracer as ``<layer>.corrupt``
    (carrying the file path and the parse error) and the caller
    rebuilds the value cleanly, overwriting the entry — a corrupt file
    must never surface as an exception or a wrong answer.  ``layer``
    is the cache's trace-event namespace (``expansion_cache``,
    ``cache``, ``artifact_cache``, ``registry``).
    """
    current_tracer().record(
        f"{layer}.corrupt", 0.0, path=str(path), error=str(error)
    )


def expansion_cache_dir() -> Path:
    """Where expansion-cache entries live (or would live).

    ``REPRO_EXPANSION_CACHE`` set to a path overrides; otherwise the
    ``expansion/`` subdirectory of the artifact registry
    (:func:`default_cache_dir`).  This resolves the *location* only —
    whether the cache is active is :func:`expansion_cache_from_env`'s
    call.
    """
    raw = os.environ.get("REPRO_EXPANSION_CACHE", "").strip()
    if raw and raw.lower() not in _FALSY + _DEFAULT_ON:
        return Path(raw)
    return default_cache_dir() / "expansion"


def expansion_cache_from_env() -> "ExpansionCache | None":
    """The active expansion cache, or ``None`` when disabled.

    ``REPRO_EXPANSION_CACHE`` unset or falsy (``0``/``off``/...)
    disables caching — the default, so compile behavior and timing are
    unchanged unless explicitly opted in.  A truthy literal
    (``1``/``on``/...) uses the artifact registry's ``expansion/``
    subdirectory; any other value is the cache directory itself.
    """
    raw = os.environ.get("REPRO_EXPANSION_CACHE", "").strip()
    if not raw or raw.lower() in _FALSY:
        return None
    return ExpansionCache(expansion_cache_dir())


class ExpansionCache:
    """Content-addressed phase-boundary e-graph snapshots.

    The paper's three-phase compile re-runs every ``EqSat`` call on
    every compile, but each phase is a *pure function* of (input
    state, rule list, limits, schedule): the expansion phase is even
    ISA-independent.  This cache stores the post-phase e-graph
    snapshot under a key hashing all of those inputs — the expansion
    phase keys on the round-input term digest, and downstream phases
    chain on the *content digest of the previous phase's snapshot*,
    so a warm compile restores state phase after phase and
    reproduces byte-identical extractions without running saturation.

    One entry is one ``<key>.snap`` file in the snapshot container
    format (:mod:`repro.egraph.snapshot`): an uncompressed meta line
    (kernel, phase, root id, stop reason — what ``repro-artifact
    inspect`` scans) over a compressed e-graph payload.  Corrupt or
    schema-mismatched entries are tracer-logged misses.
    """

    def __init__(self, root: Path):
        self.root = Path(root)

    # -- keys ------------------------------------------------------------

    @staticmethod
    def phase_key(
        phase: str,
        input_digest: str,
        rules_digest: str,
        limits_digest: str,
        schedule_digest: str,
        frontier: bool,
    ) -> str:
        """The content address of one phase's output snapshot.

        Everything that can change the phase's resulting e-graph state
        is hashed in: the phase name, the input-state digest (a term
        digest for phase 1, the previous snapshot's content digest
        after that), the exact rule list, the runner limits, the
        active schedule spec, frontier matching, the snapshot schema
        version, and the legacy-path env toggles (the legacy matcher
        and index evolve internal state differently).
        """
        flags = ",".join(
            f"{name}={os.environ.get(name, '').strip().lower()}"
            for name in ("REPRO_LEGACY_EMATCH", "REPRO_LEGACY_INDEX")
        )
        blob = "|".join(
            [
                f"v{SNAPSHOT_VERSION}",
                phase,
                input_digest,
                rules_digest,
                limits_digest,
                schedule_digest,
                f"frontier={int(frontier)}",
                flags,
            ]
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def path_for(self, key: str) -> Path:
        """The entry file for ``key``."""
        return self.root / f"{key}.snap"

    # -- load / store ----------------------------------------------------

    def load_entry(self, key: str) -> tuple[dict, bytes] | None:
        """``(meta, container bytes)`` for ``key``, or ``None``.

        Validates the container header only (magic, schema, meta
        line) — the body stays compressed until :meth:`restore`, so an
        expansion hit whose compilation phase also hits never inflates
        the intermediate state.  Hits, misses, and corrupt entries are
        tracer-recorded (``expansion_cache.{hit,miss,corrupt}``).
        """
        path = self.path_for(key)
        tracer = current_tracer()
        try:
            data = path.read_bytes()
        except OSError:
            tracer.record("expansion_cache.miss", 0.0, key=key)
            return None
        try:
            meta, _ = load_snapshot_meta(data)
        except SnapshotError as exc:
            corrupt_entry_miss("expansion_cache", path, exc)
            return None
        tracer.record(
            "expansion_cache.hit", 0.0,
            key=key, phase=meta.get("phase"), kernel=meta.get("kernel"),
        )
        return meta, data

    @staticmethod
    def restore(data: bytes) -> "tuple[EGraph, dict] | None":
        """Inflate entry bytes into ``(egraph, meta)``.

        Returns ``None`` (tracer-recorded) when the compressed body is
        corrupt — the caller falls back to running the phase live,
        exactly as on a miss.
        """
        from repro.egraph.snapshot import load_egraph

        try:
            return load_egraph(data)
        except SnapshotError as exc:
            corrupt_entry_miss("expansion_cache", "<entry body>", exc)
            return None

    def store(self, key: str, egraph: EGraph, meta: dict) -> bytes:
        """Write ``egraph`` under ``key``; returns the entry bytes.

        The write is atomic (temp file + rename) so a concurrent
        compile never observes a torn entry; ``meta`` must carry the
        consumer's restore context (at minimum the ``root`` class id)
        and rides the uncompressed header line.  Returns the container
        bytes so callers can chain the next phase's key off their
        content digest without re-reading the file.
        """
        meta = dict(meta)
        meta["key"] = key
        data = save_egraph(egraph, meta=meta)
        path = self.path_for(key)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp-%d" % os.getpid())
        tmp.write_bytes(data)
        os.replace(tmp, path)
        current_tracer().record(
            "expansion_cache.store", 0.0,
            key=key, phase=meta.get("phase"), n_bytes=len(data),
        )
        return data

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """Entry count, total bytes, and per-kernel keys (for CLIs).

        Scans meta lines only; corrupt entries are counted under
        ``corrupt`` rather than raising, matching the load policy.
        """
        entries = 0
        corrupt = 0
        total_bytes = 0
        kernels: dict[str, list[dict]] = {}
        for path in sorted(self.root.glob("*.snap")):
            try:
                data = path.read_bytes()
                meta, _ = load_snapshot_meta(data)
            except (OSError, SnapshotError):
                corrupt += 1
                continue
            entries += 1
            total_bytes += len(data)
            kernel = str(meta.get("kernel") or "<unknown>")
            kernels.setdefault(kernel, []).append(
                {
                    "key": str(meta.get("key") or path.stem),
                    "phase": str(meta.get("phase") or "?"),
                    "bytes": len(data),
                }
            )
        return {
            "dir": str(self.root),
            "entries": entries,
            "corrupt": corrupt,
            "total_bytes": total_bytes,
            "kernels": kernels,
        }


def load_cached_rules(
    spec: IsaSpec,
    config: SynthesisConfig,
    cache_dir: Path | None = None,
) -> list[Rewrite] | None:
    """Cached rules for this (spec, config), or None.

    A corrupt or truncated cache file is a *miss*, not an error: the
    problem is reported through the tracer and the caller re-runs
    synthesis, overwriting the bad entry.
    """
    cache_dir = cache_dir or default_cache_dir()
    path = cache_dir / f"rules-{spec_fingerprint(spec, config)}.txt"
    if not path.exists():
        return None
    try:
        return rules_from_text(path.read_text())
    except (ValueError, OSError) as exc:
        corrupt_entry_miss("cache", path, exc)
        return None


def store_cached_rules(
    spec: IsaSpec,
    config: SynthesisConfig,
    rules: list[Rewrite],
    cache_dir: Path | None = None,
) -> Path:
    """Write rules to the cache; returns the file path."""
    cache_dir = cache_dir or default_cache_dir()
    cache_dir.mkdir(parents=True, exist_ok=True)
    path = cache_dir / f"rules-{spec_fingerprint(spec, config)}.txt"
    header = (
        f"Isaria synthesized rules for ISA {spec.name!r} "
        f"(term size {config.max_term_size})"
    )
    path.write_text(rules_to_text(rules, header=header))
    return path
