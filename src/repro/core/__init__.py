"""The Isaria framework driver (paper Fig. 2).

:class:`IsariaFramework` runs the offline stage — rule synthesis from
the ISA spec, then cost-based phase discovery — and emits a
:class:`GeneratedCompiler`, which performs the compile-time stage:
phased, pruned equality saturation followed by lowering to machine
code.
"""

from repro.core.framework import (
    CompiledKernel,
    GeneratedCompiler,
    IsariaFramework,
    ValidationError,
)
from repro.core.pregen import default_compiler, load_pregenerated_rules

__all__ = [
    "CompiledKernel",
    "GeneratedCompiler",
    "IsariaFramework",
    "ValidationError",
    "default_compiler",
    "load_pregenerated_rules",
]
