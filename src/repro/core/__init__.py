"""The Isaria framework driver (paper Fig. 2).

:class:`IsariaFramework` runs the offline stage — rule synthesis from
the ISA spec, then cost-based phase discovery — and emits a
:class:`GeneratedCompiler`, which performs the compile-time stage:
phased, pruned equality saturation followed by lowering to machine
code.  The offline product persists as a :class:`CompilerArtifact`
(see :mod:`repro.core.artifact`): one versioned file that restores a
working compiler without re-running synthesis or phase assignment.
"""

from repro.core.artifact import (
    ArtifactError,
    CompilerArtifact,
    spec_semantics_hash,
)
from repro.core.framework import (
    CompiledKernel,
    GeneratedCompiler,
    IsariaFramework,
    ValidationError,
)
from repro.core.pregen import default_compiler, load_pregenerated_rules

__all__ = [
    "ArtifactError",
    "CompiledKernel",
    "CompilerArtifact",
    "GeneratedCompiler",
    "IsariaFramework",
    "ValidationError",
    "default_compiler",
    "load_pregenerated_rules",
    "spec_semantics_hash",
]
