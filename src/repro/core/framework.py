"""End-to-end framework: offline generation + the generated compiler."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.compiler.codegen import emit_c
from repro.compiler.compile import (
    CompileOptions,
    CompileReport,
    compile_term,
)
from repro.compiler.frontend import KernelProgram
from repro.egraph.scheduling import ScheduleSpec
from repro.interp.value import values_equal
from repro.isa.spec import IsaSpec
from repro.kernels.specs import KernelInstance
from repro.lang.term import Term
from repro.machine.program import Program
from repro.obs import current_tracer
from repro.phases.assign import PhaseParams, assign_phases, default_params
from repro.phases.cost import CostModel
from repro.phases.ruleset import PhasedRuleSet
from repro.ruler.synthesize import (
    SynthesisConfig,
    SynthesisResult,
    synthesize_rules,
)


class ValidationError(AssertionError):
    """Translation validation failed: compiled term is not equivalent."""


@dataclass
class CompiledKernel:
    """The output of compiling one kernel."""

    name: str
    scalar_term: Term
    compiled_term: Term
    machine_program: Program
    report: CompileReport
    arrays: dict
    output: str
    spec: IsaSpec | None = None

    def c_source(self) -> str:
        """The kernel rendered as C with vector intrinsics."""
        return emit_c(
            self.machine_program,
            name=self.name.replace("-", "_"),
            arrays=self.arrays,
            output=self.output,
        )

    def run(self, inputs: dict, schedule: bool = True):
        """Execute the kernel on the cycle-level simulator.

        ``inputs`` maps input array names to number sequences
        (unpadded); the output buffer is allocated automatically.
        Returns the :class:`~repro.machine.simulator.SimResult`.
        """
        if self.spec is None:
            raise ValueError("CompiledKernel.run needs a spec")
        from repro.machine.schedule import schedule_program
        from repro.machine.simulator import Machine

        machine = Machine(self.spec)
        program = self.machine_program
        if schedule:
            program = schedule_program(program, machine)
        width = self.spec.vector_width
        memory = {}
        for name, length in self.arrays.items():
            data = [float(x) for x in inputs[name]]
            if len(data) != length:
                raise ValueError(
                    f"input {name!r} has {len(data)} values, expected "
                    f"{length}"
                )
            while len(data) % width:
                data.append(0.0)
            memory[name] = data
        n_stores = sum(
            1
            for instr in self.machine_program.instrs
            if instr.opcode in ("v.store", "v.store.m")
            and instr.array == self.output
        )
        memory[self.output] = [0.0] * max(n_stores * width, width)
        result = machine.run(program, memory)
        # Surface the machine's lane-utilization counters on the
        # compile report (the per-program metric the ISA sweep reads).
        self.report.lanes_issued = result.lanes_issued
        self.report.lanes_active = result.lanes_active
        return result


@dataclass
class GeneratedCompiler:
    """A vectorizing compiler generated from an ISA specification.

    Holds everything the offline stage produced: the phased rule set,
    the cost model, and (for inspection) the synthesis result.
    """

    spec: IsaSpec
    cost_model: CostModel
    ruleset: PhasedRuleSet
    options: CompileOptions = field(default_factory=CompileOptions)
    synthesis: SynthesisResult | None = None
    # Tuned saturation schedule (see repro.egraph.scheduling), usually
    # restored from the artifact; None means the default backoff
    # scheduler everywhere.
    schedule: "ScheduleSpec | None" = None

    @classmethod
    def from_artifact(
        cls,
        artifact,
        spec: IsaSpec,
        options: CompileOptions | None = None,
        check: bool = True,
    ) -> "GeneratedCompiler":
        """Reconstruct a compiler from a saved offline artifact.

        Neither ``synthesize_rules`` nor ``assign_phases`` runs: the
        artifact carries the phased rule set with its phase membership
        already assigned.  With ``check`` (default) the spec's probed
        semantics must match the artifact's ``spec_hash`` — loading a
        stale artifact against a customized ISA raises
        :class:`~repro.core.artifact.ArtifactError`.
        """
        from repro.core.artifact import ArtifactError, spec_semantics_hash

        if check and spec_semantics_hash(spec) != artifact.spec_hash:
            raise ArtifactError(
                f"artifact {artifact.fingerprint} was built for a "
                f"different ISA semantics than {spec.name!r} "
                "(pass check=False to override)"
            )
        return cls(
            spec=spec,
            cost_model=CostModel(spec),
            ruleset=artifact.ruleset,
            options=options or artifact.options,
            synthesis=None,
            schedule=artifact.schedule,
        )

    def to_artifact(self, config: SynthesisConfig | None = None):
        """Capture this compiler as a durable
        :class:`~repro.core.artifact.CompilerArtifact`.

        ``config`` is the synthesis configuration the rules came from
        (it participates in the artifact fingerprint).
        """
        from repro.core.artifact import CompilerArtifact

        return CompilerArtifact.from_compiler(self, config=config)

    def compile_term(
        self, term: Term, options: CompileOptions | None = None
    ) -> tuple[Term, CompileReport]:
        """Vectorize a DSL term (paper Fig. 3)."""
        return compile_term(
            term,
            self.ruleset,
            self.cost_model,
            options or self.options,
            schedule=self.schedule,
        )

    def compile_kernel(
        self,
        kernel: KernelProgram | KernelInstance,
        options: CompileOptions | None = None,
        validate: bool = True,
    ) -> CompiledKernel:
        """Compile a traced kernel down to machine code.

        Runs the full pass pipeline (see
        :mod:`repro.compiler.pipeline`): frontend → saturate →
        optimize → extract → validate → lower.  When tracing is
        enabled (see :mod:`repro.obs`) every pass nests as a
        ``pass.<name>`` span under one ``compile_kernel`` span named
        after the kernel, and the report's ``passes`` list records
        per-pass timings.
        """
        from repro.compiler.pipeline import CompilationContext, kernel_pipeline

        program = (
            kernel.program if isinstance(kernel, KernelInstance) else kernel
        )
        tracer = current_tracer()
        with tracer.span("compile_kernel", kernel=program.name) as span:
            ctx = CompilationContext(
                ruleset=self.ruleset,
                cost_model=self.cost_model,
                options=options or self.options,
                schedule=self.schedule,
                program=program,
                spec=self.spec,
                validator=self.validate_equivalence if validate else None,
            )
            kernel_pipeline().run(ctx)
            report = ctx.report
            span.add(
                initial_cost=report.initial_cost,
                final_cost=report.final_cost,
                elapsed=report.elapsed,
            )
        return CompiledKernel(
            name=program.name,
            scalar_term=program.term,
            compiled_term=ctx.compiled,
            machine_program=ctx.machine,
            report=report,
            arrays=dict(program.arrays),
            output=program.output,
            spec=self.spec,
        )

    def validate_equivalence(
        self, original: Term, compiled: Term, n_samples: int = 8,
        seed: int = 7,
    ) -> None:
        """Translation validation: both terms agree on random inputs.

        A direct consequence of rule soundness, but checked anyway —
        it would catch bugs in the e-graph or extraction, not just in
        the rules.
        """
        from repro.interp.env import term_inputs

        interpreter = self.spec.interpreter()
        rng = random.Random(seed)
        inputs = sorted(
            set(term_inputs(original)) | set(term_inputs(compiled))
        )
        for _ in range(n_samples):
            env = {atom: rng.uniform(-3.0, 3.0) for atom in inputs}
            left = interpreter.evaluate(original, env)
            right = interpreter.evaluate(compiled, env)
            if not values_equal(left, right):
                raise ValidationError(
                    f"compiled program differs from source on {env}: "
                    f"{left!r} != {right!r}"
                )


class IsariaFramework:
    """The offline workflow: ISA spec + cost model in, compiler out."""

    def __init__(
        self,
        spec: IsaSpec,
        synthesis_config: SynthesisConfig | None = None,
        phase_params: PhaseParams | None = None,
        compile_options: CompileOptions | None = None,
    ):
        self.spec = spec
        self.synthesis_config = synthesis_config or SynthesisConfig(
            max_term_size=4
        )
        self.cost_model = CostModel(spec)
        self.phase_params = phase_params or default_params(spec)
        self.compile_options = compile_options or CompileOptions()

    def generate_compiler(self, cache: bool = False) -> GeneratedCompiler:
        """Run rule synthesis + phase discovery (paper Fig. 2, offline).

        With ``cache=True`` the *whole* offline product — synthesized
        rules, their phase assignment, and provenance — is looked up
        in / stored to the on-disk artifact cache (see
        :mod:`repro.core.artifact`), keyed by the ISA's probed
        semantics, the synthesis config, and the phase parameters.  A
        hit skips both ``synthesize_rules`` and ``assign_phases``,
        amortizing the offline stage across processes (§5.3's
        once-per-instruction-set argument made literal); a corrupt
        cache file is treated as a miss and rebuilt.
        """
        from repro.core import artifact as artifact_store

        with current_tracer().span("generate_compiler") as span:
            if cache:
                cached = artifact_store.load_cached_artifact(
                    self.spec, self.synthesis_config, self.phase_params
                )
                if cached is not None:
                    compiler = GeneratedCompiler.from_artifact(
                        cached, self.spec, options=self.compile_options
                    )
                    span.add(
                        n_rules=len(compiler.ruleset), cache_hit=True
                    )
                    return compiler
            synthesis = synthesize_rules(self.spec, self.synthesis_config)
            ruleset = assign_phases(
                self.cost_model, synthesis.rules, self.phase_params
            )
            compiler = GeneratedCompiler(
                spec=self.spec,
                cost_model=self.cost_model,
                ruleset=ruleset,
                options=self.compile_options,
                synthesis=synthesis,
            )
            if cache:
                artifact_store.store_artifact(
                    compiler.to_artifact(config=self.synthesis_config),
                    self.spec,
                    self.synthesis_config,
                )
            span.add(n_rules=len(ruleset), cache_hit=False)
        return compiler
