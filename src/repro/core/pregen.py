"""Pregenerated rule sets shipped with the package.

The offline stage for the base Fusion-G3-like ISA takes a few minutes;
its output is deterministic, so the repository ships it under
``repro/data/`` and the default compiler loads it instantly.  Custom
ISAs (and the rule-budget experiments) still run synthesis live.

Regenerate after changing the ISA spec or the synthesis pipeline with
``python -m repro.tools.regen_rules``.
"""

from __future__ import annotations

from pathlib import Path

from repro.compiler.compile import CompileOptions
from repro.core.artifact import rules_from_text
from repro.core.framework import GeneratedCompiler
from repro.egraph.rewrite import Rewrite
from repro.isa.fusion_g3 import fusion_g3_spec
from repro.isa.spec import IsaSpec
from repro.phases.assign import PhaseParams, assign_phases, default_params
from repro.phases.cost import CostModel

_DATA_DIR = Path(__file__).resolve().parents[1] / "data"
DEFAULT_RULES_FILE = _DATA_DIR / "fusion_g3_rules.txt"


def load_pregenerated_rules(
    path: Path = DEFAULT_RULES_FILE,
) -> list[Rewrite]:
    """The shipped full-width rule set for the base ISA."""
    if not path.exists():
        raise FileNotFoundError(
            f"no pregenerated rules at {path}; run "
            "`python -m repro.tools.regen_rules`"
        )
    return rules_from_text(path.read_text())


def default_compiler(
    spec: IsaSpec | None = None,
    phase_params: PhaseParams | None = None,
    compile_options: CompileOptions | None = None,
) -> GeneratedCompiler:
    """An Isaria compiler for the base ISA from the shipped rules.

    This is the quickstart entry point: identical to running
    ``IsariaFramework(fusion_g3_spec()).generate_compiler()`` but
    skipping the minutes-long offline stage.
    """
    spec = spec or fusion_g3_spec()
    cost_model = CostModel(spec)
    rules = load_pregenerated_rules()
    ruleset = assign_phases(
        cost_model, rules, phase_params or default_params(spec)
    )
    return GeneratedCompiler(
        spec=spec,
        cost_model=cost_model,
        ruleset=ruleset,
        options=compile_options or CompileOptions(),
    )


def single_lane_rules(path: Path = DEFAULT_RULES_FILE) -> list[Rewrite]:
    """The width-independent single-lane algebra of the shipped set.

    The ``scal-*`` rules relate scalar expressions only — no ``Vec``
    terms — so they are valid at every vector width and can be
    re-generalized (paper §3.1) for any ISA family sharing the
    fusion-g3 lane semantics.  The ``lift``/``vect``/``pad`` forms in
    the file are width-4-specific and are excluded here.
    """
    return [
        rule
        for rule in load_pregenerated_rules(path)
        if rule.name.startswith("scal-")
    ]


def family_compiler(
    spec: IsaSpec,
    phase_params: PhaseParams | None = None,
    compile_options: CompileOptions | None = None,
    rules: "list[Rewrite] | None" = None,
) -> GeneratedCompiler:
    """A compiler for any bundled ISA family at any width.

    The width-4 fusion-g3 spec loads the shipped full-width rules
    directly (byte-identical to :func:`default_compiler`); every other
    spec re-generalizes the shipped *single-lane* algebra at its own
    width — the canonical lift rules come from the spec's vector
    instructions, padding identities and vector forms are re-derived
    and re-verified at the target width (mask-aware on masked specs).

    ``rules`` overrides the single-lane seed set (tests pass ``[]``
    for a lean lift-rules-only compiler).
    """
    if spec.name == "fusion-g3" and spec.vector_width == 4:
        return default_compiler(spec, phase_params, compile_options)
    from repro.ruler.lanes import generalize_rules

    seed = single_lane_rules() if rules is None else rules
    generalized, _report = generalize_rules(seed, spec)
    cost_model = CostModel(spec)
    ruleset = assign_phases(
        cost_model, generalized, phase_params or default_params(spec)
    )
    return GeneratedCompiler(
        spec=spec,
        cost_model=cost_model,
        ruleset=ruleset,
        options=compile_options or CompileOptions(),
    )
