"""Pregenerated rule sets shipped with the package.

The offline stage for the base Fusion-G3-like ISA takes a few minutes;
its output is deterministic, so the repository ships it under
``repro/data/`` and the default compiler loads it instantly.  Custom
ISAs (and the rule-budget experiments) still run synthesis live.

Two rule files ship: ``fusion_g3_rules.txt`` (the default — cost-
dominated rules pruned via :mod:`repro.ruler.cost_prune`) and
``fusion_g3_rules_full.txt`` (the historical unpruned set).
``REPRO_LEGACY_COSTPRUNE=1`` switches every loader here to the full
file, which is what the pruning differential tests compare against.

Regenerate after changing the ISA spec or the synthesis pipeline with
``python -m repro.tools.regen_rules``.
"""

from __future__ import annotations

from pathlib import Path

from repro.compiler.compile import CompileOptions
from repro.core.artifact import rules_from_text
from repro.core.framework import GeneratedCompiler
from repro.egraph.rewrite import Rewrite
from repro.isa.fusion_g3 import fusion_g3_spec
from repro.isa.spec import IsaSpec
from repro.phases.assign import PhaseParams, assign_phases, default_params
from repro.phases.cost import CostModel

_DATA_DIR = Path(__file__).resolve().parents[1] / "data"
DEFAULT_RULES_FILE = _DATA_DIR / "fusion_g3_rules.txt"
FULL_RULES_FILE = _DATA_DIR / "fusion_g3_rules_full.txt"


def _default_rules_file() -> Path:
    """The shipped rules file honouring ``REPRO_LEGACY_COSTPRUNE``."""
    from repro.ruler.cost_prune import legacy_costprune_requested

    return (
        FULL_RULES_FILE
        if legacy_costprune_requested()
        else DEFAULT_RULES_FILE
    )


def load_pregenerated_rules(path: Path | None = None) -> list[Rewrite]:
    """The shipped full-width rule set for the base ISA.

    With no explicit ``path`` this loads the cost-pruned default set,
    or the unpruned ``fusion_g3_rules_full.txt`` under
    ``REPRO_LEGACY_COSTPRUNE=1``.
    """
    if path is None:
        path = _default_rules_file()
    if not path.exists():
        raise FileNotFoundError(
            f"no pregenerated rules at {path}; run "
            "`python -m repro.tools.regen_rules`"
        )
    return rules_from_text(path.read_text())


def default_compiler(
    spec: IsaSpec | None = None,
    phase_params: PhaseParams | None = None,
    compile_options: CompileOptions | None = None,
) -> GeneratedCompiler:
    """An Isaria compiler for the base ISA from the shipped rules.

    This is the quickstart entry point: identical to running
    ``IsariaFramework(fusion_g3_spec()).generate_compiler()`` but
    skipping the minutes-long offline stage.
    """
    spec = spec or fusion_g3_spec()
    cost_model = CostModel(spec)
    rules = load_pregenerated_rules()
    ruleset = assign_phases(
        cost_model, rules, phase_params or default_params(spec)
    )
    return GeneratedCompiler(
        spec=spec,
        cost_model=cost_model,
        ruleset=ruleset,
        options=compile_options or CompileOptions(),
    )


def single_lane_rules(path: Path | None = None) -> list[Rewrite]:
    """The width-independent single-lane algebra of the shipped set.

    The ``scal-*`` rules relate scalar expressions only — no ``Vec``
    terms — so they are valid at every vector width and can be
    re-generalized (paper §3.1) for any ISA family sharing the
    fusion-g3 lane semantics.  The ``lift``/``vect``/``pad`` forms in
    the file are width-4-specific and are excluded here.
    """
    return [
        rule
        for rule in load_pregenerated_rules(path)
        if rule.name.startswith("scal-")
    ]


def family_compiler(
    spec: IsaSpec,
    phase_params: PhaseParams | None = None,
    compile_options: CompileOptions | None = None,
    rules: "list[Rewrite] | None" = None,
) -> GeneratedCompiler:
    """A compiler for any bundled ISA family at any width.

    The width-4 fusion-g3 spec loads the shipped full-width rules
    directly (byte-identical to :func:`default_compiler`); every other
    spec re-generalizes the shipped *single-lane* algebra at its own
    width — the canonical lift rules come from the spec's vector
    instructions, padding identities and vector forms are re-derived
    and re-verified at the target width (mask-aware on masked specs).

    ``rules`` overrides the single-lane seed set (tests pass ``[]``
    for a lean lift-rules-only compiler).
    """
    if spec.name == "fusion-g3" and spec.vector_width == 4:
        return default_compiler(spec, phase_params, compile_options)
    from repro.ruler.cost_prune import (
        cost_prune_rules,
        legacy_costprune_requested,
    )
    from repro.ruler.lanes import generalize_rules

    seed = single_lane_rules() if rules is None else rules
    generalized, _report = generalize_rules(seed, spec)
    # Re-generalization re-stamps width variants of every seed rule,
    # recreating dominated patterns at the target width; prune them
    # unless the legacy path was requested.
    if not legacy_costprune_requested():
        generalized, _prune = cost_prune_rules(generalized, spec)
    cost_model = CostModel(spec)
    ruleset = assign_phases(
        cost_model, generalized, phase_params or default_params(spec)
    )
    return GeneratedCompiler(
        spec=spec,
        cost_model=cost_model,
        ruleset=ruleset,
        options=compile_options or CompileOptions(),
    )
