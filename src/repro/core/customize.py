"""Incremental offline synthesis for custom instructions (§5.4).

``synthesize_custom_rules`` runs a focused Ruler pass around a new
instruction's operator neighbourhood and returns only the rules that
mention the new operators, ready to merge with a base rule set.

Two deliberate differences from the main pipeline (see DESIGN.md):

- **size-6 terms, restricted operators**: the interesting bridges
  (e.g. ``(* (sqrt a) (neg (sgn b))) ~> (sqrtsgn a b)``) are 6-node
  terms, intractable to enumerate over the full ISA in Python;
- **no minimization**: derivability is judged by one-pot equality
  saturation, but at compile time rules are phase-separated, so a
  "derivable" bridge may not be derivable *operationally*.  Custom-op
  rules are few after filtering, so keeping them all is cheap.
"""

from __future__ import annotations

from repro.egraph.rewrite import Rewrite
from repro.isa.spec import IsaSpec
from repro.lang.term import subterms, term_size
from repro.ruler.synthesize import SynthesisConfig, synthesize_rules

# Base operators worth exploring around a custom instruction.
DEFAULT_NEIGHBOURHOOD = ("+", "-", "*", "neg", "sqrt", "sgn", "mac")


def _mentions(rule: Rewrite, ops: set[str]) -> bool:
    return any(
        sub.op in ops
        for side in (rule.lhs, rule.rhs)
        for sub in subterms(side)
    )


def synthesize_custom_rules(
    spec: IsaSpec,
    custom_ops: tuple,
    neighbourhood: tuple = DEFAULT_NEIGHBOURHOOD,
    max_term_size: int = 6,
    time_budget: float | None = 240.0,
    max_rules: int = 250,
) -> list[Rewrite]:
    """Focused rules mentioning ``custom_ops``, most general first.

    Ordering prefers rules without constant leaves (the reusable
    bridges like ``(* (sqrt ?a) (sgn ?b)) ~> (sqrtsgn ?a (neg ?b))``)
    over constant-specialized variants, then smaller rules.
    """
    config = SynthesisConfig(
        max_term_size=max_term_size,
        op_allowlist=tuple(neighbourhood) + tuple(custom_ops),
        time_budget=time_budget,
        minimize=False,
    )
    result = synthesize_rules(spec, config)
    wanted = set(custom_ops)
    rules = [r for r in result.rules if _mentions(r, wanted)]

    def order(rule: Rewrite):
        from repro.lang.term import subterms

        n_consts = sum(
            1
            for side in (rule.lhs, rule.rhs)
            for sub in subterms(side)
            if sub.op == "Const"
        )
        return (
            n_consts,
            term_size(rule.lhs) + term_size(rule.rhs),
            str(rule),
        )

    rules.sort(key=order)
    return rules[:max_rules]


def merge_rules(
    base: list[Rewrite], extra: list[Rewrite]
) -> list[Rewrite]:
    """Union of rule lists, deduplicated by pattern text."""
    seen = {str(rule) for rule in base}
    merged = list(base)
    for rule in extra:
        if str(rule) not in seen:
            seen.add(str(rule))
            merged.append(rule)
    return merged
