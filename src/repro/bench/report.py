"""Markdown report generation for measurement sweeps.

Turns :class:`~repro.bench.harness.SuiteRow` results into the tables
EXPERIMENTS.md records, so a fresh machine can regenerate the document
body from its own runs (``python -m repro.tools.report``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.harness import SuiteRow


def write_bench_json(
    path, name: str, payload: dict, floors: dict | None = None
) -> dict:
    """Write a ``BENCH_*.json`` perf artifact and return the document.

    The repo's convention for machine-readable benchmark results:
    future PRs are judged against these files, so the envelope keeps a
    stable shape — ``name``, ``schema_version``, a free-form
    ``results`` body owned by the benchmark that wrote it, and
    ``floors`` recording the speedup floors the benchmark asserted
    (so the JSON documents the bar a regression would have to clear,
    not just the measured numbers).
    """
    document = {
        "name": name,
        "schema_version": 2,
        "results": payload,
        "floors": dict(floors or {}),
    }
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))
    return document


def speedup_table_md(
    rows: list[SuiteRow],
    systems: tuple = ("slp", "nature", "diospyros", "isaria"),
    baseline: str = "scalar",
) -> str:
    """A Markdown table of speedups over ``baseline``."""
    header = (
        "| kernel | "
        + f"{baseline} cycles | "
        + " | ".join(systems)
        + " |"
    )
    rule = "| --- | --- |" + " --- |" * len(systems)
    lines = [header, rule]
    for row in rows:
        cells = [row.key, str(row.cycles(baseline))]
        for system in systems:
            speedup = row.speedup(system, baseline)
            cells.append("-" if speedup is None else f"{speedup:.2f}x")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def compile_time_table_md(
    rows: list[SuiteRow],
    systems: tuple = ("diospyros", "isaria"),
) -> str:
    """A Markdown table of compile times."""
    header = "| kernel | " + " | ".join(systems) + " |"
    rule = "| --- |" + " --- |" * len(systems)
    lines = [header, rule]
    for row in rows:
        cells = [row.key]
        for system in systems:
            m = row.measurements.get(system)
            if m is None or m.error is not None:
                cells.append("-")
            else:
                cells.append(f"{m.compile_time:.1f}s")
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def correctness_summary(rows: list[SuiteRow]) -> tuple[int, int, list]:
    """``(n_checked, n_correct, failures)`` across all measurements."""
    checked = correct = 0
    failures = []
    for row in rows:
        for system, m in row.measurements.items():
            if m.error is not None:
                continue
            checked += 1
            if m.correct:
                correct += 1
            else:
                failures.append((row.key, system))
    return checked, correct, failures


def suite_report_md(rows: list[SuiteRow], title: str) -> str:
    """A complete Markdown section for one sweep."""
    checked, correct, failures = correctness_summary(rows)
    parts = [
        f"## {title}",
        "",
        "### Speedup over the scalar baseline",
        "",
        speedup_table_md(rows),
        "",
        "### Compile times (equality-saturation compilers)",
        "",
        compile_time_table_md(rows),
        "",
        f"Correctness: {correct}/{checked} measurements match the "
        "numpy references.",
    ]
    if failures:
        parts.append(f"Failures: {failures}")
    return "\n".join(parts) + "\n"
