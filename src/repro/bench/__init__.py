"""Experiment harness: run kernels on every system, print paper tables.

- :mod:`repro.bench.harness` — measure one kernel on one or all
  systems (scalar / SLP / Nature / Diospyros / Isaria): cycles from
  the simulator, correctness against the numpy reference, compile
  time;
- :mod:`repro.bench.tables` — fixed-width table and series printers
  matching the rows/series of the paper's figures;
- :mod:`repro.bench.loc` — the Table 1 lines-of-code inventory.
"""

from repro.bench.harness import (
    Measurement,
    SuiteRow,
    measure_baseline,
    measure_compiled,
    run_suite,
)
from repro.bench.tables import format_table, print_table, format_speedup
from repro.bench.loc import component_loc
from repro.bench.report import (
    compile_time_table_md,
    speedup_table_md,
    suite_report_md,
)

__all__ = [
    "Measurement",
    "SuiteRow",
    "measure_baseline",
    "measure_compiled",
    "run_suite",
    "format_table",
    "print_table",
    "format_speedup",
    "component_loc",
    "compile_time_table_md",
    "speedup_table_md",
    "suite_report_md",
]
