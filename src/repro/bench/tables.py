"""Fixed-width table printers for the experiment reports."""

from __future__ import annotations


def format_speedup(value: float | None) -> str:
    """Render a speedup ratio ("2.50x"), with "-" for unmeasured."""
    if value is None:
        return "-"
    return f"{value:.2f}x"


def format_table(
    headers: list[str], rows: list[list], title: str | None = None
) -> str:
    """Render rows as an aligned text table."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(headers)))
        )
    return "\n".join(lines)


def print_table(
    headers: list[str], rows: list[list], title: str | None = None
) -> None:
    """Print an aligned text table preceded by a blank line."""
    print()
    print(format_table(headers, rows, title=title))
