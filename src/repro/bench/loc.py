"""Lines-of-code inventory (paper Table 1).

The paper reports LoC for the Isaria components, separating the inputs
(ISA specification, cost function) from the framework (offline and
compile-time).  This module computes the same breakdown for this
repository by counting non-blank, non-comment lines per component.
"""

from __future__ import annotations

from pathlib import Path

# Component -> package paths relative to src/repro, mirroring Table 1's
# rows: the two inputs, the offline framework, and the compile-time
# implementation.  Substrate packages are listed separately since the
# paper's substrates (egg, Rosette, the Tensilica toolchain) were
# external dependencies it did not count.
TABLE1_COMPONENTS = {
    "ISA specification": ["isa"],
    "Cost function": ["phases/cost.py"],
    "Offline framework": ["ruler", "phases/assign.py", "phases/ruleset.py"],
    "Compile implementation": ["compiler", "core"],
}

SUBSTRATE_COMPONENTS = {
    "E-graph engine (egg substitute)": ["egraph"],
    "DSL + interpreter (Rosette substitute)": ["lang", "interp"],
    "Machine simulator (Tensilica substitute)": ["machine"],
    "Baselines (Nature/Clang/Diospyros substitutes)": ["baselines"],
    "Kernel suite + harness": ["kernels", "bench"],
}


def _count_file(path: Path) -> int:
    count = 0
    in_docstring = False
    delim = None
    for raw in path.read_text().splitlines():
        line = raw.strip()
        if not line:
            continue
        if in_docstring:
            if delim in line:
                in_docstring = False
            continue
        if line.startswith("#"):
            continue
        if line.startswith(('"""', "'''")):
            delim = line[:3]
            # Single-line docstring?
            if line.count(delim) >= 2 and len(line) > 3:
                continue
            in_docstring = True
            continue
        count += 1
    return count


def _count_paths(root: Path, paths: list[str]) -> int:
    total = 0
    for rel in paths:
        target = root / rel
        if target.is_file():
            total += _count_file(target)
        else:
            for file in sorted(target.rglob("*.py")):
                total += _count_file(file)
    return total


def component_loc(src_root: Path | None = None) -> dict:
    """LoC per component: Table 1 rows plus our substrates."""
    if src_root is None:
        src_root = Path(__file__).resolve().parents[1]
    result = {}
    for name, paths in TABLE1_COMPONENTS.items():
        result[name] = _count_paths(src_root, paths)
    result["Total (Table 1 scope)"] = sum(
        result[name] for name in TABLE1_COMPONENTS
    )
    for name, paths in SUBSTRATE_COMPONENTS.items():
        result[name] = _count_paths(src_root, paths)
    return result
