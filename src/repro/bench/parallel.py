"""Process-parallel map with deterministic ordering and serial fallback.

``parallel_map`` is the repo's one fan-out primitive: the bench
harness uses it to compile/measure kernels concurrently and rule
synthesis uses it to verify candidate rules concurrently.  Its
contract is strict so callers never have to reason about parallelism:

- **Deterministic ordering**: results always come back in input order,
  regardless of completion order.
- **Graceful degradation**: if process pools are unavailable (no
  ``fork``/semaphores in a sandbox), a task's payload doesn't pickle,
  or a worker dies, the affected tasks are recomputed serially in this
  process — the answer is identical, only slower.  ``REPRO_PARALLEL=0``
  forces the serial path outright.
- **Per-task timeouts**: a hung worker only costs ``task_timeout``
  seconds; its task is recomputed serially and the pool is abandoned
  without waiting for stragglers.

Workers disable nested parallelism (a fan-out inside a fan-out would
oversubscribe the machine quadratically).
"""

from __future__ import annotations

import concurrent.futures
import os
from typing import Callable, Iterable, Sequence

_FALSY = ("0", "false", "no", "off")
_AUTO = ("", "1", "true", "yes", "on", "auto")


def parallel_workers(limit: int | None = None) -> int:
    """Worker count the environment allows (1 means run serially).

    ``REPRO_PARALLEL`` wins: ``0`` forces serial, an integer sets the
    count, anything truthy/unset means one worker per CPU.  ``limit``
    (e.g. a ``jobs=`` argument) caps the result.
    """
    raw = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if raw in _FALSY:
        return 1
    if raw in _AUTO:
        workers = os.cpu_count() or 1
    else:
        try:
            workers = int(raw)
        except ValueError:
            workers = os.cpu_count() or 1
    if limit is not None:
        workers = min(workers, limit)
    return max(1, workers)


def _disable_nested_parallelism() -> None:  # pragma: no cover - in worker
    os.environ["REPRO_PARALLEL"] = "0"


def parallel_map(
    fn: Callable,
    items: Iterable,
    max_workers: int | None = None,
    task_timeout: float | None = None,
    min_items: int = 2,
) -> list:
    """``[fn(item) for item in items]``, fanned out across processes.

    ``fn`` and every item must be picklable for the parallel path; if
    they are not, or the pool cannot be created at all, the result is
    still produced — serially.  ``max_workers`` caps the pool size
    (``None`` = environment default); with fewer than ``min_items``
    tasks the pool is skipped as pure overhead.
    """
    items = list(items)
    workers = parallel_workers(max_workers)
    if workers <= 1 or len(items) < min_items:
        return [fn(item) for item in items]

    try:
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(items)),
            initializer=_disable_nested_parallelism,
        )
    except Exception:
        return [fn(item) for item in items]

    abandoned = False
    results = []
    try:
        try:
            futures = [executor.submit(fn, item) for item in items]
        except Exception:
            abandoned = True
            return [fn(item) for item in items]
        for item, future in zip(items, futures):
            try:
                results.append(future.result(timeout=task_timeout))
            except concurrent.futures.TimeoutError:
                # Hung worker: recompute here, stop waiting on the pool.
                abandoned = True
                results.append(fn(item))
            except Exception:
                # Worker crash or unpicklable payload: the serial
                # recomputation either produces the value or raises the
                # task's genuine error in the caller's process.
                results.append(fn(item))
        return results
    finally:
        if abandoned:
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            executor.shutdown()


def parallel_starmap(
    fn: Callable,
    argtuples: Iterable[Sequence],
    max_workers: int | None = None,
    task_timeout: float | None = None,
    min_items: int = 2,
) -> list:
    """``parallel_map`` over argument tuples (``fn(*args)`` per task)."""
    return parallel_map(
        _StarCall(fn),
        [tuple(args) for args in argtuples],
        max_workers=max_workers,
        task_timeout=task_timeout,
        min_items=min_items,
    )


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas don't cross processes)."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable):
        self._fn = fn

    def __call__(self, args):
        return self._fn(*args)
