"""Process-parallel map/pipeline with deterministic ordering and serial fallback.

``parallel_map`` is the repo's main fan-out primitive: the bench
harness uses it to compile/measure kernels concurrently and rule
synthesis uses it to verify candidate rules concurrently.
``parallel_pipeline`` generalizes it to *stateful multi-step* tasks —
each item is advanced one step at a time, so steps of different items
overlap in the pool instead of each item monopolizing a worker for
its whole duration (the phase-pipelined ``compile_many``).  Their
shared contract is strict so callers never have to reason about
parallelism:

- **Deterministic ordering**: results always come back in input order,
  regardless of completion order.
- **Graceful degradation**: if process pools are unavailable (no
  ``fork``/semaphores in a sandbox), a task's payload doesn't pickle,
  or a worker dies, the affected tasks are recomputed serially in this
  process — the answer is identical, only slower.  ``REPRO_PARALLEL=0``
  forces the serial path outright.
- **Per-task timeouts**: a hung worker only costs ``task_timeout``
  seconds; its task is recomputed serially and the pool is abandoned
  without waiting for stragglers.

Workers disable nested parallelism (a fan-out inside a fan-out would
oversubscribe the machine quadratically).
"""

from __future__ import annotations

import concurrent.futures
import os
import time
from typing import Callable, Iterable, Sequence

from repro.obs import current_tracer

_FALSY = ("0", "false", "no", "off")
_AUTO = ("", "1", "true", "yes", "on", "auto")


def parallel_workers(limit: int | None = None) -> int:
    """Worker count the environment allows (1 means run serially).

    ``REPRO_PARALLEL`` wins: ``0`` forces serial, an integer sets the
    count, anything truthy/unset means one worker per CPU.  ``limit``
    (e.g. a ``jobs=`` argument) caps the result.
    """
    raw = os.environ.get("REPRO_PARALLEL", "").strip().lower()
    if raw in _FALSY:
        return 1
    if raw in _AUTO:
        workers = os.cpu_count() or 1
    else:
        try:
            workers = int(raw)
        except ValueError:
            workers = os.cpu_count() or 1
    if limit is not None:
        workers = min(workers, limit)
    return max(1, workers)


def _disable_nested_parallelism() -> None:  # pragma: no cover - in worker
    os.environ["REPRO_PARALLEL"] = "0"


def parallel_map(
    fn: Callable,
    items: Iterable,
    max_workers: int | None = None,
    task_timeout: float | None = None,
    min_items: int = 2,
) -> list:
    """``[fn(item) for item in items]``, fanned out across processes.

    ``fn`` and every item must be picklable for the parallel path; if
    they are not, or the pool cannot be created at all, the result is
    still produced — serially.  ``max_workers`` caps the pool size
    (``None`` = environment default); with fewer than ``min_items``
    tasks the pool is skipped as pure overhead.
    """
    items = list(items)
    workers = parallel_workers(max_workers)
    if workers <= 1 or len(items) < min_items:
        return [fn(item) for item in items]

    try:
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(items)),
            initializer=_disable_nested_parallelism,
        )
    except Exception:
        return [fn(item) for item in items]

    abandoned = False
    results = []
    try:
        try:
            futures = [executor.submit(fn, item) for item in items]
        except Exception:
            abandoned = True
            return [fn(item) for item in items]
        for item, future in zip(items, futures):
            try:
                results.append(future.result(timeout=task_timeout))
            except concurrent.futures.TimeoutError:
                # Hung worker: recompute here, stop waiting on the pool.
                abandoned = True
                results.append(fn(item))
            except Exception:
                # Worker crash or unpicklable payload: the serial
                # recomputation either produces the value or raises the
                # task's genuine error in the caller's process.
                results.append(fn(item))
        return results
    finally:
        if abandoned:
            executor.shutdown(wait=False, cancel_futures=True)
        else:
            executor.shutdown()


def parallel_starmap(
    fn: Callable,
    argtuples: Iterable[Sequence],
    max_workers: int | None = None,
    task_timeout: float | None = None,
    min_items: int = 2,
) -> list:
    """``parallel_map`` over argument tuples (``fn(*args)`` per task)."""
    return parallel_map(
        _StarCall(fn),
        [tuple(args) for args in argtuples],
        max_workers=max_workers,
        task_timeout=task_timeout,
        min_items=min_items,
    )


class _StarCall:
    """Picklable ``fn(*args)`` adapter (lambdas don't cross processes)."""

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable):
        self._fn = fn

    def __call__(self, args):
        return self._fn(*args)


# Per-worker pipeline context, installed once by the pool initializer so
# the (potentially large) shared payload — compiler, options — is
# pickled once per worker instead of once per step.
_PIPELINE_CONTEXT = None


def _init_pipeline_worker(context) -> None:  # pragma: no cover - in worker
    _disable_nested_parallelism()
    global _PIPELINE_CONTEXT
    _PIPELINE_CONTEXT = context


class _PipelineCall:
    """Picklable one-step adapter; times the step inside the worker."""

    __slots__ = ("_step",)

    def __init__(self, step: Callable):
        self._step = step

    def __call__(self, state):
        start = time.perf_counter()
        state, done = self._step(_PIPELINE_CONTEXT, state)
        return state, done, time.perf_counter() - start


def parallel_pipeline(
    step: Callable,
    states: Iterable,
    max_workers: int | None = None,
    context=None,
    task_timeout: float | None = None,
    labeler: Callable | None = None,
) -> list:
    """Advance every item through ``step`` until done, steps interleaved.

    ``step(context, state) -> (state', done)`` advances one item by one
    stage; the orchestrator resubmits each item until its ``done`` flag
    comes back true and returns the final states in input order.
    Because items are scheduled one *stage* at a time, a pool of ``W``
    workers overlaps stages of different items — item A's phase 3 runs
    while item B is still in phase 1 — instead of ``parallel_map``'s
    coarse one-worker-per-item occupancy.

    ``context`` is shipped once per worker via the pool initializer;
    ``step`` and every state must be picklable.  Any pool failure
    (creation, pickling, worker crash, ``task_timeout`` expiry)
    abandons the pool and finishes all unfinished items serially in
    this process, so the result is identical — only slower.  Each
    completed stage emits a ``pipeline.stage`` tracer record carrying
    the in-worker execution time and the queue wait (time the item
    spent ready-but-unscheduled), labelled via ``labeler(state)``.
    """
    states = list(states)
    tracer = current_tracer()

    def describe(state) -> str:
        if labeler is None:
            return ""
        try:
            return str(labeler(state))
        except Exception:
            return ""

    def finish_serially(state, index: int):
        done = False
        while not done:
            start = time.perf_counter()
            state, done = step(context, state)
            tracer.record(
                "pipeline.stage",
                time.perf_counter() - start,
                item=index,
                label=describe(state),
                wait_s=0.0,
                mode="serial",
            )
        return state

    workers = parallel_workers(max_workers)
    if workers <= 1 or len(states) < 2:
        return [finish_serially(s, i) for i, s in enumerate(states)]

    try:
        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(states)),
            initializer=_init_pipeline_worker,
            initargs=(context,),
        )
    except Exception:
        return [finish_serially(s, i) for i, s in enumerate(states)]

    call = _PipelineCall(step)
    results: dict[int, object] = {}
    pending: dict[concurrent.futures.Future, tuple[int, float]] = {}
    abandoned = False
    try:
        try:
            for index, state in enumerate(states):
                future = executor.submit(call, state)
                pending[future] = (index, time.perf_counter())
        except Exception:
            abandoned = True
            return [finish_serially(s, i) for i, s in enumerate(states)]

        while pending:
            ready, _ = concurrent.futures.wait(
                pending,
                timeout=task_timeout,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            if not ready:  # task_timeout expired with nothing done
                abandoned = True
                break
            for future in ready:
                index, ready_at = pending.pop(future)
                try:
                    state, done, exec_s = future.result()
                except Exception:
                    abandoned = True
                    results[index] = finish_serially(states[index], index)
                    continue
                turnaround = time.perf_counter() - ready_at
                tracer.record(
                    "pipeline.stage",
                    exec_s,
                    item=index,
                    label=describe(state),
                    wait_s=max(0.0, turnaround - exec_s),
                    mode="pool",
                )
                if done:
                    results[index] = state
                else:
                    states[index] = state
                    if not abandoned:
                        try:
                            nxt = executor.submit(call, state)
                            pending[nxt] = (index, time.perf_counter())
                        except Exception:
                            abandoned = True
                            results[index] = finish_serially(state, index)
            if abandoned:
                break

        if abandoned:
            # Cancel what we can, then drive every unfinished item to
            # completion serially from its latest known state.
            for future, (index, _) in pending.items():
                future.cancel()
            for index in range(len(states)):
                if index not in results:
                    results[index] = finish_serially(states[index], index)
        return [results[i] for i in range(len(states))]
    finally:
        executor.shutdown(wait=not abandoned, cancel_futures=abandoned)
