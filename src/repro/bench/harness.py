"""Measurement harness for the evaluation."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.nature import has_nature_kernel, nature_program
from repro.baselines.scalar import compile_scalar
from repro.baselines.slp import compile_slp
from repro.compiler.diospyros import DiospyrosCompiler
from repro.core.framework import GeneratedCompiler
from repro.isa.spec import IsaSpec
from repro.kernels.specs import (
    KernelInstance,
    padded_memory,
    run_reference,
)
from repro.machine.program import Program
from repro.machine.simulator import Machine

_RTOL = 1e-4
_ATOL = 1e-5


@dataclass
class Measurement:
    """One kernel on one system."""

    system: str
    cycles: int
    correct: bool
    compile_time: float = 0.0
    n_instructions: int = 0
    error: str | None = None


@dataclass
class SuiteRow:
    """One kernel across all measured systems."""

    key: str
    family: str
    measurements: dict = field(default_factory=dict)

    def cycles(self, system: str) -> int | None:
        """Measured cycles for ``system``, or None on error/absence."""
        m = self.measurements.get(system)
        return m.cycles if m and m.error is None else None

    def speedup(self, system: str, baseline: str = "scalar") -> float | None:
        """Speedup of ``system`` over ``baseline`` (paper Fig. 4's y-axis)."""
        top = self.cycles(baseline)
        bottom = self.cycles(system)
        if top is None or bottom is None or bottom == 0:
            return None
        return top / bottom


def _simulate(
    spec: IsaSpec,
    program: Program,
    instance: KernelInstance,
    inputs: dict,
    extra_arrays: dict | None = None,
) -> tuple[int, int, bool]:
    from repro.machine.schedule import schedule_program

    machine = Machine(spec)
    # Every measured system gets the toolchain's instruction scheduler
    # (see repro.machine.schedule) — comparisons stay fair.
    program = schedule_program(program, machine)
    memory = padded_memory(instance, inputs)
    for name, size in (extra_arrays or {}).items():
        memory[name] = [0.0] * size
    result = machine.run(program, memory)
    got = result.array(instance.program.output)[: instance.output_len]
    want = run_reference(instance, inputs)
    correct = bool(np.allclose(got, want, rtol=_RTOL, atol=_ATOL))
    return result.cycles, result.n_instructions, correct


def measure_baseline(
    system: str,
    instance: KernelInstance,
    spec: IsaSpec,
    inputs: dict | None = None,
) -> Measurement:
    """Measure one of the non-eqsat systems: scalar / slp / nature."""
    inputs = inputs or instance.make_inputs()
    extra: dict = {}
    t0 = time.monotonic()
    try:
        if system == "scalar":
            program = compile_scalar(instance.program, spec)
        elif system == "slp":
            program = compile_slp(instance.program, spec)
        elif system == "nature":
            if not has_nature_kernel(instance, spec):
                return Measurement(
                    system, 0, False, error="no library kernel"
                )
            program, extra = nature_program(instance, spec)
        else:
            raise ValueError(f"unknown baseline {system!r}")
    except Exception as exc:  # pragma: no cover - surfaced in tables
        return Measurement(system, 0, False, error=str(exc))
    compile_time = time.monotonic() - t0
    cycles, n_instr, correct = _simulate(
        spec, program, instance, inputs, extra
    )
    return Measurement(
        system,
        cycles,
        correct,
        compile_time=compile_time,
        n_instructions=n_instr,
    )


def measure_compiled(
    system: str,
    compiler: GeneratedCompiler | DiospyrosCompiler,
    instance: KernelInstance,
    inputs: dict | None = None,
) -> Measurement:
    """Measure an equality-saturation compiler (isaria / diospyros)."""
    inputs = inputs or instance.make_inputs()
    t0 = time.monotonic()
    try:
        if isinstance(compiler, DiospyrosCompiler):
            # Same shared pre/post passes as the generated compiler,
            # with the baseline's greedy loop as the middle stage.
            from repro.compiler.pipeline import (
                CompilationContext,
                baseline_kernel_pipeline,
            )

            ctx = CompilationContext(
                cost_model=compiler.cost_model,
                program=instance.program,
                spec=compiler.spec,
            )
            baseline_kernel_pipeline(compiler.compile).run(ctx)
            program = ctx.machine
            spec = compiler.spec
        else:
            kernel = compiler.compile_kernel(instance)
            program = kernel.machine_program
            spec = compiler.spec
    except Exception as exc:  # pragma: no cover - surfaced in tables
        return Measurement(system, 0, False, error=str(exc))
    compile_time = time.monotonic() - t0
    cycles, n_instr, correct = _simulate(spec, program, instance, inputs)
    return Measurement(
        system,
        cycles,
        correct,
        compile_time=compile_time,
        n_instructions=n_instr,
    )


def measure_row(
    instance: KernelInstance,
    spec: IsaSpec,
    isaria: GeneratedCompiler | None = None,
    diospyros: DiospyrosCompiler | None = None,
    systems: tuple = ("scalar", "slp", "nature"),
    seed: int = 0,
) -> SuiteRow:
    """Measure one kernel on every requested system.

    Self-contained (and picklable at the argument level), so suite runs
    can fan rows out across worker processes.
    """
    inputs = instance.make_inputs(seed)
    row = SuiteRow(key=instance.key, family=instance.family)
    for system in systems:
        row.measurements[system] = measure_baseline(
            system, instance, spec, inputs
        )
    if diospyros is not None:
        row.measurements["diospyros"] = measure_compiled(
            "diospyros", diospyros, instance, inputs
        )
    if isaria is not None:
        row.measurements["isaria"] = measure_compiled(
            "isaria", isaria, instance, inputs
        )
    return row


def run_suite(
    instances: list[KernelInstance],
    spec: IsaSpec,
    isaria: GeneratedCompiler | None = None,
    diospyros: DiospyrosCompiler | None = None,
    systems: tuple = ("scalar", "slp", "nature"),
    seed: int = 0,
    jobs: int | None = None,
) -> list[SuiteRow]:
    """Measure every kernel on every requested system.

    ``jobs`` > 1 compiles and measures kernels in parallel worker
    processes (the per-kernel eqsat compiles are embarrassingly
    parallel and dominate suite wall-clock); rows come back in kernel
    order either way, and the fan-out degrades to this exact serial
    loop when pools are unavailable or ``REPRO_PARALLEL=0``.
    """
    if jobs is None or jobs <= 1:
        return [
            measure_row(instance, spec, isaria, diospyros, systems, seed)
            for instance in instances
        ]
    from repro.bench.parallel import parallel_starmap

    return parallel_starmap(
        measure_row,
        [
            (instance, spec, isaria, diospyros, systems, seed)
            for instance in instances
        ],
        max_workers=jobs,
    )
