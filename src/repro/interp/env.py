"""Environments and input generation for term evaluation.

An :class:`Env` binds scalar variable names and ``(array, index)``
pairs to scalar values.  Rule synthesis needs many environments per
term; :func:`sample_envs` mixes structured corner cases (zeros, ones,
negatives — the inputs that expose unsound identities) with seeded
random values, mirroring Ruler's characteristic-vector inputs.
"""

from __future__ import annotations

import itertools
import random
from fractions import Fraction
from typing import Iterable, Sequence

from repro.lang import term as T
from repro.lang.term import Term

Env = dict


def env_variables(term: Term) -> tuple[tuple[str, ...], tuple[tuple, ...]]:
    """The scalar symbols and Get atoms that ``term`` reads.

    Returns ``(symbols, gets)`` in first-occurrence order.
    """
    symbols: dict[str, None] = {}
    gets: dict[tuple, None] = {}
    for sub in T.subterms(term):
        if T.is_symbol(sub):
            symbols.setdefault(sub.payload, None)
        elif T.is_get(sub):
            gets.setdefault(sub.payload, None)
    return tuple(symbols), tuple(gets)


def term_inputs(term: Term) -> tuple:
    """All input atoms of ``term``: symbol names then Get payloads."""
    symbols, gets = env_variables(term)
    return symbols + gets


# Corner values that expose the classic unsound candidates: absorbing
# zeros, identity ones, sign flips, and a non-unit magnitude.
CORNER_VALUES: tuple[Fraction, ...] = (
    Fraction(0),
    Fraction(1),
    Fraction(-1),
    Fraction(2),
    Fraction(-3),
    Fraction(1, 2),
)


def random_env(
    inputs: Sequence, rng: random.Random, exact: bool = True
) -> Env:
    """One random environment for the given input atoms.

    With ``exact`` (the default) values are small random Fractions so
    arithmetic identities can be checked without float noise.
    """
    env: Env = {}
    for atom in inputs:
        if exact:
            num = rng.randint(-8, 8)
            den = rng.choice((1, 1, 1, 2, 3, 4))
            env[atom] = Fraction(num, den)
        else:
            env[atom] = rng.uniform(-10.0, 10.0)
    return env


def corner_envs(inputs: Sequence, limit: int = 64) -> list[Env]:
    """Environments drawn from the cartesian product of corner values.

    For few inputs this is exhaustive over the corner set; for many it
    is truncated to ``limit`` deterministic combinations.
    """
    envs: list[Env] = []
    for combo in itertools.islice(
        itertools.product(CORNER_VALUES, repeat=len(inputs)), limit
    ):
        envs.append(dict(zip(inputs, combo)))
    return envs


def sample_envs(
    inputs: Sequence,
    n_random: int = 24,
    seed: int = 0,
    corner_limit: int = 64,
) -> list[Env]:
    """Corner-case environments followed by seeded random ones."""
    rng = random.Random(seed)
    envs = corner_envs(inputs, limit=corner_limit)
    envs.extend(random_env(inputs, rng) for _ in range(n_random))
    return envs


def merge_envs(envs: Iterable[Env]) -> Env:
    """Union of several environments (later bindings win)."""
    merged: Env = {}
    for env in envs:
        merged.update(env)
    return merged
