"""Executable semantics for the Isaria DSL.

The interpreter evaluates terms against an environment that binds
scalar variables and arrays to numbers.  Operator semantics come from an
ISA specification (:mod:`repro.isa`); this package supplies evaluation
of the structural forms (``Vec``, ``Concat``, ``List``, leaves),
undefinedness propagation, and input generation for rule synthesis.
"""

from repro.interp.value import (
    Value,
    UNDEFINED,
    is_scalar,
    is_vector,
    values_equal,
)
from repro.interp.env import (
    Env,
    env_variables,
    term_inputs,
    random_env,
    corner_envs,
    sample_envs,
)
from repro.interp.interpreter import Interpreter, EvalError

__all__ = [
    "Value",
    "UNDEFINED",
    "is_scalar",
    "is_vector",
    "values_equal",
    "Env",
    "env_variables",
    "term_inputs",
    "random_env",
    "corner_envs",
    "sample_envs",
    "Interpreter",
    "EvalError",
]
