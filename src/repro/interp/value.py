"""Runtime values for the DSL interpreter.

A value is one of:

- a *scalar*: an ``int``, ``float``, or ``fractions.Fraction``;
- a *vector*: a tuple of scalars (one per lane);
- :data:`UNDEFINED`: the result of an undefined operation (division by
  zero, square root of a negative).

Undefinedness propagates: any operation with an undefined input is
undefined, and a vector with an undefined lane is collapsed to
:data:`UNDEFINED`.  Rule synthesis compares values *including*
undefinedness, which is what keeps candidate rules like
``(/ (* a b) b) => a`` from being accepted (the sides disagree at
``b = 0``).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Union


class _Undefined:
    """Singleton marker for undefined results."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"

    def __bool__(self) -> bool:
        return False


UNDEFINED = _Undefined()

Scalar = Union[int, float, Fraction]
Value = Union[Scalar, tuple, _Undefined]

# Tolerance for float comparison.  Exact (Fraction/int) values compare
# exactly; floats compare with a relative tolerance because rewriting
# may legitimately reassociate float arithmetic.
_REL_TOL = 1e-9
_ABS_TOL = 1e-9


def is_scalar(value: Value) -> bool:
    """True for numeric scalars (bool excluded)."""
    return isinstance(value, (int, float, Fraction)) and not isinstance(
        value, bool
    )


def is_vector(value: Value) -> bool:
    """True for vector values (tuples of lanes)."""
    return isinstance(value, tuple)


def _scalars_equal(a: Scalar, b: Scalar) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        fa, fb = float(a), float(b)
        if math.isnan(fa) or math.isnan(fb):
            return math.isnan(fa) and math.isnan(fb)
        return math.isclose(fa, fb, rel_tol=_REL_TOL, abs_tol=_ABS_TOL)
    return a == b


def values_equal(a: Value, b: Value) -> bool:
    """Semantic equality of two values, undefinedness included.

    Recurses through tuples so it also compares ``List`` results
    (tuples of vectors), not just flat vectors.
    """
    a_undef = a is UNDEFINED
    b_undef = b is UNDEFINED
    if a_undef or b_undef:
        return a_undef and b_undef
    if is_vector(a) != is_vector(b):
        return False
    if is_vector(a):
        if len(a) != len(b):
            return False
        return all(values_equal(x, y) for x, y in zip(a, b))
    return _scalars_equal(a, b)


def make_vector(lanes) -> Value:
    """Build a vector value, collapsing undefined lanes."""
    lanes = tuple(lanes)
    if any(lane is UNDEFINED for lane in lanes):
        return UNDEFINED
    return lanes
