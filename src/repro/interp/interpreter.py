"""Term evaluation against an ISA's executable semantics.

The :class:`Interpreter` owns a mapping from operator name to a *lane
function* — a Python callable over scalars, supplied by an ISA
specification (:mod:`repro.isa`).  Structural forms are evaluated here:

- leaves read the environment;
- ``Vec`` builds a vector from scalar lanes;
- ``Concat`` joins two vectors;
- ``List`` evaluates to a tuple of its outputs;
- scalar ops apply their lane function directly;
- vector ops apply their lane function lane-wise — or directly to
  scalars, which is exactly the "reduce vector instructions to a single
  lane" trick Isaria uses for rule synthesis (paper §3.1).

Undefined operations return :data:`~repro.interp.value.UNDEFINED`,
which propagates.
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.interp.value import UNDEFINED, Value, is_vector, make_vector
from repro.interp.env import Env
from repro.lang import term as T
from repro.lang.ops import OpKind
from repro.lang.term import Term


class EvalError(ValueError):
    """Raised for structurally invalid programs (not for undefined
    arithmetic, which yields UNDEFINED)."""


LaneFn = Callable[..., object]


class Interpreter:
    """Evaluates DSL terms given per-operator lane semantics."""

    def __init__(
        self,
        lane_semantics: Mapping[str, LaneFn],
        op_kinds: Mapping[str, OpKind],
    ):
        self._sem = dict(lane_semantics)
        self._kinds = dict(op_kinds)

    def evaluate(self, term: Term, env: Env) -> Value:
        """Evaluate ``term`` in ``env``.

        Iterative and memoized over the term DAG (shared subterms are
        evaluated once; deep kernels do not hit the recursion limit).
        """
        from repro.lang.term import fold_term

        return fold_term(
            term, lambda t, child_values: self.evaluate_node(t, child_values, env)
        )

    def lane_fn(self, op: str) -> LaneFn | None:
        """The lane function of ``op``, or None for structural ops.

        Exposed for the batched cvec evaluator
        (:class:`repro.ruler.cvec.CvecEvaluator`), which applies lane
        functions across whole environment grids at once.
        """
        return self._sem.get(op)

    def op_kind(self, op: str) -> OpKind | None:
        """The :class:`~repro.lang.ops.OpKind` of ``op``, if known."""
        return self._kinds.get(op)

    def evaluate_node(self, term: Term, args: tuple, env: Env) -> Value:
        """Evaluate a single node given its children's values.

        ``env`` is consulted only for leaves.  This is the one place
        node semantics live: :meth:`evaluate` folds it over the term
        DAG per environment, and the batched cvec evaluator calls it
        per environment for the ops its fast path cannot handle
        (structural forms, vector-valued arguments).
        """
        op = term.op
        if T.is_const(term):
            return term.payload
        if T.is_symbol(term):
            return self._lookup(env, term.payload)
        if T.is_get(term):
            return self._lookup_get(env, term.payload)
        if T.is_wildcard(term):
            raise EvalError(f"cannot evaluate wildcard ?{term.payload}")

        if any(arg is UNDEFINED for arg in args):
            return UNDEFINED

        if op == "Vec":
            for arg in args:
                if is_vector(arg):
                    raise EvalError("Vec lanes must be scalars")
            return make_vector(args)
        if op == "Concat":
            left, right = args
            if not (is_vector(left) and is_vector(right)):
                raise EvalError("Concat expects two vectors")
            return left + right
        if op == "List":
            return tuple(args)

        fn = self._sem.get(op)
        if fn is None:
            raise EvalError(f"no semantics for operator {op!r}")

        kind = self._kinds.get(op)
        if kind is OpKind.VECTOR and any(is_vector(a) for a in args):
            return self._apply_lanewise(op, fn, args)
        if any(is_vector(a) for a in args):
            raise EvalError(f"scalar operator {op!r} got a vector argument")
        result = fn(*args)
        return UNDEFINED if result is None else result

    @staticmethod
    def _apply_lanewise(op: str, fn: LaneFn, args: list) -> Value:
        widths = {len(a) for a in args if is_vector(a)}
        if len(widths) != 1:
            raise EvalError(f"{op}: mismatched vector widths {widths}")
        (width,) = widths
        if not all(is_vector(a) for a in args):
            raise EvalError(f"{op}: mixed scalar/vector arguments")
        lanes = []
        for i in range(width):
            result = fn(*(a[i] for a in args))
            lanes.append(UNDEFINED if result is None else result)
        return make_vector(lanes)

    @staticmethod
    def _lookup(env: Env, name: str) -> Value:
        if name in env:
            return env[name]
        raise EvalError(f"unbound variable {name!r}")

    @staticmethod
    def _lookup_get(env: Env, payload: tuple) -> Value:
        if payload in env:
            return env[payload]
        array, index = payload
        data = env.get(array)
        if data is None:
            raise EvalError(f"unbound array {array!r}")
        try:
            return data[index]
        except (IndexError, TypeError) as exc:
            raise EvalError(
                f"bad array access ({array!r}, {index})"
            ) from exc
