"""An egg-style e-graph engine (Willsey et al., POPL 2021), in Python.

This is the substrate both Diospyros and Isaria build on: a congruence-
closed union-find of *e-classes*, each holding a set of *e-nodes* whose
children are e-class ids.  Equality saturation repeatedly matches
rewrite-rule left-hand sides against the graph and unions them with
instantiated right-hand sides, deferring congruence repair to an
explicit ``rebuild`` (egg's key performance idea).

Modules:

- :mod:`repro.egraph.unionfind` — union-find with path compression;
- :mod:`repro.egraph.egraph` — e-classes, hashcons, rebuild, and the
  incrementally maintained per-op candidate index;
- :mod:`repro.egraph.compile_pattern` — patterns compiled to flat
  instruction programs (egg-style e-matching VM);
- :mod:`repro.egraph.ematch` — pattern matching over e-classes
  (compiled by default, legacy walk behind ``REPRO_LEGACY_EMATCH``);
- :mod:`repro.egraph.rewrite` — rewrite rules and application;
- :mod:`repro.egraph.runner` — the saturation loop with node/iteration/
  time limits, pluggable rule schedulers (egg-style backoff by
  default), and hot-path perf counters;
- :mod:`repro.egraph.scheduling` — declarative ``ScheduleSpec``
  schedules (per-rule budgets/bans/disables, per-phase limits) and the
  ``TunedScheduler`` that enforces them;
- :mod:`repro.egraph.snapshot` — versioned byte serialization of
  e-graphs, scheduler state, and paused saturations (``Runner``
  checkpoint/resume, the expansion cache, phase-pipelined
  ``compile_many``);
- :mod:`repro.egraph.extract` — bottom-up minimum-cost extraction.
"""

from repro.egraph.unionfind import UnionFind
from repro.egraph.egraph import EGraph, EClass, ENode
from repro.egraph.compile_pattern import (
    CompiledMatcher,
    CompiledPattern,
    compile_pattern,
)
from repro.egraph.ematch import ematch, match_in_class
from repro.egraph.rewrite import Rewrite, parse_rewrite
from repro.egraph.runner import (
    Runner,
    RunnerLimits,
    RunnerReport,
    RuleScheduler,
    SaturationPerf,
    StopReason,
    BackoffScheduler,
    run_saturation,
)
from repro.egraph.snapshot import (
    SNAPSHOT_VERSION,
    SaturationCheckpoint,
    SnapshotError,
    load_egraph,
    save_egraph,
)
from repro.egraph.scheduling import (
    PhasePolicy,
    RulePolicy,
    ScheduleError,
    ScheduleSpec,
    TunedScheduler,
    schedule_from_env,
)
from repro.egraph.extract import Extractor, extract_best
from repro.egraph.dot import to_dot

__all__ = [
    "UnionFind",
    "EGraph",
    "EClass",
    "ENode",
    "CompiledMatcher",
    "CompiledPattern",
    "compile_pattern",
    "ematch",
    "match_in_class",
    "Rewrite",
    "parse_rewrite",
    "Runner",
    "RunnerLimits",
    "RunnerReport",
    "RuleScheduler",
    "SaturationPerf",
    "StopReason",
    "BackoffScheduler",
    "run_saturation",
    "SNAPSHOT_VERSION",
    "SaturationCheckpoint",
    "SnapshotError",
    "load_egraph",
    "save_egraph",
    "PhasePolicy",
    "RulePolicy",
    "ScheduleError",
    "ScheduleSpec",
    "TunedScheduler",
    "schedule_from_env",
    "Extractor",
    "extract_best",
    "to_dot",
]
