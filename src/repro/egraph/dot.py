"""Graphviz export for e-graphs.

Debugging equality saturation means looking at e-graphs; the paper's
§1 even describes "manually examining E-graphs with millions of nodes"
as part of the rule-writing workflow Isaria replaces.  This exporter
renders each e-class as a cluster of its e-nodes, with edges from
e-node argument ports to child classes — the layout egg's own dot
output uses.
"""

from __future__ import annotations

from repro.egraph.egraph import EGraph


def _node_label(op: str, payload) -> str:
    if op == "Const":
        return str(payload)
    if op == "Symbol":
        return str(payload)
    if op == "Wild":
        return f"?{payload}"
    if op == "Get":
        array, index = payload
        return f"{array}[{index}]"
    return op


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(egraph: EGraph, max_classes: int | None = None) -> str:
    """Render the e-graph as Graphviz DOT text.

    ``max_classes`` truncates large graphs (a comment notes the cut);
    rendering a million-node e-graph defeats the purpose.
    """
    lines = [
        "digraph egraph {",
        "  compound=true;",
        "  node [shape=box, fontsize=10];",
    ]
    classes = sorted(egraph.classes(), key=lambda c: c.id)
    truncated = False
    if max_classes is not None and len(classes) > max_classes:
        classes = classes[:max_classes]
        truncated = True
    shown = {eclass.id for eclass in classes}

    anchors: dict[int, str] = {}
    edges: list[str] = []
    for eclass in classes:
        lines.append(f"  subgraph cluster_{eclass.id} {{")
        lines.append(f'    label="e{eclass.id}"; style=dotted;')
        for j, (op, payload, children) in enumerate(eclass.nodes):
            name = f"n{eclass.id}_{j}"
            if j == 0:
                anchors[eclass.id] = name
            label = _escape(_node_label(op, payload))
            lines.append(f'    {name} [label="{label}"];')
            for child in children:
                child_id = egraph.find(child)
                if child_id in shown:
                    edges.append(
                        f"  n{eclass.id}_{j} -> n{child_id}_0 "
                        f"[lhead=cluster_{child_id}];"
                    )
        lines.append("  }")
    lines.extend(edges)
    if truncated:
        lines.append(
            f"  // truncated to {len(classes)} of "
            f"{egraph.n_classes} classes"
        )
    lines.append("}")
    return "\n".join(lines)
