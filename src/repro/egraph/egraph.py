"""The e-graph: e-classes of e-nodes with deferred congruence repair.

An e-node is a plain tuple ``(op, payload, children)`` where children
are e-class ids; plain tuples keep hashing fast, which dominates
e-graph performance in Python.  The implementation follows the egg
paper's rebuilding algorithm: ``union`` only merges classes and enqueues
them, and ``rebuild`` restores the hashcons and congruence invariants.
"""

from __future__ import annotations

from typing import Iterator

from repro.egraph.unionfind import UnionFind
from repro.lang.term import Term

# (op, payload, child class ids)
ENode = tuple


def make_enode(op: str, payload, children: tuple[int, ...]) -> ENode:
    return (op, payload, children)


class EClass:
    """One equivalence class of e-nodes."""

    __slots__ = ("id", "nodes", "parents")

    def __init__(self, class_id: int):
        self.id = class_id
        # Canonical e-nodes in this class.
        self.nodes: list[ENode] = []
        # (parent enode as constructed, parent class id) pairs; repaired
        # lazily during rebuild.
        self.parents: list[tuple[ENode, int]] = []


class EGraph:
    """A congruence-closed term graph supporting equality saturation.

    The full internal state — union-find, class and hashcons tables,
    worklist, touched set, op-index, and counters — serializes to a
    compact versioned byte form via :mod:`repro.egraph.snapshot`;
    adding a stateful field here means extending ``egraph_to_doc`` /
    ``egraph_from_doc`` (and bumping the snapshot schema version) or
    restored graphs will silently diverge from live ones.
    """

    def __init__(self):
        self._uf = UnionFind()
        self._classes: dict[int, EClass] = {}
        self._hashcons: dict[ENode, int] = {}
        self._worklist: list[int] = []
        self._n_unions = 0
        self._n_adds = 0
        self._n_live_nodes = 0
        self._touched: set[int] = set()
        # Incremental per-op root-candidate index: op -> class ids that
        # (transitively, through the union-find) hold a node with that
        # op.  Appended to on every add; unions leave stale ids behind
        # that readers resolve with ``find`` and that ``op_index``
        # compacts away once enough staleness accumulates.
        self._op_index: dict[str, list[int]] = {}
        self._index_stale = 0

    # -- basic queries -----------------------------------------------------

    def find(self, class_id: int) -> int:
        """The canonical representative of ``class_id``."""
        return self._uf.find(class_id)

    @property
    def n_classes(self) -> int:
        """Number of live (canonical) e-classes."""
        return len(self._classes)

    @property
    def n_nodes(self) -> int:
        """Live e-node count, O(1).

        Tracked incrementally (+1 per add, -k per rebuild dedup); the
        nodes of classes merged by ``union`` move but are not
        destroyed, so only those two operations touch the counter.
        """
        return self._n_live_nodes

    @property
    def n_nodes_live(self) -> int:
        """Alias of :attr:`n_nodes` — the exact live count, O(1).

        Unlike the historical ``n_nodes_fast`` upper bound (which only
        ever grows), this shrinks when rebuilds dedup nodes, so
        mid-iteration limit guards don't kill long runs spuriously.
        """
        return self._n_live_nodes

    @property
    def n_nodes_fast(self) -> int:
        """Upper bound on node count, O(1).

        Counts every e-node ever created (dedup during rebuild can
        shrink the true count).  Kept for diagnostics; limit guards use
        :attr:`n_nodes_live` instead.
        """
        return self._n_adds

    @property
    def n_unions(self) -> int:
        """Total successful unions ever performed (progress metric)."""
        return self._n_unions

    @property
    def is_clean(self) -> bool:
        """True when no rebuild work is pending."""
        return not self._worklist

    def classes(self) -> Iterator[EClass]:
        """All canonical e-classes."""
        return iter(self._classes.values())

    def eclass(self, class_id: int) -> EClass:
        """The canonical :class:`EClass` containing ``class_id``."""
        return self._classes[self.find(class_id)]

    def canonicalize(self, node: ENode) -> ENode:
        """``node`` with every child id replaced by its representative."""
        op, payload, children = node
        find = self._uf.find
        new_children = tuple(find(c) for c in children)
        if new_children == children:
            return node
        return (op, payload, new_children)

    # -- construction --------------------------------------------------------

    def add_enode(self, op: str, payload, children: tuple[int, ...]) -> int:
        """Add an e-node (children are e-class ids); returns its class."""
        find = self._uf.find
        node = (op, payload, tuple(find(c) for c in children))
        existing = self._hashcons.get(node)
        if existing is not None:
            return find(existing)
        class_id = self._uf.make_set()
        self._n_adds += 1
        self._n_live_nodes += 1
        eclass = EClass(class_id)
        eclass.nodes.append(node)
        self._classes[class_id] = eclass
        self._hashcons[node] = class_id
        self._touched.add(class_id)
        index = self._op_index.get(op)
        if index is None:
            self._op_index[op] = [class_id]
        else:
            index.append(class_id)
        for child in node[2]:
            self._classes[find(child)].parents.append((node, class_id))
        return class_id

    def add_term(self, term: Term) -> int:
        """Add a ground term bottom-up; returns the root's class id.

        Iterative and memoized over the term DAG, so heavily shared
        kernels (QR) insert in time proportional to their DAG size.
        """
        from repro.lang.term import fold_term

        return fold_term(
            term,
            lambda t, child_ids: self.add_enode(t.op, t.payload, child_ids),
        )

    def union(self, a: int, b: int) -> bool:
        """Assert a = b.  Returns True if the graph changed.

        Congruence is restored by the next :meth:`rebuild`.
        """
        a, b = self._uf.find(a), self._uf.find(b)
        if a == b:
            return False
        # Keep the class with more parents as the survivor: less parent
        # list copying over the life of the graph.
        ca, cb = self._classes[a], self._classes[b]
        if len(ca.parents) < len(cb.parents):
            a, b = b, a
            ca, cb = cb, ca
        self._uf.union(a, b)
        ca.nodes.extend(cb.nodes)
        ca.parents.extend(cb.parents)
        del self._classes[b]
        self._worklist.append(a)
        self._n_unions += 1
        self._index_stale += 1
        self._touched.add(a)
        return True

    # -- rebuilding (deferred congruence closure) ---------------------------

    def rebuild(self) -> int:
        """Restore hashcons/congruence invariants; returns repair count."""
        n_repairs = 0
        while self._worklist:
            todo = {self._uf.find(c) for c in self._worklist}
            self._worklist.clear()
            for class_id in todo:
                if class_id in self._classes:
                    self._repair(class_id)
                    n_repairs += 1
        return n_repairs

    def _repair(self, class_id: int) -> None:
        find = self._uf.find
        eclass = self._classes.get(find(class_id))
        if eclass is None:  # merged away by a congruence union
            return

        # Re-canonicalize parent e-nodes; equal canonical parents in
        # different classes witness a congruence and get unioned.
        new_parents: dict[ENode, int] = {}
        for pnode, pclass in eclass.parents:
            self._hashcons.pop(pnode, None)
            canon = self.canonicalize(pnode)
            pclass = find(pclass)
            previous = new_parents.get(canon)
            if previous is not None and previous != pclass:
                self.union(previous, pclass)
                pclass = find(pclass)
            new_parents[canon] = pclass
        for canon, pclass in new_parents.items():
            self._hashcons[canon] = pclass
        eclass.parents = list(new_parents.items())

        # Dedupe this class's own nodes under canonicalization.
        seen: dict[ENode, None] = {}
        for node in eclass.nodes:
            seen.setdefault(self.canonicalize(node), None)
        self._n_live_nodes -= len(eclass.nodes) - len(seen)
        eclass.nodes = list(seen)

    # -- pattern instantiation ----------------------------------------------

    def add_instantiation(self, pattern: Term, binding: dict[str, int]) -> int:
        """Add ``pattern`` with wildcards bound to e-class ids."""
        if pattern.op == "Wild":
            return self._uf.find(binding[pattern.payload])
        children = tuple(
            self.add_instantiation(arg, binding) for arg in pattern.args
        )
        return self.add_enode(pattern.op, pattern.payload, children)

    def take_touched(self) -> set[int]:
        """Canonical ids of classes changed since the last call.

        Supports frontier (incremental) matching: a saturation
        iteration can restrict pattern roots to recently changed
        classes, focusing match budgets on new structure.
        """
        find = self._uf.find
        touched = {
            find(c) for c in self._touched if find(c) in self._classes
        }
        self._touched.clear()
        return touched

    # -- indexes --------------------------------------------------------------

    def op_index(self, rescan: bool = False) -> dict[str, list[int]]:
        """Map op -> candidate class ids holding a node with that op.

        Maintained *incrementally*: ``add_enode`` appends, unions only
        bump a staleness counter, and readers canonicalize candidate
        ids through ``find``.  The ids may therefore be stale (merged
        away) or duplicated — consumers (``ematch``) dedup by canonical
        root, which they must do anyway.  Once enough unions accumulate
        the lists are compacted in place, bounding the wasted scans.

        Returns a snapshot (fresh list objects), so nodes added while a
        saturation iteration consumes the index do not grow the
        candidate sets mid-iteration — same semantics as the historical
        full rescan, at a fraction of the per-iteration cost.

        ``rescan=True`` forces the historical O(total-nodes) rebuild
        from the class table (kept for benchmarks and cross-checks).
        """
        if rescan:
            return self.op_index_rescan()
        if self._index_stale > 64 + (len(self._classes) >> 2):
            self._compact_op_index()
        return {op: lst.copy() for op, lst in self._op_index.items() if lst}

    def op_index_rescan(self) -> dict[str, list[int]]:
        """The pre-incremental index build: rescan every e-node."""
        index: dict[str, list[int]] = {}
        for eclass in self._classes.values():
            for node in eclass.nodes:
                index.setdefault(node[0], []).append(eclass.id)
        return index

    def _compact_op_index(self) -> None:
        """Drop merged-away and duplicate candidate ids, in place."""
        find = self._uf.find
        for lst in self._op_index.values():
            seen: set[int] = set()
            compacted: list[int] = []
            for class_id in lst:
                root = find(class_id)
                if root not in seen:
                    seen.add(root)
                    compacted.append(root)
            lst[:] = compacted
        self._index_stale = 0

    # -- equality queries -----------------------------------------------------

    def equivalent(self, a: int, b: int) -> bool:
        """True when classes ``a`` and ``b`` have been unioned."""
        return self._uf.find(a) == self._uf.find(b)

    def lookup_term(self, term: Term) -> int | None:
        """Class id of ``term`` if it is represented, else None."""
        children = []
        for arg in term.args:
            child = self.lookup_term(arg)
            if child is None:
                return None
            children.append(child)
        node = (term.op, term.payload, tuple(children))
        found = self._hashcons.get(self.canonicalize(node))
        return self._uf.find(found) if found is not None else None
