"""Rewrite rules over the e-graph.

A :class:`Rewrite` is a directed rule ``lhs ~> rhs`` between patterns.
Applying it unions every match of ``lhs`` with the instantiated ``rhs``
— nothing is destroyed, which is what lets equality saturation explore
all orderings at once (paper §2.1).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.egraph.egraph import EGraph
from repro.egraph.ematch import ematch
from repro.lang.parser import parse, to_sexpr
from repro.lang.pattern import wildcards_of
from repro.lang.term import Term


@dataclass(frozen=True)
class Rewrite:
    """A directed rewrite rule between wildcard patterns."""

    name: str
    lhs: Term
    rhs: Term

    def __post_init__(self):
        missing = set(wildcards_of(self.rhs)) - set(wildcards_of(self.lhs))
        if missing:
            raise ValueError(
                f"rule {self.name!r}: rhs wildcards {sorted(missing)} "
                "not bound by lhs"
            )

    def __str__(self) -> str:
        return f"{to_sexpr(self.lhs)} => {to_sexpr(self.rhs)}"

    def reversed(self, name: str | None = None) -> "Rewrite":
        """The rule applied right-to-left.

        Only valid when the lhs does not introduce wildcards absent
        from the rhs; callers check with :meth:`is_reversible`.
        """
        return Rewrite(name or f"{self.name}-rev", self.rhs, self.lhs)

    @property
    def is_reversible(self) -> bool:
        """True when both sides bind exactly the same wildcards."""
        return set(wildcards_of(self.lhs)) == set(wildcards_of(self.rhs))


def parse_rewrite(name: str, text: str) -> Rewrite:
    """Parse ``"lhs => rhs"`` concrete syntax into a rule."""
    if "=>" not in text:
        raise ValueError(f"rule text needs '=>': {text!r}")
    lhs_text, rhs_text = text.split("=>", 1)
    return Rewrite(name, parse(lhs_text.strip()), parse(rhs_text.strip()))


@dataclass
class ApplyStats:
    """Outcome of applying one rule for one iteration.

    ``n_visits`` (e-nodes scanned while matching) and ``match_time``
    feed the runner's :class:`~repro.egraph.runner.SaturationPerf`
    counters.
    """

    n_matches: int = 0
    n_unions: int = 0
    n_visits: int = 0
    match_time: float = 0.0


def apply_rewrite(
    egraph: EGraph,
    rule: Rewrite,
    op_index: dict[str, list[int]] | None = None,
    match_limit: int | None = None,
    match_work: int | None = None,
    roots: set[int] | None = None,
) -> ApplyStats:
    """Match ``rule.lhs`` everywhere and union with ``rule.rhs``.

    The e-graph is left dirty; callers batch a ``rebuild`` per
    iteration, as egg does.  ``roots`` restricts match roots
    (frontier matching).
    """
    from repro.egraph.ematch import DEFAULT_MATCH_WORK

    stats = ApplyStats()
    counters: dict = {}
    t0 = time.perf_counter()
    matches = ematch(
        egraph,
        rule.lhs,
        op_index=op_index,
        limit=match_limit,
        work_budget=match_work or DEFAULT_MATCH_WORK,
        roots=roots,
        counters=counters,
    )
    stats.match_time = time.perf_counter() - t0
    stats.n_visits = counters.get("node_visits", 0)
    stats.n_matches = len(matches)
    for class_id, binding in matches:
        rhs_id = egraph.add_instantiation(rule.rhs, binding)
        if egraph.union(class_id, rhs_id):
            stats.n_unions += 1
    return stats
