"""Declarative saturation schedules and the tuned rule scheduler.

The runner's default :class:`~repro.egraph.runner.BackoffScheduler`
treats every rule identically, but trace data shows rule costs are
wildly skewed: on the quaternion-style workload two of five rules eat
~60% of match time while merging nothing (``BENCH_saturation.json``).
This module makes the schedule a *value*:

- :class:`RulePolicy` / :class:`PhasePolicy` — per-rule match budgets,
  ban lengths, and disabling; per-phase iteration/node/time caps;
- :class:`ScheduleSpec` — a versioned, JSON-serializable bundle of
  both, persisted as a first-class field of
  :class:`~repro.core.artifact.CompilerArtifact`;
- :class:`TunedScheduler` — the runner policy that enforces a spec,
  reusing the backoff ban machinery with per-rule parameters;
- :func:`schedule_from_env` — the ``REPRO_SCHEDULE`` override, letting
  a spec file apply to any compilation without touching the artifact.

Specs are written by hand or — the intended path — emitted by the
offline autotuner (:mod:`repro.tools.autotune`), which searches the
lever space against a perf corpus and validates that every candidate
keeps extracted cost equal or better.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import BackoffScheduler, RunnerLimits

#: Format version of serialized :class:`ScheduleSpec` documents.
SCHEDULE_VERSION = 1

#: Phase names a spec may carry policies for (matches the
#: :class:`~repro.phases.ruleset.PhasedRuleSet` phases plus the
#: ``unphased`` ablation).
PHASE_NAMES = ("expansion", "compilation", "optimization", "unphased")


class ScheduleError(ValueError):
    """A schedule spec document is malformed."""


@dataclass(frozen=True)
class RulePolicy:
    """Per-rule scheduling overrides.

    ``None`` means "inherit the scheduler default"; ``disabled`` drops
    the rule from every saturation run (for rules the trace corpus
    shows burning match time without ever merging anything).
    """

    match_limit: int | None = None
    ban_length: int | None = None
    disabled: bool = False

    def is_default(self) -> bool:
        """True when this policy changes nothing."""
        return (
            self.match_limit is None
            and self.ban_length is None
            and not self.disabled
        )


@dataclass(frozen=True)
class PhasePolicy:
    """Per-phase overrides of the runner's resource limits.

    Each field overrides the matching :class:`RunnerLimits` field for
    that phase's ``EqSat`` calls; ``None`` inherits the compile
    options.  ``match_limit``/``ban_length`` move the phase-wide
    scheduler defaults (per-rule policies still win).
    """

    max_iterations: int | None = None
    max_nodes: int | None = None
    time_limit: float | None = None
    match_limit: int | None = None
    ban_length: int | None = None

    def is_default(self) -> bool:
        """True when this policy changes nothing."""
        return all(
            getattr(self, f.name) is None
            for f in dataclasses.fields(self)
        )


@dataclass(frozen=True)
class ScheduleSpec:
    """A declarative saturation schedule, as one versioned value.

    ``rules`` maps rule names to :class:`RulePolicy`; ``phases`` maps
    phase names (see :data:`PHASE_NAMES`) to :class:`PhasePolicy`.
    ``note`` is free-form provenance (the autotuner stamps its seed
    and corpus there).  Instances are immutable; derive variants with
    :meth:`with_rule` / :meth:`with_phase`.
    """

    rules: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    note: str = ""
    version: int = SCHEDULE_VERSION

    # -- derivation ------------------------------------------------------

    def with_rule(self, name: str, policy: RulePolicy) -> "ScheduleSpec":
        """A copy of this spec with ``name``'s policy replaced."""
        rules = dict(self.rules)
        rules[name] = policy
        return dataclasses.replace(self, rules=rules)

    def with_phase(self, name: str, policy: PhasePolicy) -> "ScheduleSpec":
        """A copy of this spec with phase ``name``'s policy replaced."""
        if name not in PHASE_NAMES:
            raise ScheduleError(f"unknown phase {name!r}")
        phases = dict(self.phases)
        phases[name] = policy
        return dataclasses.replace(self, phases=phases)

    # -- queries ---------------------------------------------------------

    def rule_policy(self, name: str) -> RulePolicy:
        """The policy for rule ``name`` (default policy when unset)."""
        return self.rules.get(name, _DEFAULT_RULE_POLICY)

    def phase_policy(self, name: str) -> PhasePolicy:
        """The policy for phase ``name`` (default policy when unset)."""
        return self.phases.get(name, _DEFAULT_PHASE_POLICY)

    def disabled_rules(self) -> list[str]:
        """Names of rules this spec disables, sorted."""
        return sorted(
            name for name, p in self.rules.items() if p.disabled
        )

    def is_default(self) -> bool:
        """True when the spec changes nothing anywhere."""
        return all(p.is_default() for p in self.rules.values()) and all(
            p.is_default() for p in self.phases.values()
        )

    def limits_for(self, phase: str, base: RunnerLimits) -> RunnerLimits:
        """``base`` with this spec's phase overrides applied."""
        policy = self.phase_policy(phase)
        changes = {
            name: value
            for name, value in (
                ("max_iterations", policy.max_iterations),
                ("max_nodes", policy.max_nodes),
                ("time_limit", policy.time_limit),
                ("match_limit", policy.match_limit),
                ("ban_length", policy.ban_length),
            )
            if value is not None
        }
        return dataclasses.replace(base, **changes) if changes else base

    def scheduler_for(
        self, phase: str, limits: RunnerLimits
    ) -> "TunedScheduler":
        """A fresh :class:`TunedScheduler` for one ``EqSat`` call.

        ``limits`` should already include the phase overrides (see
        :meth:`limits_for`); its ``match_limit``/``ban_length`` become
        the scheduler-wide defaults that per-rule policies refine.
        """
        return TunedScheduler(
            self,
            match_limit=limits.match_limit,
            ban_length=limits.ban_length,
        )

    # -- (de)serialization -----------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready form; default policies are elided."""
        return {
            "version": self.version,
            "note": self.note,
            "rules": {
                name: _policy_to_dict(policy)
                for name, policy in sorted(self.rules.items())
                if not policy.is_default()
            },
            "phases": {
                name: _policy_to_dict(policy)
                for name, policy in sorted(self.phases.items())
                if not policy.is_default()
            },
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "ScheduleSpec":
        """Parse :meth:`to_dict` output; :class:`ScheduleError` if bad."""
        if not isinstance(doc, dict):
            raise ScheduleError("schedule spec must be a JSON object")
        version = doc.get("version", SCHEDULE_VERSION)
        if version != SCHEDULE_VERSION:
            raise ScheduleError(
                f"unsupported schedule version {version!r} "
                f"(this reader handles {SCHEDULE_VERSION})"
            )
        try:
            rules = {
                str(name): _policy_from_dict(RulePolicy, body)
                for name, body in (doc.get("rules") or {}).items()
            }
            phases = {}
            for name, body in (doc.get("phases") or {}).items():
                if name not in PHASE_NAMES:
                    raise ScheduleError(f"unknown phase {name!r}")
                phases[name] = _policy_from_dict(PhasePolicy, body)
        except (TypeError, ValueError) as exc:
            raise ScheduleError(f"malformed schedule spec: {exc}")
        return cls(
            rules=rules,
            phases=phases,
            note=str(doc.get("note", "")),
            version=version,
        )

    def to_json(self) -> str:
        """The spec as a JSON document (the on-disk format)."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScheduleSpec":
        """Parse :meth:`to_json` output; :class:`ScheduleError` if bad."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScheduleError(f"schedule spec is not valid JSON: {exc}")
        return cls.from_dict(doc)

    def save(self, path: Path | str) -> Path:
        """Write the spec to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Path | str) -> "ScheduleSpec":
        """Read a spec file; :class:`ScheduleError` if unusable."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ScheduleError(f"cannot read schedule {path}: {exc}")
        return cls.from_json(text)

    # -- presentation ----------------------------------------------------

    def summary(self) -> str:
        """Compact human-readable description (CLI ``inspect``)."""
        if self.is_default():
            return "default schedule (no overrides)"
        parts = []
        disabled = self.disabled_rules()
        if disabled:
            parts.append(f"disables {', '.join(disabled)}")
        tuned = sorted(
            name
            for name, p in self.rules.items()
            if not p.disabled and not p.is_default()
        )
        if tuned:
            parts.append(f"tunes {', '.join(tuned)}")
        phased = sorted(
            name for name, p in self.phases.items() if not p.is_default()
        )
        if phased:
            parts.append(f"caps phases {', '.join(phased)}")
        text = "; ".join(parts)
        if self.note:
            text += f" [{self.note}]"
        return text


_DEFAULT_RULE_POLICY = RulePolicy()
_DEFAULT_PHASE_POLICY = PhasePolicy()


def _policy_to_dict(policy) -> dict:
    doc = {}
    for f in dataclasses.fields(policy):
        value = getattr(policy, f.name)
        if value is not None and value is not False:
            doc[f.name] = value
    return doc


def _policy_from_dict(cls, body: dict):
    if not isinstance(body, dict):
        raise ScheduleError(f"policy must be an object, got {body!r}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(body) - known
    if unknown:
        raise ScheduleError(f"unknown policy keys {sorted(unknown)}")
    return cls(**body)


class TunedScheduler(BackoffScheduler):
    """Backoff scheduling with per-rule budgets from a schedule spec.

    Per-rule ``match_limit``/``ban_length`` override the scheduler-wide
    defaults (threshold doubling starts from the rule's own base);
    ``disabled`` rules are dropped from the run before the first
    iteration via :meth:`is_disabled`.
    """

    def __init__(
        self,
        spec: ScheduleSpec,
        match_limit: int = 1000,
        ban_length: int = 5,
    ):
        super().__init__(match_limit=match_limit, ban_length=ban_length)
        self._spec = spec

    @property
    def spec(self) -> ScheduleSpec:
        """The schedule spec this scheduler enforces."""
        return self._spec

    def is_disabled(self, rule: Rewrite) -> bool:
        """True when the spec disables ``rule``."""
        return self._spec.rule_policy(rule.name).disabled

    def _base_limit(self, rule: Rewrite) -> int:
        policy = self._spec.rule_policy(rule.name)
        if policy.match_limit is not None:
            return policy.match_limit
        return self._initial_limit

    def _base_ban_length(self, rule: Rewrite) -> int:
        policy = self._spec.rule_policy(rule.name)
        if policy.ban_length is not None:
            return policy.ban_length
        return self._ban_length

    def state_dict(self) -> dict:
        """Backoff state plus the spec, so resume re-enforces it."""
        state = super().state_dict()
        state["kind"] = "tuned"
        state["spec"] = self._spec.to_dict()
        return state

    @classmethod
    def from_state(cls, state: dict) -> "TunedScheduler":
        """Rebuild a tuned scheduler from :meth:`state_dict` output."""
        scheduler = cls(
            ScheduleSpec.from_dict(state["spec"]),
            match_limit=int(state["match_limit"]),
            ban_length=int(state["ban_length"]),
        )
        scheduler._load_ban_state(state)
        return scheduler


def schedule_from_env() -> ScheduleSpec | None:
    """The ``REPRO_SCHEDULE`` override, or ``None`` when unset.

    The variable names a :meth:`ScheduleSpec.to_json` file; it takes
    precedence over any artifact-carried schedule so a tuned (or
    deliberately default) spec can be A/B-tested without rebuilding
    artifacts.  ``REPRO_SCHEDULE=0``/``off`` explicitly forces the
    default schedule.  An unreadable file raises — a requested
    schedule silently not applying would invalidate measurements.
    """
    value = os.environ.get("REPRO_SCHEDULE", "").strip()
    if not value:
        return None
    if value.lower() in ("0", "off", "none", "default"):
        return ScheduleSpec()
    return ScheduleSpec.load(value)
