"""Versioned byte-level serialization of e-graphs and runner state.

The e-graph has historically been a one-shot in-memory object: a blown
deadline in the optimization phase threw away the expansion and
compilation work, ``compile_many`` could only parallelize at
whole-kernel granularity, and nothing persisted between repeat
compiles of the same kernel.  Following the eqsat-dialect observation
that e-graphs flatten cleanly into table form (nodes / classes /
union-find) and egg's rebuild-centric design (runner state is a small,
well-defined set), this module gives the engine a compact serialized
form and builds checkpointing on top of it:

- :func:`egraph_to_doc` / :func:`egraph_from_doc` — the flat-table
  document form (interned node table, class table, hashcons pairs,
  union-find parent array, op-index, counters);
- :func:`dump_snapshot` / :func:`load_snapshot` — the on-disk
  container: magic + version line, an *uncompressed* JSON meta line
  (cheap to scan without inflating the body), and a zlib-compressed
  JSON payload;
- :func:`save_egraph` / :func:`load_egraph` — one-call e-graph ↔
  bytes round-trip;
- :class:`SaturationCheckpoint` — an e-graph plus the scheduler and
  iteration state of a paused saturation, resumable via
  :meth:`repro.egraph.runner.Runner.resume`;
- digest helpers (:func:`term_digest`, :func:`rules_digest`,
  :func:`limits_digest`) used to content-address snapshots in the
  expansion cache (:mod:`repro.core.cache`).

Restoration rebuilds the *exact* internal state — dict insertion
orders, worklist, touched set, staleness counters — so a restored
graph behaves byte-identically to the live one under further
saturation and extraction.  Anything malformed raises
:class:`SnapshotError`; callers that cache snapshots treat that as a
miss, never an error (the PR-4 corrupt-artifact policy).
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass, field, fields
from pathlib import Path

from repro.egraph.egraph import EClass, EGraph
from repro.egraph.rewrite import Rewrite
from repro.egraph.unionfind import UnionFind

#: Schema version of the serialized e-graph document.  Bump on any
#: change to the payload layout; readers reject mismatches (callers
#: treat that as a cache miss and rebuild).
SNAPSHOT_VERSION = 1

#: First container line: file magic + container format version.
MAGIC = b"RSNP1"


class SnapshotError(ValueError):
    """A snapshot byte string or document is corrupt or unsupported."""


# -- payload encoding --------------------------------------------------------
#
# An e-node payload is None, an int/float, a string, or a (str, int)
# pair (the ``Get`` accessor).  ``0`` encodes None; everything else is
# a ``[tag, ...]`` list so the decoder never guesses.

_PAY_NUM = 1
_PAY_STR = 2
_PAY_PAIR = 3


def _encode_payload(payload):
    if payload is None:
        return 0
    if isinstance(payload, bool):  # bool is an int; reject explicitly
        raise SnapshotError(f"unsupported payload {payload!r}")
    if isinstance(payload, (int, float)):
        return [_PAY_NUM, payload]
    if isinstance(payload, str):
        return [_PAY_STR, payload]
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and isinstance(payload[0], str)
        and isinstance(payload[1], int)
    ):
        return [_PAY_PAIR, payload[0], payload[1]]
    raise SnapshotError(f"unsupported payload {payload!r}")


def _decode_payload(doc):
    if doc == 0:
        return None
    tag = doc[0]
    if tag == _PAY_NUM:
        value = doc[1]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SnapshotError(f"bad numeric payload {doc!r}")
        return value
    if tag == _PAY_STR:
        return str(doc[1])
    if tag == _PAY_PAIR:
        return (str(doc[1]), int(doc[2]))
    raise SnapshotError(f"unknown payload tag {doc!r}")


# -- e-graph <-> document ----------------------------------------------------


def egraph_to_doc(egraph: EGraph) -> dict:
    """The flat-table document form of ``egraph``.

    Every distinct e-node tuple appearing in class node lists, parent
    lists, or the hashcons is interned once into a node table (op
    index + payload + child class ids); classes, parents, and the
    hashcons then reference nodes by table index.  List orders mirror
    the live dict/list insertion orders exactly, which is what makes
    restoration behavior-identical (rebuild and extraction iterate
    those containers).
    """
    ops: list[str] = []
    op_ids: dict[str, int] = {}
    nodes: list[list] = []
    node_ids: dict[tuple, int] = {}

    def op_id(op: str) -> int:
        idx = op_ids.get(op)
        if idx is None:
            idx = op_ids[op] = len(ops)
            ops.append(op)
        return idx

    def node_id(node: tuple) -> int:
        idx = node_ids.get(node)
        if idx is None:
            idx = node_ids[node] = len(nodes)
            op, payload, children = node
            nodes.append(
                [op_id(op), _encode_payload(payload), *children]
            )
        return idx

    classes = []
    for eclass in egraph._classes.values():
        parents_flat: list[int] = []
        for pnode, pclass in eclass.parents:
            parents_flat.append(node_id(pnode))
            parents_flat.append(pclass)
        classes.append(
            [eclass.id, [node_id(n) for n in eclass.nodes], parents_flat]
        )
    return {
        "version": SNAPSHOT_VERSION,
        "ops": ops,
        "nodes": nodes,
        "classes": classes,
        "hashcons": [
            [node_id(n), cid] for n, cid in egraph._hashcons.items()
        ],
        "uf": egraph._uf.export_state(),
        "worklist": list(egraph._worklist),
        "touched": sorted(egraph._touched),
        "op_index": [
            [op_id(op), list(ids)]
            for op, ids in egraph._op_index.items()
        ],
        "counters": {
            "n_unions": egraph._n_unions,
            "n_adds": egraph._n_adds,
            "n_live_nodes": egraph._n_live_nodes,
            "index_stale": egraph._index_stale,
        },
    }


def egraph_from_doc(doc: dict) -> EGraph:
    """Rebuild an :class:`EGraph` from :func:`egraph_to_doc` output.

    The restored graph is state-identical to the serialized one:
    further saturation, rebuilds, and extraction proceed exactly as
    they would have on the original.  Malformed documents raise
    :class:`SnapshotError`.
    """
    try:
        if doc["version"] != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"unsupported snapshot version {doc['version']!r} "
                f"(this reader handles {SNAPSHOT_VERSION})"
            )
        ops = [str(op) for op in doc["ops"]]
        nodes = [
            (ops[row[0]], _decode_payload(row[1]), tuple(row[2:]))
            for row in doc["nodes"]
        ]
        egraph = EGraph()
        egraph._uf = UnionFind.from_state(doc["uf"])
        for cid, node_idxs, parents_flat in doc["classes"]:
            eclass = EClass(cid)
            eclass.nodes = [nodes[i] for i in node_idxs]
            eclass.parents = [
                (nodes[parents_flat[j]], parents_flat[j + 1])
                for j in range(0, len(parents_flat), 2)
            ]
            egraph._classes[cid] = eclass
        egraph._hashcons = {
            nodes[i]: cid for i, cid in doc["hashcons"]
        }
        egraph._worklist = [int(c) for c in doc["worklist"]]
        egraph._touched = set(int(c) for c in doc["touched"])
        egraph._op_index = {
            ops[oi]: [int(c) for c in ids]
            for oi, ids in doc["op_index"]
        }
        counters = doc["counters"]
        egraph._n_unions = int(counters["n_unions"])
        egraph._n_adds = int(counters["n_adds"])
        egraph._n_live_nodes = int(counters["n_live_nodes"])
        egraph._index_stale = int(counters["index_stale"])
        return egraph
    except SnapshotError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed e-graph snapshot: {exc}")


# -- the byte container ------------------------------------------------------


def dump_snapshot(payload: dict, meta: dict | None = None) -> bytes:
    """Serialize ``payload`` into the versioned snapshot container.

    Layout: the :data:`MAGIC` line, one *uncompressed* JSON meta line
    (so inspection tools can scan a cache directory without inflating
    bodies), then the zlib-compressed JSON payload.  The meta line
    always carries ``schema`` (the payload schema version) and
    ``digest`` — a short SHA-256 of the canonical payload JSON, the
    content address the expansion cache keys chain on.
    """
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    meta_doc = dict(meta or {})
    meta_doc["schema"] = SNAPSHOT_VERSION
    meta_doc["digest"] = hashlib.sha256(body).hexdigest()[:16]
    meta_line = json.dumps(
        meta_doc, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    # Level 1: snapshot bodies are table-heavy JSON that compresses
    # ~3x at any level; higher levels cost 5x the time for ~3% size.
    return b"\n".join([MAGIC, meta_line, zlib.compress(body, 1)])


def load_snapshot_meta(data: bytes) -> tuple[dict, bytes]:
    """Validate the container header; return ``(meta, compressed body)``.

    Cheap — the body is *not* decompressed, so cache stats and content
    digests come from the meta line alone.  Raises
    :class:`SnapshotError` on a bad magic, version, or meta line.
    """
    if not isinstance(data, bytes) or b"\n" not in data:
        raise SnapshotError("not a snapshot: no container header")
    magic, rest = data.split(b"\n", 1)
    if magic != MAGIC:
        raise SnapshotError(f"bad snapshot magic {magic[:12]!r}")
    if b"\n" not in rest:
        raise SnapshotError("truncated snapshot: missing body")
    meta_line, body = rest.split(b"\n", 1)
    try:
        meta = json.loads(meta_line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"bad snapshot meta line: {exc}")
    if not isinstance(meta, dict):
        raise SnapshotError("snapshot meta line is not an object")
    if meta.get("schema") != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"unsupported snapshot schema {meta.get('schema')!r}"
        )
    return meta, body


def load_snapshot(data: bytes) -> tuple[dict, dict]:
    """Parse snapshot bytes; returns ``(meta, payload)``.

    Raises :class:`SnapshotError` for anything short of a well-formed
    container: wrong magic, unsupported version, truncated or
    corrupted compressed body, non-JSON payload.
    """
    meta, body = load_snapshot_meta(data)
    try:
        payload = json.loads(zlib.decompress(body))
    except (zlib.error, ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"corrupt snapshot body: {exc}")
    if not isinstance(payload, dict):
        raise SnapshotError("snapshot payload is not an object")
    return meta, payload


def save_egraph(egraph: EGraph, meta: dict | None = None) -> bytes:
    """``egraph`` as snapshot bytes (``meta`` rides the header line)."""
    return dump_snapshot(egraph_to_doc(egraph), meta=meta)


def load_egraph(data: bytes) -> tuple[EGraph, dict]:
    """Restore ``(egraph, meta)`` from :func:`save_egraph` bytes."""
    meta, payload = load_snapshot(data)
    return egraph_from_doc(payload), meta


# -- content digests ---------------------------------------------------------


def _short_sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def term_digest(term) -> str:
    """Short content hash of a DSL term (s-expression based)."""
    from repro.lang.parser import to_sexpr

    return _short_sha(to_sexpr(term))


def rules_digest(rules: list[Rewrite]) -> str:
    """Short content hash of a rule list (names + both sides, ordered).

    Order-sensitive on purpose: the saturation loop applies rules in
    list order, so two differently-ordered rulesets are different
    schedules and must not share cache entries.
    """
    from repro.lang.parser import to_sexpr

    lines = [
        f"{rule.name}\t{to_sexpr(rule.lhs)} => {to_sexpr(rule.rhs)}"
        for rule in rules
    ]
    return _short_sha("\n".join(lines))


def limits_digest(limits) -> str:
    """Short content hash of a :class:`RunnerLimits` value."""
    parts = [
        f"{f.name}={getattr(limits, f.name)!r}" for f in fields(limits)
    ]
    return _short_sha(";".join(parts))


# -- scheduler state ---------------------------------------------------------


def scheduler_to_doc(scheduler) -> dict:
    """A scheduler's adaptive state as a JSON-ready document.

    Dispatches on the concrete scheduler type; the document's
    ``kind`` key routes :func:`scheduler_from_doc` back to the right
    class.  Custom :class:`~repro.egraph.runner.RuleScheduler`
    subclasses must implement ``state_dict`` to be checkpointable.
    """
    state = scheduler.state_dict()
    if not isinstance(state, dict) or "kind" not in state:
        raise SnapshotError(
            f"scheduler {type(scheduler).__name__} returned an "
            "invalid state_dict (must be a dict with a 'kind' key)"
        )
    return state


def scheduler_from_doc(doc: dict):
    """Rebuild a scheduler from :func:`scheduler_to_doc` output."""
    from repro.egraph.runner import BackoffScheduler, RuleScheduler
    from repro.egraph.scheduling import TunedScheduler

    kinds = {
        "default": RuleScheduler,
        "backoff": BackoffScheduler,
        "tuned": TunedScheduler,
    }
    if not isinstance(doc, dict):
        raise SnapshotError("scheduler state is not an object")
    cls = kinds.get(doc.get("kind"))
    if cls is None:
        raise SnapshotError(
            f"unknown scheduler kind {doc.get('kind')!r}"
        )
    try:
        return cls.from_state(doc)
    except (KeyError, TypeError, ValueError) as exc:
        raise SnapshotError(f"malformed scheduler state: {exc}")


# -- saturation checkpoints --------------------------------------------------


@dataclass
class SaturationCheckpoint:
    """A paused saturation, restorable with a larger budget.

    Captures everything :class:`~repro.egraph.runner.Runner` needs to
    continue where a deadline or node cap stopped it: the e-graph, the
    scheduler's adaptive state (thresholds / bans), the absolute
    iteration counter, the frontier roots pending for the next
    iteration, and a digest of the rule list (resume refuses to
    continue under a different ruleset — that would silently change
    the computation).  ``limits`` records the budget the run was
    *started* with, as a convenience default for resume; ``meta`` is
    free-form provenance (phase name, stop reason, kernel).
    """

    egraph: EGraph
    scheduler: dict
    iterations_done: int
    frontier: bool
    rules_digest: str
    pending_roots: list[int] | None = None
    limits: dict | None = None
    meta: dict = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        """Serialize into the versioned snapshot container."""
        payload = {
            "version": SNAPSHOT_VERSION,
            "kind": "checkpoint",
            "egraph": egraph_to_doc(self.egraph),
            "scheduler": self.scheduler,
            "iterations_done": self.iterations_done,
            "frontier": self.frontier,
            "rules_digest": self.rules_digest,
            "pending_roots": self.pending_roots,
            "limits": self.limits,
        }
        meta = dict(self.meta)
        meta["kind"] = "checkpoint"
        return dump_snapshot(payload, meta=meta)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SaturationCheckpoint":
        """Parse checkpoint bytes; :class:`SnapshotError` if unusable."""
        meta, payload = load_snapshot(data)
        try:
            if payload.get("kind") != "checkpoint":
                raise SnapshotError(
                    f"not a checkpoint (kind={payload.get('kind')!r})"
                )
            roots = payload["pending_roots"]
            limits = payload["limits"]
            return cls(
                egraph=egraph_from_doc(payload["egraph"]),
                scheduler=dict(payload["scheduler"]),
                iterations_done=int(payload["iterations_done"]),
                frontier=bool(payload["frontier"]),
                rules_digest=str(payload["rules_digest"]),
                pending_roots=(
                    None if roots is None else [int(c) for c in roots]
                ),
                limits=None if limits is None else dict(limits),
                meta=meta,
            )
        except SnapshotError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"malformed checkpoint: {exc}")

    def save(self, path: Path | str) -> Path:
        """Write the checkpoint to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())
        return path

    @classmethod
    def load(cls, path: Path | str) -> "SaturationCheckpoint":
        """Read a checkpoint file; :class:`SnapshotError` if unusable."""
        try:
            data = Path(path).read_bytes()
        except OSError as exc:
            raise SnapshotError(f"cannot read checkpoint {path}: {exc}")
        return cls.from_bytes(data)
