"""Minimum-cost term extraction from a saturated e-graph.

Extraction assigns each e-class its cheapest representative by a
worklist fixpoint: when a class's best cost improves, only the classes
holding a parent e-node are re-examined.  With a strictly monotonic
cost function (Definition 2) the fixpoint converges to the true
minimum per class, and the chosen-node pointers are acyclic so the
final term can be materialized by walking them.

Cost ties are broken *canonically*: a second fixpoint picks, among
each class's minimum-cost nodes, the one whose materialized term is
lexicographically least.  The extracted program is therefore a
function of the e-graph's term sets alone — not of rule application
order or node insertion order — so two saturations that discover the
same equalities extract byte-identical programs.  (Strict
monotonicity makes the equal-cost term set of every class finite,
which is what guarantees the tie-break fixpoint terminates.)

The cost function is *structural*: choosing an e-node costs

    node_cost(op, payload, chosen_children) + sum(child costs)

where the node cost may inspect the chosen children's *heads* (their
root op/payload) — the Isaria cost model needs this because a ``Vec``
of computed lanes is far more expensive than one of loadable leaves
(§3.2).  Cost functions may implement the fast head-based protocol
(``node_cost_heads``); plain callables over child terms are adapted.
"""

from __future__ import annotations

from typing import Callable

from repro.egraph.egraph import EGraph
from repro.lang.term import Term, make
from repro.obs import current_tracer

# A head is the (op, payload) pair of a chosen child node.
Head = tuple


class _TermCostAdapter:
    """Wrap a child-term cost function into the head protocol.

    Builds tiny one-level dummy terms so legacy/structural cost
    callables keep working; the dummies only expose op/payload/leafness,
    which is all a structural cost function may rely on.  The dummy for
    each ``(op, payload)`` head is memoized per adapter: extraction
    calls the cost function once per (node, child) pair, and without
    the memo every call re-enters the term intern table.
    """

    def __init__(self, fn: Callable):
        self._fn = fn
        self._heads: dict[Head, Term] = {}

    def node_cost_heads(self, op: str, payload, child_heads) -> float:
        cache = self._heads
        child_terms = []
        for head in child_heads:
            term = cache.get(head)
            if term is None:
                term = cache[head] = _dummy_term(head[0], head[1])
            child_terms.append(term)
        return self._fn(op, payload, tuple(child_terms))


_DUMMY_CHILD = None


def _dummy_term(op: str, payload) -> Term:
    global _DUMMY_CHILD
    if op in ("Const", "Symbol", "Get", "Wild"):
        return make(op, payload=payload)
    if _DUMMY_CHILD is None:
        _DUMMY_CHILD = make("Symbol", payload="•dummy")
    return make(op, _DUMMY_CHILD, payload=payload)


def _head_cost_fn(cost):
    if hasattr(cost, "node_cost_heads"):
        return cost.node_cost_heads
    if hasattr(cost, "node_cost"):
        return _TermCostAdapter(cost.node_cost).node_cost_heads
    return _TermCostAdapter(cost).node_cost_heads


class Extractor:
    """Worklist-based bottom-up extractor over one e-graph."""

    def __init__(self, egraph: EGraph, cost):
        self._egraph = egraph
        self._node_cost = _head_cost_fn(cost)
        # class id -> (total cost, chosen node)
        self._best: dict[int, tuple[float, tuple]] = {}
        with current_tracer().span(
            "extract", n_nodes=egraph.n_nodes, n_classes=egraph.n_classes
        ) as span:
            self._solve()
            span.add(n_solved=len(self._best))

    def _solve(self) -> None:
        egraph = self._egraph
        best = self._best
        node_cost = self._node_cost
        find = egraph.find

        # parent map: child class -> classes containing a parent node
        classes = list(egraph.classes())
        parents: dict[int, set[int]] = {}
        for eclass in classes:
            for _op, _payload, children in eclass.nodes:
                for child in children:
                    parents.setdefault(find(child), set()).add(eclass.id)

        worklist = [c.id for c in classes]
        in_list = set(worklist)

        while worklist:
            class_id = worklist.pop()
            in_list.discard(class_id)
            eclass = egraph.eclass(class_id)
            entry = best.get(class_id)
            current = entry[0] if entry is not None else None
            improved = False
            for node in eclass.nodes:
                children = node[2]
                total = 0.0
                heads = []
                ok = True
                for child in children:
                    child_entry = best.get(find(child))
                    if child_entry is None:
                        ok = False
                        break
                    total += child_entry[0]
                    chosen = child_entry[1]
                    heads.append((chosen[0], chosen[1]))
                if not ok:
                    continue
                total += node_cost(node[0], node[1], heads)
                if current is None or total < current:
                    current = total
                    best[class_id] = (total, node)
                    improved = True
            if improved:
                for parent in parents.get(class_id, ()):
                    parent = find(parent)
                    if parent not in in_list:
                        worklist.append(parent)
                        in_list.add(parent)

        self._break_ties(parents)

    def _break_ties(self, parents: dict[int, set[int]]) -> None:
        """Canonicalize the chosen node of every cost-tied class.

        Second fixpoint over final costs: each class's *canon key* is
        a nested ``(op, repr(payload), child keys...)`` tuple — the
        structure of its chosen term — and among nodes achieving the
        class's minimum cost the lexicographically least key wins.
        Keys nest by reference, so building one is O(arity); the
        fixpoint computes the unique least solution, making the chosen
        term independent of e-graph iteration order.  A cost-tied
        cyclic choice would need two zero-cost nodes, which strict
        monotonicity rules out, so the canonical pointers stay acyclic.
        """
        egraph = self._egraph
        best = self._best
        node_cost = self._node_cost
        find = egraph.find

        # Initial canon keys from the (acyclic) phase-1 pointers.
        canon: dict[int, tuple] = {}
        stack = list(best)
        while stack:
            cid = stack[-1]
            if cid in canon:
                stack.pop()
                continue
            op, payload, children = best[cid][1]
            missing = [
                find(c) for c in children if find(c) not in canon
            ]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            canon[cid] = (op, repr(payload)) + tuple(
                canon[find(c)] for c in children
            )

        worklist = list(best)
        in_list = set(worklist)
        while worklist:
            class_id = worklist.pop()
            in_list.discard(class_id)
            entry = best.get(class_id)
            if entry is None:
                continue
            target, chosen = entry
            current = canon[class_id]
            improved = False
            for node in egraph.eclass(class_id).nodes:
                children = node[2]
                total = 0.0
                heads = []
                keys = []
                ok = True
                for child in children:
                    child_id = find(child)
                    child_entry = best.get(child_id)
                    if child_entry is None:
                        ok = False
                        break
                    total += child_entry[0]
                    chosen_child = child_entry[1]
                    heads.append((chosen_child[0], chosen_child[1]))
                    keys.append(canon[child_id])
                if not ok:
                    continue
                total += node_cost(node[0], node[1], heads)
                if total != target:
                    continue
                key = (node[0], repr(node[1])) + tuple(keys)
                if key < current:
                    current = key
                    canon[class_id] = key
                    best[class_id] = (target, node)
                    improved = True
            if improved:
                for parent in parents.get(class_id, ()):
                    parent = find(parent)
                    if parent not in in_list:
                        worklist.append(parent)
                        in_list.add(parent)

    # -- queries ---------------------------------------------------------

    def has_solution(self, class_id: int) -> bool:
        """True when ``class_id`` has at least one extractable term."""
        return self._egraph.find(class_id) in self._best

    def best(self, class_id: int) -> tuple[float, Term]:
        """(cost, term) of the cheapest program in ``class_id``."""
        entry = self._best.get(self._egraph.find(class_id))
        if entry is None:
            raise ValueError(
                f"e-class {class_id} has no extractable term "
                "(cyclic class with no base case)"
            )
        return entry[0], self._materialize(class_id)

    def best_cost(self, class_id: int) -> float:
        """Cost of the cheapest program in ``class_id``."""
        entry = self._best.get(self._egraph.find(class_id))
        if entry is None:
            raise ValueError(f"e-class {class_id} has no extractable term")
        return entry[0]

    def best_term(self, class_id: int) -> Term:
        """The cheapest program in ``class_id`` (term only)."""
        return self.best(class_id)[1]

    def _materialize(self, class_id: int) -> Term:
        """Build the chosen term by following best-node pointers.

        Iterative post-order: strict monotonicity makes the chosen
        pointers acyclic, but kernels can be deep, so no recursion.
        """
        find = self._egraph.find
        best = self._best
        memo: dict[int, Term] = {}
        stack = [find(class_id)]
        while stack:
            cid = stack[-1]
            if cid in memo:
                stack.pop()
                continue
            entry = best.get(cid)
            if entry is None:
                raise ValueError(
                    f"e-class {cid} has no extractable term"
                )
            op, payload, children = entry[1]
            missing = [
                find(c) for c in children if find(c) not in memo
            ]
            if missing:
                stack.extend(missing)
                continue
            stack.pop()
            memo[cid] = make(
                op,
                *(memo[find(c)] for c in children),
                payload=payload,
            )
        return memo[find(class_id)]


def extract_best(egraph: EGraph, class_id: int, cost) -> tuple[float, Term]:
    """One-shot extraction: cheapest (cost, term) for ``class_id``."""
    return Extractor(egraph, cost).best(class_id)
