"""Compiled e-matching: patterns as flat instruction programs.

The recursive matcher in :mod:`repro.egraph.ematch` re-interprets the
pattern *term* on every candidate node: each call re-reads ``.op`` /
``.args``, re-zips children, and copies a ``dict`` per wildcard
binding.  That interpretation overhead is pure waste — the pattern is
fixed for the lifetime of a rule — so, in the spirit of egg's
e-matching virtual machine, we compile each pattern **once** into a
small program of register-style instructions and run that program
against e-classes instead.

Compilation model
-----------------

*Registers* hold e-class ids.  Register 0 is the match root; each
compound sub-pattern is assigned a contiguous block of registers for
its children, filled in by its scan instruction.  *Binding slots* hold
the e-class ids bound to wildcards, assigned in first-occurrence order
along the (left-to-right, depth-first) pipeline — a property that lets
partial bindings be plain tuples grown by appending, instead of dict
copies.

Instructions (tuples, opcode first):

``SCAN reg op payload n base len``
    Scan the e-nodes of the class in ``reg`` for ``(op, payload)``
    nodes of arity ``n``; for each hit, load the children into
    registers ``base..base+n`` and run the next ``len`` instructions
    (the compiled children) over the *entire* current binding list,
    concatenating the results across hits.  This mirrors the legacy
    matcher's binding-list pipeline exactly, including the order in
    which bindings are produced — which matters because caps keep the
    *earliest* bindings.

``SCANW reg op payload n actions all_new``
    Fused fast path for the overwhelmingly common case of a compound
    whose children are all wildcards (``(VecAdd ?a ?b)``, the lift
    rules' lane patterns).  Each hit extends every binding tuple in
    one go, skipping per-child instruction dispatch; ``all_new``
    (precomputed: no repeated wildcards among the children) selects a
    check-free inner loop, and child ids resolve through the raw
    union-find parent array with a single-index fast path.

``BINDW reg`` / ``CHECKW reg slot``
    First / repeated occurrence of a wildcard: append the canonical
    class id to every binding, or filter bindings whose ``slot``
    disagrees with the class in ``reg``.

``LEAF reg node``
    Require the exact leaf e-node to be present in the class.

Work accounting is *uniform*: every e-node visited by any scan costs
one unit of the shared budget, in both this VM and the legacy matcher,
so budgets mean the same thing on every path and the two
implementations produce identical match lists (see the differential
fuzz test).
"""

from __future__ import annotations

from repro.lang.ops import WILD
from repro.lang.term import Term

# Opcodes.
SCAN = 0
SCANW = 1
BINDW = 2
CHECKW = 3
LEAF = 4

_OPNAMES = {SCAN: "scan", SCANW: "scanw", BINDW: "bindw",
            CHECKW: "checkw", LEAF: "leaf"}


class CompiledPattern:
    """One pattern compiled to a flat instruction program."""

    __slots__ = ("pattern", "program", "slot_names", "n_regs")

    def __init__(self, pattern: Term, program: tuple,
                 slot_names: tuple, n_regs: int):
        self.pattern = pattern
        self.program = program
        self.slot_names = slot_names
        self.n_regs = n_regs

    def disassemble(self) -> str:
        """Human-readable listing (debugging / tests)."""
        lines = []
        for pc, instr in enumerate(self.program):
            lines.append(f"{pc:3d}  {_OPNAMES[instr[0]]} "
                         + " ".join(repr(x) for x in instr[1:]))
        return "\n".join(lines)


def _compile(pattern: Term) -> CompiledPattern:
    slots: dict[str, int] = {}
    n_regs = [1]

    def emit(pat: Term, reg: int) -> list[tuple]:
        if pat.op == WILD:
            slot = slots.get(pat.payload)
            if slot is None:
                slots[pat.payload] = len(slots)
                return [(BINDW, reg)]
            return [(CHECKW, reg, slot)]
        args = pat.args
        if not args and pat.is_leaf:
            return [(LEAF, reg, (pat.op, pat.payload, ()))]
        n = len(args)
        if n and all(a.op == WILD for a in args):
            actions = []
            for a in args:
                slot = slots.get(a.payload)
                if slot is None:
                    slots[a.payload] = len(slots)
                    actions.append((True, 0))
                else:
                    actions.append((False, slot))
            all_new = all(is_new for is_new, _ in actions)
            return [(SCANW, reg, pat.op, pat.payload, n,
                     tuple(actions), all_new)]
        base = n_regs[0]
        n_regs[0] += n
        body: list[tuple] = []
        for i, a in enumerate(args):
            body.extend(emit(a, base + i))
        return [(SCAN, reg, pat.op, pat.payload, n, base, len(body))] + body

    program = tuple(emit(pattern, 0))
    names = tuple(sorted(slots, key=slots.__getitem__))
    return CompiledPattern(pattern, program, names, n_regs[0])


# Terms are interned and immutable, so the cache is keyed by the
# pattern itself; each rule LHS/RHS compiles exactly once per process.
_CACHE: dict[Term, CompiledPattern] = {}


def compile_pattern(pattern: Term) -> CompiledPattern:
    """Compile (or fetch the cached program for) ``pattern``."""
    compiled = _CACHE.get(pattern)
    if compiled is None:
        compiled = _CACHE[pattern] = _compile(pattern)
    return compiled


def compiled_cache_size() -> int:
    """Number of compiled patterns held (diagnostics)."""
    return len(_CACHE)


class CompiledMatcher:
    """Runs one compiled program over a (possibly dirty) e-graph.

    Mirrors the legacy ``_Matcher`` contract: a shared work budget
    across calls, a per-compound binding cap, and class ids
    canonicalized through the union-find at every read so matching
    mid-iteration (between rule applications, before the batched
    rebuild) sees the same view the recursive matcher did.
    """

    __slots__ = ("_compiled", "_find", "_parent", "_classes", "_cap",
                 "work")

    def __init__(self, compiled: CompiledPattern, egraph, cap: int,
                 work: int):
        self._compiled = compiled
        self._find = egraph._uf.find
        # Raw union-find parent array: lets the scan loops resolve
        # already-compressed ids with one list index instead of a
        # function call, falling back to find() on uncompressed paths.
        self._parent = egraph._uf._parent
        self._classes = egraph._classes
        self._cap = cap
        self.work = work

    @property
    def exhausted(self) -> bool:
        """True once the e-node-visit work budget is spent."""
        return self.work <= 0

    def match_class(self, class_id: int) -> list[dict]:
        """All bindings of the pattern against ``class_id``."""
        if self.work <= 0:
            return []
        compiled = self._compiled
        regs = [0] * compiled.n_regs
        regs[0] = self._find(class_id)
        program = compiled.program
        states = self._run(program, 0, len(program), [()], regs)
        names = compiled.slot_names
        return [dict(zip(names, s)) for s in states]

    def _run(self, program: tuple, pc: int, end: int,
             states: list, regs: list) -> list:
        find = self._find
        parent = self._parent
        classes = self._classes
        cap = self._cap
        while pc < end and states:
            if self.work <= 0:
                return []
            instr = program[pc]
            code = instr[0]
            if code == SCANW:
                _, reg, op, payload, n_args, actions, all_new = instr
                nodes = classes[find(regs[reg])].nodes
                out: list = []
                append = out.append
                work = self.work
                # ``states`` is constant for the whole scan; the
                # single-state case (every top-level scan, and most
                # nested ones) skips the per-node inner loop entirely.
                single = states[0] if len(states) == 1 else None
                for node in nodes:
                    if work <= 0:
                        break
                    work -= 1
                    if node[0] != op or node[1] != payload:
                        continue
                    children = node[2]
                    if len(children) != n_args:
                        continue
                    if work <= 0:
                        # The legacy matcher's per-child entry check:
                        # an exhausted budget yields no bindings for
                        # this node, and the next node stops the scan.
                        break
                    if n_args == 2:
                        c0, c1 = children
                        r0 = parent[c0]
                        if r0 != parent[r0]:
                            r0 = find(c0)
                        r1 = parent[c1]
                        if r1 != parent[r1]:
                            r1 = find(c1)
                        cids = (r0, r1)
                    else:
                        cids = tuple(map(find, children))
                    if all_new:
                        if single is not None:
                            append(single + cids)
                        else:
                            out.extend([s + cids for s in states])
                    else:
                        for s in states:
                            new = s
                            ok = True
                            for (is_new, slot), cid in zip(actions, cids):
                                if is_new:
                                    new = new + (cid,)
                                elif find(new[slot]) != cid:
                                    ok = False
                                    break
                            if ok:
                                append(new)
                    if len(out) >= cap:
                        del out[cap:]
                        break
                self.work = work
                states = out
                pc += 1
            elif code == BINDW:
                cid = find(regs[instr[1]])
                states = [s + (cid,) for s in states]
                pc += 1
            elif code == CHECKW:
                _, reg, slot = instr
                cid = find(regs[reg])
                states = [s for s in states if find(s[slot]) == cid]
                pc += 1
            elif code == SCAN:
                _, reg, op, payload, n_args, base, body_len = instr
                body_end = pc + 1 + body_len
                nodes = classes[find(regs[reg])].nodes
                out = []
                for node in nodes:
                    if self.work <= 0:
                        break
                    self.work -= 1
                    if node[0] != op or node[1] != payload:
                        continue
                    children = node[2]
                    if len(children) != n_args:
                        continue
                    regs[base:base + n_args] = children
                    sub = self._run(program, pc + 1, body_end, states, regs)
                    if sub:
                        out.extend(sub)
                        if len(out) >= cap:
                            del out[cap:]
                            break
                states = out
                pc = body_end
            else:  # LEAF
                _, reg, target = instr
                nodes = classes[find(regs[reg])].nodes
                work = self.work
                found = False
                for node in nodes:
                    if work <= 0:
                        break
                    work -= 1
                    if node == target:
                        found = True
                        break
                self.work = work
                if not found:
                    states = []
                pc += 1
        return states
