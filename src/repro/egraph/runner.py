"""The equality-saturation loop with resource limits.

``run_saturation`` repeatedly applies a set of rewrite rules to an
e-graph until it saturates (no rule changes the graph) or a limit
trips.  Limits matter: the paper's whole premise is that unconstrained
saturation with synthesized rules exhausts memory (§2.3), so Isaria
relies on bounded ``EqSat`` calls (Fig. 3 applies a timeout to each).

The :class:`BackoffScheduler` reproduces egg's default rule scheduler:
a rule that produces more matches than its threshold is banned for a
few iterations and its threshold doubles, taming associativity/
commutativity explosions without dropping the rule entirely.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite, apply_rewrite


class StopReason(enum.Enum):
    """Why a saturation run ended."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration-limit"
    NODE_LIMIT = "node-limit"
    TIME_LIMIT = "time-limit"


@dataclass(frozen=True)
class RunnerLimits:
    """Resource bounds for one ``EqSat`` call.

    ``match_limit``/``ban_length`` parameterize the backoff scheduler;
    keep ``ban_length`` well below ``max_iterations`` or a banned rule
    never gets another chance within the call.
    """

    max_iterations: int = 30
    max_nodes: int = 20_000
    time_limit: float = 30.0  # seconds
    match_limit: int = 1000
    ban_length: int = 2
    # E-node-visit budget per rule application; bounds worst-case time
    # of a single match pass deterministically.
    match_work: int = 100_000


@dataclass
class IterationReport:
    index: int
    n_nodes: int
    n_classes: int
    n_unions: int
    applied: dict[str, int] = field(default_factory=dict)


@dataclass
class RunnerReport:
    """What one saturation run did."""

    stop_reason: StopReason
    iterations: list[IterationReport] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def n_iterations(self) -> int:
        return len(self.iterations)

    @property
    def saturated(self) -> bool:
        return self.stop_reason is StopReason.SATURATED


class BackoffScheduler:
    """egg's exponential-backoff rule scheduler.

    Each rule has a match threshold.  If an iteration finds more
    matches than the threshold, the overflowing matches are still
    applied up to the cap, but the rule is banned for ``ban_length``
    iterations and its threshold doubles.  Saturation is only declared
    when no rule is banned (a banned rule might still have work to do).
    """

    def __init__(self, match_limit: int = 1000, ban_length: int = 5):
        self._initial_limit = match_limit
        self._ban_length = ban_length
        self._thresholds: dict[str, int] = {}
        self._banned_until: dict[str, int] = {}
        self._ban_count: dict[str, int] = {}

    def threshold(self, rule: Rewrite) -> int:
        base = self._thresholds.get(rule.name, self._initial_limit)
        return base

    def can_apply(self, rule: Rewrite, iteration: int) -> bool:
        return iteration >= self._banned_until.get(rule.name, 0)

    def record(self, rule: Rewrite, iteration: int, n_matches: int) -> None:
        if n_matches > self.threshold(rule):
            bans = self._ban_count.get(rule.name, 0)
            self._banned_until[rule.name] = iteration + 1 + self._ban_length
            self._ban_count[rule.name] = bans + 1
            self._thresholds[rule.name] = self._initial_limit * (
                2 ** (bans + 1)
            )

    def any_banned(self, iteration: int) -> bool:
        return any(
            until > iteration for until in self._banned_until.values()
        )


def run_saturation(
    egraph: EGraph,
    rules: list[Rewrite],
    limits: RunnerLimits | None = None,
    scheduler: BackoffScheduler | None = None,
    frontier: bool = False,
) -> RunnerReport:
    """Apply ``rules`` to ``egraph`` until saturation or a limit.

    Mutates ``egraph``; returns a :class:`RunnerReport`.  The graph is
    rebuilt (congruence-closed) when the function returns, whatever the
    stop reason, so extraction can run immediately.

    With ``frontier=True``, iterations after the first only match
    pattern roots in classes changed by the previous iteration.  This
    is incomplete (old-root matches enabled by new substructure are
    missed) but focuses the match budget on newly created structure —
    essential for chained compilation rules, whose each application
    mints the ``Vec`` literal the next one must fire on.
    """
    limits = limits or RunnerLimits()
    if scheduler is None:
        scheduler = BackoffScheduler(
            match_limit=limits.match_limit, ban_length=limits.ban_length
        )
    start = time.monotonic()
    report = RunnerReport(stop_reason=StopReason.ITERATION_LIMIT)

    egraph.rebuild()
    roots: set[int] | None = None
    if frontier:
        egraph.take_touched()  # discard pre-existing dirt
    for iteration in range(limits.max_iterations):
        iter_report = IterationReport(
            index=iteration,
            n_nodes=0,
            n_classes=0,
            n_unions=0,
        )
        op_index = egraph.op_index()
        unions_before = egraph.n_unions
        any_skipped = False

        for rule in rules:
            if time.monotonic() - start > limits.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
            if egraph.n_nodes_fast > limits.max_nodes * 2:
                # Mid-iteration guard: one iteration of many rules can
                # overshoot the per-iteration node check badly.
                report.stop_reason = StopReason.NODE_LIMIT
                break
            if not scheduler.can_apply(rule, iteration):
                any_skipped = True
                continue
            if rule.lhs.op == "Wild":
                # Identity-introduction rules (?a => (+ ?a 0)) match
                # every class exactly once and the e-graph unions the
                # new term back into the matched class, so they are
                # self-limiting (§2.2's "dangerous" rule is tame here).
                # Capping them would leave most classes unpadded and
                # starve the compilation phase of lane variants.
                stats = apply_rewrite(
                    egraph,
                    rule,
                    op_index=op_index,
                    match_limit=None,
                    match_work=limits.match_work * 10,
                    roots=roots,
                )
                iter_report.applied[rule.name] = stats.n_unions
                continue
            cap = scheduler.threshold(rule)
            stats = apply_rewrite(
                egraph,
                rule,
                op_index=op_index,
                match_limit=cap + 1,
                match_work=limits.match_work,
                roots=roots,
            )
            scheduler.record(rule, iteration, stats.n_matches)
            if stats.n_matches > cap:
                any_skipped = True
            iter_report.applied[rule.name] = stats.n_unions
        else:
            egraph.rebuild()
            iter_report.n_nodes = egraph.n_nodes
            iter_report.n_classes = egraph.n_classes
            iter_report.n_unions = egraph.n_unions - unions_before
            report.iterations.append(iter_report)
            if frontier:
                roots = egraph.take_touched()

            if iter_report.n_unions == 0 and not any_skipped:
                report.stop_reason = StopReason.SATURATED
                break
            if egraph.n_nodes > limits.max_nodes:
                report.stop_reason = StopReason.NODE_LIMIT
                break
            if time.monotonic() - start > limits.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
            continue
        # Inner loop broke (time limit mid-iteration): clean up and stop.
        egraph.rebuild()
        break

    report.elapsed = time.monotonic() - start
    return report
