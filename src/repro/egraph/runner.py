"""The equality-saturation loop with resource limits.

``run_saturation`` repeatedly applies a set of rewrite rules to an
e-graph until it saturates (no rule changes the graph) or a limit
trips.  Limits matter: the paper's whole premise is that unconstrained
saturation with synthesized rules exhausts memory (§2.3), so Isaria
relies on bounded ``EqSat`` calls (Fig. 3 applies a timeout to each).

The :class:`BackoffScheduler` reproduces egg's default rule scheduler:
a rule that produces more matches than its threshold is banned for a
few iterations and its threshold doubles, taming associativity/
commutativity explosions without dropping the rule entirely.
"""

from __future__ import annotations

import enum
import os
import time
from dataclasses import dataclass, field

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite, apply_rewrite
from repro.obs import current_tracer


def _legacy_index_requested() -> bool:
    """``REPRO_LEGACY_INDEX=1`` forces the O(nodes) per-iteration
    op-index rescan (the pre-incremental path, kept for benchmarks)."""
    return os.environ.get("REPRO_LEGACY_INDEX", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


class StopReason(enum.Enum):
    """Why a saturation run ended."""

    SATURATED = "saturated"
    ITERATION_LIMIT = "iteration-limit"
    NODE_LIMIT = "node-limit"
    TIME_LIMIT = "time-limit"


@dataclass(frozen=True)
class RunnerLimits:
    """Resource bounds for one ``EqSat`` call.

    ``match_limit``/``ban_length`` parameterize the backoff scheduler;
    keep ``ban_length`` well below ``max_iterations`` or a banned rule
    never gets another chance within the call.
    """

    max_iterations: int = 30
    max_nodes: int = 20_000
    time_limit: float = 30.0  # seconds
    match_limit: int = 1000
    ban_length: int = 2
    # E-node-visit budget per rule application; bounds worst-case time
    # of a single match pass deterministically.
    match_work: int = 100_000


@dataclass
class IterationReport:
    index: int
    n_nodes: int
    n_classes: int
    n_unions: int
    applied: dict[str, int] = field(default_factory=dict)


@dataclass
class SaturationPerf:
    """Lightweight hot-path counters for one saturation run.

    ``node_visits`` counts e-nodes scanned by the matcher (the unit the
    work budget charges); the ``*_time`` fields break the run's wall
    clock into the three hot paths this engine optimizes.  Per-rule
    breakdowns identify which rewrites dominate the match bill.
    """

    node_visits: int = 0
    match_time: float = 0.0
    index_time: float = 0.0
    rebuild_time: float = 0.0
    rule_match_time: dict = field(default_factory=dict)
    rule_node_visits: dict = field(default_factory=dict)
    # Productive unions per rule: the signal separating expensive rules
    # that *do* something from pure fail-late scanners (the autotuner's
    # disable candidates).
    rule_unions: dict = field(default_factory=dict)

    def absorb(self, other: "SaturationPerf") -> None:
        """Accumulate ``other`` into this (for cross-run aggregation)."""
        self.node_visits += other.node_visits
        self.match_time += other.match_time
        self.index_time += other.index_time
        self.rebuild_time += other.rebuild_time
        for name, t in other.rule_match_time.items():
            self.rule_match_time[name] = (
                self.rule_match_time.get(name, 0.0) + t
            )
        for name, n in other.rule_node_visits.items():
            self.rule_node_visits[name] = (
                self.rule_node_visits.get(name, 0) + n
            )
        for name, n in other.rule_unions.items():
            self.rule_unions[name] = self.rule_unions.get(name, 0) + n

    def as_dict(self) -> dict:
        """JSON-ready form (for ``BENCH_*.json`` files)."""
        return {
            "node_visits": self.node_visits,
            "match_time": self.match_time,
            "index_time": self.index_time,
            "rebuild_time": self.rebuild_time,
            "rule_match_time": dict(self.rule_match_time),
            "rule_node_visits": dict(self.rule_node_visits),
            "rule_unions": dict(self.rule_unions),
        }


@dataclass
class RunnerReport:
    """What one saturation run did."""

    stop_reason: StopReason
    iterations: list[IterationReport] = field(default_factory=list)
    elapsed: float = 0.0
    perf: SaturationPerf = field(default_factory=SaturationPerf)
    # Frontier roots pending when the run stopped (consumed by
    # Runner.checkpoint so a resumed frontier run stays incremental).
    pending_roots: list[int] | None = None
    # True when this report stands in for a cached phase result (the
    # expansion cache restored the post-phase e-graph instead of
    # re-running saturation); iteration details are then absent.
    cached: bool = False

    @property
    def n_iterations(self) -> int:
        """How many full iterations the run completed."""
        return len(self.iterations)

    @property
    def saturated(self) -> bool:
        """True when the run ended because no rule changed the graph."""
        return self.stop_reason is StopReason.SATURATED


class RuleScheduler:
    """The injectable rule-scheduling policy of :func:`run_saturation`.

    One scheduler instance serves one saturation run.  The runner asks
    it four questions per rule per iteration:

    - :meth:`is_disabled` — drop the rule from this run entirely
      (checked once, up front; a disabled rule does *not* block
      saturation claims, unlike a banned one);
    - :meth:`can_apply` — is the rule allowed to match this iteration;
    - :meth:`threshold` — its current match cap;
    - :meth:`record` — the observed match count, so the policy can
      adapt (ban, back off, ...).

    The base class is the trivial always-run policy; subclasses only
    override what they change.  :class:`BackoffScheduler` is the
    default; :class:`repro.egraph.scheduling.TunedScheduler` consumes
    a declarative per-rule/per-phase schedule.
    """

    def is_disabled(self, rule: Rewrite) -> bool:
        """True to remove ``rule`` from the run before it starts."""
        return False

    def threshold(self, rule: Rewrite) -> int:
        """The rule's current match cap for one iteration."""
        return 1 << 62

    def can_apply(self, rule: Rewrite, iteration: int) -> bool:
        """False while the rule must sit this iteration out."""
        return True

    def record(self, rule: Rewrite, iteration: int, n_matches: int) -> None:
        """Observe a match count (hook for adaptive policies)."""

    def any_banned(self, iteration: int) -> bool:
        """True while any rule is banned (blocks saturation claims)."""
        return False

    def state_dict(self) -> dict:
        """The scheduler's adaptive state as a JSON-ready dict.

        The ``kind`` key routes deserialization (see
        :func:`repro.egraph.snapshot.scheduler_from_doc`); the base
        policy is stateless, so there is nothing else to save.
        """
        return {"kind": "default"}

    @classmethod
    def from_state(cls, state: dict) -> "RuleScheduler":
        """Rebuild a scheduler from :meth:`state_dict` output."""
        return cls()


class BackoffScheduler(RuleScheduler):
    """egg's exponential-backoff rule scheduler.

    Each rule has a match threshold.  If an iteration finds more
    matches than the threshold, the overflowing matches are still
    applied up to the cap, but the rule is banned for ``ban_length``
    iterations and its threshold doubles.  Saturation is only declared
    when no rule is banned (a banned rule might still have work to do).

    The per-rule base threshold and ban length come from the
    ``_base_limit`` / ``_base_ban_length`` hooks so subclasses (the
    tuned scheduler) can vary them per rule without re-implementing
    the ban machinery.
    """

    def __init__(self, match_limit: int = 1000, ban_length: int = 5):
        self._initial_limit = match_limit
        self._ban_length = ban_length
        self._thresholds: dict[str, int] = {}
        self._banned_until: dict[str, int] = {}
        self._ban_count: dict[str, int] = {}

    def _base_limit(self, rule: Rewrite) -> int:
        """The rule's pre-backoff match cap (uniform by default)."""
        return self._initial_limit

    def _base_ban_length(self, rule: Rewrite) -> int:
        """How many iterations an overflow bans this rule for."""
        return self._ban_length

    def threshold(self, rule: Rewrite) -> int:
        """The rule's current match cap (doubles on each ban)."""
        return self._thresholds.get(rule.name, self._base_limit(rule))

    def can_apply(self, rule: Rewrite, iteration: int) -> bool:
        """False while the rule is serving a ban."""
        return iteration >= self._banned_until.get(rule.name, 0)

    def record(self, rule: Rewrite, iteration: int, n_matches: int) -> None:
        """Report a match count; bans the rule if it overflowed."""
        if n_matches > self.threshold(rule):
            bans = self._ban_count.get(rule.name, 0)
            self._banned_until[rule.name] = (
                iteration + 1 + self._base_ban_length(rule)
            )
            self._ban_count[rule.name] = bans + 1
            self._thresholds[rule.name] = self._base_limit(rule) * (
                2 ** (bans + 1)
            )

    def any_banned(self, iteration: int) -> bool:
        """True while any rule is banned (blocks saturation claims)."""
        return any(
            until > iteration for until in self._banned_until.values()
        )

    def state_dict(self) -> dict:
        """Thresholds, active bans, and ban counts, JSON-ready.

        Ban horizons are *absolute* iteration indices, which is why
        resumed runs continue the iteration counter (see
        :class:`Runner`) instead of restarting it at zero.
        """
        return {
            "kind": "backoff",
            "match_limit": self._initial_limit,
            "ban_length": self._ban_length,
            "thresholds": dict(self._thresholds),
            "banned_until": dict(self._banned_until),
            "ban_count": dict(self._ban_count),
        }

    def _load_ban_state(self, state: dict) -> None:
        """Adopt the adaptive dicts from a :meth:`state_dict` value."""
        self._thresholds = {
            str(k): int(v) for k, v in state["thresholds"].items()
        }
        self._banned_until = {
            str(k): int(v) for k, v in state["banned_until"].items()
        }
        self._ban_count = {
            str(k): int(v) for k, v in state["ban_count"].items()
        }

    @classmethod
    def from_state(cls, state: dict) -> "BackoffScheduler":
        """Rebuild a backoff scheduler from :meth:`state_dict` output."""
        scheduler = cls(
            match_limit=int(state["match_limit"]),
            ban_length=int(state["ban_length"]),
        )
        scheduler._load_ban_state(state)
        return scheduler


def run_saturation(
    egraph: EGraph,
    rules: list[Rewrite],
    limits: RunnerLimits | None = None,
    scheduler: RuleScheduler | None = None,
    frontier: bool = False,
    start_iteration: int = 0,
    initial_roots: set[int] | None = None,
) -> RunnerReport:
    """Apply ``rules`` to ``egraph`` until saturation or a limit.

    Mutates ``egraph``; returns a :class:`RunnerReport`.  The graph is
    rebuilt (congruence-closed) when the function returns, whatever the
    stop reason, so extraction can run immediately.

    ``scheduler`` is any :class:`RuleScheduler`; the default is a
    fresh :class:`BackoffScheduler` parameterized by the limits'
    ``match_limit``/``ban_length``.  Rules the scheduler reports as
    disabled are dropped before the first iteration and do not block
    saturation claims.

    With ``frontier=True``, iterations after the first only match
    pattern roots in classes changed by the previous iteration.  This
    is incomplete (old-root matches enabled by new substructure are
    missed) but focuses the match budget on newly created structure —
    essential for chained compilation rules, whose each application
    mints the ``Vec`` literal the next one must fire on.

    ``start_iteration`` continues the absolute iteration counter of a
    resumed run (``limits.max_iterations`` stays the *total* cap, and
    banned-until horizons recorded by the scheduler keep their
    meaning); ``initial_roots`` seeds the frontier of a resumed
    frontier run — without it the first resumed iteration falls back
    to a full match sweep.  Fresh runs leave both at their defaults.
    :class:`Runner` wraps this plumbing with checkpoint/resume.

    When tracing is enabled (see :mod:`repro.obs`) the run emits an
    ``eqsat`` span carrying the stop reason and the
    :class:`SaturationPerf` counters, with one ``eqsat.iteration``
    child span per completed iteration.
    """
    tracer = current_tracer()
    with tracer.span(
        "eqsat", n_rules=len(rules), frontier=frontier
    ) as sat_span:
        report = _run_saturation(egraph, rules, limits, scheduler,
                                 frontier, tracer, start_iteration,
                                 initial_roots)
        if sat_span.enabled:
            sat_span.add(
                stop_reason=report.stop_reason.value,
                iterations=report.n_iterations,
                n_nodes=egraph.n_nodes,
                n_classes=egraph.n_classes,
                **report.perf.as_dict(),
            )
    return report


def _run_saturation(
    egraph: EGraph,
    rules: list[Rewrite],
    limits: RunnerLimits | None,
    scheduler: RuleScheduler | None,
    frontier: bool,
    tracer,
    start_iteration: int = 0,
    initial_roots: set[int] | None = None,
) -> RunnerReport:
    limits = limits or RunnerLimits()
    if scheduler is None:
        scheduler = BackoffScheduler(
            match_limit=limits.match_limit, ban_length=limits.ban_length
        )
    # Disabled rules leave the run entirely: unlike a ban, dropping
    # them must not block the saturation claim below.
    rules = [rule for rule in rules if not scheduler.is_disabled(rule)]
    start = time.monotonic()
    report = RunnerReport(stop_reason=StopReason.ITERATION_LIMIT)
    perf = report.perf
    legacy_index = _legacy_index_requested()

    t0 = time.monotonic()
    egraph.rebuild()
    perf.rebuild_time += time.monotonic() - t0
    roots: set[int] | None = None
    if frontier:
        if start_iteration and initial_roots is not None:
            # Resumed frontier run: continue from the checkpointed
            # frontier instead of discarding it (the touched set was
            # already folded into ``initial_roots`` at pause time).
            roots = set(initial_roots)
        else:
            egraph.take_touched()  # discard pre-existing dirt
    for iteration in range(start_iteration, limits.max_iterations):
        it_t0 = time.monotonic()
        iter_report = IterationReport(
            index=iteration,
            n_nodes=0,
            n_classes=0,
            n_unions=0,
        )
        t0 = time.monotonic()
        op_index = egraph.op_index(rescan=legacy_index)
        perf.index_time += time.monotonic() - t0
        unions_before = egraph.n_unions
        any_skipped = False

        for rule in rules:
            if time.monotonic() - start > limits.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
            if egraph.n_nodes_live > limits.max_nodes * 2:
                # Mid-iteration guard: one iteration of many rules can
                # overshoot the per-iteration node check badly.  Uses
                # the exact live count (which shrinks on rebuild dedup),
                # so long runs aren't killed by an upper bound that
                # never comes back down.
                report.stop_reason = StopReason.NODE_LIMIT
                break
            if not scheduler.can_apply(rule, iteration):
                any_skipped = True
                continue
            if rule.lhs.op == "Wild":
                # Identity-introduction rules (?a => (+ ?a 0)) match
                # every class exactly once and the e-graph unions the
                # new term back into the matched class, so they are
                # self-limiting (§2.2's "dangerous" rule is tame here).
                # Capping them would leave most classes unpadded and
                # starve the compilation phase of lane variants.
                stats = apply_rewrite(
                    egraph,
                    rule,
                    op_index=op_index,
                    match_limit=None,
                    match_work=limits.match_work * 10,
                    roots=roots,
                )
                iter_report.applied[rule.name] = stats.n_unions
                _record_perf(perf, rule.name, stats)
                continue
            cap = scheduler.threshold(rule)
            stats = apply_rewrite(
                egraph,
                rule,
                op_index=op_index,
                match_limit=cap + 1,
                match_work=limits.match_work,
                roots=roots,
            )
            scheduler.record(rule, iteration, stats.n_matches)
            if stats.n_matches > cap:
                any_skipped = True
            iter_report.applied[rule.name] = stats.n_unions
            _record_perf(perf, rule.name, stats)
        else:
            t0 = time.monotonic()
            egraph.rebuild()
            perf.rebuild_time += time.monotonic() - t0
            iter_report.n_nodes = egraph.n_nodes
            iter_report.n_classes = egraph.n_classes
            iter_report.n_unions = egraph.n_unions - unions_before
            report.iterations.append(iter_report)
            if tracer.enabled:
                tracer.record(
                    "eqsat.iteration",
                    time.monotonic() - it_t0,
                    index=iteration,
                    n_nodes=iter_report.n_nodes,
                    n_classes=iter_report.n_classes,
                    n_unions=iter_report.n_unions,
                    applied=dict(iter_report.applied),
                )
            if frontier:
                roots = egraph.take_touched()

            if iter_report.n_unions == 0 and not any_skipped:
                report.stop_reason = StopReason.SATURATED
                break
            if egraph.n_nodes > limits.max_nodes:
                report.stop_reason = StopReason.NODE_LIMIT
                break
            if time.monotonic() - start > limits.time_limit:
                report.stop_reason = StopReason.TIME_LIMIT
                break
            continue
        # Inner loop broke (time limit mid-iteration): clean up and stop.
        t0 = time.monotonic()
        egraph.rebuild()
        perf.rebuild_time += time.monotonic() - t0
        break

    report.elapsed = time.monotonic() - start
    if frontier and roots is not None:
        report.pending_roots = sorted(roots)
    return report


class Runner:
    """A checkpointable equality-saturation driver.

    Thin stateful wrapper over :func:`run_saturation` that remembers
    everything needed to pause and continue a run:

    >>> runner = Runner(egraph, rules, limits=RunnerLimits(...))
    >>> report = runner.run()                  # hits a deadline
    >>> ckpt = runner.checkpoint()             # bytes-serializable
    >>> resumed = Runner.resume(ckpt, rules,
    ...                         limits=RunnerLimits(time_limit=60.0))
    >>> resumed.run()                          # continues, not restarts

    The iteration counter is absolute across resumes (so scheduler ban
    horizons stay meaningful and ``limits.max_iterations`` remains the
    *total* budget), while the time budget is fresh per :meth:`run` —
    resuming after a deadline with the same limits grants the run that
    much more wall clock.  Resume verifies the rule list digest: a
    checkpoint restored under different rules would silently compute
    something else, so that raises
    :class:`~repro.egraph.snapshot.SnapshotError` instead.
    """

    def __init__(
        self,
        egraph: EGraph,
        rules: list[Rewrite],
        limits: RunnerLimits | None = None,
        scheduler: RuleScheduler | None = None,
        frontier: bool = False,
        start_iteration: int = 0,
        initial_roots: set[int] | None = None,
    ):
        self.egraph = egraph
        self.rules = list(rules)
        self.limits = limits or RunnerLimits()
        self.scheduler = scheduler or BackoffScheduler(
            match_limit=self.limits.match_limit,
            ban_length=self.limits.ban_length,
        )
        self.frontier = frontier
        self.iterations_done = start_iteration
        self._pending_roots = initial_roots
        self.report: RunnerReport | None = None

    def run(self) -> RunnerReport:
        """Saturate (or continue saturating); returns the run report.

        May be called again after a limit stop to continue in-process;
        :meth:`checkpoint` captures the same continuation point for
        another process or a later invocation.
        """
        report = run_saturation(
            self.egraph,
            self.rules,
            self.limits,
            scheduler=self.scheduler,
            frontier=self.frontier,
            start_iteration=self.iterations_done,
            initial_roots=self._pending_roots,
        )
        self.iterations_done += report.n_iterations
        self._pending_roots = (
            None
            if report.pending_roots is None
            else set(report.pending_roots)
        )
        self.report = report
        return report

    def checkpoint(self, meta: dict | None = None):
        """The run's continuation point as a serializable checkpoint.

        Returns a :class:`~repro.egraph.snapshot.SaturationCheckpoint`
        (``.to_bytes()`` / ``.save(path)`` for persistence).  ``meta``
        rides along as provenance (phase, kernel, stop reason).
        """
        import dataclasses

        from repro.egraph.snapshot import (
            SaturationCheckpoint,
            rules_digest,
            scheduler_to_doc,
        )

        return SaturationCheckpoint(
            egraph=self.egraph,
            scheduler=scheduler_to_doc(self.scheduler),
            iterations_done=self.iterations_done,
            frontier=self.frontier,
            rules_digest=rules_digest(self.rules),
            pending_roots=(
                None
                if self._pending_roots is None
                else sorted(self._pending_roots)
            ),
            limits=dataclasses.asdict(self.limits),
            meta=dict(meta or {}),
        )

    @classmethod
    def resume(
        cls,
        checkpoint,
        rules: list[Rewrite],
        limits: RunnerLimits | None = None,
    ) -> "Runner":
        """A runner continuing from ``checkpoint`` (path, bytes, or
        :class:`~repro.egraph.snapshot.SaturationCheckpoint`).

        ``limits`` is the new budget — typically larger than the one
        that tripped; ``None`` reuses the checkpointed limits.  The
        ``rules`` list must hash-match the one the checkpoint was
        taken under.
        """
        from pathlib import Path

        from repro.egraph.snapshot import (
            SaturationCheckpoint,
            SnapshotError,
            rules_digest,
            scheduler_from_doc,
        )

        if isinstance(checkpoint, (str, Path)):
            checkpoint = SaturationCheckpoint.load(checkpoint)
        elif isinstance(checkpoint, bytes):
            checkpoint = SaturationCheckpoint.from_bytes(checkpoint)
        rules = list(rules)
        digest = rules_digest(rules)
        if digest != checkpoint.rules_digest:
            raise SnapshotError(
                "checkpoint was taken under a different rule list "
                f"({checkpoint.rules_digest} != {digest}); resuming "
                "would silently change the computation"
            )
        if limits is None and checkpoint.limits is not None:
            limits = RunnerLimits(**checkpoint.limits)
        return cls(
            egraph=checkpoint.egraph,
            rules=rules,
            limits=limits,
            scheduler=scheduler_from_doc(checkpoint.scheduler),
            frontier=checkpoint.frontier,
            start_iteration=checkpoint.iterations_done,
            initial_roots=(
                None
                if checkpoint.pending_roots is None
                else set(checkpoint.pending_roots)
            ),
        )


def _record_perf(perf: SaturationPerf, rule_name: str, stats) -> None:
    perf.node_visits += stats.n_visits
    perf.match_time += stats.match_time
    perf.rule_match_time[rule_name] = (
        perf.rule_match_time.get(rule_name, 0.0) + stats.match_time
    )
    perf.rule_node_visits[rule_name] = (
        perf.rule_node_visits.get(rule_name, 0) + stats.n_visits
    )
    perf.rule_unions[rule_name] = (
        perf.rule_unions.get(rule_name, 0) + stats.n_unions
    )
