"""Union-find with path compression (the e-graph's equivalence store)."""

from __future__ import annotations


class UnionFind:
    """Disjoint sets over dense integer ids."""

    def __init__(self):
        self._parent: list[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a fresh singleton set; returns its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        return new_id

    def find(self, x: int) -> int:
        """Canonical representative of ``x``'s set (with compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; ``a``'s root wins.

        The e-graph decides merge direction (it keeps the class with
        more parents as the survivor), so this union is directed: after
        ``union(a, b)``, ``find(b) == find(a)``.
        """
        ra, rb = self.find(a), self.find(b)
        self._parent[rb] = ra
        return ra

    def in_same_set(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` share a representative."""
        return self.find(a) == self.find(b)

    # -- serialization (see repro.egraph.snapshot) --------------------------

    def export_state(self) -> list[int]:
        """The parent array as a plain list (snapshot form).

        Path compression mutates parents on reads, so two semantically
        equal union-finds may export different arrays; snapshots are
        taken and restored as matched pairs, never compared raw.
        """
        return list(self._parent)

    @classmethod
    def from_state(cls, parents: list[int]) -> "UnionFind":
        """Rebuild a union-find from :meth:`export_state` output."""
        restored = cls()
        restored._parent = [int(p) for p in parents]
        size = len(restored._parent)
        if any(not 0 <= p < size for p in restored._parent):
            raise ValueError("union-find parent id out of range")
        return restored
