"""Union-find with path compression (the e-graph's equivalence store)."""

from __future__ import annotations


class UnionFind:
    """Disjoint sets over dense integer ids."""

    def __init__(self):
        self._parent: list[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a fresh singleton set; returns its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        return new_id

    def find(self, x: int) -> int:
        """Canonical representative of ``x``'s set (with compression)."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; ``a``'s root wins.

        The e-graph decides merge direction (it keeps the class with
        more parents as the survivor), so this union is directed: after
        ``union(a, b)``, ``find(b) == find(a)``.
        """
        ra, rb = self.find(a), self.find(b)
        self._parent[rb] = ra
        return ra

    def in_same_set(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` share a representative."""
        return self.find(a) == self.find(b)
