"""E-matching: finding all instances of a pattern in an e-graph.

Matching a pattern against an e-class yields bindings from wildcard
names to e-class ids.  The matcher is the classic backtracking
relational walk (egg's "machine-free" formulation): for compound
patterns it scans the candidate class's e-nodes with the right operator
and recursively matches children; wildcards bind to (canonical) class
ids; leaves require the exact leaf e-node to be present.

Binding lists are *capped* (``limit``): patterns with sibling
subpatterns over large classes produce a cross product of bindings,
and without a cap a single class can yield millions of matches — the
E-graph explosion of paper §2.3 showing up inside one match call.
Truncation keeps the earliest bindings, which follow e-node insertion
order and therefore favour the original program structure.

``ematch`` additionally restricts root candidates with a per-op index
so each rule only visits classes that can possibly match.
"""

from __future__ import annotations

from repro.egraph.egraph import EGraph, ENode
from repro.lang.ops import WILD
from repro.lang.term import Term

Binding = dict

# Hard default cap on bindings produced while matching one pattern.
DEFAULT_MATCH_CAP = 20_000

# Default budget of e-node visits for one ematch call.  Binding caps
# bound the *output*, but a pattern can scan enormous products that
# fail late; the work budget bounds the scan itself, keeping every
# rule application O(budget) regardless of graph shape.
DEFAULT_MATCH_WORK = 100_000


class _Matcher:
    """One pattern-matching context over a (clean) e-graph.

    Holds direct references to the union-find and class table — the
    matcher is the saturation hot path, and attribute/method lookups
    per node measurably dominate otherwise.
    """

    __slots__ = ("_find", "_classes", "_cap", "work")

    def __init__(self, egraph: EGraph, cap: int, work: int = DEFAULT_MATCH_WORK):
        self._find = egraph._uf.find
        self._classes = egraph._classes
        self._cap = cap
        self.work = work

    @property
    def exhausted(self) -> bool:
        return self.work <= 0

    def match(
        self, pattern: Term, class_id: int, bindings: list[Binding]
    ) -> list[Binding]:
        if self.work <= 0:
            return []
        find = self._find
        class_id = find(class_id)

        if pattern.op == WILD:
            name = pattern.payload
            out: list[Binding] = []
            append = out.append
            for binding in bindings:
                bound = binding.get(name)
                if bound is None:
                    extended = dict(binding)
                    extended[name] = class_id
                    append(extended)
                elif find(bound) == class_id:
                    append(binding)
            return out

        nodes = self._classes[class_id].nodes
        pat_args = pattern.args

        if not pat_args and pattern.is_leaf:
            # Leaf pattern: the exact leaf e-node must be present.
            target = (pattern.op, pattern.payload, ())
            for node in nodes:
                if node == target:
                    return bindings
            return []

        op = pattern.op
        payload = pattern.payload
        n_args = len(pat_args)
        cap = self._cap
        out = []
        self.work -= len(nodes)
        for node in nodes:
            if node[0] != op or node[1] != payload:
                continue
            if self.work <= 0:
                break
            children = node[2]
            if len(children) != n_args:
                continue
            extended = bindings
            for pat, child in zip(pat_args, children):
                extended = self.match(pat, child, extended)
                if not extended:
                    break
            if extended:
                out.extend(extended)
                if len(out) >= cap:
                    del out[cap:]
                    break
        return out


def match_in_class(
    egraph: EGraph,
    pattern: Term,
    class_id: int,
    cap: int = DEFAULT_MATCH_CAP,
) -> list[Binding]:
    """Bindings under which ``pattern`` matches class ``class_id``."""
    return _Matcher(egraph, cap).match(pattern, class_id, [{}])


def ematch(
    egraph: EGraph,
    pattern: Term,
    op_index: dict[str, list[tuple[int, ENode]]] | None = None,
    limit: int | None = None,
    work_budget: int = DEFAULT_MATCH_WORK,
    roots: set[int] | None = None,
) -> list[tuple[int, Binding]]:
    """All ``(root class id, binding)`` matches of ``pattern``.

    ``op_index`` (from :meth:`EGraph.op_index`) restricts root
    candidates; pass the same index to every rule in an iteration.
    ``limit`` caps the total matches returned (the backoff scheduler's
    knob) and also bounds the per-class binding cross product;
    ``work_budget`` bounds the total e-nodes scanned, making one rule
    application O(budget) on any graph.  ``roots`` (canonical class
    ids) restricts the match roots — frontier matching.
    """
    results: list[tuple[int, Binding]] = []
    cap = min(limit, DEFAULT_MATCH_CAP) if limit else DEFAULT_MATCH_CAP

    if pattern.op == WILD:
        # A bare-wildcard LHS matches every class once.
        for eclass in egraph.classes():
            if roots is not None and eclass.id not in roots:
                continue
            results.append((eclass.id, {pattern.payload: eclass.id}))
            if limit is not None and len(results) >= limit:
                break
        return results

    matcher = _Matcher(egraph, cap, work_budget)
    if op_index is not None:
        candidates = op_index.get(pattern.op, ())
        seen: set[int] = set()
        for class_id, _node in candidates:
            root = egraph.find(class_id)
            if root in seen:
                continue
            seen.add(root)
            if roots is not None and root not in roots:
                continue
            for binding in matcher.match(pattern, root, [{}]):
                results.append((root, binding))
            if limit is not None and len(results) >= limit:
                break
            if matcher.exhausted:
                break
        return results

    for eclass in egraph.classes():
        if roots is not None and eclass.id not in roots:
            continue
        for binding in matcher.match(pattern, eclass.id, [{}]):
            results.append((eclass.id, binding))
        if limit is not None and len(results) >= limit:
            break
        if matcher.exhausted:
            break
    return results
