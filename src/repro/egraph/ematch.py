"""E-matching: finding all instances of a pattern in an e-graph.

Matching a pattern against an e-class yields bindings from wildcard
names to e-class ids.  Two interchangeable matchers implement the same
semantics:

- the **compiled** matcher (default): each pattern is compiled once
  into a flat instruction program (:mod:`repro.egraph.compile_pattern`)
  and executed over register-style binding tuples — the saturation hot
  path;
- the **legacy** matcher: the classic backtracking relational walk
  kept as the executable specification, selectable with
  ``REPRO_LEGACY_EMATCH=1`` (or ``compiled=False``) and used by the
  differential fuzz tests to prove the compiled programs produce
  identical match lists.

Binding lists are *capped* (``limit``): patterns with sibling
subpatterns over large classes produce a cross product of bindings,
and without a cap a single class can yield millions of matches — the
E-graph explosion of paper §2.3 showing up inside one match call.
Truncation keeps the earliest bindings, which follow e-node insertion
order and therefore favour the original program structure.

Work accounting is uniform: every e-node visited by any scan — leaf or
compound — charges one unit of the shared ``work_budget``, so budgets
mean the same thing on every path and across both matchers.

``ematch`` additionally restricts root candidates with a per-op index
so each rule only visits classes that can possibly match.
"""

from __future__ import annotations

import os

from repro.egraph.compile_pattern import CompiledMatcher, compile_pattern
from repro.egraph.egraph import EGraph
from repro.lang.ops import WILD
from repro.lang.term import Term

Binding = dict

# Hard default cap on bindings produced while matching one pattern.
DEFAULT_MATCH_CAP = 20_000

# Default budget of e-node visits for one ematch call.  Binding caps
# bound the *output*, but a pattern can scan enormous products that
# fail late; the work budget bounds the scan itself, keeping every
# rule application O(budget) regardless of graph shape.
DEFAULT_MATCH_WORK = 100_000


def _legacy_requested() -> bool:
    return os.environ.get("REPRO_LEGACY_EMATCH", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


class _Matcher:
    """One pattern-matching context over an e-graph (legacy walk).

    Holds direct references to the union-find and class table — the
    matcher is the saturation hot path, and attribute/method lookups
    per node measurably dominate otherwise.
    """

    __slots__ = ("_find", "_classes", "_cap", "work")

    def __init__(self, egraph: EGraph, cap: int, work: int = DEFAULT_MATCH_WORK):
        self._find = egraph._uf.find
        self._classes = egraph._classes
        self._cap = cap
        self.work = work

    @property
    def exhausted(self) -> bool:
        return self.work <= 0

    def match(
        self, pattern: Term, class_id: int, bindings: list[Binding]
    ) -> list[Binding]:
        if self.work <= 0:
            return []
        find = self._find
        class_id = find(class_id)

        if pattern.op == WILD:
            name = pattern.payload
            out: list[Binding] = []
            append = out.append
            for binding in bindings:
                bound = binding.get(name)
                if bound is None:
                    extended = dict(binding)
                    extended[name] = class_id
                    append(extended)
                elif find(bound) == class_id:
                    append(binding)
            return out

        nodes = self._classes[class_id].nodes
        pat_args = pattern.args

        if not pat_args and pattern.is_leaf:
            # Leaf pattern: the exact leaf e-node must be present.
            target = (pattern.op, pattern.payload, ())
            for node in nodes:
                if self.work <= 0:
                    break
                self.work -= 1
                if node == target:
                    return bindings
            return []

        op = pattern.op
        payload = pattern.payload
        n_args = len(pat_args)
        cap = self._cap
        out = []
        for node in nodes:
            if self.work <= 0:
                break
            self.work -= 1
            if node[0] != op or node[1] != payload:
                continue
            children = node[2]
            if len(children) != n_args:
                continue
            extended = bindings
            for pat, child in zip(pat_args, children):
                extended = self.match(pat, child, extended)
                if not extended:
                    break
            if extended:
                out.extend(extended)
                if len(out) >= cap:
                    del out[cap:]
                    break
        return out


def _make_matcher(
    egraph: EGraph,
    pattern: Term,
    cap: int,
    work: int,
    compiled: bool | None,
):
    """``(matcher, match_root)`` for the selected implementation."""
    if compiled is None:
        compiled = not _legacy_requested()
    if compiled:
        matcher = CompiledMatcher(compile_pattern(pattern), egraph, cap, work)
        return matcher, matcher.match_class
    matcher = _Matcher(egraph, cap, work)
    return matcher, lambda cid: matcher.match(pattern, cid, [{}])


def match_in_class(
    egraph: EGraph,
    pattern: Term,
    class_id: int,
    cap: int = DEFAULT_MATCH_CAP,
    compiled: bool | None = None,
) -> list[Binding]:
    """Bindings under which ``pattern`` matches class ``class_id``."""
    _matcher, match_root = _make_matcher(
        egraph, pattern, cap, DEFAULT_MATCH_WORK, compiled
    )
    return match_root(class_id)


def ematch(
    egraph: EGraph,
    pattern: Term,
    op_index: dict[str, list[int]] | None = None,
    limit: int | None = None,
    work_budget: int = DEFAULT_MATCH_WORK,
    roots: set[int] | None = None,
    compiled: bool | None = None,
    counters: dict | None = None,
) -> list[tuple[int, Binding]]:
    """All ``(root class id, binding)`` matches of ``pattern``.

    ``op_index`` (from :meth:`EGraph.op_index`) restricts root
    candidates; pass the same index to every rule in an iteration.
    ``limit`` caps the total matches returned (the backoff scheduler's
    knob) and also bounds the per-class binding cross product;
    ``work_budget`` bounds the total e-nodes scanned, making one rule
    application O(budget) on any graph.  ``roots`` (canonical class
    ids) restricts the match roots — frontier matching.

    ``compiled`` selects the matcher implementation (None = compiled
    unless ``REPRO_LEGACY_EMATCH`` is set).  ``counters``, if given,
    accumulates ``"node_visits"`` — the e-nodes actually scanned.
    """
    results: list[tuple[int, Binding]] = []
    cap = min(limit, DEFAULT_MATCH_CAP) if limit else DEFAULT_MATCH_CAP

    if pattern.op == WILD:
        # A bare-wildcard LHS matches every class once.
        for eclass in egraph.classes():
            if roots is not None and eclass.id not in roots:
                continue
            results.append((eclass.id, {pattern.payload: eclass.id}))
            if limit is not None and len(results) >= limit:
                break
        return results

    matcher, match_root = _make_matcher(
        egraph, pattern, cap, work_budget, compiled
    )
    if op_index is not None:
        candidates = op_index.get(pattern.op, ())
        find = egraph.find
        seen: set[int] = set()
        for class_id in candidates:
            root = find(class_id)
            if root in seen:
                continue
            seen.add(root)
            if roots is not None and root not in roots:
                continue
            for binding in match_root(root):
                results.append((root, binding))
            if limit is not None and len(results) >= limit:
                break
            if matcher.exhausted:
                break
    else:
        for eclass in egraph.classes():
            if roots is not None and eclass.id not in roots:
                continue
            for binding in match_root(eclass.id):
                results.append((eclass.id, binding))
            if limit is not None and len(results) >= limit:
                break
            if matcher.exhausted:
                break
    if counters is not None:
        counters["node_visits"] = (
            counters.get("node_visits", 0) + (work_budget - matcher.work)
        )
    return results
