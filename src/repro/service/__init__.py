"""Compile-as-a-service: the online half of the two-stage design.

The paper splits compiler generation into an expensive offline stage
and a cheap online compile; this package serves the online stage over
a socket so one registry of offline products answers all traffic:

- :mod:`repro.service.protocol` — the newline-delimited JSON wire
  format (kernels, options, results, content-address keys);
- :mod:`repro.service.registry` — the on-disk artifact registry,
  result cache, and expansion-cache warm layer;
- :mod:`repro.service.server` — the asyncio serve loop
  (``repro-serve``): result cache → in-flight dedupe → batched
  ``compile_many``;
- :mod:`repro.service.client` — sync and async clients plus the
  quickstart CLI (``python -m repro.service.client``).

Operator documentation lives in ``docs/service.md``.
"""

# Exports resolve lazily (PEP 562) so ``python -m repro.service.client``
# and ``python -m repro.service.server`` don't import their own module a
# second time through this package (runpy's double-import warning).
_EXPORTS = {
    "AsyncCompileClient": "repro.service.client",
    "CompileClient": "repro.service.client",
    "ServiceError": "repro.service.client",
    "ProtocolError": "repro.service.protocol",
    "ArtifactRegistry": "repro.service.registry",
    "RegistryError": "repro.service.registry",
    "BackgroundServer": "repro.service.server",
    "CompileService": "repro.service.server",
    "ServiceConfig": "repro.service.server",
    "serve": "repro.service.server",
}


def __getattr__(name: str):
    """Import the defining submodule on first access to an export."""
    if name in _EXPORTS:
        import importlib

        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__() -> list:
    """Advertise lazy exports to ``dir()`` and tab completion."""
    return sorted(list(globals()) + list(_EXPORTS))


__all__ = [
    "ArtifactRegistry",
    "AsyncCompileClient",
    "BackgroundServer",
    "CompileClient",
    "CompileService",
    "ProtocolError",
    "RegistryError",
    "ServiceConfig",
    "ServiceError",
    "serve",
]
