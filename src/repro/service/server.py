"""The async compile server: ``repro-serve``.

A long-running, stdlib-only asyncio TCP server speaking the
newline-delimited JSON protocol (:mod:`repro.service.protocol`).  One
process serves compile requests for every ISA the backing
:class:`~repro.service.registry.ArtifactRegistry` can resolve,
amortizing the expensive offline stage across all traffic — the
paper's two-stage split turned into a service.

Request handling is three-tiered, cheapest first:

1. **result cache** — a repeat request (same artifact fingerprint,
   kernel spec hash, and options) is answered from the registry's
   content-addressed result store without touching the compile pool;
2. **in-flight dedupe** — concurrent identical requests share one
   compile: the first creates a future keyed by the result key,
   later arrivals await the same future;
3. **batched compile** — cache misses queue up; a batcher task
   collects waiting jobs for a short window, groups them by
   (compiler, options), and runs each group through the existing
   :func:`~repro.compiler.pipeline.compile_many` phase-pipelined
   pool.  A failing kernel is isolated by per-kernel retry so one bad
   request never poisons its batchmates.

Every request and batch is tracer-recorded (``service.request``,
``service.batch``) so ``trace_report`` can roll up queue wait, batch
size, and hit rates in its ``== service ==`` section.  Operational
semantics (protocol, registry layout, failure modes, capacity
planning) are documented in ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
import threading
import time

from repro.obs import current_tracer

from repro.service import protocol
from repro.service.registry import ArtifactRegistry, RegistryError

__all__ = [
    "BackgroundServer",
    "CompileService",
    "DEFAULT_PORT",
    "ServiceConfig",
    "main",
    "serve",
]

#: Default TCP port (overridden by ``REPRO_SERVICE_PORT``).
DEFAULT_PORT = 7341


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}")


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}")


class ServiceConfig:
    """Tunable knobs of one server process.

    Defaults come from the environment (``REPRO_SERVICE_PORT``,
    ``REPRO_SERVICE_WORKERS``, ``REPRO_SERVICE_TIMEOUT`` — see
    ``docs/env_flags.md``); constructor arguments override.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: "int | None" = None,
        workers: "int | None" = None,
        batch_window: float = 0.02,
        max_batch: int = 16,
        request_timeout: "float | None" = None,
    ):
        """``port`` 0 asks the OS for a free port (tests);
        ``workers`` ≤ 1 compiles batches serially in the server
        process; ``batch_window`` is how long the batcher waits to
        coalesce more jobs after the first (seconds)."""
        self.host = host
        self.port = (
            port
            if port is not None
            else _env_int("REPRO_SERVICE_PORT", DEFAULT_PORT)
        )
        self.workers = (
            workers
            if workers is not None
            else _env_int("REPRO_SERVICE_WORKERS", 1)
        )
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.request_timeout = (
            request_timeout
            if request_timeout is not None
            else _env_float("REPRO_SERVICE_TIMEOUT", 120.0)
        )


class _Job:
    """One queued compile: request context plus its shared future."""

    __slots__ = (
        "key",
        "isa",
        "program",
        "spec_hash",
        "entry",
        "options",
        "opts_digest",
        "future",
        "enqueued",
        "dequeued",
    )

    def __init__(
        self, key, isa, program, spec_hash, entry, options, opts_digest, future
    ):
        self.key = key
        self.isa = isa
        self.program = program
        self.spec_hash = spec_hash
        self.entry = entry
        self.options = options
        self.opts_digest = opts_digest
        self.future = future
        self.enqueued = time.perf_counter()
        self.dequeued = self.enqueued


class CompileService:
    """The serve loop: connections, dedupe, batcher, and counters.

    Create one, then either ``asyncio.run(service.run())`` (what
    :func:`serve` and the CLI do) or drive it from a background
    thread via :class:`BackgroundServer` (what the tests and the
    load-generator benchmark do).
    """

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        registry: "ArtifactRegistry | None" = None,
    ):
        """``registry`` defaults to the environment-resolved root
        (``REPRO_SERVICE_CACHE``).  The constructor does not touch the
        environment; the foreground entry points (:func:`serve`, the
        CLI) additionally wire the registry's ``expansion/`` directory
        in as the compile pipeline's warm layer via
        ``REPRO_EXPANSION_CACHE`` unless the operator set it."""
        self.config = config or ServiceConfig()
        self.registry = registry or ArtifactRegistry()
        self.port: "int | None" = None  # actual port once listening
        self.requests = 0
        self.compile_requests = 0
        self.cache_hits = 0
        self.dedup_hits = 0
        self.compiled = 0
        self.batches = 0
        self.errors = 0
        self._queue: "asyncio.Queue[_Job]" = asyncio.Queue()
        self._inflight: dict = {}
        self._writers: set = set()
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._stop = asyncio.Event()
        self._ready = asyncio.Event()

    # -- lifecycle -------------------------------------------------------

    async def run(self) -> None:
        """Serve until :meth:`request_stop` (or a ``shutdown`` op).

        Shutdown is graceful: the listener closes first, every
        already-accepted request drains through the batcher and gets
        its response, then connections close and the loop returns.
        """
        server = await asyncio.start_server(
            self._handle_conn, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        batcher = asyncio.create_task(self._batcher())
        self._ready.set()
        current_tracer().record(
            "service.start", 0.0, host=self.config.host, port=self.port
        )
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            await self._idle.wait()  # drain accepted requests
            batcher.cancel()
            for writer in list(self._writers):
                writer.close()
            self._ready.clear()
            current_tracer().record(
                "service.stop", 0.0, requests=self.requests
            )

    def request_stop(self) -> None:
        """Begin graceful shutdown (same effect as a ``shutdown`` op)."""
        self._stop.set()

    # -- connection handling ---------------------------------------------

    async def _handle_conn(self, reader, writer):
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                self._active += 1
                self._idle.clear()
                try:
                    response = await self._handle_line(line)
                    writer.write(protocol.encode_message(response))
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
                finally:
                    self._active -= 1
                    if self._active == 0:
                        self._idle.set()
        finally:
            self._writers.discard(writer)
            writer.close()

    async def _handle_line(self, line: bytes) -> dict:
        self.requests += 1
        try:
            message = protocol.decode_message(line)
        except protocol.ProtocolError as exc:
            return self._error("protocol", str(exc))
        op = message.get("op")
        request_id = message.get("id")
        try:
            if op == "ping":
                response = {
                    "ok": True,
                    "op": "ping",
                    "protocol": protocol.PROTOCOL_VERSION,
                }
            elif op == "stats":
                response = {"ok": True, "op": "stats", "stats": await self._stats()}
            elif op == "shutdown":
                response = {
                    "ok": True,
                    "op": "shutdown",
                    "pending": len(self._inflight),
                }
                self._stop.set()
            elif op == "compile":
                response = await self._handle_compile(message)
            else:
                response = self._error("protocol", f"unknown op {op!r}")
        except protocol.ProtocolError as exc:
            response = self._error("protocol", str(exc))
        except RegistryError as exc:
            response = self._error("registry", str(exc))
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # a bug must answer, not hang clients
            response = self._error("internal", f"{type(exc).__name__}: {exc}")
        if request_id is not None:
            response["id"] = request_id
        if not response.get("ok"):
            self.errors += 1
        return response

    def _error(self, kind: str, message: str) -> dict:
        return {"ok": False, "error": {"kind": kind, "message": message}}

    # -- the compile op --------------------------------------------------

    async def _handle_compile(self, message: dict) -> dict:
        from repro.compiler.pipeline import KernelCompileError
        from repro.kernels.specs import kernel_spec_hash

        t0 = time.perf_counter()
        self.compile_requests += 1
        if "kernel" not in message:
            raise protocol.ProtocolError("compile request needs a kernel")
        program = protocol.kernel_from_wire(message["kernel"])
        isa = str(message.get("isa", "fusion-g3"))
        entry = await asyncio.to_thread(self.registry.entry_for, isa)
        explicit = message.get("options")
        options = (
            protocol.options_from_wire(explicit)
            if explicit is not None
            else None
        )
        resolved = options if options is not None else entry.compiler.options
        opts_digest = protocol.options_digest(resolved)
        spec_hash = kernel_spec_hash(program)
        key = protocol.result_key(entry.fingerprint, spec_hash, opts_digest)

        cached = await asyncio.to_thread(self.registry.load_result, key)
        if cached is not None:
            self.cache_hits += 1
            current_tracer().record(
                "service.request",
                time.perf_counter() - t0,
                kernel=program.name,
                cache_hit=True,
                deduped=False,
                queue_s=0.0,
            )
            return {
                "ok": True,
                "result": cached,
                "cached": True,
                "deduped": False,
            }

        deduped = key in self._inflight
        if deduped:
            self.dedup_hits += 1
            future = self._inflight[key]
            job = None
        else:
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            job = _Job(
                key, isa, program, spec_hash, entry, options, opts_digest, future
            )
            await self._queue.put(job)

        try:
            payload = await asyncio.wait_for(
                asyncio.shield(future), self.config.request_timeout
            )
        except asyncio.TimeoutError:
            return self._error(
                "timeout",
                f"compile of {program.name!r} exceeded "
                f"{self.config.request_timeout}s",
            )
        except KernelCompileError as exc:
            return self._error("compile", str(exc))
        queue_s = (job.dequeued - job.enqueued) if job is not None else 0.0
        current_tracer().record(
            "service.request",
            time.perf_counter() - t0,
            kernel=program.name,
            cache_hit=False,
            deduped=deduped,
            queue_s=queue_s,
        )
        return {
            "ok": True,
            "result": payload,
            "cached": False,
            "deduped": deduped,
        }

    # -- the batcher -----------------------------------------------------

    async def _batcher(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            job = await self._queue.get()
            batch = [job]
            deadline = loop.time() + self.config.batch_window
            while len(batch) < self.config.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            now = time.perf_counter()
            for j in batch:
                j.dequeued = now
            # Group by (compiler identity, resolved-options digest):
            # compile_many takes one compiler and one options value per
            # call, and the digest makes equal-but-distinct options
            # objects coalesce.
            groups: dict = {}
            for j in batch:
                groups.setdefault(
                    (id(j.entry.compiler), j.opts_digest), []
                ).append(j)
            for group in groups.values():
                await self._compile_group(group)
            self.batches += 1

    async def _compile_group(self, group: "list[_Job]") -> None:
        from repro.compiler.pipeline import compile_many

        entry = group[0].entry
        options = group[0].options
        t0 = time.perf_counter()
        jobs = self.config.workers if len(group) > 1 else 1
        try:
            compiled = await asyncio.to_thread(
                compile_many,
                entry.compiler,
                [j.program for j in group],
                options,
                True,
                jobs,
            )
        except Exception:
            # One bad kernel poisons compile_many's whole batch; retry
            # each kernel alone so only the guilty request fails.
            compiled = None
        if compiled is not None:
            await self._resolve(group, compiled)
        else:
            for j in group:
                try:
                    result = await asyncio.to_thread(
                        compile_many,
                        entry.compiler,
                        [j.program],
                        options,
                        True,
                        1,
                    )
                except Exception as exc:
                    self._inflight.pop(j.key, None)
                    if not j.future.done():
                        j.future.set_exception(exc)
                else:
                    await self._resolve([j], result)
        current_tracer().record(
            "service.batch",
            time.perf_counter() - t0,
            n_kernels=len(group),
            isa=entry.isa,
        )

    async def _resolve(self, group, compiled) -> None:
        for j, kernel in zip(group, compiled):
            payload = protocol.compiled_to_wire(kernel, j.spec_hash)
            await asyncio.to_thread(self.registry.store_result, j.key, payload)
            self.compiled += 1
            self._inflight.pop(j.key, None)
            if not j.future.done():
                j.future.set_result(payload)

    # -- introspection ---------------------------------------------------

    async def _stats(self) -> dict:
        registry = await asyncio.to_thread(self.registry.stats)
        return {
            "requests": self.requests,
            "compile_requests": self.compile_requests,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "compiled": self.compiled,
            "batches": self.batches,
            "errors": self.errors,
            "queue_depth": self._queue.qsize(),
            "inflight": len(self._inflight),
            "registry": registry,
        }


def _wire_warm_layer(registry: ArtifactRegistry) -> None:
    """Point the compile pipeline's expansion cache at the registry.

    The registry's ``expansion/`` directory becomes the per-kernel
    warm layer for every compile this process runs, unless the
    operator already set ``REPRO_EXPANSION_CACHE`` themselves.  Only
    the foreground entry points call this — embedded services
    (tests, benchmarks) must not mutate process-global state.
    """
    os.environ.setdefault(
        "REPRO_EXPANSION_CACHE", str(registry.root / "expansion")
    )


def serve(
    config: "ServiceConfig | None" = None,
    registry: "ArtifactRegistry | None" = None,
) -> None:
    """Run a compile server in the foreground until shutdown."""
    service = CompileService(config=config, registry=registry)
    _wire_warm_layer(service.registry)
    asyncio.run(service.run())


class BackgroundServer:
    """A compile server on a daemon thread — tests and benchmarks.

    Context manager: entering starts the server (port 0 picks a free
    port; read the resolved one off ``.port``), exiting requests a
    graceful shutdown and joins the thread.
    """

    def __init__(
        self,
        config: "ServiceConfig | None" = None,
        registry: "ArtifactRegistry | None" = None,
    ):
        """Arguments are forwarded to :class:`CompileService`."""
        self._config = config or ServiceConfig(port=0)
        self._registry = registry
        self.service: "CompileService | None" = None
        self.port: "int | None" = None
        self._thread: "threading.Thread | None" = None
        self._loop = None
        self._started = threading.Event()

    def _main(self) -> None:
        async def body():
            self.service = CompileService(
                config=self._config, registry=self._registry
            )
            self._loop = asyncio.get_running_loop()
            task = asyncio.create_task(self.service.run())
            await self.service._ready.wait()
            self.port = self.service.port
            self._started.set()
            await task

        try:
            asyncio.run(body())
        finally:
            self._started.set()  # never leave __enter__ hanging

    def __enter__(self) -> "BackgroundServer":
        """Start the server thread; returns once it is accepting."""
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        self._started.wait(timeout=30)
        if self.port is None:
            raise RuntimeError("compile server failed to start")
        return self

    def __exit__(self, *exc) -> None:
        """Gracefully stop the server and join its thread."""
        self.stop()

    def stop(self) -> None:
        """Request shutdown and wait for the serve loop to drain."""
        if self.service is not None and self._loop is not None:
            try:
                self._loop.call_soon_threadsafe(self.service.request_stop)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=30)


def main(argv=None) -> int:
    """``repro-serve``: start a compile server from the command line."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Long-running compile server: newline-delimited JSON over "
            "TCP, backed by the on-disk artifact registry."
        ),
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=f"TCP port (default REPRO_SERVICE_PORT or {DEFAULT_PORT}; 0 = any)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="compile pool size per batch (default REPRO_SERVICE_WORKERS or 1)",
    )
    parser.add_argument(
        "--registry",
        default=None,
        help="registry root (default REPRO_SERVICE_CACHE or the artifact "
        "cache's service/ subdirectory)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-request compile timeout in seconds "
        "(default REPRO_SERVICE_TIMEOUT or 120)",
    )
    args = parser.parse_args(argv)
    registry = (
        ArtifactRegistry(args.registry) if args.registry else ArtifactRegistry()
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        request_timeout=args.timeout,
    )
    service = CompileService(config=config, registry=registry)
    _wire_warm_layer(service.registry)

    async def announced():
        task = asyncio.create_task(service.run())
        await service._ready.wait()
        print(
            f"repro-serve: listening on {config.host}:{service.port} "
            f"(registry {service.registry.root})",
            flush=True,
        )
        await task

    try:
        asyncio.run(announced())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
