"""Clients for the compile service, sync and async, plus a tiny CLI.

The sync :class:`CompileClient` is a plain-socket client for scripts,
tests, and the load-generator benchmark; the async
:class:`AsyncCompileClient` speaks the same protocol over asyncio
streams for callers already inside an event loop.  Both hold one
persistent connection and frame requests as newline-delimited JSON
(:mod:`repro.service.protocol`).

The sync client retries transport failures by reconnecting and
*resending* the request — safe against double-compiles because the
server dedupes in-flight requests and answers repeats from its result
cache, so a resend is at worst a cache hit.

Run ``python -m repro.service.client --kernel qprod`` against a live
server for the quickstart flow (trace a suite kernel locally, compile
it remotely, print the result summary) — see ``docs/service.md``.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys

from repro.service import protocol
from repro.service.server import DEFAULT_PORT, _env_float, _env_int

__all__ = [
    "AsyncCompileClient",
    "CompileClient",
    "ServiceError",
    "main",
]


class ServiceError(RuntimeError):
    """The server answered with an error response."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message


def _raise_on_error(response: dict) -> dict:
    if not isinstance(response, dict):
        raise ServiceError("protocol", f"bad response: {response!r}")
    if not response.get("ok"):
        error = response.get("error") or {}
        raise ServiceError(
            str(error.get("kind", "unknown")),
            str(error.get("message", "unspecified server error")),
        )
    return response


def _kernel_wire(kernel) -> dict:
    """Accept a traced program, a suite instance, or a ready wire dict."""
    if isinstance(kernel, dict):
        return kernel
    program = getattr(kernel, "program", kernel)  # KernelInstance unwrap
    return protocol.kernel_to_wire(program)


class CompileClient:
    """Synchronous client: one socket, blocking requests, auto-retry.

    ``timeout`` is the per-request socket timeout (defaults to
    ``REPRO_SERVICE_TIMEOUT`` + slack so the server's own compile
    timeout fires first); ``retries`` is how many times a transport
    failure is retried on a fresh connection before raising.  Usable
    as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: "int | None" = None,
        timeout: "float | None" = None,
        retries: int = 2,
    ):
        """``port`` defaults to ``REPRO_SERVICE_PORT`` (else 7341)."""
        self.host = host
        self.port = (
            port
            if port is not None
            else _env_int("REPRO_SERVICE_PORT", DEFAULT_PORT)
        )
        self.timeout = (
            timeout
            if timeout is not None
            else _env_float("REPRO_SERVICE_TIMEOUT", 120.0) + 10.0
        )
        self.retries = retries
        self._sock: "socket.socket | None" = None
        self._file = None

    def __enter__(self) -> "CompileClient":
        """Connect eagerly (requests also connect lazily)."""
        self._connect()
        return self

    def __exit__(self, *exc) -> None:
        """Close the connection."""
        self.close()

    def _connect(self) -> None:
        self.close()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        self._file = self._sock.makefile("rb")

    def close(self) -> None:
        """Drop the connection (it reopens on the next request)."""
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def request(self, message: dict) -> dict:
        """Send one message, return the (ok-checked) response.

        Transport failures — connection refused mid-stream, reset,
        EOF before a response line — reconnect and resend up to
        ``retries`` times; the final failure re-raises.
        """
        last: "Exception | None" = None
        for attempt in range(self.retries + 1):
            try:
                if self._sock is None:
                    self._connect()
                self._sock.sendall(protocol.encode_message(message))
                line = self._file.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                return _raise_on_error(protocol.decode_message(line))
            except (ConnectionError, socket.timeout, OSError) as exc:
                last = exc
                self.close()
        raise ConnectionError(
            f"request failed after {self.retries + 1} attempts: {last}"
        )

    def ping(self) -> dict:
        """Round-trip a ``ping``; returns the server's response."""
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        """The server's counters and registry contents."""
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> dict:
        """Ask the server to drain and exit; returns its last response."""
        return self.request({"op": "shutdown"})

    def compile(
        self,
        kernel,
        isa: str = "fusion-g3",
        options=None,
    ) -> dict:
        """Compile one kernel; returns the full ``ok`` response.

        ``kernel`` may be a traced
        :class:`~repro.compiler.frontend.KernelProgram`, a suite
        :class:`~repro.kernels.specs.KernelInstance`, or an
        already-encoded wire dict.  The response carries ``result``
        (the compiled payload), plus ``cached``/``deduped`` flags.
        """
        message = {
            "op": "compile",
            "isa": isa,
            "kernel": _kernel_wire(kernel),
        }
        if options is not None:
            message["options"] = protocol.options_to_wire(options)
        return self.request(message)


class AsyncCompileClient:
    """Asyncio client over one stream connection.

    Mirrors :class:`CompileClient`'s surface with coroutines; no
    automatic retry (async callers compose their own). Usable as an
    async context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: "int | None" = None,
    ):
        """``port`` defaults to ``REPRO_SERVICE_PORT`` (else 7341)."""
        self.host = host
        self.port = (
            port
            if port is not None
            else _env_int("REPRO_SERVICE_PORT", DEFAULT_PORT)
        )
        self._reader = None
        self._writer = None

    async def __aenter__(self) -> "AsyncCompileClient":
        """Open the connection."""
        await self.connect()
        return self

    async def __aexit__(self, *exc) -> None:
        """Close the connection."""
        await self.aclose()

    async def connect(self) -> None:
        """Open (or reopen) the stream connection."""
        import asyncio

        await self.aclose()
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def aclose(self) -> None:
        """Close the stream connection, if open."""
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(self, message: dict) -> dict:
        """Send one message, await the (ok-checked) response."""
        if self._writer is None:
            await self.connect()
        self._writer.write(protocol.encode_message(message))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _raise_on_error(protocol.decode_message(line))

    async def ping(self) -> dict:
        """Round-trip a ``ping``."""
        return await self.request({"op": "ping"})

    async def compile(self, kernel, isa: str = "fusion-g3", options=None) -> dict:
        """Compile one kernel; returns the full ``ok`` response."""
        message = {
            "op": "compile",
            "isa": isa,
            "kernel": _kernel_wire(kernel),
        }
        if options is not None:
            message["options"] = protocol.options_to_wire(options)
        return await self.request(message)


def _suite_kernel(key: str, width: int | None = None):
    from repro.kernels.suite import default_suite

    suite = default_suite(width)
    for instance in suite:
        if instance.key == key:
            return instance
    known = ", ".join(sorted(i.key for i in suite))
    raise SystemExit(f"unknown suite kernel {key!r} (known: {known})")


def main(argv=None) -> int:
    """``python -m repro.service.client``: the quickstart client flow."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.client",
        description="Compile a suite kernel against a running repro-serve.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=None,
        help=f"server port (default REPRO_SERVICE_PORT or {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--kernel", default=None,
        help="suite kernel key to compile (e.g. qprod, matmul-2x2x2)",
    )
    parser.add_argument(
        "--isa", default="fusion-g3", help="registry ISA name"
    )
    parser.add_argument(
        "--width", type=int, default=None,
        help="vector width to trace the suite kernel at (must match "
        "the --isa spec's width; default REPRO_VECTOR_WIDTH or 4)",
    )
    parser.add_argument(
        "--ping", action="store_true", help="just check the server is up"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print server/registry stats"
    )
    parser.add_argument(
        "--shutdown", action="store_true", help="gracefully stop the server"
    )
    args = parser.parse_args(argv)
    client = CompileClient(host=args.host, port=args.port)
    did_something = False
    with client:
        if args.ping:
            response = client.ping()
            print(f"server up (protocol v{response['protocol']})")
            did_something = True
        if args.kernel:
            instance = _suite_kernel(args.kernel, args.width)
            response = client.compile(instance, isa=args.isa)
            result = response["result"]
            source = "cache" if response["cached"] else (
                "dedupe" if response["deduped"] else "compile"
            )
            print(
                f"{result['kernel']}: cost {result['initial_cost']:.1f} -> "
                f"{result['final_cost']:.1f} in {result['n_rounds']} rounds, "
                f"{len(result['instructions'])} instructions [{source}]"
            )
            did_something = True
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            did_something = True
        if args.shutdown:
            response = client.shutdown()
            print(f"server draining ({response['pending']} in flight)")
            did_something = True
    if not did_something:
        parser.error("nothing to do: pass --ping, --kernel, --stats, or --shutdown")
    return 0


if __name__ == "__main__":
    sys.exit(main())
