"""The service's on-disk artifact registry and result cache.

The registry is the durable half of the compile service: one
directory holding

- ``artifacts/<fingerprint>.json`` — published
  :class:`~repro.core.artifact.CompilerArtifact` files, the whole
  offline product per ISA.  Lookup is by the *semantics-probe* spec
  hash (:func:`~repro.core.artifact.spec_semantics_hash`), so a
  client that names an ISA gets a warm
  :class:`~repro.core.framework.GeneratedCompiler` with zero offline
  work, and a stale artifact can never compile against changed
  instruction behaviour;
- ``results/<key>.json`` — the content-addressed result cache, one
  finished compile answer per :func:`~repro.service.protocol.result_key`;
- ``expansion/`` — the PR 7 :class:`~repro.core.cache.ExpansionCache`
  as the per-kernel warm layer, so even a result-cache *miss* on a
  known kernel restores phase-boundary e-graph snapshots instead of
  re-running saturation.

All three layers share the repo-wide corrupt-entry policy
(:func:`~repro.core.cache.corrupt_entry_miss`): a truncated or
garbled file is a tracer-logged miss with a clean rebuild, never an
exception — a damaged registry must not take down a serve loop.

The registry resolves ISA *names* to executable specs through a
table of spec factories (:data:`KNOWN_SPECS` plus any passed to the
constructor) because lane-semantics functions cannot travel over the
wire; publishing an artifact for a custom ISA means registering its
factory with the server process (see ``docs/service.md``).
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path

from repro.core.artifact import (
    ArtifactError,
    CompilerArtifact,
    default_cache_dir,
    spec_semantics_hash,
)
from repro.core.cache import ExpansionCache, corrupt_entry_miss
from repro.isa import customized_spec, fusion_g3_spec
from repro.isa.families import bundled_spec_factories
from repro.isa.spec import IsaSpec
from repro.obs import current_tracer

__all__ = [
    "ArtifactRegistry",
    "KNOWN_SPECS",
    "RegistryEntry",
    "RegistryError",
    "service_cache_dir",
]


class RegistryError(ValueError):
    """A registry lookup cannot be satisfied (unknown ISA, no artifact)."""


def _fusion_g3_full():
    return customized_spec(fusion_g3_spec(), mulsub=True, sqrtsgn=True)


#: ISA names the service resolves out of the box, each mapping to a
#: zero-argument spec factory: the two historical fusion-g3 variants
#: plus every bundled ISA-family/width combination
#: (:func:`repro.isa.families.bundled_spec_factories` — ``avx-like-w8``,
#: ``masked-w16``, ...).  Extend per-process via
#: ``ArtifactRegistry(..., specs={...})`` for custom ISAs.
KNOWN_SPECS = {
    "fusion-g3": fusion_g3_spec,
    "fusion-g3+mulsub+sqrtsgn": _fusion_g3_full,
    **bundled_spec_factories(),
}


def service_cache_dir() -> Path:
    """The registry root (``REPRO_SERVICE_CACHE`` overrides).

    Defaults to the ``service/`` subdirectory of the artifact cache
    (:func:`~repro.core.artifact.default_cache_dir`), so the service's
    state lives next to the offline products it serves.
    """
    env = os.environ.get("REPRO_SERVICE_CACHE", "").strip()
    if env:
        return Path(env)
    return default_cache_dir() / "service"


_tmp_counter = itertools.count()


def _tmp_suffix() -> str:
    """A per-call-unique temp suffix for atomic writes.

    The pid alone is not enough: two executor threads publishing the
    same fingerprint concurrently would share one temp path, and the
    loser's ``os.replace`` raises ``FileNotFoundError`` after the
    winner renames it away.
    """
    return ".tmp-%d-%d" % (os.getpid(), next(_tmp_counter))


class RegistryEntry:
    """One resolved ISA: its spec, warm compiler, and fingerprint.

    What :meth:`ArtifactRegistry.entry_for` memoizes per semantics
    hash — the fingerprint is the artifact identity the service's
    result-cache keys hash in.
    """

    def __init__(self, isa: str, spec: IsaSpec, compiler, fingerprint: str):
        self.isa = isa
        self.spec = spec
        self.compiler = compiler
        self.fingerprint = fingerprint


class ArtifactRegistry:
    """Artifacts, compiled-result cache, and warm layer for one root.

    Stateless on disk, memoizing in memory: resolved
    ``GeneratedCompiler`` instances are kept per artifact fingerprint
    so repeated requests for the same ISA skip even the JSON parse.
    """

    def __init__(
        self,
        root: "Path | str | None" = None,
        specs: "dict | None" = None,
    ):
        """``root`` defaults to :func:`service_cache_dir`; ``specs``
        adds per-process ISA-name → spec-factory entries on top of
        :data:`KNOWN_SPECS`."""
        self.root = Path(root) if root is not None else service_cache_dir()
        self.specs = dict(KNOWN_SPECS)
        if specs:
            self.specs.update(specs)
        self._compilers: dict = {}
        self._spec_cache: dict = {}

    # -- layout ----------------------------------------------------------

    @property
    def artifacts_dir(self) -> Path:
        """Where published artifacts live."""
        return self.root / "artifacts"

    @property
    def results_dir(self) -> Path:
        """Where cached compile results live."""
        return self.root / "results"

    def expansion_cache(self) -> ExpansionCache:
        """The registry's per-kernel warm layer (phase snapshots)."""
        return ExpansionCache(self.root / "expansion")

    def artifact_path(self, fingerprint: str) -> Path:
        """The file a given artifact fingerprint is published at."""
        return self.artifacts_dir / f"{fingerprint}.json"

    def result_path(self, key: str) -> Path:
        """The file a given result key is cached at."""
        return self.results_dir / f"{key}.json"

    # -- ISA resolution --------------------------------------------------

    def spec_for(self, isa: str) -> IsaSpec:
        """The executable spec for an ISA name.

        Raises :class:`RegistryError` for names with no registered
        factory — the server cannot invent lane semantics.
        """
        if isa not in self.specs:
            known = ", ".join(sorted(self.specs))
            raise RegistryError(
                f"unknown ISA {isa!r} (known: {known})"
            )
        if isa not in self._spec_cache:
            self._spec_cache[isa] = self.specs[isa]()
        return self._spec_cache[isa]

    def publish(self, artifact: CompilerArtifact) -> Path:
        """Write an artifact into the registry; returns its path.

        The write is atomic (temp file + rename) so a concurrently
        serving process never reads a torn artifact.
        """
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        path = self.artifact_path(artifact.fingerprint)
        tmp = path.with_suffix(_tmp_suffix())
        tmp.write_text(artifact.to_json())
        os.replace(tmp, path)
        current_tracer().record(
            "registry.publish", 0.0,
            fingerprint=artifact.fingerprint, isa=artifact.isa_name,
        )
        return path

    def find_artifact(self, spec: IsaSpec) -> "CompilerArtifact | None":
        """The newest published artifact matching ``spec``'s semantics.

        Scans ``artifacts/`` and filters on the semantics-probe hash;
        corrupt files are tracer-logged misses and skipped.  Among
        multiple matches (several synthesis configs for one ISA) the
        most recently *created* wins.
        """
        want = spec_semantics_hash(spec)
        best: CompilerArtifact | None = None
        if not self.artifacts_dir.is_dir():
            return None
        for path in sorted(self.artifacts_dir.glob("*.json")):
            try:
                artifact = CompilerArtifact.load(path)
            except ArtifactError as exc:
                corrupt_entry_miss("registry", path, exc)
                continue
            if artifact.spec_hash != want:
                continue
            if best is None or artifact.created > best.created:
                best = artifact
        return best

    def entry_for(self, isa: str) -> RegistryEntry:
        """The warm :class:`RegistryEntry` for an ISA name.

        Resolution order: in-memory memo → published artifact whose
        semantics hash matches the named spec → (for bundled
        family/width names only) a compiler bootstrapped from the
        shipped pregenerated rules — loaded directly for the base ISA,
        re-generalized at the target width for every other family
        (:func:`~repro.core.pregen.family_compiler`) — which is
        immediately published so the next process finds it as an
        artifact.  No path runs rule synthesis.
        """
        from repro.isa.families import bundled_spec_factories

        spec = self.spec_for(isa)
        memo_key = spec_semantics_hash(spec)
        if memo_key in self._compilers:
            return self._compilers[memo_key]
        artifact = self.find_artifact(spec)
        if artifact is not None:
            compiler = artifact.to_compiler(spec)
            current_tracer().record(
                "registry.artifact_hit", 0.0,
                isa=isa, fingerprint=artifact.fingerprint,
            )
        elif isa in bundled_spec_factories():
            from repro.core.pregen import family_compiler

            compiler = family_compiler(spec)
            artifact = compiler.to_artifact()
            self.publish(artifact)
            current_tracer().record(
                "registry.bootstrap", 0.0, isa=isa
            )
        else:
            raise RegistryError(
                f"no artifact published for ISA {isa!r} "
                f"(semantics {memo_key}); run `repro-artifact build` "
                "and publish into the registry"
            )
        entry = RegistryEntry(isa, spec, compiler, artifact.fingerprint)
        self._compilers[memo_key] = entry
        return entry

    def compiler_for(self, isa: str):
        """A warm ``GeneratedCompiler`` for an ISA name (see
        :meth:`entry_for`)."""
        return self.entry_for(isa).compiler

    # -- result cache ----------------------------------------------------

    def load_result(self, key: str) -> "dict | None":
        """The cached result payload for ``key``, or ``None``.

        A corrupt or truncated entry is a tracer-logged miss
        (``registry.corrupt``) — the caller recompiles and overwrites.
        """
        path = self.result_path(key)
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            doc = json.loads(text)
            if not isinstance(doc, dict) or "payload" not in doc:
                raise ValueError("missing result payload")
            payload = doc["payload"]
            if not isinstance(payload, dict):
                raise ValueError("result payload is not an object")
        except ValueError as exc:
            corrupt_entry_miss("registry", path, exc)
            return None
        return payload

    def store_result(self, key: str, payload: dict) -> Path:
        """Cache a finished compile answer under ``key`` (atomic)."""
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self.result_path(key)
        doc = {"key": key, "payload": payload}
        tmp = path.with_suffix(_tmp_suffix())
        tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    # -- introspection ---------------------------------------------------

    def stats(self) -> dict:
        """Registry contents for CLIs and the server's ``stats`` op.

        Per-artifact summaries (fingerprint, ISA, rule count), result
        and expansion entry counts, and total bytes; corrupt artifacts
        are counted, not raised.
        """
        artifacts = []
        corrupt = 0
        if self.artifacts_dir.is_dir():
            for path in sorted(self.artifacts_dir.glob("*.json")):
                try:
                    artifact = CompilerArtifact.load(path)
                except ArtifactError:
                    corrupt += 1
                    continue
                artifacts.append(
                    {
                        "fingerprint": artifact.fingerprint,
                        "isa": artifact.isa_name,
                        "vector_width": artifact.vector_width,
                        "spec_hash": artifact.spec_hash,
                        "n_rules": len(artifact.ruleset),
                        "bytes": path.stat().st_size,
                    }
                )
        results = (
            sorted(p.name for p in self.results_dir.glob("*.json"))
            if self.results_dir.is_dir()
            else []
        )
        expansion = self.expansion_cache().stats()
        return {
            "root": str(self.root),
            "artifacts": artifacts,
            "corrupt_artifacts": corrupt,
            "n_results": len(results),
            "expansion_entries": expansion["entries"],
            "expansion_bytes": expansion["total_bytes"],
        }
