"""The compile-service wire protocol: newline-delimited JSON.

One request or response per line, each a single JSON object — the
simplest framing that composes with ``asyncio`` streams, ``nc``, and
any language's socket library.  The full message vocabulary (ops,
fields, error kinds) is specified with examples in
``docs/service.md``; this module owns the (de)serialization helpers
both ends share:

- **framing**: :func:`encode_message` / :func:`decode_message`;
- **kernels**: a traced :class:`~repro.compiler.frontend.KernelProgram`
  crosses the wire as ``{name, term (s-expression), output,
  output_len, arrays, width}`` (:func:`kernel_to_wire` /
  :func:`kernel_from_wire`) — functions cannot be serialized, but a
  traced program is pure data;
- **options**: :class:`~repro.compiler.compile.CompileOptions`
  round-trip through the same tolerant dict form the artifact format
  uses, plus :func:`options_digest` for content-addressing;
- **results**: a :class:`~repro.core.framework.CompiledKernel`
  flattens to the response payload (:func:`compiled_to_wire`) —
  compiled term, machine instructions, C source, costs — everything a
  client needs without the server shipping Python objects;
- **keys**: :func:`result_key` is the content address of one compile
  answer (artifact fingerprint × kernel spec hash × options digest),
  used for both the in-flight dedupe map and the persistent result
  cache.
"""

from __future__ import annotations

import hashlib
import json

from repro.compiler.compile import CompileOptions
from repro.compiler.frontend import KernelProgram
from repro.core.artifact import _options_from_dict, _options_to_dict

PROTOCOL_VERSION = 1

#: Maximum accepted line length (16 MiB) — a framing guard, not a
#: resource limit; a kernel spec or C-source payload is far smaller.
MAX_MESSAGE_BYTES = 16 * 1024 * 1024


class ProtocolError(ValueError):
    """A message violates the wire protocol (bad JSON, missing field)."""


def encode_message(message: dict) -> bytes:
    """Serialize one message as a newline-terminated JSON line."""
    if not isinstance(message, dict):
        raise ProtocolError(f"message must be a dict, got {message!r}")
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode_message(line: "bytes | str") -> dict:
    """Parse one wire line into a message dict.

    Raises :class:`ProtocolError` on malformed JSON, a non-object
    payload, or an oversized line — the server answers these with an
    error response rather than dropping the connection.
    """
    if isinstance(line, bytes):
        if len(line) > MAX_MESSAGE_BYTES:
            raise ProtocolError(
                f"message exceeds {MAX_MESSAGE_BYTES} bytes"
            )
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"message is not UTF-8: {exc}")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"message is not valid JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}"
        )
    return message


# ---------------------------------------------------------------------------
# kernels on the wire
# ---------------------------------------------------------------------------


def kernel_to_wire(program: KernelProgram) -> dict:
    """Flatten a traced kernel into its wire form.

    The normalized term travels as an s-expression; ``raw_term`` is
    deliberately dropped — the service compiles with the equality-
    saturation pipeline, which only consumes the canonical term.
    """
    from repro.lang.parser import to_sexpr

    return {
        "name": program.name,
        "term": to_sexpr(program.term),
        "output": program.output,
        "output_len": program.output_len,
        "arrays": {k: int(v) for k, v in program.arrays.items()},
        "width": program.width,
    }


def kernel_from_wire(data: dict) -> KernelProgram:
    """Rebuild a :class:`KernelProgram` from its wire form.

    Raises :class:`ProtocolError` on missing fields or an unparsable
    term, so a malformed compile request fails the *request*, not the
    server.
    """
    from repro.lang.parser import parse

    if not isinstance(data, dict):
        raise ProtocolError(f"kernel must be an object, got {data!r}")
    try:
        return KernelProgram(
            name=str(data["name"]),
            term=parse(data["term"]),
            output=str(data["output"]),
            output_len=int(data["output_len"]),
            arrays={
                str(k): int(v) for k, v in dict(data["arrays"]).items()
            },
            width=int(data["width"]),
        )
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed kernel spec: {exc}")


# ---------------------------------------------------------------------------
# options on the wire
# ---------------------------------------------------------------------------


def options_to_wire(options: CompileOptions) -> dict:
    """Compile options as the tolerant dict form artifacts use."""
    return _options_to_dict(options)


def options_from_wire(data: "dict | None") -> CompileOptions:
    """Rebuild :class:`CompileOptions` from a request's options field.

    ``None`` (field absent) means the server-side defaults; unknown
    keys from a newer client are dropped and missing keys fall back to
    the dataclass defaults, matching the artifact reader's tolerance.
    """
    if data is None:
        return CompileOptions()
    if not isinstance(data, dict):
        raise ProtocolError(f"options must be an object, got {data!r}")
    try:
        return _options_from_dict(data)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed options: {exc}")


def options_digest(options: CompileOptions) -> str:
    """Stable short hash of fully-resolved compile options."""
    blob = json.dumps(_options_to_dict(options), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# results on the wire
# ---------------------------------------------------------------------------


def result_key(
    fingerprint: str, kernel_hash: str, opts_digest: str
) -> str:
    """The content address of one compile answer.

    Everything that decides the compiled program is hashed in: the
    artifact fingerprint (ISA semantics + synthesis config + phase
    params + schedule come through it), the kernel's compile-surface
    hash, and the resolved options digest — plus the protocol version,
    so a format change can never serve a stale payload shape.
    """
    blob = f"v{PROTOCOL_VERSION}|{fingerprint}|{kernel_hash}|{opts_digest}"
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


def compiled_to_wire(compiled, spec_hash: str) -> dict:
    """Flatten a :class:`~repro.core.framework.CompiledKernel`.

    The response payload: identity (name, the request's kernel spec
    hash), the compiled vector term, the lowered machine instructions
    (one string each, in program order), the C rendering, and the
    report's headline numbers.  Two compiles produce byte-identical
    programs exactly when these dicts are equal.
    """
    from repro.lang.parser import to_sexpr

    report = compiled.report
    return {
        "kernel": compiled.name,
        "spec_hash": spec_hash,
        "initial_cost": report.initial_cost,
        "final_cost": report.final_cost,
        "n_rounds": len(report.rounds),
        "compiled_term": to_sexpr(compiled.compiled_term),
        "instructions": [
            str(instr) for instr in compiled.machine_program.instrs
        ],
        "c_source": compiled.c_source(),
        "output": compiled.output,
        "arrays": {k: int(v) for k, v in compiled.arrays.items()},
    }
