"""Candidate rewrite rules from cvec-equal term pairs.

Each enumeration pair ``(rep, newcomer)`` becomes up to two directed
candidate rules, after variable terms are turned into wildcard
patterns.  A direction is only proposed when every wildcard of the
right-hand side is bound on the left (``(* a 0) ~> 0`` is valid; the
reverse is not a rewrite rule).
"""

from __future__ import annotations

from repro.egraph.rewrite import Rewrite
from repro.lang import term as T
from repro.lang.parser import to_sexpr
from repro.lang.term import Term


def to_pattern(term: Term) -> Term:
    """Replace enumeration variables (symbols) with wildcards."""
    if T.is_symbol(term):
        return T.wildcard(term.payload)
    if not term.args:
        return term
    return T.make(
        term.op,
        *(to_pattern(arg) for arg in term.args),
        payload=term.payload,
    )


def canonical_wildcards(lhs: Term, rhs: Term) -> tuple[Term, Term]:
    """Rename wildcards to w0, w1, ... in lhs-first-occurrence order.

    Canonical naming makes structurally identical rules compare equal,
    so the pipeline can dedupe rules that arise from different pairs.
    """
    from repro.lang.pattern import rename_wildcards, wildcards_of

    order: list[str] = []
    for pattern in (lhs, rhs):
        for name in wildcards_of(pattern):
            if name not in order:
                order.append(name)
    mapping = {name: f"w{i}" for i, name in enumerate(order)}
    return rename_wildcards(lhs, mapping), rename_wildcards(rhs, mapping)


def orient_pair(a: Term, b: Term) -> list[tuple[Term, Term]]:
    """The wildcard-sound directions of a term pair, as patterns."""
    pa, pb = to_pattern(a), to_pattern(b)
    from repro.lang.pattern import wildcards_of

    wa, wb = set(wildcards_of(pa)), set(wildcards_of(pb))
    directions: list[tuple[Term, Term]] = []
    if wb <= wa:
        directions.append(canonical_wildcards(pa, pb))
    if wa <= wb:
        directions.append(canonical_wildcards(pb, pa))
    return [(lhs, rhs) for lhs, rhs in directions if lhs != rhs]


def candidate_rules(pairs: list[tuple[Term, Term]]) -> list[Rewrite]:
    """Directed, deduplicated candidates from enumeration pairs.

    Candidates are ordered smallest-first (by total pattern size, then
    text) so minimization considers the most general, most composable
    rules before the "shortcut" rules §5.2 discusses.
    """
    seen: set[tuple[Term, Term]] = set()
    rules: list[Rewrite] = []
    for a, b in pairs:
        for lhs, rhs in orient_pair(a, b):
            key = (lhs, rhs)
            if key in seen:
                continue
            seen.add(key)
            rules.append(
                Rewrite(f"syn-{len(rules)}", lhs, rhs)
            )
    rules.sort(key=_rule_order)
    return [
        Rewrite(f"syn-{i}", rule.lhs, rule.rhs)
        for i, rule in enumerate(rules)
    ]


def _rule_order(rule: Rewrite):
    """Smallest and most general first.

    Generality (fewer constant leaves) comes before text order so that
    ``(* 0 ?w0) => 0`` is accepted before ``(* 0 1) => 0``; the ground
    instance is then derivable and dropped by minimization.
    """
    size = T.term_size(rule.lhs) + T.term_size(rule.rhs)
    n_consts = sum(
        1
        for side in (rule.lhs, rule.rhs)
        for sub in T.subterms(side)
        if T.is_const(sub)
    )
    return (size, n_consts, to_sexpr(rule.lhs), to_sexpr(rule.rhs))
