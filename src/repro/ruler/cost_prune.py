"""Cost-aware dominated-rule pruning (the Daly et al. shrink).

Every rule a synthesis run keeps pays match cost in every phase of
every compile, forever — so beyond *soundness* (verification) and
*deductive novelty* (derivability minimization), the offline pipeline
asks a third question: does this rule ever win?  Following "Efficiently
Synthesizing Lowest Cost Rewrite Rules for Instruction Selection"
(Daly et al., PAPERS.md), a rule is **dominated** when an
already-kept rule with an equal-or-more-general LHS achieves an
equal-or-better cost delta under the ISA cost model: every program
point the dominated rule could improve, the keeper improves at least
as much, so the dominated rule never changes extraction and is pure
match-time overhead.

Three deliberate conservatisms keep pruning quality-neutral:

- pure *introduction* rules (bare-wildcard LHS, e.g. ``?x => (+ ?x
  0)``) are exempt on both sides of the relation: a bare wildcard
  matches every node, so "more general LHS" carries no information
  there, and these generative seeds are exactly the rules whose RHS
  structure matters most;
- every dominated rule must also be *derivable* from the survivors: a
  greedy batched derivability pass (deterministic saturation budgets,
  no wall-clock) rescues any dominated rule the kept set cannot
  re-derive, so pruning never removes deductive power — a dropped rule
  is both cost-dominated and a consequence of what remains;
- each ISA instruction keeps its cheapest introduction: if dominance
  would orphan an instruction (no kept cost-non-increasing rule whose
  RHS introduces it), the minimal-LHS introducer is rescued, so every
  custom/vector op stays reachable through its cheapest pattern.

Survivors are returned in their **input order** (a stable filter).
Dominance itself is decided on a delta-ranked scan, but the output
must not be re-sorted: synthesis feeds candidate orientation pairs
(``L => R`` next to ``R => L``) to the derivability shrink in
:mod:`repro.ruler.minimize`, whose greedy batches only spare rules
that share a batch — re-ordering by delta splits every pair across
batches and the shrink then drops each generative orientation as
equivalence-derivable from its own contraction, silently emptying the
expansion phase.

``REPRO_LEGACY_COSTPRUNE=1`` disables the stage everywhere (synthesis,
the shipped ruleset, family re-generalization) for differential runs
against the historical unpruned path.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass

from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import RunnerLimits
from repro.isa.spec import IsaSpec
from repro.lang import term as T
from repro.lang.term import Term, term_size
from repro.phases.cost import CostModel
from repro.ruler.stats import SynthesisPerf

# Derivability-rescue saturation budgets: iteration/node/match-work
# bounded (all deterministic), never wall-clock, so the pruned rule
# set cannot vary with machine load.  Tighter than the minimize-stage
# filter limits — rescue only needs shallow derivations, and it runs
# in the family-compiler bootstrap path.
_RESCUE_LIMITS = RunnerLimits(
    max_iterations=2,
    max_nodes=20_000,
    time_limit=float("inf"),
    match_limit=2000,
    ban_length=1,
    match_work=200_000,
)
_RESCUE_BATCH = 64


def legacy_costprune_requested() -> bool:
    """True when ``REPRO_LEGACY_COSTPRUNE`` asks for unpruned rulesets."""
    return os.environ.get(
        "REPRO_LEGACY_COSTPRUNE", ""
    ).strip().lower() in ("1", "true", "yes", "on")


def rule_delta(model: CostModel, rule: Rewrite) -> float:
    """The achievable cost delta ``C(lhs) - C(rhs)`` of one rule.

    Positive deltas are cost-decreasing rewrites (instruction
    selection, fusion); negative deltas are generative/expansion
    rewrites.  Wildcards are costed as unit leaves (Definition 1
    extends to patterns).
    """
    return model.term_cost(rule.lhs) - model.term_cost(rule.rhs)


def lhs_subsumes(general: Term, specific: Term) -> bool:
    """True when every instance of ``specific`` is one of ``general``.

    Pattern-over-pattern matching: wildcards in ``general`` bind whole
    subpatterns of ``specific`` (a repeated wildcard must bind equal
    subpatterns); concrete structure must match exactly.  Alpha-renamed
    patterns subsume each other.
    """
    binding: dict = {}
    stack = [(general, specific)]
    while stack:
        gen, spec = stack.pop()
        if T.is_wildcard(gen):
            bound = binding.get(gen.payload)
            if bound is None:
                binding[gen.payload] = spec
            elif bound != spec:
                return False
            continue
        if (
            gen.op != spec.op
            or gen.payload != spec.payload
            or len(gen.args) != len(spec.args)
        ):
            return False
        stack.extend(zip(gen.args, spec.args))
    return True


def cost_model_digest(spec: IsaSpec) -> str:
    """A short stable digest of the ISA cost model pruning ran under.

    Persisted with pruning provenance so a ruleset pruned under one
    cost model is never mistaken for one pruned under another (the
    dominance relation depends on every per-op cost).
    """
    model = CostModel(spec)
    doc = {
        "isa": spec.name,
        "width": spec.vector_width,
        "op_costs": sorted(spec.op_costs().items()),
        "leaf": model.leaf_cost,
        "vec_lane_literal": model.vec_lane_literal_cost,
        "vec_lane_compute": model.vec_lane_compute_cost,
        "vec_contiguous": model.vec_contiguous_cost,
        "concat": model.concat_cost,
        "masked": model.masked,
        "mask": model.mask_cost,
        "vec_unaligned": model.vec_unaligned_cost,
    }
    payload = json.dumps(doc, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class CostPruneReport:
    """What one dominance-pruning pass did.

    ``n_dominated`` counts rules actually dropped; ``n_rescued``
    counts dominated rules re-admitted (derivability + instruction
    coverage), so ``n_in == n_kept + n_dominated`` always holds.
    """

    n_in: int = 0
    n_kept: int = 0
    n_dominated: int = 0
    n_rescued: int = 0
    cost_model_digest: str = ""

    def as_dict(self) -> dict:
        """A JSON-ready provenance dict (artifact / bench payloads)."""
        return {
            "n_in": self.n_in,
            "n_kept": self.n_kept,
            "n_dominated": self.n_dominated,
            "n_rescued": self.n_rescued,
            "cost_model_digest": self.cost_model_digest,
        }


def _introduced_ops(rule: Rewrite) -> set:
    """Operators the rule's RHS mentions but its LHS does not."""

    def ops_of(side: Term) -> set:
        ops = set()
        stack = [side]
        while stack:
            node = stack.pop()
            if not T.is_leaf(node) and not T.is_wildcard(node):
                ops.add(node.op)
            stack.extend(node.args)
        return ops

    return ops_of(rule.rhs) - ops_of(rule.lhs)


def cost_prune_rules(
    rules: list[Rewrite],
    spec: IsaSpec,
    perf: SynthesisPerf | None = None,
) -> tuple[list[Rewrite], CostPruneReport]:
    """Drop cost-dominated rules; keep every instruction reachable.

    Rules are ranked by delta (descending, minimal-LHS-first on ties)
    and scanned greedily: a rule already covered by a kept rule whose
    LHS subsumes its own and whose delta is equal-or-better is
    dominated.  Pure introduction rules (bare-wildcard LHS) are exempt
    on both sides.  Dominated rules the kept set cannot re-derive
    under deterministic saturation budgets are rescued back (greedy
    batches, so each rescued batch helps derive the rest), and ISA
    instructions whose every cost-non-increasing introduction was
    dominated get their minimal-LHS introducer rescued too.  Returns
    the survivors — in input order, see the module docstring — and a
    :class:`CostPruneReport`.
    """
    # Imported here, not at module top: minimize imports nothing from
    # this module today, but keeping the dependency one-way at import
    # time makes that robust.
    from repro.ruler.minimize import _filter_pass

    model = CostModel(spec)
    deltas = {rule: rule_delta(model, rule) for rule in rules}
    ranked = sorted(
        rules,
        key=lambda r: (-deltas[r], term_size(r.lhs), r.name),
    )
    kept: list[Rewrite] = []
    dropped: list[Rewrite] = []
    dominators: list[Rewrite] = []
    for rule in ranked:
        if not T.is_wildcard(rule.lhs) and any(
            lhs_subsumes(k.lhs, rule.lhs) and deltas[k] >= deltas[rule]
            for k in dominators
        ):
            dropped.append(rule)
            continue
        kept.append(rule)
        if not T.is_wildcard(rule.lhs):
            dominators.append(rule)

    # Derivability rescue: a dominated rule only stays dropped if the
    # survivors derive it.  The saturation base excludes the
    # bare-wildcard introduction rules — they are kept regardless, and
    # seeding every node with introductions blows the filter e-graph
    # up without proving anything the compact rules cannot.
    n_derive_rescued = 0
    if dropped:
        base = [r for r in kept if not T.is_wildcard(r.lhs)]
        rescued_rules: list[Rewrite] = []
        remaining = _filter_pass(dropped, base, _RESCUE_LIMITS)
        while remaining:
            take = remaining[:_RESCUE_BATCH]
            remaining = remaining[_RESCUE_BATCH:]
            rescued_rules.extend(take)
            if remaining:
                remaining = _filter_pass(
                    remaining, base + rescued_rules, _RESCUE_LIMITS
                )
        if rescued_rules:
            n_derive_rescued = len(rescued_rules)
            kept.extend(rescued_rules)
            still_dropped = set(dropped) - set(rescued_rules)
            dropped = [r for r in dropped if r in still_dropped]

    # Instruction-selection preference: every ISA instruction some
    # dropped rule introduced must stay reachable through at least one
    # kept cost-decreasing rule; rescue the minimal-LHS introducer.
    instruction_ops = {instr.name for instr in spec.instructions}
    covered = set()
    for rule in kept:
        if deltas[rule] >= 0:
            covered |= _introduced_ops(rule) & instruction_ops
    rescued: list[Rewrite] = []
    by_op: dict[str, list[Rewrite]] = {}
    for rule in dropped:
        for op in _introduced_ops(rule) & instruction_ops:
            if op not in covered:
                by_op.setdefault(op, []).append(rule)
    for op in sorted(by_op):
        if op in covered:
            continue  # an earlier rescue may introduce several ops
        best = min(
            by_op[op],
            key=lambda r: (term_size(r.lhs), -deltas[r], r.name),
        )
        rescued.append(best)
        covered |= _introduced_ops(best) & instruction_ops
    kept.extend(rescued)
    rescued_set = set(rescued)
    dropped = [rule for rule in dropped if rule not in rescued_set]

    kept_set = set(kept)
    kept = [rule for rule in rules if rule in kept_set]
    report = CostPruneReport(
        n_in=len(rules),
        n_kept=len(kept),
        n_dominated=len(dropped),
        n_rescued=n_derive_rescued + len(rescued),
        cost_model_digest=cost_model_digest(spec),
    )
    if perf is not None:
        perf.costprune_dominated += report.n_dominated
        perf.costprune_rescued += report.n_rescued
    return kept, report
