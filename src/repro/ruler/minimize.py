"""Rule-set minimization by derivability (Ruler's shrink step).

Candidates are ordered smallest/most-general-first.  Selection runs in
batches, as Ruler's ``choose_eqs`` does: accept the best few remaining
candidates, then run *one* equality-saturation pass with everything
accepted so far over a single e-graph seeded with the left and right
sides of every remaining candidate (they share structure heavily, so
the graph stays small), and drop each candidate whose sides merged —
it is derivable and adds no deductive power.

Batching makes minimization O(rules/batch) saturation passes instead
of O(candidates), which is what lets a size-5 enumeration (thousands
of candidates) minimize in seconds.

When an ``interpreter`` is supplied, candidates are first screened
through the batched :class:`~repro.ruler.cvec.CvecEvaluator`: a rule
whose sides fingerprint differently on a sample grid is unsound and is
dropped before paying for any saturation pass.  Rules that agree
everywhere always fingerprint equal, so the screen never drops a sound
rule — for already-verified pipeline candidates it is a no-op.
"""

from __future__ import annotations

import time

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.interp.env import sample_envs
from repro.interp.interpreter import EvalError, Interpreter
from repro.lang.pattern import wildcards_of
from repro.ruler.cvec import CvecEvaluator, legacy_cvec_requested
from repro.ruler.stats import SynthesisPerf
from repro.ruler.verify import pattern_to_term

# Filter passes are bounded by iteration/node/match-work budgets (all
# deterministic) rather than wall-clock, so the kept rule set does not
# depend on machine load — time_limit is explicitly infinite.
_FILTER_LIMITS = RunnerLimits(
    max_iterations=3,
    max_nodes=40_000,
    time_limit=float("inf"),
    match_limit=4000,
    ban_length=1,
    match_work=400_000,
)


def is_derivable(
    rule: Rewrite,
    accepted: list[Rewrite],
    limits: RunnerLimits = _FILTER_LIMITS,
) -> bool:
    """True if ``accepted`` proves ``rule.lhs == rule.rhs``."""
    if not accepted:
        return False
    egraph = EGraph()
    lhs = egraph.add_term(pattern_to_term(rule.lhs))
    rhs = egraph.add_term(pattern_to_term(rule.rhs))
    if egraph.equivalent(lhs, rhs):
        return True
    run_saturation(egraph, accepted, limits)
    return egraph.equivalent(lhs, rhs)


def _filter_pass(
    remaining: list[Rewrite],
    accepted: list[Rewrite],
    limits: RunnerLimits,
) -> list[Rewrite]:
    """Drop every remaining candidate the accepted rules now derive."""
    egraph = EGraph()
    seeded = []
    for rule in remaining:
        lhs = egraph.add_term(pattern_to_term(rule.lhs))
        rhs = egraph.add_term(pattern_to_term(rule.rhs))
        seeded.append((lhs, rhs, rule))
    run_saturation(egraph, accepted, limits)
    return [
        rule
        for lhs, rhs, rule in seeded
        if not egraph.equivalent(lhs, rhs)
    ]


def _cvec_screen(
    candidates: list[Rewrite],
    interpreter: Interpreter,
    perf: SynthesisPerf | None,
    n_samples: int = 24,
    seed: int = 97531,
) -> list[Rewrite]:
    """Drop candidates whose sides fingerprint differently (unsound).

    One cached DAG walk per rule side — far cheaper than the
    saturation pass each surviving candidate costs downstream.
    Evaluators (and their sample environments) are cached per
    wildcard-name signature: most rules share ``(?a, ?b)``-style
    signatures, so the cache also pools cvec rows across rules.
    """
    kept: list[Rewrite] = []
    evaluators: dict[tuple[str, ...], CvecEvaluator] = {}
    for rule in candidates:
        names = tuple(
            sorted(
                set(wildcards_of(rule.lhs)) | set(wildcards_of(rule.rhs))
            )
        )
        evaluator = evaluators.get(names)
        if evaluator is None:
            envs = sample_envs(names, n_random=n_samples, seed=seed)
            evaluator = CvecEvaluator(interpreter, envs, perf=perf)
            evaluators[names] = evaluator
            if perf is not None:
                perf.screen_env_cache_misses += 1
        elif perf is not None:
            perf.screen_env_cache_hits += 1
        try:
            left = evaluator.fingerprint_of(
                evaluator.row_of(pattern_to_term(rule.lhs))
            )
            right = evaluator.fingerprint_of(
                evaluator.row_of(pattern_to_term(rule.rhs))
            )
        except EvalError:
            kept.append(rule)  # not screenable; let saturation decide
            continue
        if left == right:
            kept.append(rule)
        elif perf is not None:
            perf.minimize_screened += 1
    return kept


def minimize_rules(
    candidates: list[Rewrite],
    deadline: float | None = None,
    limits: RunnerLimits = _FILTER_LIMITS,
    batch_size: int = 16,
    interpreter: Interpreter | None = None,
    perf: SynthesisPerf | None = None,
) -> tuple[list[Rewrite], bool]:
    """Batched greedy selection of underivable rules.

    Returns ``(kept, aborted)``; hitting ``deadline`` drops the
    not-yet-examined tail (the paper's Fig. 7 behaviour: a short
    offline budget yields a smaller rule set).  With an
    ``interpreter``, unsound candidates are screened out first via the
    batched cvec evaluator (skipped under ``REPRO_LEGACY_CVEC=1``,
    keeping the legacy baseline the historical path).
    """
    kept: list[Rewrite] = []
    remaining = list(candidates)
    if (
        interpreter is not None
        and remaining
        and not legacy_cvec_requested()
    ):
        remaining = _cvec_screen(remaining, interpreter, perf)
    aborted = False
    while remaining:
        if deadline is not None and time.monotonic() > deadline:
            aborted = True
            break
        batch, remaining = remaining[:batch_size], remaining[batch_size:]
        kept.extend(batch)
        if remaining:
            remaining = _filter_pass(remaining, kept, limits)
    return kept, aborted
