"""Rule-set minimization by derivability (Ruler's shrink step).

Candidates are ordered smallest/most-general-first.  Selection runs in
batches, as Ruler's ``choose_eqs`` does: accept the best few remaining
candidates, then run *one* equality-saturation pass with everything
accepted so far over a single e-graph seeded with the left and right
sides of every remaining candidate (they share structure heavily, so
the graph stays small), and drop each candidate whose sides merged —
it is derivable and adds no deductive power.

Batching makes minimization O(rules/batch) saturation passes instead
of O(candidates), which is what lets a size-5 enumeration (thousands
of candidates) minimize in seconds.
"""

from __future__ import annotations

import time

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.ruler.verify import pattern_to_term

# Filter passes are bounded by iteration/node/match-work budgets (all
# deterministic) rather than wall-clock, so the kept rule set does not
# depend on machine load.
_FILTER_LIMITS = RunnerLimits(
    max_iterations=3,
    max_nodes=40_000,
    time_limit=30.0,
    match_limit=4000,
    ban_length=1,
    match_work=400_000,
)


def is_derivable(
    rule: Rewrite,
    accepted: list[Rewrite],
    limits: RunnerLimits = _FILTER_LIMITS,
) -> bool:
    """True if ``accepted`` proves ``rule.lhs == rule.rhs``."""
    if not accepted:
        return False
    egraph = EGraph()
    lhs = egraph.add_term(pattern_to_term(rule.lhs))
    rhs = egraph.add_term(pattern_to_term(rule.rhs))
    if egraph.equivalent(lhs, rhs):
        return True
    run_saturation(egraph, accepted, limits)
    return egraph.equivalent(lhs, rhs)


def _filter_pass(
    remaining: list[Rewrite],
    accepted: list[Rewrite],
    limits: RunnerLimits,
) -> list[Rewrite]:
    """Drop every remaining candidate the accepted rules now derive."""
    egraph = EGraph()
    seeded = []
    for rule in remaining:
        lhs = egraph.add_term(pattern_to_term(rule.lhs))
        rhs = egraph.add_term(pattern_to_term(rule.rhs))
        seeded.append((lhs, rhs, rule))
    run_saturation(egraph, accepted, limits)
    return [
        rule
        for lhs, rhs, rule in seeded
        if not egraph.equivalent(lhs, rhs)
    ]


def minimize_rules(
    candidates: list[Rewrite],
    deadline: float | None = None,
    limits: RunnerLimits = _FILTER_LIMITS,
    batch_size: int = 16,
) -> tuple[list[Rewrite], bool]:
    """Batched greedy selection of underivable rules.

    Returns ``(kept, aborted)``; hitting ``deadline`` drops the
    not-yet-examined tail (the paper's Fig. 7 behaviour: a short
    offline budget yields a smaller rule set).
    """
    kept: list[Rewrite] = []
    remaining = list(candidates)
    aborted = False
    while remaining:
        if deadline is not None and time.monotonic() > deadline:
            aborted = True
            break
        batch, remaining = remaining[:batch_size], remaining[batch_size:]
        kept.extend(batch)
        if remaining:
            remaining = _filter_pass(remaining, kept, limits)
    return kept, aborted
