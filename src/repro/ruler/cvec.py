"""Characteristic vectors: behavioural fingerprints of terms.

A term's *cvec* is the tuple of its values on a fixed sequence of
environments.  Two terms with equal cvecs are candidate-equivalent
(Ruler's test-based filtering); verification then establishes actual
soundness.  Environments mix corner cases (zeros, ones, sign flips)
with seeded random rationals, evaluated exactly so algebraic identities
fingerprint identically; the few irrational-producing ops (sqrt) yield
floats, which are rounded for fingerprint stability.

Two evaluation paths produce cvecs:

- :class:`CvecEvaluator` (the default) works *structure-of-arrays*: it
  caches every pool term's raw value row (one value per environment)
  and computes a new term's row with a **single** application of its
  root lane function across all environments over the children's
  cached rows — O(envs) per candidate instead of O(nodes × envs).
  Fingerprints are interned to small ints for fast pool lookups.
- :func:`cvec_of` is the legacy path: one full tree interpretation per
  environment.  ``REPRO_LEGACY_CVEC=1`` forces it everywhere (kept as
  the perf baseline and differential-fuzz oracle, mirroring
  ``REPRO_LEGACY_EMATCH``).

Both paths perform the identical arithmetic per environment, so their
fingerprints agree exactly — ``tests/test_cvec_differential.py`` fuzzes
this invariant across the bundled ISAs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from fractions import Fraction

from repro.interp.env import sample_envs
from repro.interp.interpreter import Interpreter
from repro.interp.value import UNDEFINED
from repro.lang.term import Term


def legacy_cvec_requested() -> bool:
    """True when ``REPRO_LEGACY_CVEC`` forces per-env tree evaluation."""
    return os.environ.get("REPRO_LEGACY_CVEC", "").strip().lower() in (
        "1", "true", "yes", "on"
    )


@dataclass(frozen=True)
class CvecSpec:
    """The shared evaluation grid for one synthesis run."""

    variables: tuple[str, ...]
    envs: tuple[dict, ...]

    @staticmethod
    def make(
        variables: tuple[str, ...],
        n_random: int = 24,
        seed: int = 0,
        corner_limit: int = 64,
    ) -> "CvecSpec":
        """Build a spec: corner-case envs plus ``n_random`` seeded ones."""
        envs = sample_envs(
            variables, n_random=n_random, seed=seed, corner_limit=corner_limit
        )
        return CvecSpec(variables=tuple(variables), envs=tuple(envs))

    def __len__(self) -> int:
        return len(self.envs)


def _fingerprint_value(value):
    """A hashable, float-noise-tolerant key for one value."""
    if value is UNDEFINED:
        return "undef"
    if isinstance(value, float):
        if value == 0.0:
            return Fraction(0)
        return round(value, 9)
    if isinstance(value, Fraction) and value.denominator == 1:
        return Fraction(value)  # normalize int-valued entries
    if isinstance(value, int):
        return Fraction(value)
    return value


def cvec_of(
    term: Term, interpreter: Interpreter, spec: CvecSpec
) -> tuple | None:
    """The term's fingerprint, or None if undefined everywhere.

    All-undefined terms (e.g. ``(sqrt -1)``-like) carry no usable
    signal and are discarded by enumeration.
    """
    values = []
    any_defined = False
    for env in spec.envs:
        value = interpreter.evaluate(term, env)
        if value is not UNDEFINED:
            any_defined = True
        values.append(_fingerprint_value(value))
    if not any_defined:
        return None
    return tuple(values)


class CvecEvaluator:
    """Batched, caching cvec evaluation over a fixed environment grid.

    Values are stored as *rows*: one raw (un-fingerprinted) value per
    environment, structure-of-arrays style.  Because rows hold the raw
    interpreter values, combining cached child rows with one root-op
    application performs exactly the arithmetic the tree interpreter
    would — batched and legacy cvecs are equal by construction.

    The evaluator also interns fingerprints to dense small ints so the
    enumeration pool and candidate bookkeeping hash an int instead of
    an ~88-element tuple on every lookup.  Counters go to ``perf`` (a
    :class:`repro.ruler.stats.SynthesisPerf`).
    """

    __slots__ = ("_interp", "envs", "_rows", "_ids", "_fingerprints", "perf")

    def __init__(self, interpreter: Interpreter, envs, perf=None):
        from repro.ruler.stats import SynthesisPerf

        self._interp = interpreter
        self.envs = tuple(envs)
        self._rows: dict[Term, tuple] = {}
        self._ids: dict[tuple, int] = {}
        self._fingerprints: list[tuple] = []
        self.perf = perf if perf is not None else SynthesisPerf()

    # -- raw value rows --------------------------------------------------

    def row_of(self, term: Term) -> tuple:
        """The term's raw value row, cached (one DAG walk, not one per
        environment)."""
        rows = self._rows
        cached = rows.get(term)
        if cached is not None:
            self.perf.cvec_cache_hits += 1
            return cached
        stack = [term]
        while stack:
            t = stack[-1]
            if t in rows:
                stack.pop()
                continue
            pending = [a for a in t.args if a not in rows]
            if pending:
                stack.extend(pending)
                continue
            stack.pop()
            rows[t] = self.combine(t, tuple(rows[a] for a in t.args))
            self.perf.cvec_cache_misses += 1
        return rows[term]

    def remember(self, term: Term, row: tuple) -> None:
        """Cache ``row`` as ``term``'s value row (for accepted pool
        terms, so later candidates combine it in O(envs))."""
        self._rows[term] = row

    def combine(self, term: Term, child_rows: tuple) -> tuple:
        """``term``'s row from its children's rows — one batched
        application of the root operator.

        Scalar lane-function nodes take the fast path; leaves,
        structural forms (``Vec``/``Concat``/``List``) and
        vector-valued arguments fall back to the interpreter's
        single-node semantics per environment, so any term the tree
        interpreter accepts is handled identically here.
        """
        self.perf.batched_evals += 1
        interp = self._interp
        if term.args:
            fn = interp.lane_fn(term.op)
            if fn is not None:
                return self._apply(term, fn, child_rows)
        # Structural op or leaf: exact per-env node semantics.
        if child_rows:
            arg_iter = zip(*child_rows)
        else:
            arg_iter = (() for _ in self.envs)
        return tuple(
            interp.evaluate_node(term, args, env)
            for env, args in zip(self.envs, arg_iter)
        )

    def apply_lane_fn(self, fn, child_rows: tuple) -> tuple:
        """One lane function applied across the grid (the enumeration
        hot loop).

        Caller guarantees the rows hold only scalars (true for every
        enumeration grid — ``sample_envs`` binds scalars and lane
        functions return scalars); :meth:`combine` is the general
        entry point when vectors may appear.
        """
        self.perf.batched_evals += 1
        out = []
        append = out.append
        if len(child_rows) == 1:
            for a in child_rows[0]:
                if a is UNDEFINED:
                    append(UNDEFINED)
                else:
                    r = fn(a)
                    append(UNDEFINED if r is None else r)
        elif len(child_rows) == 2:
            for a, b in zip(child_rows[0], child_rows[1]):
                if a is UNDEFINED or b is UNDEFINED:
                    append(UNDEFINED)
                else:
                    r = fn(a, b)
                    append(UNDEFINED if r is None else r)
        else:
            for args in zip(*child_rows):
                if any(a is UNDEFINED for a in args):
                    append(UNDEFINED)
                else:
                    r = fn(*args)
                    append(UNDEFINED if r is None else r)
        return tuple(out)

    def _apply(self, term: Term, fn, child_rows: tuple) -> tuple:
        """Lane-function application with per-value vector fallback."""
        interp = self._interp
        out = []
        append = out.append
        for args in zip(*child_rows):
            if any(a is UNDEFINED for a in args):
                append(UNDEFINED)
            elif any(isinstance(a, tuple) for a in args):
                # Vector argument: delegate to the interpreter's node
                # semantics (lane-wise apply or EvalError), which never
                # consults the env for interior nodes.
                append(interp.evaluate_node(term, args, None))
            else:
                r = fn(*args)
                append(UNDEFINED if r is None else r)
        return tuple(out)

    # -- fingerprints ----------------------------------------------------

    def fingerprint_of(self, row: tuple) -> tuple | None:
        """The row's fingerprint tuple, or None if undefined everywhere
        (exactly :func:`cvec_of`'s discard rule)."""
        fingerprint = []
        any_defined = False
        for value in row:
            if value is UNDEFINED:
                fingerprint.append("undef")
            else:
                any_defined = True
                fingerprint.append(_fingerprint_value(value))
        if not any_defined:
            return None
        return tuple(fingerprint)

    def intern(self, fingerprint: tuple) -> int:
        """The small-int id of ``fingerprint`` (stable per evaluator).

        A repeat fingerprint — a *collision*, the event that makes two
        terms candidate-equivalent — is counted in
        ``perf.fingerprint_collisions``.
        """
        ids = self._ids
        fid = ids.get(fingerprint)
        if fid is None:
            fid = len(self._fingerprints)
            ids[fingerprint] = fid
            self._fingerprints.append(fingerprint)
            self.perf.interned_fingerprints += 1
        else:
            self.perf.fingerprint_collisions += 1
        return fid

    def fingerprint(self, fid: int) -> tuple:
        """The fingerprint tuple interned as ``fid``."""
        return self._fingerprints[fid]

    def cvec_id(self, term: Term) -> int | None:
        """The term's interned cvec id (None if undefined everywhere).

        Batched equivalent of ``cvec_of`` + pool lookup: the term's
        row is computed (and cached) with one DAG walk.
        """
        fingerprint = self.fingerprint_of(self.row_of(term))
        if fingerprint is None:
            return None
        return self.intern(fingerprint)
