"""Characteristic vectors: behavioural fingerprints of terms.

A term's *cvec* is the tuple of its values on a fixed sequence of
environments.  Two terms with equal cvecs are candidate-equivalent
(Ruler's test-based filtering); verification then establishes actual
soundness.  Environments mix corner cases (zeros, ones, sign flips)
with seeded random rationals, evaluated exactly so algebraic identities
fingerprint identically; the few irrational-producing ops (sqrt) yield
floats, which are rounded for fingerprint stability.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.interp.env import sample_envs
from repro.interp.interpreter import Interpreter
from repro.interp.value import UNDEFINED
from repro.lang.term import Term


@dataclass(frozen=True)
class CvecSpec:
    """The shared evaluation grid for one synthesis run."""

    variables: tuple[str, ...]
    envs: tuple[dict, ...]

    @staticmethod
    def make(
        variables: tuple[str, ...],
        n_random: int = 24,
        seed: int = 0,
        corner_limit: int = 64,
    ) -> "CvecSpec":
        """Build a spec: corner-case envs plus ``n_random`` seeded ones."""
        envs = sample_envs(
            variables, n_random=n_random, seed=seed, corner_limit=corner_limit
        )
        return CvecSpec(variables=tuple(variables), envs=tuple(envs))

    def __len__(self) -> int:
        return len(self.envs)


def _fingerprint_value(value):
    """A hashable, float-noise-tolerant key for one value."""
    if value is UNDEFINED:
        return "undef"
    if isinstance(value, float):
        if value == 0.0:
            return Fraction(0)
        return round(value, 9)
    if isinstance(value, Fraction) and value.denominator == 1:
        return Fraction(value)  # normalize int-valued entries
    if isinstance(value, int):
        return Fraction(value)
    return value


def cvec_of(
    term: Term, interpreter: Interpreter, spec: CvecSpec
) -> tuple | None:
    """The term's fingerprint, or None if undefined everywhere.

    All-undefined terms (e.g. ``(sqrt -1)``-like) carry no usable
    signal and are discarded by enumeration.
    """
    values = []
    any_defined = False
    for env in spec.envs:
        value = interpreter.evaluate(term, env)
        if value is not UNDEFINED:
            any_defined = True
        values.append(_fingerprint_value(value))
    if not any_defined:
        return None
    return tuple(values)
