"""Bottom-up term enumeration deduplicated by characteristic vector.

Enumerates terms over the *single-lane reduction* of the ISA: vector
instructions participate as ordinary scalar operators (paper §3.1's
key trick), so per-lane algebra is discovered once instead of per lane
and per lane combination.

The pool keeps exactly one representative term per cvec (the first,
therefore smallest, one found).  A newly enumerated term whose cvec is
already present contributes a *candidate pair* instead of growing the
pool — this mirrors how Ruler's e-graph collapses equivalent terms and
is what keeps enumeration from exploding.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.interp.interpreter import Interpreter
from repro.isa.spec import IsaSpec
from repro.lang import builders as B
from repro.lang import term as T
from repro.lang.term import Term
from repro.ruler.cvec import CvecSpec, cvec_of


@dataclass
class EnumerationResult:
    """Pool of representatives plus cvec-equal candidate pairs."""

    representatives: dict = field(default_factory=dict)  # cvec -> Term
    pairs: list = field(default_factory=list)  # (rep, newcomer) Term pairs
    n_enumerated: int = 0
    aborted: bool = False  # hit the time budget

    @property
    def n_representatives(self) -> int:
        """How many distinct-cvec representative terms survived."""
        return len(self.representatives)


def _atoms(variables: tuple[str, ...], constants: tuple) -> list[Term]:
    atoms = [B.symbol(name) for name in variables]
    atoms.extend(B.const(value) for value in constants)
    return atoms


def enumerate_terms(
    spec: IsaSpec,
    cvec_spec: CvecSpec,
    max_size: int = 5,
    constants: tuple = (0, 1),
    deadline: float | None = None,
    interpreter: Interpreter | None = None,
    op_allowlist: tuple | None = None,
) -> EnumerationResult:
    """Enumerate single-lane terms of up to ``max_size`` nodes.

    ``deadline`` is an absolute ``time.monotonic()`` cutoff; hitting it
    aborts enumeration with whatever has been found (the Fig. 7 budget
    behaviour).
    """
    interpreter = interpreter or spec.interpreter()
    result = EnumerationResult()

    by_size: dict[int, list[Term]] = {1: []}
    for atom in _atoms(cvec_spec.variables, constants):
        cvec = cvec_of(atom, interpreter, cvec_spec)
        if cvec is None or cvec in result.representatives:
            continue
        result.representatives[cvec] = atom
        by_size[1].append(atom)
        result.n_enumerated += 1

    ops = sorted(spec.instructions, key=lambda i: i.name)
    if op_allowlist is not None:
        allowed = set(op_allowlist)
        ops = [instr for instr in ops if instr.name in allowed]
    for size in range(2, max_size + 1):
        new_terms: list[Term] = []
        for instr in ops:
            arity = instr.arity
            budget = size - 1
            if budget < arity:
                continue
            for sizes in _compositions(budget, arity):
                pools = [by_size.get(s, ()) for s in sizes]
                if any(not pool for pool in pools):
                    continue
                for children in itertools.product(*pools):
                    if deadline is not None and time.monotonic() > deadline:
                        result.aborted = True
                        by_size[size] = new_terms
                        return result
                    term = T.make(instr.name, *children)
                    result.n_enumerated += 1
                    cvec = cvec_of(term, interpreter, cvec_spec)
                    if cvec is None:
                        continue
                    rep = result.representatives.get(cvec)
                    if rep is None:
                        result.representatives[cvec] = term
                        new_terms.append(term)
                    elif rep != term:
                        result.pairs.append((rep, term))
        by_size[size] = new_terms
    return result


def _compositions(total: int, parts: int):
    """All orderings of ``parts`` positive ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest


