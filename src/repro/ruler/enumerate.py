"""Bottom-up term enumeration deduplicated by characteristic vector.

Enumerates terms over the *single-lane reduction* of the ISA: vector
instructions participate as ordinary scalar operators (paper §3.1's
key trick), so per-lane algebra is discovered once instead of per lane
and per lane combination.

The pool keeps exactly one representative term per cvec (the first,
therefore smallest, one found).  A newly enumerated term whose cvec is
already present contributes a *candidate pair* instead of growing the
pool — this mirrors how Ruler's e-graph collapses equivalent terms and
is what keeps enumeration from exploding.

Hot path (the offline stage's dominant cost, paper §5/Fig. 7): every
pool term's raw value row is cached in a :class:`CvecEvaluator`, so a
new candidate's cvec is one application of its root lane function
across all environments — O(envs) instead of O(nodes × envs) tree
walks.  The largest term size — where candidate counts explode — can
additionally be sharded across ``repro.bench.parallel`` workers,
partitioned by root operator and merged deterministically.
``REPRO_LEGACY_CVEC=1`` forces the historical per-environment
interpreter path (the perf baseline and differential-fuzz oracle).

The ``deadline`` budget is checked per candidate, so enumeration
aborts *mid-size* (not just between sizes) and ``aborted=True``
accurately reflects a partial pool.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.interp.interpreter import Interpreter
from repro.isa.spec import IsaSpec
from repro.lang import builders as B
from repro.lang import term as T
from repro.lang.term import Term
from repro.ruler.cvec import (
    CvecEvaluator,
    CvecSpec,
    cvec_of,
    legacy_cvec_requested,
)
from repro.ruler.stats import SynthesisPerf

# Sharding the final size across processes only pays once the
# candidate count dwarfs the cost of shipping the pool to workers.
_SHARD_MIN_CANDIDATES = 20_000


@dataclass
class EnumerationResult:
    """Pool of representatives plus cvec-equal candidate pairs."""

    representatives: dict = field(default_factory=dict)  # cvec -> Term
    pairs: list = field(default_factory=list)  # (rep, newcomer) Term pairs
    n_enumerated: int = 0
    aborted: bool = False  # hit the time budget
    perf: SynthesisPerf = field(default_factory=SynthesisPerf)

    @property
    def n_representatives(self) -> int:
        """How many distinct-cvec representative terms survived."""
        return len(self.representatives)


def _atoms(variables: tuple[str, ...], constants: tuple) -> list[Term]:
    atoms = [B.symbol(name) for name in variables]
    atoms.extend(B.const(value) for value in constants)
    return atoms


def _record_size(
    perf: SynthesisPerf, size: int, elapsed: float, n_terms: int, n_new: int
) -> None:
    """Accumulate one size's enumeration stats into ``perf``."""
    perf.per_size_times[size] = perf.per_size_times.get(size, 0.0) + elapsed
    perf.per_size_terms[size] = perf.per_size_terms.get(size, 0) + n_terms
    perf.per_size_new[size] = perf.per_size_new.get(size, 0) + n_new


def enumerate_terms(
    spec: IsaSpec,
    cvec_spec: CvecSpec,
    max_size: int = 5,
    constants: tuple = (0, 1),
    deadline: float | None = None,
    interpreter: Interpreter | None = None,
    op_allowlist: tuple | None = None,
    jobs: int | None = None,
    perf: SynthesisPerf | None = None,
) -> EnumerationResult:
    """Enumerate single-lane terms of up to ``max_size`` nodes.

    ``deadline`` is an absolute ``time.monotonic()`` cutoff; hitting it
    aborts enumeration — including mid-size — with whatever has been
    found (the Fig. 7 budget behaviour).  ``jobs`` controls sharding of
    the largest size: ``None`` shards automatically when the estimated
    candidate count warrants it, ``1`` forbids it, and ``>1`` forces it
    with at most that many workers.  ``perf`` collects hot-path
    counters (a fresh block is created when omitted).
    """
    interpreter = interpreter or spec.interpreter()
    if perf is None:
        perf = SynthesisPerf()

    ops = sorted(spec.instructions, key=lambda i: i.name)
    if op_allowlist is not None:
        allowed = set(op_allowlist)
        ops = [instr for instr in ops if instr.name in allowed]

    if legacy_cvec_requested():
        perf.backend = "legacy"
        return _enumerate_legacy(
            cvec_spec, max_size, constants, deadline, interpreter, ops, perf
        )
    perf.backend = "batched"
    return _enumerate_batched(
        cvec_spec, max_size, constants, deadline, interpreter, ops, perf,
        jobs,
    )


# -- batched (default) path ----------------------------------------------


def _enumerate_batched(
    cvec_spec: CvecSpec,
    max_size: int,
    constants: tuple,
    deadline: float | None,
    interpreter: Interpreter,
    ops: list,
    perf: SynthesisPerf,
    jobs: int | None,
) -> EnumerationResult:
    """Structure-of-arrays enumeration (see module docstring)."""
    evaluator = CvecEvaluator(interpreter, cvec_spec.envs, perf=perf)
    result = EnumerationResult(perf=perf)
    pool: dict[int, Term] = {}  # interned cvec id -> representative
    by_size: dict[int, list] = {1: []}  # size -> [(term, row), ...]

    t0 = time.monotonic()
    for atom in _atoms(cvec_spec.variables, constants):
        if deadline is not None and time.monotonic() > deadline:
            result.aborted = True
            break
        row = evaluator.row_of(atom)
        fingerprint = evaluator.fingerprint_of(row)
        if fingerprint is None:
            continue
        fid = evaluator.intern(fingerprint)
        if fid in pool:
            continue
        pool[fid] = atom
        by_size[1].append((atom, row))
        result.n_enumerated += 1
    _record_size(
        perf, 1, time.monotonic() - t0, result.n_enumerated, len(by_size[1])
    )

    for size in range(2, max_size + 1):
        if result.aborted:
            break
        t0 = time.monotonic()
        n_start, pool_start = result.n_enumerated, len(pool)
        if _should_shard(size, max_size, ops, by_size, jobs):
            aborted = _enumerate_size_sharded(
                size, ops, by_size, pool, evaluator, result, deadline,
                interpreter, cvec_spec,
            )
        else:
            aborted = _enumerate_size_serial(
                size, ops, by_size, pool, evaluator, result, deadline,
                interpreter,
            )
        _record_size(
            perf, size, time.monotonic() - t0,
            result.n_enumerated - n_start, len(pool) - pool_start,
        )
        result.aborted = result.aborted or aborted

    result.representatives = {
        evaluator.fingerprint(fid): term for fid, term in pool.items()
    }
    return result


def _enumerate_size_serial(
    size: int,
    ops: list,
    by_size: dict,
    pool: dict,
    evaluator: CvecEvaluator,
    result: EnumerationResult,
    deadline: float | None,
    interpreter: Interpreter,
) -> bool:
    """One size's candidates, in-process.  Returns True on abort."""
    perf = evaluator.perf
    new_entries: list[tuple] = []
    by_size[size] = new_entries
    budget = size - 1
    for instr in ops:
        arity = instr.arity
        if budget < arity:
            continue
        fn = interpreter.lane_fn(instr.name)
        for sizes in _compositions(budget, arity):
            pools = [by_size.get(s, ()) for s in sizes]
            if any(not pool_s for pool_s in pools):
                continue
            for children in itertools.product(*pools):
                if deadline is not None and time.monotonic() > deadline:
                    return True
                term = T.make(instr.name, *(c[0] for c in children))
                result.n_enumerated += 1
                rows = tuple(c[1] for c in children)
                if fn is not None:
                    row = evaluator.apply_lane_fn(fn, rows)
                else:
                    row = evaluator.combine(term, rows)
                perf.cvec_cache_hits += arity
                fingerprint = evaluator.fingerprint_of(row)
                if fingerprint is None:
                    continue
                fid = evaluator.intern(fingerprint)
                rep = pool.get(fid)
                if rep is None:
                    pool[fid] = term
                    new_entries.append((term, row))
                elif rep != term:
                    result.pairs.append((rep, term))
    return False


# -- sharded final size --------------------------------------------------


def _estimated_candidates(size: int, ops: list, by_size: dict) -> int:
    """How many candidate terms the size will construct (exact count)."""
    total = 0
    for instr in ops:
        budget = size - 1
        if budget < instr.arity:
            continue
        for sizes in _compositions(budget, instr.arity):
            combos = 1
            for s in sizes:
                combos *= len(by_size.get(s, ()))
            total += combos
    return total


def _should_shard(
    size: int, max_size: int, ops: list, by_size: dict, jobs: int | None
) -> bool:
    """Shard only the largest size, and only when it pays for itself."""
    if size != max_size or len(ops) < 2:
        return False
    if jobs is not None and jobs <= 1:
        return False
    from repro.bench.parallel import parallel_workers

    if parallel_workers(jobs) <= 1:
        return False
    if jobs is not None:
        return True  # explicit request
    return _estimated_candidates(size, ops, by_size) >= _SHARD_MIN_CANDIDATES


class _ShardTask:
    """Picklable enumeration of one root op at the sharded size.

    Workers pair candidates against the pre-existing pool (``known``)
    exactly as the serial loop would, and report first-discovery
    groups for fingerprints the pool has not seen; the merge step
    resolves cross-shard groups in sorted-op order, reproducing the
    serial pool assignment.
    """

    __slots__ = (
        "_interp", "_envs", "_op", "_arity", "_by_size", "_size",
        "_known", "_remaining",
    )

    def __init__(
        self,
        interpreter: Interpreter,
        envs: tuple,
        op: str,
        arity: int,
        by_size: dict,
        size: int,
        known: dict,
        remaining: float | None,
    ):
        self._interp = interpreter
        self._envs = envs
        self._op = op
        self._arity = arity
        self._by_size = by_size  # size -> [Term, ...] (pool terms only)
        self._size = size
        self._known = known  # fingerprint tuple -> representative Term
        self._remaining = remaining

    def __call__(self) -> tuple:
        """Enumerate this op's candidates; see module merge contract."""
        perf = SynthesisPerf()
        evaluator = CvecEvaluator(self._interp, self._envs, perf=perf)
        deadline = (
            time.monotonic() + self._remaining
            if self._remaining is not None
            else None
        )
        entries = {
            s: [(t, evaluator.row_of(t)) for t in terms]
            for s, terms in self._by_size.items()
        }
        known = self._known
        fn = self._interp.lane_fn(self._op)
        groups: dict[tuple, list] = {}  # fingerprint -> [terms]
        order: list[tuple] = []
        pairs: list[tuple] = []
        n_enumerated = 0
        aborted = False
        for sizes in _compositions(self._size - 1, self._arity):
            pools = [entries.get(s, ()) for s in sizes]
            if any(not pool_s for pool_s in pools):
                continue
            for children in itertools.product(*pools):
                if deadline is not None and time.monotonic() > deadline:
                    aborted = True
                    break
                term = T.make(self._op, *(c[0] for c in children))
                n_enumerated += 1
                rows = tuple(c[1] for c in children)
                if fn is not None:
                    row = evaluator.apply_lane_fn(fn, rows)
                else:
                    row = evaluator.combine(term, rows)
                perf.cvec_cache_hits += self._arity
                fingerprint = evaluator.fingerprint_of(row)
                if fingerprint is None:
                    continue
                rep = known.get(fingerprint)
                if rep is not None:
                    perf.fingerprint_collisions += 1
                    if rep != term:
                        pairs.append((rep, term))
                    continue
                group = groups.get(fingerprint)
                if group is None:
                    groups[fingerprint] = [term]
                    order.append(fingerprint)
                else:
                    perf.fingerprint_collisions += 1
                    group.append(term)
            if aborted:
                break
        news = [(fp, groups[fp]) for fp in order]
        return news, pairs, n_enumerated, perf, aborted


def _run_shard(task: _ShardTask) -> tuple:
    """Module-level trampoline so shard tasks pickle by reference."""
    return task()


def _enumerate_size_sharded(
    size: int,
    ops: list,
    by_size: dict,
    pool: dict,
    evaluator: CvecEvaluator,
    result: EnumerationResult,
    deadline: float | None,
    interpreter: Interpreter,
    cvec_spec: CvecSpec,
) -> bool:
    """The largest size fanned out across workers, one op per shard.

    Shards are merged in sorted-op order — the order the serial loop
    visits ops — so the surviving pool, pairs and counts are identical
    to a serial run (pair *ordering* may interleave differently, which
    downstream candidate sorting makes irrelevant).  Returns True when
    any shard hit the deadline.
    """
    from repro.bench.parallel import parallel_map

    perf = evaluator.perf
    known = {
        evaluator.fingerprint(fid): rep for fid, rep in pool.items()
    }
    plain_by_size = {
        s: [t for t, _ in entries] for s, entries in by_size.items()
        if entries
    }
    remaining = (
        max(0.0, deadline - time.monotonic()) if deadline is not None
        else None
    )
    tasks = [
        _ShardTask(
            interpreter, cvec_spec.envs, instr.name, instr.arity,
            plain_by_size, size, known, remaining,
        )
        for instr in ops
        if size - 1 >= instr.arity
    ]
    perf.enumeration_shards += len(tasks)
    outputs = parallel_map(_run_shard, tasks)

    by_size[size] = []  # final size: rows never needed again
    aborted = False
    for news, pairs, n_enumerated, shard_perf, shard_aborted in outputs:
        result.n_enumerated += n_enumerated
        aborted = aborted or shard_aborted
        shard_perf.enumeration_shards = 0  # already counted here
        perf.merge(shard_perf)
        for rep, term in pairs:
            result.pairs.append((rep, term))
        for fingerprint, terms in news:
            fid = evaluator.intern(fingerprint)
            rep = pool.get(fid)
            if rep is None:
                rep = terms[0]
                pool[fid] = rep
                terms = terms[1:]
            for term in terms:
                if rep != term:
                    result.pairs.append((rep, term))
    return aborted


# -- legacy (REPRO_LEGACY_CVEC=1) path ------------------------------------


def _enumerate_legacy(
    cvec_spec: CvecSpec,
    max_size: int,
    constants: tuple,
    deadline: float | None,
    interpreter: Interpreter,
    ops: list,
    perf: SynthesisPerf,
) -> EnumerationResult:
    """The historical path: one full tree interpretation per
    environment per candidate.  Kept as the perf baseline and the
    differential-fuzz oracle for the batched evaluator."""
    result = EnumerationResult(perf=perf)

    t0 = time.monotonic()
    by_size: dict[int, list[Term]] = {1: []}
    for atom in _atoms(cvec_spec.variables, constants):
        if deadline is not None and time.monotonic() > deadline:
            result.aborted = True
            break
        cvec = cvec_of(atom, interpreter, cvec_spec)
        perf.legacy_evals += 1
        if cvec is None or cvec in result.representatives:
            continue
        result.representatives[cvec] = atom
        by_size[1].append(atom)
        result.n_enumerated += 1
    _record_size(
        perf, 1, time.monotonic() - t0, result.n_enumerated, len(by_size[1])
    )

    for size in range(2, max_size + 1):
        if result.aborted:
            break
        t0 = time.monotonic()
        n_start = result.n_enumerated
        new_terms: list[Term] = []
        by_size[size] = new_terms
        for instr in ops:
            arity = instr.arity
            budget = size - 1
            if budget < arity:
                continue
            for sizes in _compositions(budget, arity):
                pools = [by_size.get(s, ()) for s in sizes]
                if any(not pool for pool in pools):
                    continue
                for children in itertools.product(*pools):
                    if deadline is not None and (
                        time.monotonic() > deadline
                    ):
                        result.aborted = True
                        break
                    term = T.make(instr.name, *children)
                    result.n_enumerated += 1
                    cvec = cvec_of(term, interpreter, cvec_spec)
                    perf.legacy_evals += 1
                    if cvec is None:
                        continue
                    rep = result.representatives.get(cvec)
                    if rep is None:
                        result.representatives[cvec] = term
                        new_terms.append(term)
                    elif rep != term:
                        result.pairs.append((rep, term))
                if result.aborted:
                    break
            if result.aborted:
                break
        _record_size(
            perf, size, time.monotonic() - t0,
            result.n_enumerated - n_start, len(new_terms),
        )
    return result


def _compositions(total: int, parts: int):
    """All orderings of ``parts`` positive ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for first in range(1, total - parts + 2):
        for rest in _compositions(total - first, parts - 1):
            yield (first,) + rest
