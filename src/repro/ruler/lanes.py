"""Vector lane generalization (paper §3.1).

Rule synthesis runs on the *single-lane reduction* of the ISA, where
vector instructions act on scalars.  This module expands each verified
single-lane rule back to the architecture's real vector width,
producing up to four full-width rules:

- a **scalar rule** (vector ops replaced by their scalar
  counterparts) — pure per-lane algebra;
- a **vector rule** (scalar ops replaced by their vector counterparts,
  constants splatted) — the same algebra on whole vectors;
- a **lift rule**: the left side becomes a ``Vec`` literal whose lanes
  repeat the scalar pattern with fresh wildcards per lane, and the
  right side is the deep lift of the rule's right side — e.g.

      (Vec (+ a0 b0) ... (+ a3 b3))  ~>  (VecAdd (Vec a0..a3) (Vec b0..b3))

  These are the scalar→vector *compilation* rules;
- **lane-restricted padding rules** for identity introductions
  (``a ~> (+ a 0)``): one rule per lane position rewriting
  ``(Vec .. x ..)`` to ``(Vec .. (+ x 0) ..)``.  Restricting padding to
  ``Vec`` lanes — the only place it enables vectorization — avoids the
  every-e-class match explosion of the global rule (§2.2's "must be
  used carefully"); see DESIGN.md.

Generalizing lane-wise is unsound for instructions with cross-lane
behaviour, so every expanded rule is re-verified on the full-width
interpreter (:func:`repro.ruler.verify.verify_vector_rule`) before
acceptance, mirroring the paper's formal re-verification step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.egraph.rewrite import Rewrite
from repro.isa.spec import IsaSpec
from repro.lang import builders as B
from repro.lang import term as T
from repro.lang.ops import OpKind
from repro.lang.pattern import instantiate, suffix_wildcards, wildcards_of
from repro.lang.term import Term
from repro.ruler.candidates import canonical_wildcards
from repro.ruler.stats import SynthesisPerf
from repro.ruler.verify import verify_rule, verify_vector_rule


@dataclass
class GeneralizationReport:
    n_input_rules: int = 0
    n_generated: int = 0
    n_rejected: int = 0
    rejected: list = field(default_factory=list)


def _op_kind(spec: IsaSpec, op: str) -> OpKind | None:
    return spec.instruction(op).kind if spec.has_instruction(op) else None


def scalarize(term: Term, spec: IsaSpec) -> Term | None:
    """Vector ops -> scalar counterparts; None if one is missing."""
    if not term.args:
        return term
    op = term.op
    if _op_kind(spec, op) is OpKind.VECTOR:
        op = spec.scalar_counterpart(term.op)
        if op is None or not spec.has_instruction(op):
            return None
    args = []
    for arg in term.args:
        lowered = scalarize(arg, spec)
        if lowered is None:
            return None
        args.append(lowered)
    return T.make(op, *args)


def vectorize(term: Term, spec: IsaSpec) -> Term | None:
    """Scalar ops -> vector counterparts, constants splatted."""
    if T.is_const(term):
        return B.vec(*([term] * spec.vector_width))
    if T.is_wildcard(term):
        return term
    if T.is_symbol(term) or T.is_get(term):
        return None  # enumeration terms never reach here
    op = term.op
    if _op_kind(spec, op) is OpKind.SCALAR:
        op = spec.vector_counterpart(term.op)
        if op is None:
            return None
    args = []
    for arg in term.args:
        lifted = vectorize(arg, spec)
        if lifted is None:
            return None
        args.append(lifted)
    return T.make(op, *args)


def deep_lift(term: Term, spec: IsaSpec) -> Term | None:
    """Full lift: wildcards -> per-lane Vec literals, ops -> vector ops."""
    width = spec.vector_width
    if T.is_wildcard(term):
        return B.vec(
            *(T.wildcard(f"{term.payload}.{i}") for i in range(width))
        )
    if T.is_const(term):
        return B.vec(*([term] * width))
    op = term.op
    if _op_kind(spec, op) is OpKind.SCALAR:
        op = spec.vector_counterpart(term.op)
        if op is None:
            return None
    args = []
    for arg in term.args:
        lifted = deep_lift(arg, spec)
        if lifted is None:
            return None
        args.append(lifted)
    return T.make(op, *args)


def lift_lhs(scalar_pattern: Term, spec: IsaSpec) -> Term:
    """A Vec literal repeating the scalar pattern with fresh wildcards."""
    width = spec.vector_width
    lanes = [
        suffix_wildcards(scalar_pattern, f".{i}") for i in range(width)
    ]
    return B.vec(*lanes)


def _padding_rules(
    rule: Rewrite, spec: IsaSpec
) -> list[tuple[str, Term, Term]]:
    """Per-lane padding rules from an identity introduction ``?a ~> r``."""
    if not T.is_wildcard(rule.lhs):
        return []
    body = scalarize(rule.rhs, spec)
    if body is None:
        return []
    width = spec.vector_width
    hole = rule.lhs.payload
    out = []
    wilds = [B.wildcard(f"x{i}") for i in range(width)]
    for lane in range(width):
        lanes = list(wilds)
        mapping = {
            name: B.wildcard(name) for name in wildcards_of(body)
        }
        mapping[hole] = wilds[lane]
        lanes[lane] = instantiate(body, mapping)
        out.append((f"pad{lane}", B.vec(*wilds), B.vec(*lanes)))
    return out


def generalize_rules(
    rules: list[Rewrite],
    spec: IsaSpec,
    perf: SynthesisPerf | None = None,
) -> tuple[list[Rewrite], GeneralizationReport]:
    """Expand verified single-lane rules to full width (see module doc).

    ``perf`` (optional) collects the re-verification batching counters.
    """
    report = GeneralizationReport(n_input_rules=len(rules))
    seen: set[tuple[Term, Term]] = set()
    out: list[Rewrite] = []

    def emit(name: str, lhs: Term, rhs: Term, vector: bool) -> None:
        if lhs == rhs:
            return
        if set(wildcards_of(rhs)) - set(wildcards_of(lhs)):
            return
        lhs, rhs = canonical_wildcards(lhs, rhs)
        key = (lhs, rhs)
        if key in seen:
            return
        seen.add(key)
        if vector:
            check = verify_vector_rule(lhs, rhs, spec, perf=perf)
        else:
            check = verify_rule(lhs, rhs, spec, perf=perf)
        if not check.ok:
            report.n_rejected += 1
            report.rejected.append((name, lhs, rhs, check.detail))
            return
        out.append(Rewrite(f"{name}-{len(out)}", lhs, rhs))
        report.n_generated += 1

    # Canonical lift per vector instruction, straight from the ISA's
    # scalar<->vector correspondence.  Rule minimization can (rightly)
    # drop a single-lane bridge like (- a b) ~> (VecMinus a b) as
    # derivable through other rules, but its *lift* form is not
    # derivable at full width — without this, instructions whose
    # bridge was minimized away would never get a compilation rule.
    for vinstr in spec.vector_instructions():
        scalar_op = vinstr.vector_of
        if scalar_op is None or not spec.has_instruction(scalar_op):
            continue
        arity = spec.instruction(scalar_op).arity
        pattern = T.make(
            scalar_op, *(T.wildcard(f"x{j}") for j in range(arity))
        )
        lifted_rhs = deep_lift(T.make(
            vinstr.name, *(T.wildcard(f"x{j}") for j in range(arity))
        ), spec)
        if lifted_rhs is not None:
            emit("lift", lift_lhs(pattern, spec), lifted_rhs, vector=True)

    for rule in rules:
        lhs, rhs = rule.lhs, rule.rhs
        ground = not wildcards_of(lhs) and not wildcards_of(rhs)

        # Scalar form.
        s_lhs, s_rhs = scalarize(lhs, spec), scalarize(rhs, spec)
        if s_lhs is not None and s_rhs is not None:
            emit("scal", s_lhs, s_rhs, vector=False)

        # Ground rules are constant folding; their vector/lift variants
        # (e.g. rewriting (VecSqrt (Vec 1 1 1 1))) never fire on real
        # kernels and only slow down matching, so stop here for them.
        if ground:
            continue

        # Vector form.
        v_lhs, v_rhs = vectorize(lhs, spec), vectorize(rhs, spec)
        if v_lhs is not None and v_rhs is not None:
            emit("vect", v_lhs, v_rhs, vector=True)

        # Lift (compilation) form: scalar-shaped LHS in Vec lanes.
        if s_lhs is not None and not T.is_wildcard(s_lhs) and s_lhs.args:
            lifted_rhs = deep_lift(rhs, spec)
            if lifted_rhs is not None:
                emit("lift", lift_lhs(s_lhs, spec), lifted_rhs, vector=True)

        # Lane-restricted padding from identity introductions.
        for name, p_lhs, p_rhs in _padding_rules(rule, spec):
            emit(name, p_lhs, p_rhs, vector=True)

    return out, report
