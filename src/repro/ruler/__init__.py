"""Rewrite-rule synthesis: an extended Ruler (paper §3.1).

Reimplements the Ruler pipeline (Nandi et al., OOPSLA 2021) that Isaria
builds on, plus Isaria's vector-lane extension:

1. :mod:`repro.ruler.enumerate` — enumerate terms over the *single-lane
   reduction* of the ISA (vector instructions applied to scalars),
   deduplicated by characteristic vector;
2. :mod:`repro.ruler.cvec` — characteristic vectors: fingerprints of a
   term's behaviour on corner-case + random inputs;
3. :mod:`repro.ruler.candidates` — candidate rules from cvec
   collisions, oriented in every wildcard-sound direction;
4. :mod:`repro.ruler.verify` — soundness checking: exact multivariate
   rational-function normalization for the polynomial fragment, and
   high-volume fuzzing (undefinedness-exact) for the rest — our
   offline substitute for Ruler's SMT backend;
5. :mod:`repro.ruler.cost_prune` — cost-aware dominated-rule pruning
   (Daly et al.): drop rules an equal-or-more-general kept rule
   already beats on cost delta, with a derivability rescue so the
   survivors still derive everything dropped;
6. :mod:`repro.ruler.minimize` — shrink the rule set by dropping
   candidates derivable from already-accepted rules via bounded
   equality saturation;
7. :mod:`repro.ruler.lanes` — Isaria's vector lane generalization:
   re-expand single-lane rules to full width as scalar rules,
   vector↔vector rules, Vec *lift* (compilation) rules, and
   lane-restricted padding rules, each re-verified at full width;
8. :mod:`repro.ruler.synthesize` — the budgeted end-to-end pipeline.

The hot path computes cvecs with the batched, caching
:class:`~repro.ruler.cvec.CvecEvaluator`; ``REPRO_LEGACY_CVEC=1``
forces the historical per-environment tree interpretation, and
:class:`~repro.ruler.stats.SynthesisPerf` counts what each path did.
"""

from repro.ruler.cvec import (
    CvecEvaluator,
    CvecSpec,
    cvec_of,
    legacy_cvec_requested,
)
from repro.ruler.enumerate import enumerate_terms, EnumerationResult
from repro.ruler.candidates import candidate_rules, orient_pair
from repro.ruler.cost_prune import (
    CostPruneReport,
    cost_model_digest,
    cost_prune_rules,
    legacy_costprune_requested,
    lhs_subsumes,
    rule_delta,
)
from repro.ruler.verify import verify_rule, VerifyResult
from repro.ruler.minimize import minimize_rules
from repro.ruler.stats import SynthesisPerf
from repro.ruler.lanes import generalize_rules
from repro.ruler.synthesize import (
    SynthesisConfig,
    SynthesisResult,
    synthesize_rules,
)

__all__ = [
    "cvec_of",
    "CvecEvaluator",
    "CvecSpec",
    "legacy_cvec_requested",
    "enumerate_terms",
    "EnumerationResult",
    "candidate_rules",
    "orient_pair",
    "verify_rule",
    "VerifyResult",
    "CostPruneReport",
    "cost_model_digest",
    "cost_prune_rules",
    "legacy_costprune_requested",
    "lhs_subsumes",
    "rule_delta",
    "minimize_rules",
    "SynthesisPerf",
    "generalize_rules",
    "SynthesisConfig",
    "SynthesisResult",
    "synthesize_rules",
]
