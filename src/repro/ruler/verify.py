"""Soundness verification of candidate rewrite rules.

The paper validates rules with an SMT solver behind Rosette.  Offline,
we get equivalent assurance from two mechanisms:

- **Exact normalization** for the polynomial fragment ({+, -, *, neg,
  mac} and the vector ops that reduce to them): both sides are
  normalized to multivariate polynomials with ``Fraction``
  coefficients; equal normal forms prove equality over the rationals
  (hence over the reals, by density/continuity of polynomials).
- **Structured fuzzing** for everything else (/ , sqrt, sgn, custom
  ops): both sides are evaluated on corner-case and random rational
  inputs and must agree exactly — *including* where they are undefined,
  so definedness-changing candidates like ``(/ (* a b) b) ~> a`` are
  rejected.

Candidates have already passed cvec filtering, so verification runs on
a disjoint, larger input set (different seed, more samples).

Fuzzing reuses the batched :class:`~repro.ruler.cvec.CvecEvaluator`:
each rule side is one cached DAG walk over the whole sample grid
instead of ``n_samples`` independent tree interpretations.  A side the
batched path cannot evaluate (an :class:`EvalError` mid-grid) falls
back to the historical per-environment loop, which also runs outright
under ``REPRO_LEGACY_CVEC=1`` — either way the verdict, method and
counterexample are identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.interp.env import sample_envs
from repro.interp.interpreter import EvalError, Interpreter
from repro.interp.value import UNDEFINED, values_equal
from repro.isa.spec import IsaSpec
from repro.lang import term as T
from repro.lang.pattern import wildcards_of
from repro.lang.term import Term
from repro.ruler.cvec import CvecEvaluator, legacy_cvec_requested
from repro.ruler.stats import SynthesisPerf

# Ops whose lane semantics are polynomial in their inputs.
_POLY_SCALAR_OPS = {"+", "-", "*", "neg", "mac", "mulsub"}

# Cap on monomial count during multiplication; beyond this we fall
# back to fuzzing rather than grind on huge products.
_MONOMIAL_LIMIT = 512


@dataclass(frozen=True)
class VerifyResult:
    ok: bool
    method: str  # "exact" | "fuzz"
    detail: str = ""


Poly = dict  # monomial (sorted tuple of var names) -> Fraction


def _poly_scalar_op(spec: IsaSpec, op: str) -> str | None:
    """The polynomial scalar op computed per lane, if any."""
    if op in _POLY_SCALAR_OPS:
        return op
    counterpart = None
    if spec.has_instruction(op):
        counterpart = spec.instruction(op).vector_of
    if counterpart in _POLY_SCALAR_OPS:
        return counterpart
    return None


def _poly_add(a: Poly, b: Poly) -> Poly:
    out = dict(a)
    for mono, coeff in b.items():
        total = out.get(mono, Fraction(0)) + coeff
        if total:
            out[mono] = total
        else:
            out.pop(mono, None)
    return out


def _poly_neg(a: Poly) -> Poly:
    return {mono: -coeff for mono, coeff in a.items()}


def _poly_mul(a: Poly, b: Poly) -> Poly | None:
    if len(a) * len(b) > _MONOMIAL_LIMIT:
        return None
    out: Poly = {}
    for mono_a, coeff_a in a.items():
        for mono_b, coeff_b in b.items():
            mono = tuple(sorted(mono_a + mono_b))
            total = out.get(mono, Fraction(0)) + coeff_a * coeff_b
            if total:
                out[mono] = total
            else:
                out.pop(mono, None)
    return out


def polynomial_of(term: Term, spec: IsaSpec) -> Poly | None:
    """Normalize ``term`` to a polynomial, or None if out of fragment."""
    if T.is_const(term):
        value = term.payload
        if isinstance(value, float) and not value.is_integer():
            return None
        coeff = Fraction(value)
        return {(): coeff} if coeff else {}
    if T.is_wildcard(term) or T.is_symbol(term):
        return {(str(term.payload),): Fraction(1)}
    if T.is_get(term):
        array, index = term.payload
        return {(f"{array}[{index}]",): Fraction(1)}

    op = _poly_scalar_op(spec, term.op)
    if op is None:
        return None
    children = []
    for arg in term.args:
        poly = polynomial_of(arg, spec)
        if poly is None:
            return None
        children.append(poly)

    if op == "+":
        return _poly_add(children[0], children[1])
    if op == "-":
        return _poly_add(children[0], _poly_neg(children[1]))
    if op == "neg":
        return _poly_neg(children[0])
    if op == "*":
        return _poly_mul(children[0], children[1])
    if op == "mac":
        product = _poly_mul(children[1], children[2])
        return None if product is None else _poly_add(children[0], product)
    if op == "mulsub":
        product = _poly_mul(children[1], children[2])
        if product is None:
            return None
        return _poly_add(children[0], _poly_neg(product))
    return None


def rational_of(term: Term, spec: IsaSpec) -> tuple[Poly, Poly] | None:
    """Normalize to a rational function ``(numerator, denominator)``.

    Extends the polynomial fragment with division: the term equals
    ``num/den`` wherever defined.  Returns None outside the fragment
    or past the monomial cap.
    """
    if T.is_wildcard(term) or T.is_symbol(term) or T.is_const(term) or (
        T.is_get(term)
    ):
        poly = polynomial_of(term, spec)
        return (poly, {(): Fraction(1)}) if poly is not None else None

    op = term.op
    if op == "/" or (
        spec.has_instruction(op)
        and spec.instruction(op).vector_of == "/"
    ):
        left = rational_of(term.args[0], spec)
        right = rational_of(term.args[1], spec)
        if left is None or right is None:
            return None
        num = _poly_mul(left[0], right[1])
        den = _poly_mul(left[1], right[0])
        if num is None or den is None:
            return None
        return num, den

    scalar = _poly_scalar_op(spec, op)
    if scalar is None:
        return None
    parts = [rational_of(arg, spec) for arg in term.args]
    if any(p is None for p in parts):
        return None

    if scalar in ("+", "-"):
        (p1, q1), (p2, q2) = parts
        cross1 = _poly_mul(p1, q2)
        cross2 = _poly_mul(p2, q1)
        den = _poly_mul(q1, q2)
        if cross1 is None or cross2 is None or den is None:
            return None
        if scalar == "-":
            cross2 = _poly_neg(cross2)
        return _poly_add(cross1, cross2), den
    if scalar == "neg":
        (p, q) = parts[0]
        return _poly_neg(p), q
    if scalar == "*":
        (p1, q1), (p2, q2) = parts
        num = _poly_mul(p1, p2)
        den = _poly_mul(q1, q2)
        return (num, den) if num is not None and den is not None else None
    if scalar in ("mac", "mulsub"):
        (pc, qc), (pa, qa), (pb, qb) = parts
        prod_num = _poly_mul(pa, pb)
        prod_den = _poly_mul(qa, qb)
        if prod_num is None or prod_den is None:
            return None
        if scalar == "mulsub":
            prod_num = _poly_neg(prod_num)
        cross1 = _poly_mul(pc, prod_den)
        cross2 = _poly_mul(prod_num, qc)
        den = _poly_mul(qc, prod_den)
        if cross1 is None or cross2 is None or den is None:
            return None
        return _poly_add(cross1, cross2), den
    return None


def rationals_equal(
    a: tuple[Poly, Poly], b: tuple[Poly, Poly]
) -> bool | None:
    """Cross-multiplied equality of two rational functions.

    True means the functions agree wherever both are defined; None
    means the products blew past the monomial cap.
    """
    left = _poly_mul(a[0], b[1])
    right = _poly_mul(b[0], a[1])
    if left is None or right is None:
        return None
    return left == right


def pattern_to_term(pattern: Term) -> Term:
    """Wildcards become symbols so the interpreter can evaluate."""
    if T.is_wildcard(pattern):
        return T.symbol(pattern.payload)
    if not pattern.args:
        return pattern
    return T.make(
        pattern.op,
        *(pattern_to_term(arg) for arg in pattern.args),
        payload=pattern.payload,
    )


def verify_rule(
    lhs: Term,
    rhs: Term,
    spec: IsaSpec,
    n_samples: int = 64,
    seed: int = 12345,
    perf: SynthesisPerf | None = None,
) -> VerifyResult:
    """Check that ``lhs ~> rhs`` is sound under the ISA semantics.

    ``perf`` (optional) collects how many rule sides took the batched
    vs per-environment fuzz path.
    """
    poly_l = polynomial_of(lhs, spec)
    if poly_l is not None:
        poly_r = polynomial_of(rhs, spec)
        if poly_r is not None:
            if poly_l == poly_r:
                return VerifyResult(True, "exact")
            return VerifyResult(
                False, "exact", "polynomial normal forms differ"
            )

    # Division fragment: exact rational-function check proves equality
    # where both sides are defined; a short fuzz pass below still
    # confirms the *undefinedness* patterns agree.
    rationally_equal = False
    rat_l = rational_of(lhs, spec)
    if rat_l is not None:
        rat_r = rational_of(rhs, spec)
        if rat_r is not None:
            verdict = rationals_equal(rat_l, rat_r)
            if verdict is False:
                return VerifyResult(
                    False, "exact", "rational normal forms differ"
                )
            rationally_equal = verdict is True
    if rationally_equal:
        n_samples = min(n_samples, 12)

    interpreter = spec.interpreter()
    names = sorted(set(wildcards_of(lhs)) | set(wildcards_of(rhs)))
    lhs_term, rhs_term = pattern_to_term(lhs), pattern_to_term(rhs)
    # The sample grid depends on the rule's own variable names, so each
    # rule gets a fresh evaluator — sharing one across rules would
    # change the fuzz inputs and could flip verdicts vs the legacy path.
    envs = tuple(sample_envs(tuple(names), n_random=n_samples, seed=seed))
    if not legacy_cvec_requested():
        result = _fuzz_batched(
            lhs_term, rhs_term, interpreter, envs, rationally_equal, perf
        )
        if result is not None:
            return result
        # Batched evaluation raised mid-grid; the serial loop below
        # reproduces the legacy outcome (a counterexample found before
        # the failing environment, or the same error).
    if perf is not None:
        perf.verify_legacy_terms += 2
    return _fuzz_serial(
        lhs_term, rhs_term, interpreter, envs, rationally_equal
    )


def _fuzz_batched(
    lhs_term: Term,
    rhs_term: Term,
    interpreter: Interpreter,
    envs: tuple,
    rationally_equal: bool,
    perf: SynthesisPerf | None,
) -> VerifyResult | None:
    """Fuzz both sides as cached value rows; None means fall back."""
    evaluator = CvecEvaluator(interpreter, envs, perf=perf)
    try:
        left_row = evaluator.row_of(lhs_term)
        right_row = evaluator.row_of(rhs_term)
    except EvalError:
        return None
    if perf is not None:
        perf.verify_batched_terms += 2
    if rationally_equal:
        # Values already proven equal; only undefinedness agreement
        # remains to check.
        for env, left, right in zip(envs, left_row, right_row):
            if (left is UNDEFINED) != (right is UNDEFINED):
                return VerifyResult(
                    False, "exact", f"definedness mismatch on {env}"
                )
        return VerifyResult(True, "exact")
    for env, left, right in zip(envs, left_row, right_row):
        if not values_equal(left, right):
            return VerifyResult(
                False,
                "fuzz",
                f"counterexample {env}: {left!r} != {right!r}",
            )
    return VerifyResult(True, "fuzz")


def _fuzz_serial(
    lhs_term: Term,
    rhs_term: Term,
    interpreter: Interpreter,
    envs: tuple,
    rationally_equal: bool,
) -> VerifyResult:
    """The historical per-environment fuzz loop (legacy path and the
    fallback when batched evaluation errors mid-grid)."""
    for env in envs:
        left = interpreter.evaluate(lhs_term, env)
        right = interpreter.evaluate(rhs_term, env)
        if rationally_equal:
            # Values already proven equal; only undefinedness
            # agreement remains to check.
            if (left is UNDEFINED) != (right is UNDEFINED):
                return VerifyResult(
                    False,
                    "exact",
                    f"definedness mismatch on {env}",
                )
            continue
        if not values_equal(left, right):
            return VerifyResult(
                False,
                "fuzz",
                f"counterexample {env}: {left!r} != {right!r}",
            )
    return VerifyResult(True, "exact" if rationally_equal else "fuzz")


def verify_vector_rule(
    lhs: Term,
    rhs: Term,
    spec: IsaSpec,
    n_samples: int = 16,
    seed: int = 54321,
    perf: SynthesisPerf | None = None,
) -> VerifyResult:
    """Full-width check of a generalized rule (§3.1's re-verification).

    Wildcards are bound to random *vectors*; lanes evaluate through the
    real lane-wise interpreter, so any cross-lane unsoundness
    introduced by generalization is caught here.  Like
    :func:`verify_rule`, both sides evaluate as cached batched rows,
    with the per-environment loop as the legacy path and error
    fallback.
    """
    from random import Random

    interpreter = spec.interpreter()
    width = spec.vector_width
    names = sorted(set(wildcards_of(lhs)) | set(wildcards_of(rhs)))
    lhs_term, rhs_term = pattern_to_term(lhs), pattern_to_term(rhs)
    rng = Random(seed)

    kinds = _wildcard_kinds(lhs, spec)
    envs = []
    for _ in range(n_samples):
        env = {}
        for name in names:
            if kinds.get(name) == "vector":
                env[name] = tuple(
                    Fraction(rng.randint(-6, 6), rng.choice((1, 2, 3)))
                    for _ in range(width)
                )
            else:
                env[name] = Fraction(
                    rng.randint(-6, 6), rng.choice((1, 2, 3))
                )
        envs.append(env)

    rows = None
    if not legacy_cvec_requested():
        evaluator = CvecEvaluator(interpreter, envs, perf=perf)
        try:
            rows = (
                evaluator.row_of(lhs_term), evaluator.row_of(rhs_term)
            )
        except EvalError:
            rows = None  # serial loop reproduces the legacy outcome
    if rows is not None:
        if perf is not None:
            perf.verify_batched_terms += 2
        pairs = zip(envs, rows[0], rows[1])
    else:
        if perf is not None:
            perf.verify_legacy_terms += 2
        pairs = (
            (
                env,
                interpreter.evaluate(lhs_term, env),
                interpreter.evaluate(rhs_term, env),
            )
            for env in envs
        )
    for env, left, right in pairs:
        if left is UNDEFINED and right is UNDEFINED:
            continue
        if not values_equal(left, right):
            return VerifyResult(
                False,
                "fuzz",
                f"vector counterexample {env}: {left!r} != {right!r}",
            )
    if spec.masked:
        failure = _verify_masked_projection(
            lhs_term, rhs_term, interpreter, names, kinds, width, seed
        )
        if failure is not None:
            return failure
    return VerifyResult(True, "fuzz")


def _verify_masked_projection(
    lhs_term: Term,
    rhs_term: Term,
    interpreter: Interpreter,
    names: list,
    kinds: dict,
    width: int,
    seed: int,
    n_envs: int = 4,
) -> VerifyResult | None:
    """Masked re-check for predicated ISAs; None means it passed.

    Under tail-masking only a prefix of each vector's lanes is
    observed, and the inactive tail may hold anything the rest of the
    program left there.  For each prefix mask we scramble the inactive
    lanes with out-of-distribution junk and require both sides to
    still agree on the *active* prefix — catching any generalized rule
    that would smuggle inactive-lane data into active lanes.  Lane-wise
    rules pass trivially; the check exists for cross-lane custom
    instructions.
    """
    from random import Random

    rng = Random(seed ^ 0x6D61736B)  # "mask"
    for active in sorted({1, max(1, width - 1)}):
        for _ in range(n_envs):
            env = {}
            for name in names:
                if kinds.get(name) == "vector":
                    lanes = [
                        Fraction(rng.randint(-6, 6), rng.choice((1, 2, 3)))
                        for _ in range(width)
                    ]
                    for lane in range(active, width):
                        lanes[lane] = Fraction(rng.randint(-97, 97))
                    env[name] = tuple(lanes)
                else:
                    env[name] = Fraction(
                        rng.randint(-6, 6), rng.choice((1, 2, 3))
                    )
            left = interpreter.evaluate(lhs_term, env)
            right = interpreter.evaluate(rhs_term, env)
            if left is UNDEFINED or right is UNDEFINED:
                # Junk in an inactive lane made a side undefined; a
                # masked machine would not execute that lane, so this
                # environment proves nothing either way.
                continue
            left_prefix = (
                left[:active] if isinstance(left, tuple) else left
            )
            right_prefix = (
                right[:active] if isinstance(right, tuple) else right
            )
            if not values_equal(left_prefix, right_prefix):
                return VerifyResult(
                    False,
                    "fuzz",
                    f"masked (active={active}) counterexample {env}: "
                    f"{left!r} != {right!r}",
                )
    return None


def _wildcard_kinds(pattern: Term, spec: IsaSpec) -> dict:
    """Infer vector/scalar kind of each wildcard from its contexts."""
    from repro.lang.ops import OpKind

    kinds: dict[str, str] = {}

    def visit(term: Term, expected: str) -> None:
        if T.is_wildcard(term):
            kinds.setdefault(term.payload, expected)
            return
        if term.op == "Vec":
            for arg in term.args:
                visit(arg, "scalar")
            return
        if spec.has_instruction(term.op):
            kind = spec.instruction(term.op).kind
            child = "vector" if kind is OpKind.VECTOR else "scalar"
            for arg in term.args:
                visit(arg, child)
            return
        for arg in term.args:
            visit(arg, expected)

    visit(pattern, "vector")
    return kinds
