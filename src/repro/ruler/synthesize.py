"""The end-to-end rule synthesis pipeline (paper Fig. 2, offline part).

``synthesize_rules`` runs: single-lane term enumeration → cvec
candidate pairs → orientation → soundness verification → derivability
minimization → vector lane generalization.  The whole pipeline honours
a wall-clock budget (the independent variable of the Fig. 7
experiment): when time runs out mid-stage, later candidates are simply
dropped, yielding a smaller — but still sound — rule set.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.egraph.rewrite import Rewrite
from repro.isa.spec import IsaSpec
from repro.obs import current_tracer
from repro.ruler.candidates import candidate_rules
from repro.ruler.cost_prune import (
    cost_prune_rules,
    legacy_costprune_requested,
)
from repro.ruler.cvec import CvecSpec
from repro.ruler.enumerate import enumerate_terms
from repro.ruler.lanes import GeneralizationReport, generalize_rules
from repro.ruler.minimize import minimize_rules
from repro.ruler.stats import SynthesisPerf
from repro.ruler.verify import verify_rule

# Candidate-verification fan-out: below this many candidates a process
# pool is pure overhead, so verification stays serial (and keeps the
# historical per-candidate deadline granularity).
_PARALLEL_VERIFY_MIN = 64


class _VerifyTask:
    """Picklable soundness check of a candidate chunk.

    Chunked so each worker reports one perf-counter block per fan-out
    (merged back into the run's :class:`SynthesisPerf`) instead of
    shipping counters per rule.
    """

    __slots__ = ("_spec", "_n_samples", "_seed")

    def __init__(self, spec: IsaSpec, n_samples: int, seed: int):
        self._spec = spec
        self._n_samples = n_samples
        self._seed = seed

    def __call__(
        self, rules: tuple
    ) -> tuple[list[bool], SynthesisPerf]:
        perf = SynthesisPerf()
        oks = [
            verify_rule(
                rule.lhs,
                rule.rhs,
                self._spec,
                n_samples=self._n_samples,
                seed=self._seed,
                perf=perf,
            ).ok
            for rule in rules
        ]
        return oks, perf


@dataclass(frozen=True)
class SynthesisConfig:
    """Knobs for one offline synthesis run."""

    max_term_size: int = 5
    variables: tuple[str, ...] = ("a", "b", "c")
    constants: tuple = (0, 1)
    n_cvec_random: int = 24
    cvec_seed: int = 0
    n_verify_samples: int = 48
    verify_seed: int = 12345
    time_budget: float | None = None  # seconds; None = unbounded
    minimize: bool = True
    # Cost-aware dominated-rule pruning (repro.ruler.cost_prune): drop
    # verified candidates an equal-or-more-general kept rule already
    # beats on cost delta, before and after lane generalization.
    # ``REPRO_LEGACY_COSTPRUNE=1`` overrides this to the unpruned path.
    cost_prune: bool = True
    # Restrict enumeration to these operators (None = all).  Used for
    # focused incremental synthesis around custom instructions, where
    # the interesting rules need size-6 terms that are intractable to
    # enumerate over the full instruction set.
    op_allowlist: tuple | None = None
    # Sharding of the largest enumeration size across worker
    # processes: None = automatic, 1 = forbid, >1 = force with at most
    # that many workers (see ``enumerate_terms``).
    enumeration_jobs: int | None = None

    @staticmethod
    def budgeted(seconds: float) -> "SynthesisConfig":
        """A config scaled to a Fig. 7-style offline budget.

        Small budgets enumerate shallower terms — the same trade the
        paper makes when cutting rule generation from a day to minutes.
        """
        if seconds < 5:
            size = 3
        elif seconds < 30:
            size = 4
        else:
            size = 5
        return SynthesisConfig(max_term_size=size, time_budget=seconds)


@dataclass
class SynthesisResult:
    """Everything the offline stage produced."""

    rules: list[Rewrite]
    single_lane_rules: list[Rewrite]
    n_enumerated: int = 0
    n_representatives: int = 0
    n_pairs: int = 0
    n_candidates: int = 0
    n_verified: int = 0
    n_unsound: int = 0
    generalization: GeneralizationReport | None = None
    # Dominance-pruning provenance: {"single_lane": {...},
    # "full_width": {...}} CostPruneReport dicts, or None when the
    # stage was disabled (config or REPRO_LEGACY_COSTPRUNE=1).
    pruning: dict | None = None
    elapsed: float = 0.0
    aborted: bool = False
    stage_times: dict = field(default_factory=dict)
    perf: SynthesisPerf = field(default_factory=SynthesisPerf)


def synthesize_rules(
    spec: IsaSpec, config: SynthesisConfig | None = None
) -> SynthesisResult:
    """Run the full offline pipeline against ``spec``.

    When tracing is enabled (see :mod:`repro.obs`) the run emits a
    ``synthesize`` span with one ``synthesize.<stage>`` child per
    pipeline stage, each carrying that stage's candidate counts.
    """
    config = config or SynthesisConfig()
    tracer = current_tracer()
    with tracer.span(
        "synthesize", max_term_size=config.max_term_size,
        time_budget=config.time_budget,
    ) as span:
        result = _synthesize_rules(spec, config, tracer)
        if span.enabled:
            span.add(
                n_enumerated=result.n_enumerated,
                n_pairs=result.n_pairs,
                n_candidates=result.n_candidates,
                n_verified=result.n_verified,
                n_unsound=result.n_unsound,
                n_rules=len(result.rules),
                aborted=result.aborted,
                cvec_backend=result.perf.backend,
            )
    return result


def _synthesize_rules(
    spec: IsaSpec, config: SynthesisConfig, tracer
) -> SynthesisResult:
    start = time.monotonic()
    deadline = (
        start + config.time_budget if config.time_budget is not None else None
    )
    stage_times: dict[str, float] = {}
    perf = SynthesisPerf()

    # 1. Enumerate single-lane terms, deduplicated by cvec.
    t0 = time.monotonic()
    cvec_spec = CvecSpec.make(
        config.variables,
        n_random=config.n_cvec_random,
        seed=config.cvec_seed,
    )
    enumeration = enumerate_terms(
        spec,
        cvec_spec,
        max_size=config.max_term_size,
        constants=config.constants,
        deadline=deadline,
        op_allowlist=config.op_allowlist,
        jobs=config.enumeration_jobs,
        perf=perf,
    )
    stage_times["enumerate"] = time.monotonic() - t0
    if tracer.enabled:
        tracer.record(
            "synthesize.enumerate", stage_times["enumerate"],
            n_enumerated=enumeration.n_enumerated,
            n_representatives=enumeration.n_representatives,
            n_pairs=len(enumeration.pairs),
            aborted=enumeration.aborted,
            cvec_backend=perf.backend,
            shards=perf.enumeration_shards,
            size_times={
                str(k): v for k, v in sorted(perf.per_size_times.items())
            },
            size_terms={
                str(k): v for k, v in sorted(perf.per_size_terms.items())
            },
            size_new={
                str(k): v for k, v in sorted(perf.per_size_new.items())
            },
        )

    # 2. Orient cvec-equal pairs into directed candidates.
    t0 = time.monotonic()
    candidates = candidate_rules(enumeration.pairs)
    stage_times["candidates"] = time.monotonic() - t0
    if tracer.enabled:
        tracer.record(
            "synthesize.candidates", stage_times["candidates"],
            n_candidates=len(candidates),
        )

    # 3. Verify soundness (exact where possible, fuzz otherwise).
    # Candidates are independent, so verification fans out across
    # processes in deadline-checked chunks; results are consumed in
    # candidate order, so the verified rule list is identical to the
    # serial path's (the pool degrades to serial when unavailable or
    # when the candidate set is too small to amortize it).
    # Imported here: repro.bench's package init reaches back into this
    # module through the framework (benchmark convenience re-exports),
    # so a top-level import would be circular.
    from repro.bench.parallel import parallel_map, parallel_workers

    t0 = time.monotonic()
    verified: list[Rewrite] = []
    n_unsound = 0
    aborted = enumeration.aborted
    verify_task = _VerifyTask(
        spec, config.n_verify_samples, config.verify_seed
    )
    workers = parallel_workers()
    if workers > 1 and len(candidates) >= _PARALLEL_VERIFY_MIN:
        # With no deadline, one fan-out covers everything; under a
        # deadline, chunks keep the abort granularity reasonable.
        chunk = len(candidates) if deadline is None else 8 * workers
    else:
        chunk = 1  # serial, with per-candidate deadline checks
    index = 0
    while index < len(candidates):
        if deadline is not None and time.monotonic() > deadline:
            aborted = True
            break
        batch = candidates[index:index + chunk]
        if chunk == 1:
            per_worker = len(batch)
        else:
            per_worker = max(1, (len(batch) + workers - 1) // workers)
        pieces = [
            tuple(batch[i:i + per_worker])
            for i in range(0, len(batch), per_worker)
        ]
        results = (
            [verify_task(pieces[0])]
            if len(pieces) == 1
            else parallel_map(verify_task, pieces, max_workers=workers)
        )
        outcomes = []
        for oks, chunk_perf in results:
            outcomes.extend(oks)
            perf.merge(chunk_perf)
        for rule, ok in zip(batch, outcomes):
            if ok:
                verified.append(rule)
            else:
                n_unsound += 1
        index += chunk
    stage_times["verify"] = time.monotonic() - t0
    if tracer.enabled:
        tracer.record(
            "synthesize.verify", stage_times["verify"],
            n_verified=len(verified), n_unsound=n_unsound,
            parallel_workers=workers if chunk > 1 else 1,
            batched_terms=perf.verify_batched_terms,
            legacy_terms=perf.verify_legacy_terms,
        )

    # 4. Cost-aware dominated-rule pruning (Daly et al.), then the
    # derivability shrink.  Pruning is a stable filter: survivors keep
    # candidate order so orientation pairs (L => R next to R => L)
    # stay adjacent — minimize's greedy batches only spare rules that
    # share a batch, and splitting a pair lets the equivalence-based
    # derivability check drop the generative orientation.
    pruning_enabled = config.cost_prune and not legacy_costprune_requested()
    pruning: dict | None = None
    if pruning_enabled:
        t0 = time.monotonic()
        pruned, prune_report = cost_prune_rules(verified, spec, perf=perf)
        pruning = {"single_lane": prune_report.as_dict()}
        stage_times["cost_prune"] = time.monotonic() - t0
        if tracer.enabled:
            tracer.record(
                "synthesize.cost_prune", stage_times["cost_prune"],
                n_in=prune_report.n_in, n_kept=prune_report.n_kept,
                n_dominated=prune_report.n_dominated,
                n_rescued=prune_report.n_rescued,
            )
    else:
        pruned = verified

    t0 = time.monotonic()
    if config.minimize:
        kept, min_aborted = minimize_rules(
            pruned,
            deadline=deadline,
            interpreter=spec.interpreter(),
            perf=perf,
        )
        aborted = aborted or min_aborted
    else:
        kept = pruned
    stage_times["minimize"] = time.monotonic() - t0
    if tracer.enabled:
        tracer.record(
            "synthesize.minimize", stage_times["minimize"],
            n_in=len(pruned), n_kept=len(kept),
            n_screened=perf.minimize_screened,
        )

    # 5. Lane generalization to full vector width.  Generalization
    # re-stamps lane-count variants of every kept rule, recreating
    # dominated patterns at full width, so the pruned path prunes
    # again after it.
    t0 = time.monotonic()
    full_width, gen_report = generalize_rules(kept, spec, perf=perf)
    if pruning_enabled:
        full_width, full_report = cost_prune_rules(
            full_width, spec, perf=perf
        )
        pruning["full_width"] = full_report.as_dict()
    stage_times["generalize"] = time.monotonic() - t0
    if tracer.enabled:
        tracer.record(
            "synthesize.generalize", stage_times["generalize"],
            n_in=len(kept), n_rules=len(full_width),
        )

    return SynthesisResult(
        rules=full_width,
        single_lane_rules=kept,
        n_enumerated=enumeration.n_enumerated,
        n_representatives=enumeration.n_representatives,
        n_pairs=len(enumeration.pairs),
        n_candidates=len(candidates),
        n_verified=len(verified),
        n_unsound=n_unsound,
        generalization=gen_report,
        pruning=pruning,
        elapsed=time.monotonic() - start,
        aborted=aborted,
        stage_times=stage_times,
        perf=perf,
    )
