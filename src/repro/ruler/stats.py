"""Descriptive statistics over rule sets.

Used by the inspection tooling (the synthesis-tour example, Fig. 8's
bench) to answer "what did synthesis actually learn?": operator
coverage, rule-shape histograms, and per-operator rule counts.
"""

from __future__ import annotations

from collections import Counter

from repro.egraph.rewrite import Rewrite
from repro.lang.ops import LEAF_OPS
from repro.lang.term import subterms, term_size


def ops_used(rules: list[Rewrite]) -> Counter:
    """How many rules mention each (non-leaf) operator."""
    counts: Counter = Counter()
    for rule in rules:
        mentioned = set()
        for side in (rule.lhs, rule.rhs):
            for sub in subterms(side):
                if sub.op not in LEAF_OPS:
                    mentioned.add(sub.op)
        counts.update(mentioned)
    return counts


def size_histogram(rules: list[Rewrite], bins=(4, 8, 12, 20)) -> dict:
    """Rules bucketed by total pattern size (lhs + rhs nodes)."""
    labels = []
    lower = 0
    for upper in bins:
        labels.append(f"{lower + 1}-{upper}")
        lower = upper
    labels.append(f">{bins[-1]}")
    histogram = {label: 0 for label in labels}
    for rule in rules:
        size = term_size(rule.lhs) + term_size(rule.rhs)
        for upper, label in zip(bins, labels):
            if size <= upper:
                histogram[label] += 1
                break
        else:
            histogram[labels[-1]] += 1
    return histogram


def coverage_gaps(rules: list[Rewrite], spec) -> list[str]:
    """ISA instructions no rule mentions (likely synthesis gaps)."""
    used = ops_used(rules)
    return [
        instr.name
        for instr in spec.instructions
        if instr.name not in used
    ]


def summarize(rules: list[Rewrite], spec=None) -> str:
    """A multi-line human-readable rule-set summary."""
    lines = [f"{len(rules)} rules"]
    histogram = size_histogram(rules)
    lines.append(
        "sizes: "
        + ", ".join(f"{k}: {v}" for k, v in histogram.items())
    )
    top = ops_used(rules).most_common(8)
    lines.append(
        "top operators: "
        + ", ".join(f"{op} ({n})" for op, n in top)
    )
    if spec is not None:
        gaps = coverage_gaps(rules, spec)
        lines.append(
            "uncovered instructions: "
            + (", ".join(gaps) if gaps else "none")
        )
    return "\n".join(lines)
