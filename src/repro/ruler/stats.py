"""Statistics over rule sets and the offline synthesis hot path.

Used by the inspection tooling (the synthesis-tour example, Fig. 8's
bench) to answer "what did synthesis actually learn?": operator
coverage, rule-shape histograms, and per-operator rule counts.  Also
home of :class:`SynthesisPerf`, the offline-stage counter block that
``synthesize_rules`` folds into its result, tracer spans, and the
``BENCH_synthesis.json`` perf artifact — the synthesis-side sibling of
the saturation engine's ``SaturationPerf``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.egraph.rewrite import Rewrite
from repro.lang.ops import LEAF_OPS
from repro.lang.term import subterms, term_size


@dataclass
class SynthesisPerf:
    """Counters for the offline synthesis hot path.

    Filled in by :mod:`repro.ruler.enumerate` (batched cvec
    evaluation), :mod:`repro.ruler.verify` (batched fuzzing) and
    :mod:`repro.ruler.minimize` (cvec screening); merged across
    enumeration shards.  ``backend`` records which cvec path ran:
    ``"batched"`` (the default structure-of-arrays evaluator) or
    ``"legacy"`` (``REPRO_LEGACY_CVEC=1``, one tree walk per
    environment).
    """

    backend: str = "batched"
    # Batched-evaluator counters (see repro.ruler.cvec.CvecEvaluator).
    batched_evals: int = 0        # rows computed by one root-op application
    legacy_evals: int = 0         # full per-env tree interpretations
    cvec_cache_hits: int = 0      # child rows served from the cvec cache
    cvec_cache_misses: int = 0    # rows that had to be computed
    fingerprint_collisions: int = 0  # interned fingerprint seen before
    interned_fingerprints: int = 0   # distinct fingerprints interned
    # Pipeline-stage counters.
    enumeration_shards: int = 0   # parallel shards of the largest size
    verify_batched_terms: int = 0  # rule sides evaluated batched
    verify_legacy_terms: int = 0   # rule sides evaluated per-env
    minimize_screened: int = 0     # rules dropped by the cvec screen
    screen_env_cache_hits: int = 0   # cvec screens reusing a cached evaluator
    screen_env_cache_misses: int = 0  # wildcard signatures needing fresh envs
    costprune_dominated: int = 0   # rules dropped as cost-dominated
    costprune_rescued: int = 0     # dominated instsel rules rescued back
    # Per-term-size enumeration breakdown (size -> value).
    per_size_times: dict = field(default_factory=dict)
    per_size_terms: dict = field(default_factory=dict)
    per_size_new: dict = field(default_factory=dict)

    def merge(self, other: "SynthesisPerf") -> "SynthesisPerf":
        """Fold ``other``'s counters into this block (returns self).

        Used to combine per-shard counters from parallel enumeration
        and per-chunk counters from parallel verification.
        """
        self.batched_evals += other.batched_evals
        self.legacy_evals += other.legacy_evals
        self.cvec_cache_hits += other.cvec_cache_hits
        self.cvec_cache_misses += other.cvec_cache_misses
        self.fingerprint_collisions += other.fingerprint_collisions
        self.interned_fingerprints += other.interned_fingerprints
        self.enumeration_shards += other.enumeration_shards
        self.verify_batched_terms += other.verify_batched_terms
        self.verify_legacy_terms += other.verify_legacy_terms
        self.minimize_screened += other.minimize_screened
        self.screen_env_cache_hits += other.screen_env_cache_hits
        self.screen_env_cache_misses += other.screen_env_cache_misses
        self.costprune_dominated += other.costprune_dominated
        self.costprune_rescued += other.costprune_rescued
        for ours, theirs in (
            (self.per_size_times, other.per_size_times),
            (self.per_size_terms, other.per_size_terms),
            (self.per_size_new, other.per_size_new),
        ):
            for size, value in theirs.items():
                ours[size] = ours.get(size, 0) + value
        return self

    def as_dict(self) -> dict:
        """A JSON-ready dict (per-size keys stringified for JSON)."""
        return {
            "backend": self.backend,
            "batched_evals": self.batched_evals,
            "legacy_evals": self.legacy_evals,
            "cvec_cache_hits": self.cvec_cache_hits,
            "cvec_cache_misses": self.cvec_cache_misses,
            "fingerprint_collisions": self.fingerprint_collisions,
            "interned_fingerprints": self.interned_fingerprints,
            "enumeration_shards": self.enumeration_shards,
            "verify_batched_terms": self.verify_batched_terms,
            "verify_legacy_terms": self.verify_legacy_terms,
            "minimize_screened": self.minimize_screened,
            "screen_env_cache_hits": self.screen_env_cache_hits,
            "screen_env_cache_misses": self.screen_env_cache_misses,
            "costprune_dominated": self.costprune_dominated,
            "costprune_rescued": self.costprune_rescued,
            "per_size_times": {
                str(k): v for k, v in sorted(self.per_size_times.items())
            },
            "per_size_terms": {
                str(k): v for k, v in sorted(self.per_size_terms.items())
            },
            "per_size_new": {
                str(k): v for k, v in sorted(self.per_size_new.items())
            },
        }


def ops_used(rules: list[Rewrite]) -> Counter:
    """How many rules mention each (non-leaf) operator."""
    counts: Counter = Counter()
    for rule in rules:
        mentioned = set()
        for side in (rule.lhs, rule.rhs):
            for sub in subterms(side):
                if sub.op not in LEAF_OPS:
                    mentioned.add(sub.op)
        counts.update(mentioned)
    return counts


def size_histogram(rules: list[Rewrite], bins=(4, 8, 12, 20)) -> dict:
    """Rules bucketed by total pattern size (lhs + rhs nodes)."""
    labels = []
    lower = 0
    for upper in bins:
        labels.append(f"{lower + 1}-{upper}")
        lower = upper
    labels.append(f">{bins[-1]}")
    histogram = {label: 0 for label in labels}
    for rule in rules:
        size = term_size(rule.lhs) + term_size(rule.rhs)
        for upper, label in zip(bins, labels):
            if size <= upper:
                histogram[label] += 1
                break
        else:
            histogram[labels[-1]] += 1
    return histogram


def coverage_gaps(rules: list[Rewrite], spec) -> list[str]:
    """ISA instructions no rule mentions (likely synthesis gaps)."""
    used = ops_used(rules)
    return [
        instr.name
        for instr in spec.instructions
        if instr.name not in used
    ]


def summarize(rules: list[Rewrite], spec=None) -> str:
    """A multi-line human-readable rule-set summary."""
    lines = [f"{len(rules)} rules"]
    histogram = size_histogram(rules)
    lines.append(
        "sizes: "
        + ", ".join(f"{k}: {v}" for k, v in histogram.items())
    )
    top = ops_used(rules).most_common(8)
    lines.append(
        "top operators: "
        + ", ".join(f"{op} ({n})" for op, n in top)
    )
    if spec is not None:
        gaps = coverage_gaps(rules, spec)
        lines.append(
            "uncovered instructions: "
            + (", ".join(gaps) if gaps else "none")
        )
    return "\n".join(lines)
