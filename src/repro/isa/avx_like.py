"""An AVX-like wide ISA family (8/16 float lanes, alignment-aware).

The paper's §5.4 claim is that the generator adapts to ISA
customization; this family stresses the *width* axis the way AVX /
AVX-512 stress real compilers.  It reuses the fusion-g3 lane
semantics (the DSL algebra is width-independent) but differs in the
machine-facing contract:

- the natural widths are 8 and 16 lanes instead of 4;
- contiguous vector loads are only cheap when **aligned** to the
  register width — a contiguous-but-misaligned run of ``Get`` lanes
  costs ``vec_unaligned_cost`` and lowers to the dedicated ``v.loadu``
  opcode, whose latency grows with register width in the simulator
  (wider registers cross more alignment boundaries).

Everything upstream of lowering (rule synthesis, lane generalization,
phase assignment) is shared with fusion-g3 via
:func:`repro.core.pregen.family_compiler`, which re-generalizes the
width-independent single-lane algebra at this spec's width.
"""

from __future__ import annotations

from repro.isa.fusion_g3 import fusion_g3_spec
from repro.isa.spec import IsaSpec

#: Cost of a contiguous-but-misaligned vector load (an aligned one
#: costs ``vec_contiguous_cost`` = 1.0).  Calibrated between the
#: aligned load and a two-load+shuffle expansion so extraction prefers
#: aligned access but still vectorizes misaligned runs.
UNALIGNED_LOAD_COST = 4.0


def avx_like_spec(vector_width: int = 8) -> IsaSpec:
    """The AVX-like wide ISA at ``vector_width`` lanes (default 8).

    Widths 8 and 16 are the family's natural sizes (the AVX/AVX-512
    analogy); 4 is accepted for sweep baselines.
    """
    if vector_width not in (4, 8, 16):
        raise ValueError(
            f"avx-like supports widths 4/8/16, not {vector_width}"
        )
    base = fusion_g3_spec(vector_width)
    return IsaSpec(
        name=f"avx-like-w{vector_width}",
        vector_width=vector_width,
        instructions=base.instructions,
        vec_unaligned_cost=UNALIGNED_LOAD_COST,
    )
