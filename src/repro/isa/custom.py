"""Custom ISA instructions for the §5.4 exploration experiment.

The paper adds two instructions to the Fusion G3 to accelerate QR
decomposition, changing only the ISA specification and cost model:

1. ``VecMulSub`` — vectorized multiply-subtract: ``c - a * b`` per lane
   (a multiply-accumulate that subtracts);
2. ``VecSqrtSgn`` — vectorized square-root-sign-product:
   ``sqrt(a) * sign(-b)`` per lane.

Each custom vector instruction comes with its single-lane scalar
counterpart so rule synthesis can discover rules connecting it to the
base ops (this mirrors the paper's Rosette snippet, which defines both
``sqrt-sgn`` and ``vector-sqrt-sgn``).
"""

from __future__ import annotations

from repro.isa.fusion_g3 import _sgn, _sqrt
from repro.isa.spec import Instruction, IsaSpec
from repro.lang.ops import OpKind


def _mulsub(c, a, b):
    return c - a * b


def _sqrtsgn(a, b):
    root = _sqrt(a)
    if root is None:
        return None
    return root * _sgn(-b)


def make_mulsub_instructions() -> tuple[Instruction, Instruction]:
    """Scalar + vector multiply-subtract descriptors."""
    scalar = Instruction(
        "mulsub", 3, OpKind.SCALAR, _mulsub, 12.0, latency=2
    )
    vector = Instruction(
        "VecMulSub",
        3,
        OpKind.VECTOR,
        _mulsub,
        1.0,
        vector_of="mulsub",
        latency=2,
    )
    return scalar, vector


def make_sqrtsgn_instructions() -> tuple[Instruction, Instruction]:
    """Scalar + vector square-root-sign-product descriptors."""
    scalar = Instruction(
        "sqrtsgn", 2, OpKind.SCALAR, _sqrtsgn, 14.0, latency=10
    )
    vector = Instruction(
        "VecSqrtSgn",
        2,
        OpKind.VECTOR,
        _sqrtsgn,
        3.0,
        vector_of="sqrtsgn",
        latency=10,
    )
    return scalar, vector


def customized_spec(
    base: IsaSpec, mulsub: bool = False, sqrtsgn: bool = False
) -> IsaSpec:
    """The base ISA extended with the requested custom instructions.

    The four combinations of the two flags are exactly the four
    compilers synthesized for paper Table 2.
    """
    extra: list[Instruction] = []
    suffix: list[str] = []
    if mulsub:
        extra.extend(make_mulsub_instructions())
        suffix.append("mulsub")
    if sqrtsgn:
        extra.extend(make_sqrtsgn_instructions())
        suffix.append("sqrtsgn")
    if not extra:
        return base
    return base.extended(extra, name=f"{base.name}+{'+'.join(suffix)}")
