"""A masked/predicated ISA family (mask registers, no scalar tails).

Real DSP and vector ISAs (AVX-512, SVE, RVV) carry per-lane predicate
registers so loops whose trip counts are not lane multiples run
entirely in the vector unit.  This family adds that contract to the
repro: the machine model gains a mask register file (``m<N>``) and
masked variants of load/store/arith (``v.load.m`` / ``v.store.m`` /
``v.op.m``), and the lowering pass turns a kernel's tail chunk into a
prefix-masked store instead of per-lane scalar inserts.

Compiling for this family, a kernel with e.g. 11 outputs at width 8
emits one full-width chunk plus one chunk under the 3-lane prefix
mask — **zero scalar-tail instructions** — and the simulator's
lane-utilization counters report 11/16 active lanes instead of the
pessimistic scalar fallback.

Lane semantics are shared with fusion-g3; only the structural costs
(``mask_cost``) and the ``masked`` capability flag differ, so rule
generalization reuses the same width-independent algebra via
:func:`repro.core.pregen.family_compiler`.
"""

from __future__ import annotations

from repro.isa.fusion_g3 import fusion_g3_spec
from repro.isa.spec import IsaSpec


def masked_spec(vector_width: int = 8) -> IsaSpec:
    """The masked/predicated ISA at ``vector_width`` lanes (default 8)."""
    if vector_width not in (4, 8, 16):
        raise ValueError(
            f"masked supports widths 4/8/16, not {vector_width}"
        )
    base = fusion_g3_spec(vector_width)
    return IsaSpec(
        name=f"masked-w{vector_width}",
        vector_width=vector_width,
        instructions=base.instructions,
        masked=True,
        mask_cost=1.0,
    )
