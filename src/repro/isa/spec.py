"""Instruction descriptors and ISA specifications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.interp.interpreter import Interpreter
from repro.lang.ops import (
    OpKind,
    Operator,
    OperatorRegistry,
    default_registry,
)

LaneFn = Callable[..., object]


@dataclass(frozen=True)
class Instruction:
    """One ISA instruction, described executably.

    ``lane_fn`` gives the semantics of a single lane over Python
    numbers (``int``/``float``/``Fraction``); returning ``None`` marks
    the result undefined (division by zero, sqrt of a negative).
    Vector instructions are applied lane-wise by the interpreter, and
    applied *directly to scalars* during rule synthesis — the paper's
    single-lane reduction (§3.1).

    ``base_cost`` is the instruction's contribution to the abstract
    cost model (Definition 1); the full model adds structural costs for
    ``Vec``/``Concat`` in :mod:`repro.phases.cost`.
    """

    name: str
    arity: int
    kind: OpKind
    lane_fn: LaneFn
    base_cost: float
    vector_of: str | None = None
    commutative: bool = False
    latency: int = 1  # cycles on the machine model (repro.machine)

    def __post_init__(self):
        if self.kind not in (OpKind.SCALAR, OpKind.VECTOR):
            raise ValueError(
                f"instruction {self.name!r} must be scalar or vector"
            )
        if self.arity < 1:
            raise ValueError(f"instruction {self.name!r} needs arity >= 1")
        if self.base_cost <= 0:
            raise ValueError(
                f"instruction {self.name!r} needs a positive cost "
                "(strict monotonicity, Definition 2)"
            )


@dataclass(frozen=True)
class IsaSpec:
    """An executable ISA specification plus its abstract costs.

    This is the pair of inputs the Isaria workflow consumes (Fig. 2):
    the interpreter comes from the instructions' ``lane_fn``s, and the
    cost model from their ``base_cost``s plus the structural costs
    below.
    """

    name: str
    vector_width: int
    instructions: tuple[Instruction, ...]
    # Structural cost-model knobs (see repro.phases.cost for how these
    # combine; they model hardware vector construction).
    leaf_cost: float = 1.0
    vec_lane_literal_cost: float = 1.0  # lane holding a leaf (movable)
    vec_lane_compute_cost: float = 1000.0  # lane holding a computation
    vec_contiguous_cost: float = 1.0  # whole Vec is one aligned load
    concat_cost: float = 10.0
    # Family extensions (all default-off so fusion-g3 fingerprints are
    # untouched; see repro.core.artifact.spec_semantics_hash).
    masked: bool = False  # mask registers + masked load/store/arith
    mask_cost: float = 1.0  # structural cost of materializing a mask
    # Cost of a contiguous-but-misaligned vector load.  ``None`` means
    # the ISA does not distinguish alignment (the fusion-g3 model);
    # AVX-like specs set it above ``vec_contiguous_cost``.
    vec_unaligned_cost: float | None = None

    def __post_init__(self):
        if self.vector_width < 2:
            raise ValueError("vector_width must be at least 2")
        names = [instr.name for instr in self.instructions]
        if len(names) != len(set(names)):
            raise ValueError("duplicate instruction names in ISA spec")
        if self.mask_cost <= 0:
            raise ValueError("mask_cost must be positive (Definition 2)")
        if (
            self.vec_unaligned_cost is not None
            and self.vec_unaligned_cost <= 0
        ):
            raise ValueError("vec_unaligned_cost must be positive")

    @property
    def models_alignment(self) -> bool:
        """True when aligned and unaligned loads cost differently."""
        return self.vec_unaligned_cost is not None

    # -- lookups ---------------------------------------------------------

    def instruction(self, name: str) -> Instruction:
        """The instruction named ``name`` (KeyError if absent)."""
        for instr in self.instructions:
            if instr.name == name:
                return instr
        raise KeyError(f"no instruction {name!r} in ISA {self.name!r}")

    def has_instruction(self, name: str) -> bool:
        """True when this ISA defines an instruction ``name``."""
        return any(instr.name == name for instr in self.instructions)

    def scalar_instructions(self) -> list[Instruction]:
        """The ISA's scalar instructions, in declaration order."""
        return [i for i in self.instructions if i.kind is OpKind.SCALAR]

    def vector_instructions(self) -> list[Instruction]:
        """The ISA's vector instructions, in declaration order."""
        return [i for i in self.instructions if i.kind is OpKind.VECTOR]

    def scalar_counterpart(self, vector_name: str) -> str | None:
        """The scalar op a vector instruction applies lane-wise.

        None for vector-only instructions with no single-lane
        reduction (e.g. shuffles).
        """
        return self.instruction(vector_name).vector_of

    def vector_counterpart(self, scalar_name: str) -> str | None:
        """The vector instruction lifting ``scalar_name``, if any."""
        for instr in self.vector_instructions():
            if instr.vector_of == scalar_name:
                return instr.name
        return None

    # -- derived objects -------------------------------------------------

    def registry(self) -> OperatorRegistry:
        """Operator registry covering this ISA (base DSL + customs)."""
        registry = default_registry()
        for instr in self.instructions:
            if instr.name not in registry:
                registry.register(
                    Operator(
                        instr.name,
                        instr.arity,
                        instr.kind,
                        vector_of=instr.vector_of,
                        commutative=instr.commutative,
                    )
                )
        return registry

    def interpreter(self) -> Interpreter:
        """The executable interpreter for this ISA."""
        semantics = {i.name: i.lane_fn for i in self.instructions}
        kinds = {i.name: i.kind for i in self.instructions}
        return Interpreter(semantics, kinds)

    def op_costs(self) -> dict[str, float]:
        """Per-instruction base cost table (input to the cost model)."""
        return {i.name: i.base_cost for i in self.instructions}

    def extended(
        self, extra: Iterable[Instruction], name: str | None = None
    ) -> "IsaSpec":
        """A new spec with ``extra`` instructions added (paper §5.4)."""
        extra = tuple(extra)
        return IsaSpec(
            name=name or f"{self.name}+{'+'.join(i.name for i in extra)}",
            vector_width=self.vector_width,
            instructions=self.instructions + extra,
            leaf_cost=self.leaf_cost,
            vec_lane_literal_cost=self.vec_lane_literal_cost,
            vec_lane_compute_cost=self.vec_lane_compute_cost,
            vec_contiguous_cost=self.vec_contiguous_cost,
            concat_cost=self.concat_cost,
            masked=self.masked,
            mask_cost=self.mask_cost,
            vec_unaligned_cost=self.vec_unaligned_cost,
        )
