"""A Tensilica-Fusion-G3-like base ISA specification.

This mirrors the 73-line Rosette ISA spec the paper reuses from
Diospyros (Table 1): scalar float arithmetic plus 4-wide lane-wise
vector instructions.  Semantics are total up to explicit undefinedness:
division by zero and square roots of negatives return ``None``, which
the interpreter propagates as UNDEFINED; rule synthesis compares
undefinedness exactly, so e.g. ``(/ (* a b) b) => a`` is rejected.

Cost calibration (abstract cycles; see DESIGN.md):

- scalar ops are ~10, making any still-scalar subterm expensive;
- vector ops are 1-3 — a vector instruction amortizes its lanes;
- building a ``Vec`` out of *computed* lanes costs ~1000/lane (there is
  no hardware instruction for it — each lane must be moved through a
  scalar register), while a ``Vec`` of plain values is cheap, and a
  contiguous run of ``Get``s is a single aligned vector load.

This calibration reproduces the cluster geometry of paper Fig. 8:
scalar<->scalar rules have aggregate cost in the tens with small
differential, vector<->vector rules have small aggregate, and
scalar->vector (compilation) rules have differential in the thousands.
"""

from __future__ import annotations

import math
from fractions import Fraction

from repro.isa.spec import Instruction, IsaSpec
from repro.lang.ops import OpKind


def _add(a, b):
    return a + b


def _sub(a, b):
    return a - b


def _mul(a, b):
    return a * b


def _div(a, b):
    if b == 0:
        return None
    if isinstance(a, Fraction) or isinstance(b, Fraction):
        return Fraction(a) / Fraction(b)
    if isinstance(a, int) and isinstance(b, int):
        return Fraction(a, b)
    return a / b


def _neg(a):
    return -a


def _sgn(a):
    if a > 0:
        return 1
    if a < 0:
        return -1
    return 0


def _sqrt(a):
    if a < 0:
        return None
    if isinstance(a, Fraction):
        # Stay exact for perfect squares of rationals; otherwise float.
        num, den = a.numerator, a.denominator
        rnum, rden = math.isqrt(num), math.isqrt(den)
        if rnum * rnum == num and rden * rden == den:
            return Fraction(rnum, rden)
        return math.sqrt(float(a))
    if isinstance(a, int):
        root = math.isqrt(a)
        return root if root * root == a else math.sqrt(a)
    return math.sqrt(a)


def _mac(c, a, b):
    return c + a * b


def fusion_g3_spec(vector_width: int = 4) -> IsaSpec:
    """The base DSP ISA used throughout the evaluation.

    ``vector_width`` defaults to the Fusion G3's 4 float lanes; other
    widths exercise the framework's width-generality (rule synthesis,
    lane generalization, lowering, and the machine model are all
    width-parametric — the direction the paper's future work points at
    with scalable vectors).
    """
    scalar = OpKind.SCALAR
    vector = OpKind.VECTOR
    instructions = (
        # Scalar unit.
        Instruction("+", 2, scalar, _add, 10.0, commutative=True),
        Instruction("-", 2, scalar, _sub, 10.0),
        Instruction("*", 2, scalar, _mul, 10.0, commutative=True, latency=2),
        Instruction("/", 2, scalar, _div, 12.0, latency=8),
        Instruction("neg", 1, scalar, _neg, 10.0),
        Instruction("sgn", 1, scalar, _sgn, 10.0),
        Instruction("sqrt", 1, scalar, _sqrt, 12.0, latency=10),
        Instruction("mac", 3, scalar, _mac, 12.0, latency=2),
        # 4-wide vector unit.
        Instruction(
            "VecAdd", 2, vector, _add, 1.0, vector_of="+", commutative=True
        ),
        Instruction("VecMinus", 2, vector, _sub, 1.0, vector_of="-"),
        Instruction(
            "VecMul",
            2,
            vector,
            _mul,
            1.0,
            vector_of="*",
            commutative=True,
            latency=2,
        ),
        Instruction("VecDiv", 2, vector, _div, 3.0, vector_of="/", latency=8),
        Instruction("VecNeg", 1, vector, _neg, 1.0, vector_of="neg"),
        Instruction("VecSgn", 1, vector, _sgn, 1.0, vector_of="sgn"),
        Instruction(
            "VecSqrt", 1, vector, _sqrt, 3.0, vector_of="sqrt", latency=10
        ),
        Instruction(
            "VecMAC", 3, vector, _mac, 1.0, vector_of="mac", latency=2
        ),
    )
    name = "fusion-g3"
    if vector_width != 4:
        name = f"fusion-g3-w{vector_width}"
    return IsaSpec(
        name=name,
        vector_width=vector_width,
        instructions=instructions,
    )
