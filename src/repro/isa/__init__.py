"""ISA specifications: Isaria's primary input.

An :class:`IsaSpec` is the executable specification of a target DSP
instruction set (paper §3, Fig. 2): each instruction carries a *lane
semantics* function and an abstract per-instruction cost.  The paper
writes these as a Rosette interpreter; here they are plain Python
callables, which serve the same two roles — evaluating terms during
rule synthesis, and verifying candidate rules.

The base target is a Tensilica-Fusion-G3-like DSP
(:func:`fusion_g3_spec`), and §5.4's customization workflow is
reproduced by :mod:`repro.isa.custom`.
"""

from repro.isa.spec import Instruction, IsaSpec
from repro.isa.fusion_g3 import fusion_g3_spec
from repro.isa.custom import (
    make_mulsub_instructions,
    make_sqrtsgn_instructions,
    customized_spec,
)

__all__ = [
    "Instruction",
    "IsaSpec",
    "fusion_g3_spec",
    "make_mulsub_instructions",
    "make_sqrtsgn_instructions",
    "customized_spec",
]
