"""ISA specifications: Isaria's primary input.

An :class:`IsaSpec` is the executable specification of a target DSP
instruction set (paper §3, Fig. 2): each instruction carries a *lane
semantics* function and an abstract per-instruction cost.  The paper
writes these as a Rosette interpreter; here they are plain Python
callables, which serve the same two roles — evaluating terms during
rule synthesis, and verifying candidate rules.

The base target is a Tensilica-Fusion-G3-like DSP
(:func:`fusion_g3_spec`), and §5.4's customization workflow is
reproduced by :mod:`repro.isa.custom`.  Width-parametric *families*
(the AVX-like wide ISA, the masked/predicated ISA) live in
:mod:`repro.isa.families`.
"""

from repro.isa.spec import Instruction, IsaSpec
from repro.isa.fusion_g3 import fusion_g3_spec
from repro.isa.avx_like import avx_like_spec
from repro.isa.masked import masked_spec
from repro.isa.families import (
    BUNDLED_FAMILIES,
    IsaFamily,
    bundled_spec_factories,
    family_of,
    isa_family,
    spec_by_name,
)
from repro.isa.custom import (
    make_mulsub_instructions,
    make_sqrtsgn_instructions,
    customized_spec,
)

__all__ = [
    "Instruction",
    "IsaSpec",
    "IsaFamily",
    "BUNDLED_FAMILIES",
    "fusion_g3_spec",
    "avx_like_spec",
    "masked_spec",
    "bundled_spec_factories",
    "family_of",
    "isa_family",
    "spec_by_name",
    "make_mulsub_instructions",
    "make_sqrtsgn_instructions",
    "customized_spec",
]
