"""ISA families: width-parametric descriptors over the spec factories.

A *family* is an ISA whose lane semantics are fixed but whose vector
width is a parameter — the axis the paper's §5.4 customization claim
is exercised along.  The descriptor records the supported widths and
capability flags so tooling (the service registry, the bench sweep,
the trace rollup) can enumerate concrete specs without hardcoding
names::

    >>> from repro.isa.families import isa_family
    >>> isa_family("masked").spec(8).name
    'masked-w8'

Spec names follow ``<family>-w<width>`` except fusion-g3 at its
historical default width 4, which keeps the bare name ``fusion-g3``
(artifact fingerprints depend on it).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.isa.avx_like import avx_like_spec
from repro.isa.fusion_g3 import fusion_g3_spec
from repro.isa.masked import masked_spec
from repro.isa.spec import IsaSpec


@dataclass(frozen=True)
class IsaFamily:
    """A width-parametric ISA: factory plus supported widths.

    ``factory`` maps a lane width to a concrete :class:`IsaSpec`;
    ``widths`` are the widths the family supports (``default_width``
    is what ``spec()`` uses when none is given); ``masked`` marks
    families with mask registers and predicated memory/arith ops.
    """

    name: str
    widths: tuple[int, ...]
    default_width: int
    factory: Callable[[int], IsaSpec]
    masked: bool = False
    description: str = ""

    def __post_init__(self):
        if self.default_width not in self.widths:
            raise ValueError(
                f"family {self.name!r}: default width "
                f"{self.default_width} not in {self.widths}"
            )

    def spec(self, width: int | None = None) -> IsaSpec:
        """The concrete spec at ``width`` (default ``default_width``)."""
        width = self.default_width if width is None else width
        if width not in self.widths:
            raise ValueError(
                f"family {self.name!r} supports widths {self.widths}, "
                f"not {width}"
            )
        return self.factory(width)

    def spec_names(self) -> list[str]:
        """Concrete spec names, one per supported width."""
        return [self.factory(w).name for w in self.widths]


BUNDLED_FAMILIES: tuple[IsaFamily, ...] = (
    IsaFamily(
        name="fusion-g3",
        widths=(2, 4, 8, 16),
        default_width=4,
        factory=fusion_g3_spec,
        description="Tensilica-Fusion-G3-like base DSP ISA (paper Table 1)",
    ),
    IsaFamily(
        name="avx-like",
        widths=(4, 8, 16),
        default_width=8,
        factory=avx_like_spec,
        description="wide ISA with distinct aligned/unaligned load costs",
    ),
    IsaFamily(
        name="masked",
        widths=(4, 8, 16),
        default_width=8,
        factory=masked_spec,
        masked=True,
        description="predicated ISA: mask registers, masked load/store/arith",
    ),
)

_BY_NAME = {family.name: family for family in BUNDLED_FAMILIES}

_SPEC_NAME = re.compile(r"^(?P<family>.+?)-w(?P<width>\d+)$")


def isa_family(name: str) -> IsaFamily:
    """The bundled family called ``name`` (KeyError if absent)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(
            f"unknown ISA family {name!r} (bundled: {known})"
        ) from None


def family_of(spec_name: str) -> str:
    """The family a concrete spec name belongs to.

    ``masked-w8`` → ``masked``; names without a ``-w<N>`` suffix (like
    plain ``fusion-g3``, or extended specs) are their own family.
    """
    match = _SPEC_NAME.match(spec_name)
    if match and match.group("family") in _BY_NAME:
        return match.group("family")
    return spec_name


def spec_by_name(name: str) -> IsaSpec:
    """Resolve a concrete spec name like ``avx-like-w16``.

    Accepts every name in :func:`bundled_spec_factories`; raises
    KeyError for anything else.
    """
    try:
        return bundled_spec_factories()[name]()
    except KeyError:
        known = ", ".join(sorted(bundled_spec_factories()))
        raise KeyError(
            f"unknown ISA spec {name!r} (bundled: {known})"
        ) from None


def bundled_spec_factories() -> dict[str, Callable[[], IsaSpec]]:
    """Name → zero-arg factory for every bundled family × width.

    This is what the service registry bootstraps from: each key is a
    concrete spec name a client may pass as ``--isa``.
    """
    factories: dict[str, Callable[[], IsaSpec]] = {}
    for family in BUNDLED_FAMILIES:
        for width in family.widths:
            spec_name = family.factory(width).name

            def make(f=family, w=width) -> IsaSpec:
                return f.factory(w)

            factories[spec_name] = make
    return factories
