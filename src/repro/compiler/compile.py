"""The Compile algorithm (paper Fig. 3).

``compile_term`` vectorizes a scalar program by scheduled equality
saturation:

1. loop: saturate with **expansion** rules, then **compilation** rules
   (each a separate bounded ``EqSat`` call), extract the cheapest
   program, and — if it improved — *prune*: throw the e-graph away and
   restart from the extracted program alone;
2. when extraction stops improving, run one **optimization** phase and
   extract the final program.

Both of the paper's §5.2 ablations are switchable here: ``phased=False``
replaces the schedule with a single saturation over all rules (the
configuration that exhausts memory in the paper), and ``pruning=False``
keeps the e-graph across loop rounds instead of restarting from the
extracted program.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor
from repro.egraph.runner import (
    RunnerLimits,
    RunnerReport,
    SaturationPerf,
)
from repro.lang.term import Term
from repro.obs import current_tracer
from repro.phases.cost import CostModel
from repro.phases.ruleset import PhasedRuleSet

_EPSILON = 1e-9

# The pruning loop stops when a round fails to improve extraction cost
# meaningfully; requiring a small relative improvement avoids burning
# rounds (and EqSat calls) on sub-0.1% scalar tweaks.
_MIN_RELATIVE_GAIN = 0.002


@dataclass(frozen=True)
class CompileOptions:
    """Knobs for one compilation."""

    phased: bool = True
    pruning: bool = True
    max_rounds: int = 8
    # Round index at which the expansion phase starts participating.
    # Round 0 runs compilation rules alone: the front end's aligned
    # chunks lift deterministically, and polluting the e-graph with
    # scalar variants *before* the first lift pass starves the lift
    # chains of match budget (measured: 40x worse extraction).  Later
    # rounds explore variants of the already-vectorized program.
    expansion_start_round: int = 1
    # Expansion explores scalar variants; with hundreds of synthesized
    # rules its match budget must stay small or the e-graph explodes
    # before compilation rules ever run (§2.3).
    expansion_limits: RunnerLimits = RunnerLimits(
        max_iterations=2,
        max_nodes=5_000,
        time_limit=4.0,
        match_limit=100,
        ban_length=1,
        match_work=40_000,
    )
    # Compilation lifts one Vec level per iteration, so deep scalar
    # chains need many *small* iterations: low per-rule match/work
    # budgets keep each iteration fast enough that the chain completes
    # within the time limit.
    compilation_limits: RunnerLimits = RunnerLimits(
        max_iterations=30,
        max_nodes=30_000,
        time_limit=25.0,
        match_limit=80,
        ban_length=3,
        match_work=25_000,
    )
    optimization_limits: RunnerLimits = RunnerLimits(
        max_iterations=6,
        max_nodes=15_000,
        time_limit=8.0,
        match_limit=300,
        ban_length=2,
    )
    # Used only by the phased=False ablation.
    unphased_limits: RunnerLimits = RunnerLimits(
        max_iterations=10, max_nodes=120_000, time_limit=60.0
    )


@dataclass
class RoundReport:
    """One trip around the Fig. 3 loop."""

    index: int
    expansion: RunnerReport | None
    compilation: RunnerReport | None
    extracted_cost: float
    n_nodes: int
    n_classes: int


@dataclass
class PassReport:
    """One pipeline pass's contribution to a compilation.

    ``status`` is ``"ok"`` or ``"skipped"`` (a pass that does not
    apply under the current options still appears, so pass order is
    stable across ablations); ``detail`` carries the pass's own
    structured payload (final cost, instruction counts, ...).
    """

    name: str
    elapsed: float
    status: str = "ok"
    detail: dict = field(default_factory=dict)


@dataclass
class CompileReport:
    """Everything that happened during one compilation."""

    initial_cost: float
    final_cost: float
    rounds: list[RoundReport] = field(default_factory=list)
    optimization: RunnerReport | None = None
    elapsed: float = 0.0
    peak_nodes: int = 0
    # Wall clock spent in minimum-cost extraction, across all rounds.
    extract_time: float = 0.0
    # One entry per pipeline pass, in execution order; their elapsed
    # segments sum to ``elapsed`` (the pipeline accumulates both).
    passes: list[PassReport] = field(default_factory=list)
    # Lane-utilization counters from simulating the compiled program
    # (filled by drivers that run the machine — e.g. CompiledKernel.run
    # and the bench harness; zero until then).
    lanes_issued: int = 0
    lanes_active: int = 0

    @property
    def lane_utilization(self) -> float | None:
        """Active/issued lane ratio, or None before any simulation."""
        if self.lanes_issued == 0:
            return None
        return self.lanes_active / self.lanes_issued

    @property
    def n_eqsat_calls(self) -> int:
        """How many bounded ``EqSat`` runs this compile made."""
        calls = sum(
            (r.expansion is not None) + (r.compilation is not None)
            for r in self.rounds
        )
        return calls + (self.optimization is not None)

    def saturation_perf(self) -> SaturationPerf:
        """Hot-path counters aggregated over every ``EqSat`` call."""
        total = SaturationPerf()
        for round_report in self.rounds:
            for sat in (round_report.expansion, round_report.compilation):
                if sat is not None:
                    total.absorb(sat.perf)
        if self.optimization is not None:
            total.absorb(self.optimization.perf)
        return total

    @property
    def speedup_estimate(self) -> float:
        """Abstract-cost improvement ratio (not measured cycles)."""
        if self.final_cost <= 0:
            return float("inf")
        return self.initial_cost / self.final_cost

    def pass_times(self) -> dict[str, float]:
        """Per-pass elapsed seconds, in pipeline order.

        Skipped passes appear with their (near-zero) timing so the
        keys are stable across ablation options; consumed by
        ``repro.tools.trace_report`` alongside the span-level view.
        """
        return {p.name: p.elapsed for p in self.passes}


def _extract(
    egraph: EGraph, root: int, cost_model: CostModel, report: CompileReport
):
    t0 = time.perf_counter()
    extractor = Extractor(egraph, cost_model)
    result = extractor.best(root)
    report.extract_time += time.perf_counter() - t0
    return result


def compile_term(
    program: Term,
    ruleset: PhasedRuleSet,
    cost_model: CostModel,
    options: CompileOptions | None = None,
    schedule=None,
) -> tuple[Term, CompileReport]:
    """Vectorize ``program``; returns the compiled term and a report.

    A thin configuration of the pass pipeline (see
    :mod:`repro.compiler.pipeline`): saturate → optimize → extract
    over one shared context.  ``schedule`` is an optional
    :class:`~repro.egraph.scheduling.ScheduleSpec` governing the
    saturation phases (the ``REPRO_SCHEDULE`` env override wins over
    it).  When tracing is enabled (see :mod:`repro.obs`) the
    compilation emits a ``compile`` span wrapping a ``pass.<name>``
    child per pipeline pass; the saturate pass nests one
    ``compile.round`` span per trip around the Fig. 3 loop, each with
    ``phase.expansion`` / ``phase.compilation`` spans around their
    ``EqSat`` calls.
    """
    from repro.compiler.pipeline import CompilationContext, term_pipeline

    options = options or CompileOptions()
    tracer = current_tracer()
    with tracer.span(
        "compile", phased=options.phased, pruning=options.pruning
    ) as span:
        ctx = CompilationContext(
            ruleset=ruleset,
            cost_model=cost_model,
            options=options,
            schedule=schedule,
            term=program,
        )
        term_pipeline().run(ctx)
        compiled, report = ctx.compiled, ctx.report
        if span.enabled:
            span.add(
                initial_cost=report.initial_cost,
                final_cost=report.final_cost,
                n_rounds=len(report.rounds),
                n_eqsat_calls=report.n_eqsat_calls,
                peak_nodes=report.peak_nodes,
                extract_time=report.extract_time,
            )
    return compiled, report
