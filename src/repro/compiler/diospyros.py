"""The Diospyros baseline: hand-written rules, hand-tuned scheduling.

Diospyros (VanHattum et al., ASPLOS 2021) is the system Isaria builds
on and compares against: an expert writes ~28 rewrite rules for the
target DSP plus custom logic for when to apply them.  This module
reconstructs that baseline — the rule set below is hand-written from
the descriptions in both papers (scalar identities, lane-padding,
per-op vectorization "lift" rules, and vector optimizations like MAC
fusion), and the compiler drives a single-rule-set saturation loop
with greedy re-extraction, its stand-in for Diospyros's bespoke
scheduling.

Crucially, none of this adapts to ISA changes: a custom instruction
(paper §5.4) would require hand-writing new rules here, which is
exactly the burden Isaria removes.
"""

from __future__ import annotations

import time

from repro.compiler.compile import CompileReport, RoundReport
from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor
from repro.egraph.rewrite import Rewrite, parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.isa.spec import IsaSpec
from repro.lang import builders as B
from repro.lang import term as T
from repro.lang.term import Term
from repro.phases.cost import CostModel

_EPSILON = 1e-9


def _scalar_rules() -> list[Rewrite]:
    texts = {
        "add-comm": "(+ ?a ?b) => (+ ?b ?a)",
        "mul-comm": "(* ?a ?b) => (* ?b ?a)",
        "add-assoc-l": "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))",
        "add-assoc-r": "(+ ?a (+ ?b ?c)) => (+ (+ ?a ?b) ?c)",
        "mul-assoc-l": "(* (* ?a ?b) ?c) => (* ?a (* ?b ?c))",
        "mul-assoc-r": "(* ?a (* ?b ?c)) => (* (* ?a ?b) ?c)",
        "sub-to-neg": "(- ?a ?b) => (+ ?a (neg ?b))",
        "neg-to-sub": "(+ ?a (neg ?b)) => (- ?a ?b)",
        "distribute": "(* ?a (+ ?b ?c)) => (+ (* ?a ?b) (* ?a ?c))",
        "factor": "(+ (* ?a ?b) (* ?a ?c)) => (* ?a (+ ?b ?c))",
        "add-zero": "(+ ?a 0) => ?a",
        "mul-one": "(* ?a 1) => ?a",
        "neg-neg": "(neg (neg ?a)) => ?a",
    }
    return [parse_rewrite(name, text) for name, text in texts.items()]


def _padding_rules(width: int) -> list[Rewrite]:
    """Lane-restricted zero padding: (Vec .. ?x ..) adds (+ ?x 0).

    Padding inside ``Vec`` literals is what lets partially uniform
    chunks (e.g. three additions and a bare value, the §2.1 example)
    reach the lift rules, without the global ``?a => (+ ?a 0)`` rule
    that matches every e-class.
    """
    rules: list[Rewrite] = []
    wilds = [B.wildcard(f"x{i}") for i in range(width)]
    for lane in range(width):
        lhs = B.vec(*wilds)
        padded = list(wilds)
        padded[lane] = B.add(wilds[lane], B.const(0))
        rules.append(
            Rewrite(f"pad-lane{lane}", lhs, B.vec(*padded))
        )
    return rules


# The Fusion G3 operations Diospyros's hand-written rules cover.  A
# custom instruction (paper §5.4) is deliberately NOT picked up here:
# extending this baseline means hand-writing new rules, which is the
# burden Isaria removes.
_BASE_VECTOR_OPS = frozenset(
    {
        "VecAdd", "VecMinus", "VecMul", "VecDiv",
        "VecNeg", "VecSgn", "VecSqrt", "VecMAC",
    }
)


def _lift_rules(spec: IsaSpec) -> list[Rewrite]:
    """Per-op vectorization: Vec of uniform scalar ops -> vector op."""
    width = spec.vector_width
    rules: list[Rewrite] = []
    for vinstr in spec.vector_instructions():
        if vinstr.name not in _BASE_VECTOR_OPS:
            continue
        scalar_op = vinstr.vector_of
        if scalar_op is None or not spec.has_instruction(scalar_op):
            continue
        arity = vinstr.arity
        arg_wilds = [
            [B.wildcard(f"a{j}_{i}") for i in range(width)]
            for j in range(arity)
        ]
        lanes = [
            T.make(scalar_op, *(arg_wilds[j][i] for j in range(arity)))
            for i in range(width)
        ]
        lhs = B.vec(*lanes)
        rhs = T.make(
            vinstr.name, *(B.vec(*arg_wilds[j]) for j in range(arity))
        )
        rules.append(Rewrite(f"lift-{vinstr.name}", lhs, rhs))
    return rules


def _mac_rules(spec: IsaSpec) -> list[Rewrite]:
    """MAC formation, scalar and vector."""
    rules = [
        parse_rewrite("mac-intro", "(+ ?c (* ?a ?b)) => (mac ?c ?a ?b)"),
        parse_rewrite("mac-elim", "(mac ?c ?a ?b) => (+ ?c (* ?a ?b))"),
    ]
    if spec.has_instruction("VecMAC"):
        rules.extend(
            [
                parse_rewrite(
                    "vec-mac-fuse",
                    "(VecAdd ?c (VecMul ?a ?b)) => (VecMAC ?c ?a ?b)",
                ),
                parse_rewrite(
                    "vec-mac-fuse2",
                    "(VecAdd (VecMul ?a ?b) ?c) => (VecMAC ?c ?a ?b)",
                ),
            ]
        )
    return rules


def _vector_rules() -> list[Rewrite]:
    texts = {
        "vecadd-comm": "(VecAdd ?a ?b) => (VecAdd ?b ?a)",
        "vecmul-comm": "(VecMul ?a ?b) => (VecMul ?b ?a)",
        "vecadd-assoc-l": "(VecAdd (VecAdd ?a ?b) ?c) => "
        "(VecAdd ?a (VecAdd ?b ?c))",
        "vecadd-assoc-r": "(VecAdd ?a (VecAdd ?b ?c)) => "
        "(VecAdd (VecAdd ?a ?b) ?c)",
        "vecminus-to-neg": "(VecMinus ?a ?b) => (VecAdd ?a (VecNeg ?b))",
        "vecneg-to-minus": "(VecAdd ?a (VecNeg ?b)) => (VecMinus ?a ?b)",
    }
    return [parse_rewrite(name, text) for name, text in texts.items()]


def diospyros_rules(spec: IsaSpec) -> list[Rewrite]:
    """The full hand-written rule set for ``spec``'s *base* operators."""
    rules = _scalar_rules()
    rules.extend(_padding_rules(spec.vector_width))
    rules.extend(_lift_rules(spec))
    rules.extend(_mac_rules(spec))
    rules.extend(_vector_rules())
    return rules


class DiospyrosCompiler:
    """Single-rule-set saturation with greedy re-extraction."""

    def __init__(
        self,
        spec: IsaSpec,
        limits: RunnerLimits | None = None,
        max_rounds: int = 6,
    ):
        self.spec = spec
        self.rules = diospyros_rules(spec)
        self.cost_model = CostModel(spec)
        # Diospyros's "custom scheduling logic": with only ~30 hand
        # rules, modest per-round budgets suffice (and frontier
        # matching keeps the lift chains cheap, as in our compiler).
        self._limits = limits or RunnerLimits(
            max_iterations=16,
            max_nodes=20_000,
            time_limit=10.0,
            match_limit=200,
            ban_length=2,
            match_work=40_000,
        )
        self._max_rounds = max_rounds

    def compile(self, program: Term) -> tuple[Term, CompileReport]:
        """Vectorize ``program`` with the hand-written rule pipeline."""
        start = time.monotonic()
        cost_model = self.cost_model
        initial_cost = cost_model.term_cost(program)
        report = CompileReport(
            initial_cost=initial_cost, final_cost=initial_cost
        )
        current = program
        cost_old = initial_cost
        for index in range(self._max_rounds):
            egraph = EGraph()
            root = egraph.add_term(current)
            sat = run_saturation(
                egraph, self.rules, self._limits, frontier=True
            )
            cost_new, extracted = Extractor(egraph, cost_model).best(root)
            report.peak_nodes = max(report.peak_nodes, egraph.n_nodes)
            report.rounds.append(
                RoundReport(
                    index=index,
                    expansion=None,
                    compilation=sat,
                    extracted_cost=cost_new,
                    n_nodes=egraph.n_nodes,
                    n_classes=egraph.n_classes,
                )
            )
            threshold = max(_EPSILON, cost_old * 0.002)
            if cost_new >= cost_old - threshold:
                if cost_new < cost_old:
                    cost_old = cost_new
                    current = extracted
                break
            cost_old = cost_new
            current = extracted
        report.final_cost = cost_old
        report.elapsed = time.monotonic() - start
        return current, report
