"""Front-end canonicalization of traced scalar expressions.

Diospyros's symbolic evaluation does not emit raw syntax trees: lifted
expressions come out in a normal form.  We reproduce that as a
separate pass: every maximal additive subtree is flattened into a list
of signed terms and re-emitted as

    (- (sum of positive terms) (sum of negative terms))

with left-associated sums (or just the sum when one side is empty).
Negations are pushed into the sign bookkeeping, so ``neg`` disappears
from additive contexts.

This matters for vectorization of irregular kernels: the quaternion
product's four lanes have different +/- interleavings as raw trees,
but all four share the ``(- P N)`` root shape after normalization —
exactly the alignment the lift rules need (§2.3's discussion of lane
alignment).
"""

from __future__ import annotations

from repro.lang import builders as B
from repro.lang import term as T
from repro.lang.term import Term

_ADDITIVE = ("+", "-", "neg")


def _sum_terms(terms: list[Term]) -> Term:
    acc = terms[0]
    for term in terms[1:]:
        acc = B.add(acc, term)
    return acc


def signed_decomposition(term: Term) -> tuple[tuple, tuple]:
    """``(positives, negatives)`` of a normalized term's additive root.

    Non-additive terms decompose as ``((term,), ())``; a zero constant
    as ``((), ())``.
    """
    if T.is_const(term) and term.payload == 0:
        return (), ()
    if term.op == "+":
        lp, ln = signed_decomposition(term.args[0])
        rp, rn = signed_decomposition(term.args[1])
        return lp + rp, ln + rn
    if term.op == "-":
        lp, ln = signed_decomposition(term.args[0])
        rp, rn = signed_decomposition(term.args[1])
        return lp + rn, ln + rp
    if term.op == "neg":
        p, n = signed_decomposition(term.args[0])
        return n, p
    return (term,), ()


def align_chunk_lanes(lanes: list[Term]) -> list[Term]:
    """Give every lane of a chunk the same additive shape.

    Each lane's signed decomposition is padded with ``(* 0 0)`` terms
    to the chunk's maximum positive/negative counts and re-emitted as
    the same left-associated ``(- P N)`` (or ``P``-only) skeleton.
    Structurally isomorphic lanes are what the scalar→vector lift
    rules need; the paper reaches this alignment through expansion-
    phase rewrites like ``a ~> (+ a 0)`` (§2.1), which a Rust e-graph
    can afford to search for and a Python one cannot — see DESIGN.md.
    The padding is semantically free and the zero lanes vanish into
    constant vector literals after lifting.
    """
    decomps = [signed_decomposition(normalize(lane)) for lane in lanes]
    max_p = max(len(p) for p, _ in decomps)
    max_n = max(len(n) for _, n in decomps)
    # Pad with a term shaped like the real summands: a zero *product*
    # when the lanes sum products (so the multiply lift sees uniform
    # lanes), a plain zero when they sum leaves.
    all_leaves = all(
        not term.args
        for p, n in decomps
        for term in (*p, *n)
    )
    zero_product = (
        B.const(0) if all_leaves else B.mul(B.const(0), B.const(0))
    )

    rebuilt: list[Term] = []
    for positives, negatives in decomps:
        pos = list(positives) + [zero_product] * (max_p - len(positives))
        neg = list(negatives) + [zero_product] * (max_n - len(negatives))
        if not pos and not neg:
            rebuilt.append(B.const(0))
        elif not neg:
            rebuilt.append(_sum_terms(pos))
        elif not pos:
            rebuilt.append(B.neg(_sum_terms(neg)))
        else:
            rebuilt.append(B.sub(_sum_terms(pos), _sum_terms(neg)))
    return rebuilt


def normalize(term: Term) -> Term:
    """Canonicalize additive structure throughout ``term``."""
    memo: dict[Term, Term] = {}
    signed_memo: dict[Term, tuple] = {}

    def canon(t: Term) -> Term:
        cached = memo.get(t)
        if cached is not None:
            return cached
        if t.op in _ADDITIVE:
            result = rebuild(signed(t))
        elif not t.args:
            result = t
        else:
            result = T.make(
                t.op, *(canon(arg) for arg in t.args), payload=t.payload
            )
        memo[t] = result
        return result

    def signed(t: Term) -> tuple:
        """Flatten to (positive terms, negative terms), canonical."""
        cached = signed_memo.get(t)
        if cached is not None:
            return cached
        if t.op == "+":
            lp, ln = signed(t.args[0])
            rp, rn = signed(t.args[1])
            result = (lp + rp, ln + rn)
        elif t.op == "-":
            lp, ln = signed(t.args[0])
            rp, rn = signed(t.args[1])
            result = (lp + rn, ln + rp)
        elif t.op == "neg":
            p, n = signed(t.args[0])
            result = (n, p)
        elif T.is_const(t) and t.payload == 0:
            result = ((), ())
        else:
            result = ((canon(t),), ())
        signed_memo[t] = result
        return result

    def rebuild(parts: tuple) -> Term:
        positives, negatives = parts
        if not positives and not negatives:
            return B.const(0)
        if not negatives:
            return _sum_terms(list(positives))
        if not positives:
            return B.neg(_sum_terms(list(negatives)))
        return B.sub(
            _sum_terms(list(positives)), _sum_terms(list(negatives))
        )

    return canon(term)
