"""The compiler front end: imperative kernels → scalar DSL programs.

Diospyros (and therefore Isaria) lifts imperative DSP kernels into a
pure expression language by symbolic evaluation: variables and control
flow disappear, leaving one expression per output element (paper §2.1).
Here kernels are Python functions over :class:`SymArray` inputs;
running them *is* the symbolic evaluation — Python executes the loops
and branches, and the operator overloads on :class:`SymScalar` record
the dataflow as DSL terms.

The traced outputs are packed into width-``W`` ``Vec`` chunks (padding
the tail with zeros) to form the scalar program ``(List chunk...)``
that equality saturation vectorizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.lang import builders as B
from repro.lang.term import Term


class SymScalar:
    """A scalar value being traced; wraps a DSL term."""

    __slots__ = ("term",)

    def __init__(self, term: Term):
        if not isinstance(term, Term):
            raise TypeError(f"SymScalar wraps a Term, got {term!r}")
        self.term = term

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def lift(value) -> "SymScalar":
        """Wrap a number (or pass through a SymScalar) for tracing."""
        if isinstance(value, SymScalar):
            return value
        if isinstance(value, (int, float)):
            return SymScalar(B.const(value))
        raise TypeError(f"cannot lift {value!r} into a traced scalar")

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other):
        return SymScalar(B.add(self.term, SymScalar.lift(other).term))

    def __radd__(self, other):
        return SymScalar(B.add(SymScalar.lift(other).term, self.term))

    def __sub__(self, other):
        return SymScalar(B.sub(self.term, SymScalar.lift(other).term))

    def __rsub__(self, other):
        return SymScalar(B.sub(SymScalar.lift(other).term, self.term))

    def __mul__(self, other):
        return SymScalar(B.mul(self.term, SymScalar.lift(other).term))

    def __rmul__(self, other):
        return SymScalar(B.mul(SymScalar.lift(other).term, self.term))

    def __truediv__(self, other):
        return SymScalar(B.div(self.term, SymScalar.lift(other).term))

    def __rtruediv__(self, other):
        return SymScalar(B.div(SymScalar.lift(other).term, self.term))

    def __neg__(self):
        return SymScalar(B.neg(self.term))

    def sqrt(self) -> "SymScalar":
        """Traced square root (the QR kernels use this)."""
        return SymScalar(B.sqrt(self.term))

    def sgn(self) -> "SymScalar":
        """Traced sign function."""
        return SymScalar(B.sgn(self.term))

    def __repr__(self) -> str:
        return f"SymScalar({self.term!r})"


def sym_sqrt(value) -> SymScalar:
    return SymScalar.lift(value).sqrt()


def sym_sgn(value) -> SymScalar:
    return SymScalar.lift(value).sgn()


class SymArray:
    """A named input array being traced; indexing yields ``Get`` terms."""

    def __init__(self, name: str, length: int):
        self.name = name
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, index: int) -> SymScalar:
        if not 0 <= index < self.length:
            raise IndexError(
                f"{self.name}[{index}] out of range (len {self.length})"
            )
        return SymScalar(B.get(self.name, index))


@dataclass(frozen=True)
class KernelProgram:
    """A traced kernel ready for compilation.

    ``term`` is ``(List chunk...)`` with each chunk a width-``W``
    ``Vec`` of scalar expressions; ``output_len`` is the unpadded
    output length; ``arrays`` maps each input array to its length.

    ``raw_term`` preserves the un-normalized trace: the equality-
    saturation compilers consume the canonicalized ``term`` (that is
    part of the Diospyros front end), while the Clang-like baselines
    see the program as written, like real Clang does.
    """

    name: str
    term: Term
    output: str
    output_len: int
    arrays: dict
    width: int
    raw_term: Term | None = None

    @property
    def padded_len(self) -> int:
        """Output length after padding to whole vector chunks."""
        return len(self.term.args) * self.width

    @property
    def source_term(self) -> Term:
        """The un-normalized program (falls back to ``term``)."""
        return self.raw_term if self.raw_term is not None else self.term


def program_from_outputs(
    outputs: Sequence[Term], width: int, align: bool = False
) -> Term:
    """Pack scalar output expressions into the chunked List program.

    ``align`` applies per-chunk lane alignment (see
    :func:`repro.compiler.normalize.align_chunk_lanes`).
    """
    if not outputs:
        raise ValueError("kernel produced no outputs")
    chunks: list[Term] = []
    padded = list(outputs)
    while len(padded) % width:
        padded.append(B.const(0))
    for i in range(0, len(padded), width):
        lanes = padded[i : i + width]
        if align:
            from repro.compiler.normalize import align_chunk_lanes

            lanes = align_chunk_lanes(lanes)
        chunks.append(B.vec(*lanes))
    return B.prog(*chunks)


def trace_kernel(
    name: str,
    fn: Callable,
    arrays: dict,
    width: int,
    output: str = "out",
    normalize: bool = True,
) -> KernelProgram:
    """Symbolically evaluate ``fn`` into a :class:`KernelProgram`.

    ``fn`` receives one :class:`SymArray` per entry of ``arrays`` (in
    dict order) and returns the list of output scalars (``SymScalar``
    or plain numbers), one per element of the output array.

    ``normalize`` applies the Diospyros-style canonicalization of
    additive structure (see :mod:`repro.compiler.normalize`).
    """
    sym_arrays = [SymArray(arr, length) for arr, length in arrays.items()]
    outputs = fn(*sym_arrays)
    raw = [SymScalar.lift(value).term for value in outputs]
    terms = raw
    if normalize:
        from repro.compiler.normalize import normalize as canon

        terms = [canon(term) for term in raw]
    return KernelProgram(
        name=name,
        term=program_from_outputs(terms, width, align=normalize),
        output=output,
        output_len=len(terms),
        arrays=dict(arrays),
        width=width,
        raw_term=program_from_outputs(raw, width),
    )


def scalar_outputs(program: KernelProgram, source: bool = False) -> list[Term]:
    """The unpadded scalar output expressions of a traced kernel.

    ``source=True`` reads the un-normalized trace (what non-eqsat
    baselines compile).
    """
    term = program.source_term if source else program.term
    outputs: list[Term] = []
    for chunk in term.args:
        if chunk.op != "Vec":
            raise ValueError("kernel program chunks must be Vec literals")
        outputs.extend(chunk.args)
    return outputs[: program.output_len]
