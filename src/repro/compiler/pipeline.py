"""The online stage as a composable pass pipeline.

The paper's compile-time stage is a *fixed schedule* of bounded eqsat
calls (Fig. 3) bracketed by front-end lowering, translation
validation, and machine lowering.  Instead of one monolithic function
that every driver re-wraps by hand, this module decomposes it into
named passes over a shared :class:`CompilationContext`:

    frontend → saturate → optimize → extract → validate → lower
    (→ schedule)

``compile_term`` runs the middle three; ``compile_kernel`` runs the
full schedule; the Diospyros baseline swaps its own greedy loop in for
the ``saturate``/``optimize``/``extract`` trio while sharing the outer
stages; the bench harness and :func:`compile_many` are thin
configurations on top.  Every pass emits a ``pass.<name>`` span (see
:mod:`repro.obs`) and appends a :class:`~repro.compiler.compile.PassReport`
to the compile report, and the report's ``elapsed`` is exactly the sum
of its pass entries.

Pass order never changes with options: a pass that does not apply
(``optimize`` under ``phased=False``, ``validate`` with no validator)
reports status ``skipped`` rather than disappearing, so per-pass
timings are comparable across ablations.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.compiler.compile import (
    _EPSILON,
    _MIN_RELATIVE_GAIN,
    CompileOptions,
    CompileReport,
    PassReport,
    RoundReport,
    _extract,
)
from repro.egraph.egraph import EGraph
from repro.egraph.runner import (
    Runner,
    RunnerLimits,
    RunnerReport,
    StopReason,
)
from repro.egraph.scheduling import ScheduleSpec, schedule_from_env
from repro.egraph.snapshot import (
    SaturationCheckpoint,
    SnapshotError,
    limits_digest,
    load_egraph,
    load_snapshot_meta,
    rules_digest,
    save_egraph,
    term_digest,
)
from repro.lang.term import Term
from repro.obs import current_tracer
from repro.phases.cost import CostModel
from repro.phases.ruleset import PhasedRuleSet

#: Sentinel a pass returns when it did not apply under the current
#: options; the pipeline records it with status ``"skipped"``.
SKIPPED = "skipped"
_OK = "ok"


@dataclass
class CompilationContext:
    """Shared state threaded through the passes of one compilation.

    Inputs (``term``/``program``, ``ruleset``, ``cost_model``,
    ``options``, ``spec``, ``validator``) are set by the driver;
    passes fill in ``report``, ``compiled``, ``machine`` and
    ``scheduled`` as the pipeline advances.  The remaining fields are
    inter-pass scratch (the live e-graph between ``optimize`` and
    ``extract``, the running best term between rounds).
    """

    ruleset: PhasedRuleSet | None = None
    cost_model: CostModel | None = None
    options: CompileOptions = field(default_factory=CompileOptions)
    # Tuned saturation schedule (usually from the compiler artifact);
    # None runs the default backoff scheduler everywhere.  The
    # REPRO_SCHEDULE env override wins over this field.
    schedule: ScheduleSpec | None = None
    term: Term | None = None
    program: Any = None  # KernelProgram (or KernelInstance pre-frontend)
    spec: Any = None  # IsaSpec, needed by lower/schedule
    validator: Callable | None = None
    report: CompileReport | None = None
    compiled: Term | None = None
    machine: Any = None  # machine Program after ``lower``
    scheduled: Any = None  # scheduled Program after ``schedule``
    current: Term | None = None
    egraph: EGraph | None = None
    root: int | None = None
    unphased_report: RunnerReport | None = None
    # Expansion cache override: None resolves from the environment
    # (``REPRO_EXPANSION_CACHE``, see :mod:`repro.core.cache`); drivers
    # and tests can inject an :class:`~repro.core.cache.ExpansionCache`
    # directly.
    cache: Any = None

    def ensure_report(self) -> CompileReport:
        """The compile report, creating it from ``term``'s cost once."""
        if self.report is None:
            cost = self.cost_model.term_cost(self.term)
            self.report = CompileReport(initial_cost=cost, final_cost=cost)
        return self.report


class Pass:
    """One named stage of the online pipeline.

    Subclasses set ``name`` and implement :meth:`run`, which mutates
    the context and returns ``None`` (ran, nothing to report), a dict
    of span/report detail, or :data:`SKIPPED`.
    """

    name = "pass"

    def run(self, ctx: CompilationContext):
        """Execute the pass against ``ctx``."""
        raise NotImplementedError


class FnPass(Pass):
    """Adapter wrapping an arbitrary ``fn(ctx)`` as a named pass.

    How drivers splice non-standard stages into the standard schedule
    — e.g. the Diospyros baseline's greedy compile loop standing in
    for ``saturate``/``optimize``/``extract``.
    """

    def __init__(self, name: str, fn: Callable[[CompilationContext], Any]):
        self.name = name
        self._fn = fn

    def run(self, ctx: CompilationContext):
        """Call the wrapped function with the context."""
        return self._fn(ctx)


class Pipeline:
    """An ordered sequence of passes sharing one context.

    ``run`` times each pass, wraps it in a ``pass.<name>`` span, and
    appends a :class:`PassReport` to the context's compile report; the
    report's ``elapsed`` accumulates exactly the per-pass segments, so
    the pass entries always sum to it.  A pass may *replace*
    ``ctx.report`` (the baseline adapter adopts the report its
    compiler built); earlier pass entries and elapsed carry over.
    """

    def __init__(self, passes: list):
        self.passes = tuple(passes)

    def names(self) -> list[str]:
        """Pass names in execution order."""
        return [p.name for p in self.passes]

    def run(self, ctx: CompilationContext) -> CompilationContext:
        """Run every pass in order against ``ctx``; returns ``ctx``."""
        tracer = current_tracer()
        pending: list[PassReport] = []
        for p in self.passes:
            before = ctx.report
            t0 = time.monotonic()
            with tracer.span(f"pass.{p.name}") as span:
                result = p.run(ctx)
                elapsed = time.monotonic() - t0
                status = SKIPPED if result is SKIPPED else _OK
                detail = dict(result) if isinstance(result, dict) else {}
                if span.enabled:
                    span.add(status=status, **detail)
            if ctx.report is not None and ctx.report is not before:
                # The pass brought its own report: keep the pipeline's
                # accounting (earlier pass entries + elapsed) and let
                # this pass's segment be re-added below.
                prior_passes = before.passes if before else []
                prior_elapsed = before.elapsed if before else 0.0
                ctx.report.passes = list(prior_passes) + ctx.report.passes
                ctx.report.elapsed = prior_elapsed
            pending.append(PassReport(p.name, elapsed, status, detail))
            if ctx.report is not None:
                for entry in pending:
                    ctx.report.passes.append(entry)
                    ctx.report.elapsed += entry.elapsed
                pending.clear()
        return ctx


def _active_schedule(ctx: CompilationContext) -> ScheduleSpec | None:
    """The schedule governing ``ctx``'s saturations, if any.

    ``REPRO_SCHEDULE`` (see :func:`schedule_from_env`) beats the
    context's artifact-carried spec, so a spec file can be A/B-tested
    against any compilation; an explicit ``REPRO_SCHEDULE=off`` forces
    the default scheduler even when the artifact ships a tuned one.
    """
    env = schedule_from_env()
    return env if env is not None else ctx.schedule


def _run_phase(
    egraph: EGraph,
    rules: list,
    phase: str,
    base_limits: RunnerLimits,
    schedule: ScheduleSpec | None,
    frontier: bool = False,
    label: str | None = None,
) -> RunnerReport:
    """One bounded ``EqSat`` call under the active schedule.

    With no schedule this behaves exactly like the historical direct
    :func:`~repro.egraph.runner.run_saturation` call; with one, the
    phase's limit overrides apply and a fresh
    :class:`~repro.egraph.scheduling.TunedScheduler` enforces the
    per-rule budgets.  Runs through :class:`~repro.egraph.runner.Runner`
    so that with ``REPRO_CHECKPOINT_DIR`` set the phase becomes
    *resumable*: any budget-limited stop (iteration, node, or time
    cap) is written there as a checkpoint named after ``label`` and
    ``phase``, and a later call on the *same input* with a larger
    budget continues from the paused state instead of re-running the
    iterations already paid for.  A phase that genuinely saturates
    consumes its checkpoint — there is nothing left to resume.
    """
    if schedule is None:
        limits = base_limits
        scheduler = None  # Runner defaults to the backoff scheduler
    else:
        limits = schedule.limits_for(phase, base_limits)
        scheduler = schedule.scheduler_for(phase, limits)
    rules = list(rules)
    ckpt_path = _phase_checkpoint_path(phase, label)
    input_digest = None
    runner = None
    if ckpt_path is not None:
        input_digest = load_snapshot_meta(save_egraph(egraph))[0]["digest"]
        runner = _resume_phase(
            ckpt_path, egraph, rules, limits, frontier,
            str(input_digest), _schedule_digest(schedule), phase,
        )
    if runner is None:
        runner = Runner(egraph, rules, limits, scheduler=scheduler,
                        frontier=frontier)
    report = runner.run()
    if ckpt_path is not None:
        if report.stop_reason is StopReason.SATURATED:
            # Consumed: a saturated phase has nothing to resume, and a
            # leftover file would only be stale weight in the directory.
            ckpt_path.unlink(missing_ok=True)
        else:
            _write_phase_checkpoint(
                runner, phase, label, report, ckpt_path,
                str(input_digest), _schedule_digest(schedule),
            )
    return report


def _phase_checkpoint_path(phase: str, label: str | None) -> Path | None:
    """Where this phase's checkpoint lives, or ``None`` when disabled.

    ``REPRO_CHECKPOINT_DIR`` gates the whole feature; the file is
    ``<label>-<phase>.ckpt`` (label sanitized; a compile labels its
    phases ``<kernel>-round<i>``).
    """
    raw = os.environ.get("REPRO_CHECKPOINT_DIR", "").strip()
    if not raw:
        return None
    stem = re.sub(r"[^A-Za-z0-9._-]+", "-", f"{label or 'eqsat'}-{phase}")
    return Path(raw) / f"{stem}.ckpt"


def _resume_phase(
    path: Path,
    egraph: EGraph,
    rules: list,
    limits: RunnerLimits,
    frontier: bool,
    input_digest: str,
    schedule_digest: str,
    phase: str,
) -> Runner | None:
    """A runner continuing ``path``'s paused saturation, or ``None``.

    The checkpoint must match this call exactly: same input e-graph
    (content digest), same rule list, same frontier mode, same active
    schedule.  Anything else is a *stale* checkpoint from an earlier
    compile that happened to share the label — ignored (and
    overwritten when this phase next pauses), never an error.
    Unreadable files count as misses too, mirroring the expansion
    cache's corruption policy.
    """
    if not path.exists():
        return None
    tracer = current_tracer()
    try:
        ckpt = SaturationCheckpoint.load(path)
    except SnapshotError as exc:
        tracer.record(
            "checkpoint.corrupt", 0.0, path=str(path), error=str(exc)
        )
        return None
    if (
        ckpt.meta.get("input_digest") != input_digest
        or ckpt.meta.get("schedule_digest") != schedule_digest
        or ckpt.frontier != frontier
    ):
        tracer.record("checkpoint.stale", 0.0, path=str(path), phase=phase)
        return None
    try:
        runner = Runner.resume(ckpt, rules, limits=limits)
    except SnapshotError as exc:  # taken under a different rule list
        tracer.record(
            "checkpoint.stale", 0.0,
            path=str(path), phase=phase, error=str(exc),
        )
        return None
    # Continue *inside the caller's graph object* so its root id and
    # later extraction see the resumed state: the digests matched, so
    # the checkpointed graph shares the caller's id space exactly.
    egraph.__dict__.clear()
    egraph.__dict__.update(ckpt.egraph.__dict__)
    runner.egraph = egraph
    tracer.record(
        "checkpoint.resume", 0.0,
        path=str(path), phase=phase,
        start_iteration=runner.iterations_done,
    )
    return runner


def _write_phase_checkpoint(
    runner: Runner,
    phase: str,
    label: str | None,
    report: RunnerReport,
    path: Path,
    input_digest: str,
    schedule_digest: str,
) -> None:
    """Persist a budget-paused saturation for later resumption.

    The meta records the input digest and schedule digest so
    :func:`_resume_phase` can refuse checkpoints whose provenance does
    not match.  Checkpoint problems never fail the compile — the
    phase's partial result is still used exactly as before
    checkpointing existed.
    """
    tracer = current_tracer()
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        runner.checkpoint(
            meta={
                "phase": phase,
                "label": label or "",
                "stop_reason": report.stop_reason.value,
                "input_digest": input_digest,
                "schedule_digest": schedule_digest,
            }
        ).save(path)
    except OSError as exc:
        tracer.record(
            "checkpoint.error", 0.0, path=str(path), error=str(exc)
        )
        return
    tracer.record(
        "checkpoint.write", 0.0,
        path=str(path), phase=phase,
        stop_reason=report.stop_reason.value,
        iterations_done=runner.iterations_done,
    )


def _schedule_digest(schedule: ScheduleSpec | None) -> str:
    """Digest of the active schedule spec (cache-key component)."""
    if schedule is None:
        return "none"
    blob = json.dumps(schedule.to_dict(), sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _active_cache(ctx: CompilationContext):
    """The expansion cache for this compile, or None when disabled."""
    if ctx.cache is not None:
        return ctx.cache
    from repro.core.cache import expansion_cache_from_env

    return expansion_cache_from_env()


def _ctx_label(ctx: CompilationContext) -> str:
    """Human-readable compile label (kernel name when known)."""
    program = ctx.program
    name = getattr(program, "name", None)
    return str(name) if name else "term"


def _report_from_cache_meta(meta: dict) -> RunnerReport:
    """Stand-in report for a phase answered by the expansion cache.

    Iteration details are gone (the saturation never ran here); the
    stop reason survives via the entry's meta line and ``cached`` marks
    the substitution for observability.
    """
    try:
        reason = StopReason(str(meta.get("stop_reason")))
    except ValueError:
        reason = StopReason.ITERATION_LIMIT
    return RunnerReport(stop_reason=reason, cached=True)


def _advance_round(
    ctx: CompilationContext,
    schedule: ScheduleSpec | None,
    cache,
    index: int,
    current: Term,
    cost_old: float,
    egraph: EGraph | None,
    root: int | None,
) -> tuple[Term, float, EGraph, int, bool]:
    """One trip around the Fig. 3 expansion→compilation loop.

    The single implementation behind both the in-process
    :class:`SaturatePass` loop and the staged ``compile_many`` steps —
    serial and pipelined compiles agree byte-for-byte because they run
    this same function.  Returns the updated
    ``(current, cost_old, egraph, root, done)`` loop state; ``done``
    means the prune criterion says to stop iterating.

    When ``cache`` is an :class:`~repro.core.cache.ExpansionCache` and
    pruning is on (each round then starts from a fresh e-graph, making
    every phase a pure function of its inputs), the round's two
    ``EqSat`` calls are content-addressed: the expansion phase keys on
    the round-input term digest and the compilation phase chains on
    the *snapshot digest* of the post-expansion state, so a full hit
    restores the post-compilation e-graph without running either
    phase — and an expansion hit followed by a compilation hit never
    even decompresses the intermediate state.
    """
    options = ctx.options
    ruleset = ctx.ruleset
    report = ctx.report
    tracer = current_tracer()
    label = _ctx_label(ctx)
    use_cache = cache is not None and options.pruning
    run_expansion = index >= options.expansion_start_round
    sched_digest = _schedule_digest(schedule) if use_cache else ""
    phase_label = f"{label}-round{index}"

    with tracer.span("compile.round", index=index) as round_span:
        exp_report = None
        exp_key = None
        # An expansion-cache hit held as (meta, bytes) — only inflated
        # if the compilation phase below misses.
        deferred = None
        comp_input = None
        if use_cache:
            comp_input = "term:" + term_digest(current)

        if run_expansion:
            if use_cache:
                exp_key = cache.phase_key(
                    "expansion",
                    comp_input,
                    rules_digest(list(ruleset.expansion)),
                    limits_digest(options.expansion_limits),
                    sched_digest,
                    False,
                )
                deferred = cache.load_entry(exp_key)
            if deferred is None:
                if options.pruning or egraph is None:
                    egraph = EGraph()
                    root = egraph.add_term(current)
                with tracer.span("phase.expansion"):
                    exp_report = _run_phase(
                        egraph, list(ruleset.expansion), "expansion",
                        options.expansion_limits, schedule,
                        label=phase_label,
                    )
                if use_cache:
                    data = cache.store(
                        exp_key, egraph,
                        meta={
                            "kernel": label,
                            "phase": "expansion",
                            "root": root,
                            "stop_reason": exp_report.stop_reason.value,
                        },
                    )
                    comp_input = (
                        "snap:" + str(load_snapshot_meta(data)[0]["digest"])
                    )
            else:
                exp_report = _report_from_cache_meta(deferred[0])
                comp_input = "snap:" + str(deferred[0]["digest"])
                egraph = None  # state stays compressed in ``deferred``
        elif options.pruning or egraph is None:
            egraph = EGraph()
            root = egraph.add_term(current)

        comp_report = None
        comp_key = None
        if use_cache:
            comp_key = cache.phase_key(
                "compilation",
                comp_input,
                rules_digest(list(ruleset.compilation)),
                limits_digest(options.compilation_limits),
                sched_digest,
                True,
            )
            entry = cache.load_entry(comp_key)
            if entry is not None:
                pair = cache.restore(entry[1])
                if pair is not None:
                    egraph, comp_meta = pair
                    root = int(comp_meta["root"])
                    comp_report = _report_from_cache_meta(entry[0])
                # A corrupt body falls through to the live phase run,
                # whose store below overwrites the bad entry.

        if comp_report is None:
            if egraph is None:
                # Expansion hit but compilation missed: inflate the
                # deferred post-expansion snapshot (or, if its body is
                # corrupt, rebuild and run the phase live after all).
                pair = cache.restore(deferred[1])
                if pair is not None:
                    egraph, exp_meta = pair
                    root = int(exp_meta["root"])
                else:
                    egraph = EGraph()
                    root = egraph.add_term(current)
                    with tracer.span("phase.expansion"):
                        exp_report = _run_phase(
                            egraph, list(ruleset.expansion), "expansion",
                            options.expansion_limits, schedule,
                            label=phase_label,
                        )
                    data = cache.store(
                        exp_key, egraph,
                        meta={
                            "kernel": label,
                            "phase": "expansion",
                            "root": root,
                            "stop_reason": exp_report.stop_reason.value,
                        },
                    )
                    comp_input = (
                        "snap:" + str(load_snapshot_meta(data)[0]["digest"])
                    )
                    comp_key = cache.phase_key(
                        "compilation",
                        comp_input,
                        rules_digest(list(ruleset.compilation)),
                        limits_digest(options.compilation_limits),
                        sched_digest,
                        True,
                    )
            # Frontier matching: compilation rules chain (each lift
            # mints the Vec literal the next lift fires on), so after
            # the first sweep the budget goes to newly created
            # structure instead of re-matching the expansion phase's
            # variants.
            with tracer.span("phase.compilation"):
                comp_report = _run_phase(
                    egraph,
                    list(ruleset.compilation),
                    "compilation",
                    options.compilation_limits,
                    schedule,
                    frontier=True,
                    label=phase_label,
                )
            if use_cache:
                cache.store(
                    comp_key, egraph,
                    meta={
                        "kernel": label,
                        "phase": "compilation",
                        "root": root,
                        "stop_reason": comp_report.stop_reason.value,
                    },
                )

        cost_new, extracted = _extract(egraph, root, ctx.cost_model, report)
        report.peak_nodes = max(report.peak_nodes, egraph.n_nodes)
        report.rounds.append(
            RoundReport(
                index=index,
                expansion=exp_report,
                compilation=comp_report,
                extracted_cost=cost_new,
                n_nodes=egraph.n_nodes,
                n_classes=egraph.n_classes,
            )
        )
        threshold = max(_EPSILON, cost_old * _MIN_RELATIVE_GAIN)
        improved = cost_new < cost_old - threshold
        if round_span.enabled:
            round_span.add(
                cost_before=cost_old,
                extracted_cost=cost_new,
                improved=improved,
                # The prune decision: an improving round restarts the
                # next one from the extracted program alone.
                pruned=bool(options.pruning and improved),
                n_nodes=egraph.n_nodes,
                n_classes=egraph.n_classes,
            )
        done = False
        if not improved:
            if cost_new < cost_old:
                cost_old = cost_new
                current = extracted  # keep the small win anyway
            # Never give up before the expansion phase has had at
            # least one round to expose new structure.
            if run_expansion:
                done = True
        else:
            cost_old = cost_new
            current = extracted
    return current, cost_old, egraph, root, done


class FrontendPass(Pass):
    """Resolve the kernel front end and seed the compile report.

    Accepts either a traced ``KernelProgram`` or a ``KernelInstance``
    wrapper (unwrapped here); the actual symbolic evaluation and
    Diospyros-style normalization happen in
    :func:`repro.compiler.frontend.trace_kernel` when the kernel was
    traced — this pass anchors them in the pipeline's accounting and
    fixes ``ctx.term`` for the eqsat stages.
    """

    name = "frontend"

    def run(self, ctx: CompilationContext):
        """Unwrap the kernel, set ``ctx.term``, create the report."""
        program = ctx.program
        if program is not None and hasattr(program, "program"):
            program = program.program  # KernelInstance → KernelProgram
            ctx.program = program
        if ctx.term is None and program is not None:
            ctx.term = program.term
        ctx.ensure_report()
        if program is None:
            return None
        return {"kernel": program.name, "width": program.width}


class SaturatePass(Pass):
    """The scheduled-saturation rounds of paper Fig. 3.

    Phased mode runs the expansion→compilation loop with per-round
    extraction and greedy pruning, leaving the best term in
    ``ctx.current``.  Under the ``phased=False`` ablation it runs one
    saturation over all rules and leaves the live e-graph for the
    ``extract`` pass.
    """

    name = "saturate"

    def run(self, ctx: CompilationContext):
        """Run the saturation schedule configured by ``ctx.options``."""
        report = ctx.ensure_report()
        options = ctx.options
        ruleset = ctx.ruleset
        schedule = _active_schedule(ctx)
        tracer = current_tracer()

        if not options.phased:
            # The §5.2 no-phasing ablation: one saturation, all rules.
            egraph = EGraph()
            root = egraph.add_term(ctx.term)
            with tracer.span("phase.unphased"):
                sat_report = _run_phase(
                    egraph, ruleset.all_rules(), "unphased",
                    options.unphased_limits, schedule,
                    label=_ctx_label(ctx),
                )
            ctx.egraph, ctx.root = egraph, root
            ctx.unphased_report = sat_report
            return {"mode": "unphased", "iterations": sat_report.iterations}

        # --- the Fig. 3 loop (one _advance_round call per round) ---------
        current = ctx.term
        cost_old = report.initial_cost
        egraph: EGraph | None = None
        root: int | None = None
        cache = _active_cache(ctx)

        for index in range(options.max_rounds):
            current, cost_old, egraph, root, done = _advance_round(
                ctx, schedule, cache, index, current, cost_old, egraph,
                root,
            )
            if done:
                break

        ctx.current = current
        return {"mode": "phased", "n_rounds": len(report.rounds)}


class OptimizePass(Pass):
    """The final optimization-phase saturation of Fig. 3.

    Rebuilds a fresh e-graph from the loop's best term, saturates with
    the optimization rules, and leaves the e-graph for ``extract``.
    Skipped under ``phased=False`` (the unphased saturation already
    included every rule).
    """

    name = "optimize"

    def run(self, ctx: CompilationContext):
        """Saturate with optimization rules, or skip when unphased.

        Cache-aware like the round phases: the optimization phase
        always starts from a fresh e-graph of ``ctx.current``, so it
        is a pure function of that term and the expansion cache can
        answer it directly with the stored post-phase state.
        """
        if not ctx.options.phased:
            return SKIPPED
        schedule = _active_schedule(ctx)
        cache = _active_cache(ctx)
        opt_rules = list(ctx.ruleset.optimization)
        key = None
        if cache is not None:
            key = cache.phase_key(
                "optimization",
                "term:" + term_digest(ctx.current),
                rules_digest(opt_rules),
                limits_digest(ctx.options.optimization_limits),
                _schedule_digest(schedule),
                False,
            )
            entry = cache.load_entry(key)
            if entry is not None:
                pair = cache.restore(entry[1])
                if pair is not None:
                    egraph, meta = pair
                    ctx.report.optimization = _report_from_cache_meta(
                        entry[0]
                    )
                    ctx.egraph, ctx.root = egraph, int(meta["root"])
                    return {"iterations": 0, "cached": True}
        egraph = EGraph()
        root = egraph.add_term(ctx.current)
        with current_tracer().span("phase.optimization"):
            ctx.report.optimization = _run_phase(
                egraph,
                opt_rules,
                "optimization",
                ctx.options.optimization_limits,
                schedule,
                label=f"{_ctx_label(ctx)}-optimize",
            )
        if cache is not None:
            cache.store(
                key, egraph,
                meta={
                    "kernel": _ctx_label(ctx),
                    "phase": "optimization",
                    "root": root,
                    "stop_reason": (
                        ctx.report.optimization.stop_reason.value
                    ),
                },
            )
        ctx.egraph, ctx.root = egraph, root
        return {"iterations": ctx.report.optimization.iterations}


class ExtractPass(Pass):
    """Minimum-cost extraction of the final program.

    Sets ``ctx.compiled`` and the report's ``final_cost``; in unphased
    mode this is also where the single :class:`RoundReport` describing
    the one saturation is recorded.
    """

    name = "extract"

    def run(self, ctx: CompilationContext):
        """Extract the cheapest term from the live e-graph."""
        report = ctx.report
        cost, compiled = _extract(ctx.egraph, ctx.root, ctx.cost_model,
                                  report)
        report.peak_nodes = max(report.peak_nodes, ctx.egraph.n_nodes)
        if ctx.unphased_report is not None:
            report.rounds.append(
                RoundReport(
                    index=0,
                    expansion=None,
                    compilation=ctx.unphased_report,
                    extracted_cost=cost,
                    n_nodes=ctx.egraph.n_nodes,
                    n_classes=ctx.egraph.n_classes,
                )
            )
        report.final_cost = cost
        ctx.compiled = compiled
        return {"final_cost": cost}


class ValidatePass(Pass):
    """Translation validation of the compiled term.

    Calls ``ctx.validator(original, compiled)`` — typically
    :meth:`GeneratedCompiler.validate_equivalence` — and reports
    ``skipped`` when the driver disabled validation.
    """

    name = "validate"

    def run(self, ctx: CompilationContext):
        """Check source/compiled equivalence via the context validator."""
        if ctx.validator is None:
            return SKIPPED
        ctx.validator(ctx.term, ctx.compiled)
        return None


class LowerPass(Pass):
    """Lower the compiled vector term onto machine code."""

    name = "lower"

    def run(self, ctx: CompilationContext):
        """Select data movement and emit the machine program."""
        from repro.compiler.lowering import lower_program

        program = ctx.program
        ctx.machine = lower_program(
            ctx.compiled,
            ctx.spec,
            program.arrays,
            output=program.output,
            output_len=program.output_len,
        )
        detail = {"n_instructions": len(ctx.machine.instrs)}
        masked_stores = ctx.machine.count("v.store.m")
        if masked_stores:
            detail["masked_stores"] = masked_stores
        return detail


class SchedulePass(Pass):
    """Run the toolchain instruction scheduler over the lowered code.

    Optional tail stage used by drivers that go on to simulate (the
    bench harness, :func:`compile_many` with ``schedule=True``).
    """

    name = "schedule"

    def run(self, ctx: CompilationContext):
        """Schedule ``ctx.machine`` for the target machine model."""
        from repro.machine.schedule import schedule_program
        from repro.machine.simulator import Machine

        ctx.scheduled = schedule_program(ctx.machine, Machine(ctx.spec))
        return {"n_instructions": len(ctx.scheduled.instrs)}


def term_pipeline() -> Pipeline:
    """The ``compile_term`` schedule: saturate → optimize → extract."""
    return Pipeline([SaturatePass(), OptimizePass(), ExtractPass()])


def kernel_pipeline(schedule: bool = False) -> Pipeline:
    """The full per-kernel schedule behind ``compile_kernel``.

    frontend → saturate → optimize → extract → validate → lower, plus
    the instruction ``schedule`` stage when requested.  Validation is
    controlled by ``ctx.validator`` (None → the pass reports
    ``skipped``), so the pass order is identical either way.
    """
    passes: list[Pass] = [
        FrontendPass(),
        SaturatePass(),
        OptimizePass(),
        ExtractPass(),
        ValidatePass(),
        LowerPass(),
    ]
    if schedule:
        passes.append(SchedulePass())
    return Pipeline(passes)


def baseline_kernel_pipeline(
    compile_fn: Callable, schedule: bool = False
) -> Pipeline:
    """A kernel schedule with a custom middle stage (the baselines).

    ``compile_fn(term)`` must return ``(compiled_term, CompileReport)``
    — e.g. :meth:`DiospyrosCompiler.compile`.  Its report is adopted
    into the pipeline (earlier pass entries carry over), so the shared
    pre/post stages (frontend, lower, schedule) are literally the same
    passes the generated compiler runs.
    """

    def run_baseline(ctx: CompilationContext):
        compiled, report = compile_fn(ctx.term)
        ctx.compiled = compiled
        ctx.report = report
        return {"final_cost": report.final_cost}

    passes: list[Pass] = [
        FrontendPass(),
        FnPass("saturate", run_baseline),
        LowerPass(),
    ]
    if schedule:
        passes.append(SchedulePass())
    return Pipeline(passes)


class KernelCompileError(RuntimeError):
    """Compilation of one kernel in a batch failed.

    Wraps whatever the underlying pass raised with the *identity* of
    the failing kernel — its suite key/name and its compile-surface
    spec hash (:func:`repro.kernels.specs.kernel_spec_hash`) — plus
    the pipeline stage that failed, so a ``compile_many`` over dozens
    of kernels names the culprit instead of surfacing a bare worker
    traceback.  Defines ``__reduce__`` so the error survives the
    process-pool pickling round trip intact.
    """

    def __init__(
        self, kernel_key: str, spec_hash: str, stage: str, message: str
    ):
        super().__init__(
            f"kernel {kernel_key!r} (spec {spec_hash}) failed in "
            f"stage {stage!r}: {message}"
        )
        self.kernel_key = kernel_key
        self.spec_hash = spec_hash
        self.stage = stage
        self.message = message

    def __reduce__(self):
        return (
            type(self),
            (self.kernel_key, self.spec_hash, self.stage, self.message),
        )


def _kernel_key(kernel) -> str:
    """The kernel's suite key (or program name) for error reports."""
    key = getattr(kernel, "key", None) or getattr(kernel, "name", None)
    return str(key) if key else "<kernel>"


def _kernel_spec_hash(kernel) -> str:
    """Best-effort spec hash of a kernel/instance for error reports."""
    from repro.kernels.specs import kernel_spec_hash

    program = getattr(kernel, "program", kernel)
    try:
        return kernel_spec_hash(program)
    except Exception:
        return "<unhashable>"


def _compile_one(compiler, kernel, options, validate):
    """Worker for :func:`compile_many` (module-level: must pickle)."""
    try:
        return compiler.compile_kernel(kernel, options=options,
                                       validate=validate)
    except KernelCompileError:
        raise
    except Exception as exc:
        raise KernelCompileError(
            _kernel_key(kernel), _kernel_spec_hash(kernel), "compile",
            str(exc),
        ) from exc


def _staged_context(
    compiler, program, options, validate, report=None
) -> CompilationContext:
    """A per-stage :class:`CompilationContext` for the staged compile.

    Rebuilt in whichever worker runs the stage — only the picklable
    state dict crosses processes — with the same wiring
    ``GeneratedCompiler.compile_kernel`` uses, so the staged passes see
    an identical context to the serial ones.
    """
    return CompilationContext(
        ruleset=compiler.ruleset,
        cost_model=compiler.cost_model,
        options=options or compiler.options,
        schedule=compiler.schedule,
        program=program,
        spec=compiler.spec,
        validator=compiler.validate_equivalence if validate else None,
        term=getattr(program, "term", None),
        report=report,
    )


def _staged_step(context, state: dict):
    """Advance one kernel's staged compile by one stage.

    The ``parallel_pipeline`` step function: ``context`` is the shared
    ``(compiler, options, validate)`` payload, ``state`` the kernel's
    picklable stage machine.  Stages are ``start`` (frontend) →
    ``round``×N (one Fig. 3 round each, via the same
    :func:`_advance_round` the serial path runs) → ``optimize`` →
    ``finish`` (extract/validate/lower + result assembly).  E-graphs
    cross stage boundaries as snapshot bytes; with pruning on, rounds
    rebuild from the current best term, so only optimize→finish ships
    a graph.
    """
    compiler, options, validate = context
    try:
        return _staged_step_inner(compiler, options, validate, state)
    except KernelCompileError:
        raise
    except Exception as exc:
        raise KernelCompileError(
            state.get("kernel_key", "<kernel>"),
            state.get("spec_hash", "<unhashed>"),
            state.get("stage", "<stage>"),
            str(exc),
        ) from exc


def _staged_step_inner(compiler, options, validate, state: dict):
    stage = state["stage"]
    state["last_stage"] = stage

    if stage == "start":
        program = state.pop("kernel")
        if hasattr(program, "program"):
            program = program.program  # KernelInstance → KernelProgram
        ctx = _staged_context(compiler, program, options, validate)
        Pipeline([FrontendPass()]).run(ctx)
        state.update(
            program=ctx.program,
            report=ctx.report,
            spec_hash=_kernel_spec_hash(ctx.program),
            current=ctx.term,
            cost_old=ctx.report.initial_cost,
            round_index=0,
            egraph_blob=None,
            root=None,
            sat_elapsed=0.0,
            stage="round",
        )
        return state, False

    ctx = _staged_context(
        compiler, state["program"], options, validate,
        report=state["report"],
    )
    schedule = _active_schedule(ctx)

    if stage == "round":
        index = state["round_index"]
        state["last_stage"] = f"round{index}"
        egraph = None
        root = None
        if state["egraph_blob"] is not None:
            egraph, _meta = load_egraph(state["egraph_blob"])
            root = state["root"]
        t0 = time.monotonic()
        current, cost_old, egraph, root, done = _advance_round(
            ctx, schedule, _active_cache(ctx), index,
            state["current"], state["cost_old"], egraph, root,
        )
        state["sat_elapsed"] += time.monotonic() - t0
        state["current"] = current
        state["cost_old"] = cost_old
        state["round_index"] = index + 1
        if done or index + 1 >= ctx.options.max_rounds:
            # Close the saturate stage with the same pass-report entry
            # the serial SaturatePass leaves behind.
            report = ctx.report
            report.passes.append(
                PassReport(
                    "saturate", state["sat_elapsed"], _OK,
                    {"mode": "phased", "n_rounds": len(report.rounds)},
                )
            )
            report.elapsed += state["sat_elapsed"]
            state["egraph_blob"] = None
            state["root"] = None
            state["stage"] = "optimize"
        elif not ctx.options.pruning:
            # Without pruning the graph itself carries to the next
            # round; serialize it for the hop between workers.
            state["egraph_blob"] = save_egraph(egraph)
            state["root"] = root
        else:
            state["egraph_blob"] = None  # next round rebuilds from term
        state["report"] = ctx.report
        return state, False

    if stage == "optimize":
        ctx.current = state["current"]
        Pipeline([OptimizePass()]).run(ctx)
        state["egraph_blob"] = save_egraph(ctx.egraph)
        state["root"] = ctx.root
        state["report"] = ctx.report
        state["stage"] = "finish"
        return state, False

    if stage == "finish":
        from repro.core.framework import CompiledKernel

        ctx.current = state["current"]
        egraph, _meta = load_egraph(state["egraph_blob"])
        ctx.egraph = egraph
        ctx.root = state["root"]
        Pipeline([ExtractPass(), ValidatePass(), LowerPass()]).run(ctx)
        program = state["program"]
        state["result"] = CompiledKernel(
            name=program.name,
            scalar_term=program.term,
            compiled_term=ctx.compiled,
            machine_program=ctx.machine,
            report=ctx.report,
            arrays=dict(program.arrays),
            output=program.output,
            spec=compiler.spec,
        )
        state["egraph_blob"] = None
        state["report"] = ctx.report
        state["stage"] = "done"
        return state, True

    raise ValueError(f"unknown staged-compile stage {stage!r}")


def _stage_label(state: dict) -> str:
    """Trace label for one completed pipeline stage."""
    return (
        f"{state.get('kernel_key', '?')}:"
        f"{state.get('last_stage', state.get('stage', '?'))}"
    )


def _legacy_pipeline_requested() -> bool:
    """``REPRO_LEGACY_PIPELINE=1`` forces the coarse one-worker-per-
    kernel ``compile_many`` fan-out (the pre-pipelining path, kept for
    differential testing and as an escape hatch)."""
    return os.environ.get(
        "REPRO_LEGACY_PIPELINE", ""
    ).strip().lower() in ("1", "true", "yes", "on")


def compile_many(
    compiler,
    kernels: list,
    options: CompileOptions | None = None,
    validate: bool = True,
    jobs: int | None = None,
) -> list:
    """Compile many kernels against one generated compiler.

    The batch driver for the artifact workflow: load one
    :class:`~repro.core.artifact.CompilerArtifact`, then fan a kernel
    list out across worker processes (via :mod:`repro.bench.parallel`,
    so ordering is deterministic and the fan-out degrades to a serial
    loop when pools are unavailable or ``REPRO_PARALLEL=0``).
    ``jobs`` ≤ 1 runs serially in-process.  Returns one
    :class:`~repro.core.framework.CompiledKernel` per input kernel, in
    input order; a failing kernel raises :class:`KernelCompileError`
    naming the kernel and its spec hash.

    The parallel path is *phase-pipelined*: each kernel's compile is
    cut into stages (frontend, one stage per Fig. 3 round, optimize,
    finish) and the stages are interleaved across the pool, so a long
    kernel's optimization overlaps a short kernel's rounds instead of
    each kernel monopolizing one worker end-to-end.  Every stage runs
    the same pass/round code as the serial path, so the compiled
    results are byte-identical.  ``REPRO_LEGACY_PIPELINE=1`` (or an
    unphased ablation, whose single saturation has no stage
    boundaries) falls back to the coarse one-worker-per-kernel
    fan-out.
    """
    kernels = list(kernels)
    if jobs is None or jobs <= 1:
        return [
            _compile_one(compiler, k, options, validate) for k in kernels
        ]

    active_options = options or compiler.options
    if _legacy_pipeline_requested() or not active_options.phased:
        from repro.bench.parallel import parallel_starmap

        return parallel_starmap(
            _compile_one,
            [(compiler, k, options, validate) for k in kernels],
            max_workers=jobs,
        )

    from repro.bench.parallel import parallel_pipeline

    states = [
        {"stage": "start", "kernel": k, "kernel_key": _kernel_key(k)}
        for k in kernels
    ]
    finished = parallel_pipeline(
        _staged_step,
        states,
        max_workers=jobs,
        context=(compiler, options, validate),
        labeler=_stage_label,
    )
    return [state["result"] for state in finished]
