"""The online stage as a composable pass pipeline.

The paper's compile-time stage is a *fixed schedule* of bounded eqsat
calls (Fig. 3) bracketed by front-end lowering, translation
validation, and machine lowering.  Instead of one monolithic function
that every driver re-wraps by hand, this module decomposes it into
named passes over a shared :class:`CompilationContext`:

    frontend → saturate → optimize → extract → validate → lower
    (→ schedule)

``compile_term`` runs the middle three; ``compile_kernel`` runs the
full schedule; the Diospyros baseline swaps its own greedy loop in for
the ``saturate``/``optimize``/``extract`` trio while sharing the outer
stages; the bench harness and :func:`compile_many` are thin
configurations on top.  Every pass emits a ``pass.<name>`` span (see
:mod:`repro.obs`) and appends a :class:`~repro.compiler.compile.PassReport`
to the compile report, and the report's ``elapsed`` is exactly the sum
of its pass entries.

Pass order never changes with options: a pass that does not apply
(``optimize`` under ``phased=False``, ``validate`` with no validator)
reports status ``skipped`` rather than disappearing, so per-pass
timings are comparable across ablations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.compiler.compile import (
    _EPSILON,
    _MIN_RELATIVE_GAIN,
    CompileOptions,
    CompileReport,
    PassReport,
    RoundReport,
    _extract,
)
from repro.egraph.egraph import EGraph
from repro.egraph.runner import RunnerLimits, RunnerReport, run_saturation
from repro.egraph.scheduling import ScheduleSpec, schedule_from_env
from repro.lang.term import Term
from repro.obs import current_tracer
from repro.phases.cost import CostModel
from repro.phases.ruleset import PhasedRuleSet

#: Sentinel a pass returns when it did not apply under the current
#: options; the pipeline records it with status ``"skipped"``.
SKIPPED = "skipped"
_OK = "ok"


@dataclass
class CompilationContext:
    """Shared state threaded through the passes of one compilation.

    Inputs (``term``/``program``, ``ruleset``, ``cost_model``,
    ``options``, ``spec``, ``validator``) are set by the driver;
    passes fill in ``report``, ``compiled``, ``machine`` and
    ``scheduled`` as the pipeline advances.  The remaining fields are
    inter-pass scratch (the live e-graph between ``optimize`` and
    ``extract``, the running best term between rounds).
    """

    ruleset: PhasedRuleSet | None = None
    cost_model: CostModel | None = None
    options: CompileOptions = field(default_factory=CompileOptions)
    # Tuned saturation schedule (usually from the compiler artifact);
    # None runs the default backoff scheduler everywhere.  The
    # REPRO_SCHEDULE env override wins over this field.
    schedule: ScheduleSpec | None = None
    term: Term | None = None
    program: Any = None  # KernelProgram (or KernelInstance pre-frontend)
    spec: Any = None  # IsaSpec, needed by lower/schedule
    validator: Callable | None = None
    report: CompileReport | None = None
    compiled: Term | None = None
    machine: Any = None  # machine Program after ``lower``
    scheduled: Any = None  # scheduled Program after ``schedule``
    current: Term | None = None
    egraph: EGraph | None = None
    root: int | None = None
    unphased_report: RunnerReport | None = None

    def ensure_report(self) -> CompileReport:
        """The compile report, creating it from ``term``'s cost once."""
        if self.report is None:
            cost = self.cost_model.term_cost(self.term)
            self.report = CompileReport(initial_cost=cost, final_cost=cost)
        return self.report


class Pass:
    """One named stage of the online pipeline.

    Subclasses set ``name`` and implement :meth:`run`, which mutates
    the context and returns ``None`` (ran, nothing to report), a dict
    of span/report detail, or :data:`SKIPPED`.
    """

    name = "pass"

    def run(self, ctx: CompilationContext):
        """Execute the pass against ``ctx``."""
        raise NotImplementedError


class FnPass(Pass):
    """Adapter wrapping an arbitrary ``fn(ctx)`` as a named pass.

    How drivers splice non-standard stages into the standard schedule
    — e.g. the Diospyros baseline's greedy compile loop standing in
    for ``saturate``/``optimize``/``extract``.
    """

    def __init__(self, name: str, fn: Callable[[CompilationContext], Any]):
        self.name = name
        self._fn = fn

    def run(self, ctx: CompilationContext):
        """Call the wrapped function with the context."""
        return self._fn(ctx)


class Pipeline:
    """An ordered sequence of passes sharing one context.

    ``run`` times each pass, wraps it in a ``pass.<name>`` span, and
    appends a :class:`PassReport` to the context's compile report; the
    report's ``elapsed`` accumulates exactly the per-pass segments, so
    the pass entries always sum to it.  A pass may *replace*
    ``ctx.report`` (the baseline adapter adopts the report its
    compiler built); earlier pass entries and elapsed carry over.
    """

    def __init__(self, passes: list):
        self.passes = tuple(passes)

    def names(self) -> list[str]:
        """Pass names in execution order."""
        return [p.name for p in self.passes]

    def run(self, ctx: CompilationContext) -> CompilationContext:
        """Run every pass in order against ``ctx``; returns ``ctx``."""
        tracer = current_tracer()
        pending: list[PassReport] = []
        for p in self.passes:
            before = ctx.report
            t0 = time.monotonic()
            with tracer.span(f"pass.{p.name}") as span:
                result = p.run(ctx)
                elapsed = time.monotonic() - t0
                status = SKIPPED if result is SKIPPED else _OK
                detail = dict(result) if isinstance(result, dict) else {}
                if span.enabled:
                    span.add(status=status, **detail)
            if ctx.report is not None and ctx.report is not before:
                # The pass brought its own report: keep the pipeline's
                # accounting (earlier pass entries + elapsed) and let
                # this pass's segment be re-added below.
                prior_passes = before.passes if before else []
                prior_elapsed = before.elapsed if before else 0.0
                ctx.report.passes = list(prior_passes) + ctx.report.passes
                ctx.report.elapsed = prior_elapsed
            pending.append(PassReport(p.name, elapsed, status, detail))
            if ctx.report is not None:
                for entry in pending:
                    ctx.report.passes.append(entry)
                    ctx.report.elapsed += entry.elapsed
                pending.clear()
        return ctx


def _active_schedule(ctx: CompilationContext) -> ScheduleSpec | None:
    """The schedule governing ``ctx``'s saturations, if any.

    ``REPRO_SCHEDULE`` (see :func:`schedule_from_env`) beats the
    context's artifact-carried spec, so a spec file can be A/B-tested
    against any compilation; an explicit ``REPRO_SCHEDULE=off`` forces
    the default scheduler even when the artifact ships a tuned one.
    """
    env = schedule_from_env()
    return env if env is not None else ctx.schedule


def _run_phase(
    egraph: EGraph,
    rules: list,
    phase: str,
    base_limits: RunnerLimits,
    schedule: ScheduleSpec | None,
    frontier: bool = False,
) -> RunnerReport:
    """One bounded ``EqSat`` call under the active schedule.

    With no schedule this is exactly the historical
    :func:`run_saturation` call; with one, the phase's limit overrides
    apply and a fresh :class:`~repro.egraph.scheduling.TunedScheduler`
    enforces the per-rule budgets.
    """
    if schedule is None:
        return run_saturation(egraph, rules, base_limits,
                              frontier=frontier)
    limits = schedule.limits_for(phase, base_limits)
    return run_saturation(
        egraph,
        rules,
        limits,
        scheduler=schedule.scheduler_for(phase, limits),
        frontier=frontier,
    )


class FrontendPass(Pass):
    """Resolve the kernel front end and seed the compile report.

    Accepts either a traced ``KernelProgram`` or a ``KernelInstance``
    wrapper (unwrapped here); the actual symbolic evaluation and
    Diospyros-style normalization happen in
    :func:`repro.compiler.frontend.trace_kernel` when the kernel was
    traced — this pass anchors them in the pipeline's accounting and
    fixes ``ctx.term`` for the eqsat stages.
    """

    name = "frontend"

    def run(self, ctx: CompilationContext):
        """Unwrap the kernel, set ``ctx.term``, create the report."""
        program = ctx.program
        if program is not None and hasattr(program, "program"):
            program = program.program  # KernelInstance → KernelProgram
            ctx.program = program
        if ctx.term is None and program is not None:
            ctx.term = program.term
        ctx.ensure_report()
        if program is None:
            return None
        return {"kernel": program.name, "width": program.width}


class SaturatePass(Pass):
    """The scheduled-saturation rounds of paper Fig. 3.

    Phased mode runs the expansion→compilation loop with per-round
    extraction and greedy pruning, leaving the best term in
    ``ctx.current``.  Under the ``phased=False`` ablation it runs one
    saturation over all rules and leaves the live e-graph for the
    ``extract`` pass.
    """

    name = "saturate"

    def run(self, ctx: CompilationContext):
        """Run the saturation schedule configured by ``ctx.options``."""
        report = ctx.ensure_report()
        options = ctx.options
        ruleset = ctx.ruleset
        schedule = _active_schedule(ctx)
        tracer = current_tracer()

        if not options.phased:
            # The §5.2 no-phasing ablation: one saturation, all rules.
            egraph = EGraph()
            root = egraph.add_term(ctx.term)
            with tracer.span("phase.unphased"):
                sat_report = _run_phase(
                    egraph, ruleset.all_rules(), "unphased",
                    options.unphased_limits, schedule,
                )
            ctx.egraph, ctx.root = egraph, root
            ctx.unphased_report = sat_report
            return {"mode": "unphased", "iterations": sat_report.iterations}

        # --- the Fig. 3 loop ---------------------------------------------
        current = ctx.term
        cost_old = report.initial_cost
        egraph: EGraph | None = None
        root: int | None = None

        for index in range(options.max_rounds):
            with tracer.span("compile.round", index=index) as round_span:
                if options.pruning or egraph is None:
                    egraph = EGraph()
                    root = egraph.add_term(current)
                exp_report = None
                if index >= options.expansion_start_round:
                    with tracer.span("phase.expansion"):
                        exp_report = _run_phase(
                            egraph, list(ruleset.expansion), "expansion",
                            options.expansion_limits, schedule,
                        )
                # Frontier matching: compilation rules chain (each lift
                # mints the Vec literal the next lift fires on), so
                # after the first sweep the budget goes to newly
                # created structure instead of re-matching the
                # expansion phase's variants.
                with tracer.span("phase.compilation"):
                    comp_report = _run_phase(
                        egraph,
                        list(ruleset.compilation),
                        "compilation",
                        options.compilation_limits,
                        schedule,
                        frontier=True,
                    )
                cost_new, extracted = _extract(
                    egraph, root, ctx.cost_model, report
                )
                report.peak_nodes = max(report.peak_nodes, egraph.n_nodes)
                report.rounds.append(
                    RoundReport(
                        index=index,
                        expansion=exp_report,
                        compilation=comp_report,
                        extracted_cost=cost_new,
                        n_nodes=egraph.n_nodes,
                        n_classes=egraph.n_classes,
                    )
                )
                threshold = max(_EPSILON, cost_old * _MIN_RELATIVE_GAIN)
                improved = cost_new < cost_old - threshold
                if round_span.enabled:
                    round_span.add(
                        cost_before=cost_old,
                        extracted_cost=cost_new,
                        improved=improved,
                        # The prune decision: an improving round
                        # restarts the next one from the extracted
                        # program alone.
                        pruned=bool(options.pruning and improved),
                        n_nodes=egraph.n_nodes,
                        n_classes=egraph.n_classes,
                    )
                if not improved:
                    if cost_new < cost_old:
                        cost_old = cost_new
                        current = extracted  # keep the small win anyway
                    # Never give up before the expansion phase has had
                    # at least one round to expose new structure.
                    if index >= options.expansion_start_round:
                        break
                    continue
                cost_old = cost_new
                current = extracted

        ctx.current = current
        return {"mode": "phased", "n_rounds": len(report.rounds)}


class OptimizePass(Pass):
    """The final optimization-phase saturation of Fig. 3.

    Rebuilds a fresh e-graph from the loop's best term, saturates with
    the optimization rules, and leaves the e-graph for ``extract``.
    Skipped under ``phased=False`` (the unphased saturation already
    included every rule).
    """

    name = "optimize"

    def run(self, ctx: CompilationContext):
        """Saturate with optimization rules, or skip when unphased."""
        if not ctx.options.phased:
            return SKIPPED
        egraph = EGraph()
        root = egraph.add_term(ctx.current)
        with current_tracer().span("phase.optimization"):
            ctx.report.optimization = _run_phase(
                egraph,
                list(ctx.ruleset.optimization),
                "optimization",
                ctx.options.optimization_limits,
                _active_schedule(ctx),
            )
        ctx.egraph, ctx.root = egraph, root
        return {"iterations": ctx.report.optimization.iterations}


class ExtractPass(Pass):
    """Minimum-cost extraction of the final program.

    Sets ``ctx.compiled`` and the report's ``final_cost``; in unphased
    mode this is also where the single :class:`RoundReport` describing
    the one saturation is recorded.
    """

    name = "extract"

    def run(self, ctx: CompilationContext):
        """Extract the cheapest term from the live e-graph."""
        report = ctx.report
        cost, compiled = _extract(ctx.egraph, ctx.root, ctx.cost_model,
                                  report)
        report.peak_nodes = max(report.peak_nodes, ctx.egraph.n_nodes)
        if ctx.unphased_report is not None:
            report.rounds.append(
                RoundReport(
                    index=0,
                    expansion=None,
                    compilation=ctx.unphased_report,
                    extracted_cost=cost,
                    n_nodes=ctx.egraph.n_nodes,
                    n_classes=ctx.egraph.n_classes,
                )
            )
        report.final_cost = cost
        ctx.compiled = compiled
        return {"final_cost": cost}


class ValidatePass(Pass):
    """Translation validation of the compiled term.

    Calls ``ctx.validator(original, compiled)`` — typically
    :meth:`GeneratedCompiler.validate_equivalence` — and reports
    ``skipped`` when the driver disabled validation.
    """

    name = "validate"

    def run(self, ctx: CompilationContext):
        """Check source/compiled equivalence via the context validator."""
        if ctx.validator is None:
            return SKIPPED
        ctx.validator(ctx.term, ctx.compiled)
        return None


class LowerPass(Pass):
    """Lower the compiled vector term onto machine code."""

    name = "lower"

    def run(self, ctx: CompilationContext):
        """Select data movement and emit the machine program."""
        from repro.compiler.lowering import lower_program

        program = ctx.program
        ctx.machine = lower_program(
            ctx.compiled, ctx.spec, program.arrays, output=program.output
        )
        return {"n_instructions": len(ctx.machine.instrs)}


class SchedulePass(Pass):
    """Run the toolchain instruction scheduler over the lowered code.

    Optional tail stage used by drivers that go on to simulate (the
    bench harness, :func:`compile_many` with ``schedule=True``).
    """

    name = "schedule"

    def run(self, ctx: CompilationContext):
        """Schedule ``ctx.machine`` for the target machine model."""
        from repro.machine.schedule import schedule_program
        from repro.machine.simulator import Machine

        ctx.scheduled = schedule_program(ctx.machine, Machine(ctx.spec))
        return {"n_instructions": len(ctx.scheduled.instrs)}


def term_pipeline() -> Pipeline:
    """The ``compile_term`` schedule: saturate → optimize → extract."""
    return Pipeline([SaturatePass(), OptimizePass(), ExtractPass()])


def kernel_pipeline(schedule: bool = False) -> Pipeline:
    """The full per-kernel schedule behind ``compile_kernel``.

    frontend → saturate → optimize → extract → validate → lower, plus
    the instruction ``schedule`` stage when requested.  Validation is
    controlled by ``ctx.validator`` (None → the pass reports
    ``skipped``), so the pass order is identical either way.
    """
    passes: list[Pass] = [
        FrontendPass(),
        SaturatePass(),
        OptimizePass(),
        ExtractPass(),
        ValidatePass(),
        LowerPass(),
    ]
    if schedule:
        passes.append(SchedulePass())
    return Pipeline(passes)


def baseline_kernel_pipeline(
    compile_fn: Callable, schedule: bool = False
) -> Pipeline:
    """A kernel schedule with a custom middle stage (the baselines).

    ``compile_fn(term)`` must return ``(compiled_term, CompileReport)``
    — e.g. :meth:`DiospyrosCompiler.compile`.  Its report is adopted
    into the pipeline (earlier pass entries carry over), so the shared
    pre/post stages (frontend, lower, schedule) are literally the same
    passes the generated compiler runs.
    """

    def run_baseline(ctx: CompilationContext):
        compiled, report = compile_fn(ctx.term)
        ctx.compiled = compiled
        ctx.report = report
        return {"final_cost": report.final_cost}

    passes: list[Pass] = [
        FrontendPass(),
        FnPass("saturate", run_baseline),
        LowerPass(),
    ]
    if schedule:
        passes.append(SchedulePass())
    return Pipeline(passes)


def _compile_one(compiler, kernel, options, validate):
    """Worker for :func:`compile_many` (module-level: must pickle)."""
    return compiler.compile_kernel(kernel, options=options,
                                   validate=validate)


def compile_many(
    compiler,
    kernels: list,
    options: CompileOptions | None = None,
    validate: bool = True,
    jobs: int | None = None,
) -> list:
    """Compile many kernels against one generated compiler.

    The batch driver for the artifact workflow: load one
    :class:`~repro.core.artifact.CompilerArtifact`, then fan a kernel
    list out across worker processes (reusing
    :mod:`repro.bench.parallel`, so ordering is deterministic and the
    fan-out degrades to a serial loop when pools are unavailable or
    ``REPRO_PARALLEL=0``).  ``jobs`` ≤ 1 runs serially in-process.
    Returns one :class:`~repro.core.framework.CompiledKernel` per input
    kernel, in input order.
    """
    kernels = list(kernels)
    if jobs is None or jobs <= 1:
        return [
            compiler.compile_kernel(k, options=options, validate=validate)
            for k in kernels
        ]
    from repro.bench.parallel import parallel_starmap

    return parallel_starmap(
        _compile_one,
        [(compiler, k, options, validate) for k in kernels],
        max_workers=jobs,
    )
