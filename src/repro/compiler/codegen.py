"""C-with-intrinsics pretty printer.

Diospyros emits C sprinkled with Xtensa intrinsics for the Tensilica
toolchain; this module emits the equivalent for our machine model so
compiled kernels can be read, diffed, and pasted into reports.  The
text is presentation-only — execution happens in
:mod:`repro.machine.simulator`.
"""

from __future__ import annotations

from repro.machine.program import Instr, Program

_INTRINSIC = {
    "VecAdd": "vec_add",
    "VecMinus": "vec_sub",
    "VecMul": "vec_mul",
    "VecDiv": "vec_div",
    "VecNeg": "vec_neg",
    "VecSgn": "vec_sgn",
    "VecSqrt": "vec_sqrt",
    "VecMAC": "vec_mac",
    "VecMulSub": "vec_mulsub",
    "VecSqrtSgn": "vec_sqrtsgn",
}

_SCALAR_FMT = {
    "+": "{0} + {1}",
    "-": "{0} - {1}",
    "*": "{0} * {1}",
    "/": "{0} / {1}",
    "neg": "-{0}",
    "sgn": "sgnf({0})",
    "sqrt": "sqrtf({0})",
    "mac": "{0} + {1} * {2}",
    "mulsub": "{0} - {1} * {2}",
    "sqrtsgn": "sqrtf({0}) * sgnf(-{1})",
}


def _emit_instr(instr: Instr) -> str | None:
    opcode = instr.opcode
    if opcode == "s.const":
        return f"float {instr.dst} = {float(instr.imm)}f;"
    if opcode == "s.load":
        return f"float {instr.dst} = {instr.array}[{instr.offset}];"
    if opcode == "s.store":
        return f"{instr.array}[{instr.offset}] = {instr.srcs[0]};"
    if opcode == "s.op":
        fmt = _SCALAR_FMT.get(instr.op, None)
        if fmt is None:
            args = ", ".join(instr.srcs)
            return f"float {instr.dst} = {instr.op}({args});"
        return f"float {instr.dst} = {fmt.format(*instr.srcs)};"
    if opcode == "v.const":
        lanes = ", ".join(f"{float(x)}f" for x in instr.imm)
        return f"vecf {instr.dst} = vec_literal({lanes});"
    if opcode == "v.splat":
        return f"vecf {instr.dst} = vec_splat({instr.srcs[0]});"
    if opcode == "v.load":
        return (
            f"vecf {instr.dst} = vec_load(&{instr.array}[{instr.offset}]);"
        )
    if opcode == "v.store":
        return f"vec_store(&{instr.array}[{instr.offset}], {instr.srcs[0]});"
    if opcode == "v.op":
        name = _INTRINSIC.get(instr.op, instr.op.lower())
        args = ", ".join(instr.srcs)
        return f"vecf {instr.dst} = {name}({args});"
    if opcode == "v.insert":
        vec, scalar = instr.srcs
        return (
            f"vecf {instr.dst} = vec_insert({vec}, {instr.imm}, {scalar});"
        )
    if opcode == "v.extract":
        return (
            f"float {instr.dst} = vec_extract({instr.srcs[0]}, {instr.imm});"
        )
    if opcode == "v.shuffle":
        pattern = ", ".join(str(i) for i in instr.imm)
        a, b = instr.srcs
        return (
            f"vecf {instr.dst} = vec_shuffle({a}, {b}, {{{pattern}}});"
        )
    if opcode == "label":
        return f"{instr.target}:"
    if opcode == "jump":
        return f"goto {instr.target};"
    if opcode == "bnez":
        return f"if ({instr.srcs[0]} != 0) goto {instr.target};"
    if opcode == "blt":
        return f"if ({instr.srcs[0]} < {instr.srcs[1]}) goto {instr.target};"
    if opcode == "loop.begin":
        return f"for (int n = {instr.srcs[0]}; n > 0; --n) {{  /* hw loop */"
    if opcode == "loop.end":
        return "}"
    if opcode == "halt":
        return "return;"
    return f"/* {instr} */"


def emit_c(program: Program, name: str = "kernel", arrays: dict | None = None,
           output: str = "out") -> str:
    """Render a machine program as a C-like kernel function."""
    params = []
    for array in sorted(arrays or {}):
        params.append(f"const float *{array}")
    params.append(f"float *{output}")
    lines = [f"void {name}({', '.join(params)}) {{"]
    for instr in program.instrs:
        text = _emit_instr(instr)
        if text is None:
            continue
        indent = "" if text.endswith(":") else "  "
        lines.append(f"{indent}{text}")
    lines.append("}")
    return "\n".join(lines)
