"""Lowering compiled DSL terms onto the machine (the back end).

``Vec`` terms abstract data movement during equality saturation (paper
§2.1); lowering makes the movement concrete, choosing per literal:

1. all-constant lanes → one ``v.const``;
2. a contiguous ascending ``Get`` run of one array → one ``v.load``
   (``v.loadu`` when the ISA models alignment and the run is
   misaligned);
3. on a masked ISA, a ``Get`` run followed by zero padding → one
   prefix-masked ``v.load.m``;
4. arbitrary ``Get`` lanes drawn from at most two aligned windows →
   vector loads + one ``v.shuffle``;
5. identical computed lanes → ``v.splat``;
6. otherwise → compute each lane as a scalar and ``v.insert`` it —
   the expensive path the cost model steers extraction away from.

On a masked ISA a kernel whose output length is not a lane multiple
stores its final chunk under a prefix mask (``v.store.m``) — the
tail-masking that replaces the scalar epilogue.

Lowering is memoized over interned terms, so common subexpressions are
computed once (the CSE the fully-unrolled kernels rely on).
"""

from __future__ import annotations

from repro.isa.spec import IsaSpec
from repro.lang import term as T
from repro.lang.ops import OpKind
from repro.lang.term import Term
from repro.machine.program import Program, ProgramBuilder
from repro.phases.cost import masked_prefix_split


class LoweringError(ValueError):
    """The term cannot be realized on this machine."""


def _padded_len(length: int, width: int) -> int:
    return ((length + width - 1) // width) * width


class _Lowerer:
    def __init__(
        self,
        spec: IsaSpec,
        arrays: dict,
        output: str,
        output_len: int | None = None,
    ):
        self._spec = spec
        self._width = spec.vector_width
        self._arrays = dict(arrays)
        self._output = output
        self._output_len = output_len
        self._builder = ProgramBuilder()
        self._scalar_memo: dict[Term, str] = {}
        self._vector_memo: dict[Term, str] = {}
        self._mask_memo: dict[int, str] = {}
        self._kinds = {i.name: i.kind for i in spec.instructions}

    # -- entry ---------------------------------------------------------------

    def lower_program(self, program: Term) -> Program:
        if program.op != "List":
            raise LoweringError("expected a (List ...) program at top level")
        width = self._width
        tail = (self._output_len or 0) % width
        last = len(program.args) - 1
        for i, chunk in enumerate(program.args):
            if self._spec.masked and tail and i == last:
                # Tail-masking: the final chunk computes and stores
                # under a prefix mask — its padding lanes never touch
                # the vector ALU or memory, so the stored output is
                # exact without a scalar epilogue.
                reg = self.lower_vector(chunk, mask_active=tail)
                self._builder.v_store_m(
                    self._output, i * width, reg, self._prefix_mask(tail)
                )
            else:
                reg = self.lower_vector(chunk)
                self._builder.v_store(self._output, i * width, reg)
        self._builder.halt()
        return self._builder.build()

    def _prefix_mask(self, active: int) -> str:
        """The (memoized) mask register with ``active`` leading 1s."""
        reg = self._mask_memo.get(active)
        if reg is None:
            lanes = (1,) * active + (0,) * (self._width - active)
            reg = self._builder.m_const(lanes)
            self._mask_memo[active] = reg
        return reg

    # -- scalar lowering ---------------------------------------------------

    def lower_scalar(self, term: Term) -> str:
        reg = self._scalar_memo.get(term)
        if reg is not None:
            return reg
        builder = self._builder
        if T.is_const(term):
            reg = builder.s_const(float(term.payload))
        elif T.is_get(term):
            array, index = term.payload
            self._check_bounds(array, index, 1)
            reg = builder.s_load(array, index)
        elif T.is_symbol(term):
            raise LoweringError(
                f"free variable {term.payload!r}: kernels must read "
                "inputs through arrays (Get)"
            )
        elif self._kinds.get(term.op) is OpKind.SCALAR:
            args = [self.lower_scalar(arg) for arg in term.args]
            reg = builder.s_op(term.op, *args)
        else:
            raise LoweringError(
                f"operator {term.op!r} is not a scalar at this position"
            )
        self._scalar_memo[term] = reg
        return reg

    # -- vector lowering ---------------------------------------------------

    def lower_vector(
        self, term: Term, mask_active: int | None = None
    ) -> str:
        """Lower a vector-valued term, optionally under a prefix mask.

        ``mask_active`` (tail-masking, masked ISAs only) predicates the
        term's whole cone on the first ``mask_active`` lanes: vector
        ALU ops become ``v.op.m`` and ``Vec`` literals discard their
        padding lanes — sound because the caller only observes the
        active lanes.  Memoization is keyed per mask so a subterm
        shared between a full-width chunk and the tail is not
        conflated.
        """
        key = (term, mask_active)
        reg = self._vector_memo.get(key)
        if reg is not None:
            return reg
        if term.op == "Vec":
            reg = self._lower_vec_literal(term, mask_active)
        elif term.op == "Concat":
            raise LoweringError(
                "Concat produces a double-width vector; the machine is "
                f"{self._width}-wide"
            )
        elif self._kinds.get(term.op) is OpKind.VECTOR:
            args = [
                self.lower_vector(arg, mask_active) for arg in term.args
            ]
            if mask_active is None:
                reg = self._builder.v_op(term.op, *args)
            else:
                reg = self._builder.v_op_m(
                    term.op, self._prefix_mask(mask_active), *args
                )
        else:
            raise LoweringError(
                f"operator {term.op!r} is not vector-valued; the "
                "compiled program left a scalar where a vector is needed"
            )
        self._vector_memo[key] = reg
        return reg

    def _lower_vec_literal(
        self, term: Term, mask_active: int | None = None
    ) -> str:
        lanes = term.args
        if len(lanes) != self._width:
            raise LoweringError(
                f"Vec of width {len(lanes)} on a {self._width}-wide machine"
            )
        if mask_active is not None and mask_active < self._width:
            # Under a prefix mask the padding lanes are dead: extraction
            # may leave computed junk there (e.g. an unfolded `(* 0 0)`)
            # which would otherwise defeat the cheap strategies below.
            lanes = lanes[:mask_active] + (T.const(0.0),) * (
                self._width - mask_active
            )
        builder = self._builder

        if all(T.is_const(lane) for lane in lanes):
            return builder.v_const(
                tuple(float(lane.payload) for lane in lanes)
            )

        if all(T.is_get(lane) for lane in lanes):
            reg = self._try_loads_and_shuffle(lanes)
            if reg is not None:
                return reg

        if self._spec.masked:
            reg = self._try_masked_prefix_load(lanes)
            if reg is not None:
                return reg

        if all(T.is_get(lane) or T.is_const(lane) for lane in lanes):
            reg = self._try_load_and_const_shuffle(lanes)
            if reg is not None:
                return reg

        if len(set(lanes)) == 1 and not T.is_const(lanes[0]):
            return builder.v_splat(self.lower_scalar(lanes[0]))

        # General case: build the vector one lane at a time.
        reg = builder.v_const((0.0,) * self._width)
        for i, lane in enumerate(lanes):
            if T.is_const(lane) and float(lane.payload) == 0.0:
                continue  # already zero
            reg = builder.v_insert(reg, i, self.lower_scalar(lane))
        return reg

    def _try_masked_prefix_load(self, lanes: tuple[Term, ...]) -> str | None:
        """Get-run-then-zeros lanes as one prefix-masked load."""
        active = masked_prefix_split(
            [lane.op for lane in lanes],
            [lane.payload for lane in lanes],
        )
        if active is None:
            return None
        array, start = lanes[0].payload
        padded = _padded_len(self._array_len(array), self._width)
        if not (0 <= start and start + active <= padded):
            return None
        return self._builder.v_load_m(
            array, start, self._prefix_mask(active)
        )

    def _try_loads_and_shuffle(self, lanes: tuple[Term, ...]) -> str | None:
        """Cover all-Get lanes with <=2 aligned vector loads + shuffle."""
        width = self._width

        # A strictly consecutive run is one (possibly unaligned) load,
        # even when it straddles aligned windows.
        arrays = {lane.payload[0] for lane in lanes}
        if len(arrays) == 1:
            (array,) = arrays
            indices = [lane.payload[1] for lane in lanes]
            start = indices[0]
            if indices == list(range(start, start + width)):
                padded = _padded_len(self._array_len(array), width)
                if 0 <= start and start + width <= padded:
                    if self._spec.models_alignment and start % width:
                        return self._builder.v_loadu(array, start)
                    return self._builder.v_load(array, start)

        windows: list[tuple[str, int]] = []
        lane_slots: list[tuple[int, int]] = []  # (window idx, offset)
        for lane in lanes:
            array, index = lane.payload
            window = (array, (index // width) * width)
            if window not in windows:
                windows.append(window)
            lane_slots.append((windows.index(window), index % width))
        if len(windows) > 2:
            return None
        for array, start in windows:
            if not self._window_in_bounds(array, start):
                return None

        builder = self._builder
        # Contiguous single load: the common fast path.
        if len(windows) == 1:
            array, start = windows[0]
            indices = [lane.payload[1] for lane in lanes]
            if indices == list(range(start, start + width)):
                return builder.v_load(array, start)
        regs = [builder.v_load(array, start) for array, start in windows]
        if len(regs) == 1:
            regs.append(regs[0])
        pattern = tuple(
            w * width + offset for w, offset in lane_slots
        )
        return builder.v_shuffle(regs[0], regs[1], pattern)

    def _try_load_and_const_shuffle(
        self, lanes: tuple[Term, ...]
    ) -> str | None:
        """Mixed Get/const lanes: one load + one constant vector, shuffled."""
        width = self._width
        window: tuple[str, int] | None = None
        const_lanes = [0.0] * width
        pattern: list[int] = []
        for i, lane in enumerate(lanes):
            if T.is_const(lane):
                const_lanes[i] = float(lane.payload)
                pattern.append(width + i)
                continue
            array, index = lane.payload
            lane_window = (array, (index // width) * width)
            if window is None:
                window = lane_window
            elif window != lane_window:
                return None
            pattern.append(index % width)
        if window is None or not self._window_in_bounds(*window):
            return None
        builder = self._builder
        loaded = builder.v_load(window[0], window[1])
        consts = builder.v_const(tuple(const_lanes))
        return builder.v_shuffle(loaded, consts, tuple(pattern))

    # -- bounds ----------------------------------------------------------------

    def _array_len(self, array: str) -> int:
        length = self._arrays.get(array)
        if length is None:
            raise LoweringError(f"unknown input array {array!r}")
        return length

    def _check_bounds(self, array: str, index: int, span: int) -> None:
        padded = _padded_len(self._array_len(array), self._width)
        if not 0 <= index <= padded - span:
            raise LoweringError(
                f"access {array}[{index}..{index + span - 1}] out of the "
                f"padded bounds (0..{padded - 1})"
            )

    def _window_in_bounds(self, array: str, start: int) -> bool:
        padded = _padded_len(self._array_len(array), self._width)
        return 0 <= start and start + self._width <= padded


def lower_program(
    program: Term,
    spec: IsaSpec,
    arrays: dict,
    output: str = "out",
    output_len: int | None = None,
) -> Program:
    """Lower a compiled ``(List ...)`` term to a machine program.

    ``arrays`` maps input array names to their (unpadded) lengths; the
    machine memory must be padded to the vector width (the kernel
    harness does this), since vector loads read whole aligned windows.

    ``output_len`` is the *unpadded* output length; on a masked ISA
    (``spec.masked``) a non-lane-multiple length makes the final chunk
    store under a prefix mask instead of writing padding lanes.
    """
    return _Lowerer(
        spec, arrays, output, output_len=output_len
    ).lower_program(program)
