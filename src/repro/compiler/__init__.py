"""The compile-time half of Isaria, plus front end and back end.

- :mod:`repro.compiler.frontend` — symbolic evaluation of imperative
  Python kernels into scalar DSL programs (the Diospyros front end the
  paper reuses);
- :mod:`repro.compiler.compile` — the ``Compile`` algorithm of paper
  Fig. 3: phased equality saturation with greedy pruning;
- :mod:`repro.compiler.pipeline` — the online stage decomposed into
  named passes over a shared context; ``compile_term``,
  ``compile_kernel``, the baselines, and the bench harness are thin
  configurations of it;
- :mod:`repro.compiler.lowering` — lowering extracted vector DSL terms
  onto machine code, selecting data movement for ``Vec`` literals
  (vector load / shuffle / lane insert);
- :mod:`repro.compiler.codegen` — a C-with-intrinsics pretty printer
  for compiled kernels (what Diospyros emits for the Xtensa toolchain);
- :mod:`repro.compiler.diospyros` — the hand-written-rules baseline
  compiler Diospyros represents in the evaluation.
"""

from repro.compiler.frontend import (
    SymScalar,
    SymArray,
    trace_kernel,
    program_from_outputs,
    KernelProgram,
)
from repro.compiler.compile import (
    CompileOptions,
    CompileReport,
    PassReport,
    RoundReport,
    compile_term,
)
from repro.compiler.pipeline import (
    CompilationContext,
    KernelCompileError,
    Pass,
    Pipeline,
    baseline_kernel_pipeline,
    compile_many,
    kernel_pipeline,
    term_pipeline,
)
from repro.compiler.lowering import LoweringError, lower_program
from repro.compiler.codegen import emit_c
from repro.compiler.diospyros import (
    diospyros_rules,
    DiospyrosCompiler,
)

__all__ = [
    "SymScalar",
    "SymArray",
    "trace_kernel",
    "program_from_outputs",
    "KernelProgram",
    "CompileOptions",
    "CompileReport",
    "PassReport",
    "RoundReport",
    "compile_term",
    "CompilationContext",
    "KernelCompileError",
    "Pass",
    "Pipeline",
    "baseline_kernel_pipeline",
    "compile_many",
    "kernel_pipeline",
    "term_pipeline",
    "LoweringError",
    "lower_program",
    "emit_c",
    "diospyros_rules",
    "DiospyrosCompiler",
]
