"""Isaria reproduction: automatic generation of vectorizing compilers
for customizable digital signal processors (ASPLOS 2024).

Public API highlights:

- :class:`repro.isa.IsaSpec` / :func:`repro.isa.fusion_g3_spec` — the
  executable ISA specification (Isaria's input);
- :class:`repro.core.IsariaFramework` — the offline workflow: rule
  synthesis, phase discovery, compiler generation;
- :class:`repro.core.GeneratedCompiler` — the generated compiler:
  scalar DSL program in, vectorized machine code out;
- :mod:`repro.kernels` — the benchmark kernel suite (2D convolution,
  matrix multiply, QR decomposition, quaternion product);
- :mod:`repro.machine` — the cycle-level DSP simulator the evaluation
  measures on;
- :mod:`repro.obs` — structured tracing of the compile pipeline
  (enable with ``REPRO_TRACE``; render with
  ``python -m repro.tools.trace_report``).

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
