"""The abstract cost model (paper Definitions 1-2).

The cost function maps every DSL term — including rule *patterns*,
where wildcards are costed as unit leaves — to a positive number
approximating cycles on the target DSP.  It is strictly monotonic
(every node contributes a positive amount beyond its children), which
the paper requires so extraction never has to consider zero-cost
variations.

The structure mirrors §3.2's discussion of recursive ``Vec`` costs: a
``Vec`` built from loadable values (a contiguous ``Get`` run, all
constants, or plain leaves) is cheap, while a ``Vec`` whose lanes are
*computed* scalars must be assembled one lane at a time through a
scalar register — modelled as a large per-lane cost.  This asymmetry
is what gives scalar→vector compilation rules their huge cost
differential (Fig. 8's cluster at ~4040).
"""

from __future__ import annotations

from repro.isa.spec import IsaSpec
from repro.lang import term as T
from repro.lang.term import Term


class CostModel:
    """Definition 1's cost function ``C``, derived from an ISA spec."""

    def __init__(self, spec: IsaSpec):
        self._spec = spec
        self._op_costs = spec.op_costs()
        self.leaf_cost = spec.leaf_cost
        self.vec_lane_literal_cost = spec.vec_lane_literal_cost
        self.vec_lane_compute_cost = spec.vec_lane_compute_cost
        self.vec_contiguous_cost = spec.vec_contiguous_cost
        self.concat_cost = spec.concat_cost
        self.list_cost = 1.0
        # Family extensions (default-off; see repro.isa.spec).
        self.masked = spec.masked
        self.mask_cost = spec.mask_cost
        self.vec_unaligned_cost = spec.vec_unaligned_cost
        self._width = spec.vector_width

    # -- the extraction interface (repro.egraph.extract.CostFunction) ----

    def node_cost(self, op: str, payload, child_terms: tuple[Term, ...]):
        """Cost contribution of one node given its chosen children."""
        if op in ("Const", "Symbol", "Get", "Wild"):
            return self.leaf_cost
        if op == "Vec":
            return self._vec_cost(child_terms)
        if op == "Concat":
            return self.concat_cost
        if op == "List":
            return self.list_cost
        base = self._op_costs.get(op)
        if base is None:
            raise KeyError(
                f"cost model for ISA {self._spec.name!r} has no entry "
                f"for operator {op!r}"
            )
        return base

    def node_cost_heads(self, op: str, payload, child_heads) -> float:
        """Fast-path cost for extraction: children as (op, payload).

        The structural ``Vec`` cost only needs each lane's head — leaf
        kind and Get payload — so extraction can avoid materializing
        candidate terms.
        """
        if op == "Vec":
            return self._vec_cost_heads(child_heads)
        if op in ("Const", "Symbol", "Get", "Wild"):
            return self.leaf_cost
        if op == "Concat":
            return self.concat_cost
        if op == "List":
            return self.list_cost
        base = self._op_costs.get(op)
        if base is None:
            raise KeyError(
                f"cost model for ISA {self._spec.name!r} has no entry "
                f"for operator {op!r}"
            )
        return base

    def _vec_cost_heads(self, lane_heads) -> float:
        leaf_ops = ("Const", "Symbol", "Get", "Wild")
        if lane_heads and all(op in leaf_ops for op, _ in lane_heads):
            if all(op == "Const" for op, _ in lane_heads):
                return self.vec_contiguous_cost
            if self._heads_contiguous(lane_heads):
                return self._load_cost(lane_heads[0][1][1])
            if self.masked and self._heads_masked_prefix(lane_heads):
                return self.vec_contiguous_cost + self.mask_cost
            return self.vec_lane_literal_cost * len(lane_heads)
        cost = 0.0
        for op, _payload in lane_heads:
            if op in leaf_ops:
                cost += self.vec_lane_literal_cost
            else:
                cost += self.vec_lane_compute_cost
        return cost

    @staticmethod
    def _heads_contiguous(lane_heads) -> bool:
        if not all(op == "Get" for op, _ in lane_heads):
            return False
        arrays = {payload[0] for _, payload in lane_heads}
        if len(arrays) != 1:
            return False
        indices = [payload[1] for _, payload in lane_heads]
        return indices == list(
            range(indices[0], indices[0] + len(indices))
        )

    def _load_cost(self, start: int) -> float:
        """Cost of one contiguous load starting at array index ``start``.

        Alignment-blind ISAs charge ``vec_contiguous_cost`` regardless;
        alignment-modeling ones (``vec_unaligned_cost`` set) charge
        more when the run does not start on a register-width boundary.
        """
        if self.vec_unaligned_cost is not None and start % self._width:
            return self.vec_unaligned_cost
        return self.vec_contiguous_cost

    def _heads_masked_prefix(self, lane_heads) -> bool:
        split = masked_prefix_split(
            [op for op, _ in lane_heads],
            [payload for _, payload in lane_heads],
        )
        return split is not None

    # -- Definition 1 ------------------------------------------------------

    def term_cost(self, term: Term) -> float:
        """Total cost ``C(term)``; defined on patterns too.

        Tree semantics (a shared subexpression is paid once per
        occurrence, matching what extraction computes), evaluated
        DAG-efficiently.
        """
        return T.fold_term(
            term,
            lambda t, child_costs: (
                self.node_cost(t.op, t.payload, t.args) + sum(child_costs)
            ),
        )

    __call__ = term_cost

    # -- Vec structure ---------------------------------------------------------

    def _vec_cost(self, lanes: tuple[Term, ...]) -> float:
        if lanes and all(T.is_leaf(lane) for lane in lanes):
            if all(T.is_const(lane) for lane in lanes):
                return self.vec_contiguous_cost
            if self._is_contiguous_load(lanes):
                return self._load_cost(lanes[0].payload[1])
            if self.masked and self._is_masked_prefix(lanes):
                return self.vec_contiguous_cost + self.mask_cost
            return self.vec_lane_literal_cost * len(lanes)
        cost = 0.0
        for lane in lanes:
            if T.is_leaf(lane):
                cost += self.vec_lane_literal_cost
            else:
                cost += self.vec_lane_compute_cost
        return cost

    @staticmethod
    def _is_contiguous_load(lanes: tuple[Term, ...]) -> bool:
        """True when the lanes are one ascending Get run of one array."""
        if not all(T.is_get(lane) for lane in lanes):
            return False
        arrays = {lane.payload[0] for lane in lanes}
        if len(arrays) != 1:
            return False
        indices = [lane.payload[1] for lane in lanes]
        return indices == list(range(indices[0], indices[0] + len(indices)))

    def _is_masked_prefix(self, lanes: tuple[Term, ...]) -> bool:
        split = masked_prefix_split(
            [lane.op for lane in lanes],
            [lane.payload for lane in lanes],
        )
        return split is not None


def masked_prefix_split(ops: list, payloads: list):
    """Lane count of a ``Get``-run-then-zero-``Const``-tail pattern.

    This is the shape a masked ISA serves with one prefix-masked load
    (``v.load.m``): a contiguous ascending run of one array's ``Get``s
    in lanes ``0..k-1`` and literal-zero padding in lanes ``k..W-1``.
    Returns ``k``, or ``None`` when the lanes are not that shape.
    """
    k = 0
    while k < len(ops) and ops[k] == "Get":
        k += 1
    if k == 0 or k == len(ops):
        return None
    if any(op != "Const" or payload != 0 for op, payload in
           zip(ops[k:], payloads[k:])):
        return None
    arrays = {payload[0] for payload in payloads[:k]}
    if len(arrays) != 1:
        return None
    indices = [payload[1] for payload in payloads[:k]]
    if indices != list(range(indices[0], indices[0] + k)):
        return None
    return k


def check_strict_monotonicity(
    model: CostModel, terms: list[Term]
) -> list[str]:
    """Definition 2 sanity check over sample terms.

    Returns human-readable violations (empty = monotonic on the
    sample).  The model is monotonic by construction — every
    ``node_cost`` is positive — so this is a guard against future cost
    edits, exercised by the test suite.
    """
    violations: list[str] = []
    for term in terms:
        parent_cost = model.term_cost(term)
        for arg in term.args:
            child_cost = model.term_cost(arg)
            if not child_cost < parent_cost:
                violations.append(
                    f"C({arg!r}) = {child_cost} !< C({term!r}) = "
                    f"{parent_cost}"
                )
    return violations
