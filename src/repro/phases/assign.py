"""Cost-based phase assignment (paper §3.2, Definitions 3-4).

Each candidate rewrite rule is assigned to one of three phases by two
metrics computed from the abstract cost model:

1. rules with cost differential ``CD(P ~> Q) > α`` are **compilation**
   rules — they lower cost dramatically, which in this cost model only
   scalar→vector transitions do;
2. of the rest, rules with aggregate cost ``CA(P ~> Q) > β`` are
   **expansion** rules (both sides still scalar-heavy), and the rest
   are **optimization** rules (both sides vector-cheap).

The default α/β come from the paper's guidance: β sits between the
cost of a scalar addition pattern and a vector addition pattern, and α
exceeds the largest cost difference any scalar↔scalar rule can have.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.egraph.rewrite import Rewrite
from repro.isa.spec import IsaSpec
from repro.obs import current_tracer
from repro.phases.cost import CostModel
from repro.phases.ruleset import PhasedRuleSet


class Phase(enum.Enum):
    """The three rule phases of §3.2."""

    EXPANSION = "expansion"
    COMPILATION = "compilation"
    OPTIMIZATION = "optimization"


@dataclass(frozen=True)
class PhaseParams:
    """The α/β thresholds of §3.2 (swept in the Fig. 9 experiment)."""

    alpha: float
    beta: float


def cost_differential(model: CostModel, rule: Rewrite) -> float:
    """Definition 3: ``CD(P ~> Q) = C(P) - C(Q)``."""
    return model.term_cost(rule.lhs) - model.term_cost(rule.rhs)


def aggregate_cost(model: CostModel, rule: Rewrite) -> float:
    """Definition 4: ``CA(P ~> Q) = C(P) + C(Q)``."""
    return model.term_cost(rule.lhs) + model.term_cost(rule.rhs)


def assign_phase(
    model: CostModel, rule: Rewrite, params: PhaseParams
) -> Phase:
    """The paper's two-step assignment."""
    if cost_differential(model, rule) > params.alpha:
        return Phase.COMPILATION
    if aggregate_cost(model, rule) > params.beta:
        return Phase.EXPANSION
    return Phase.OPTIMIZATION


def default_params(spec: IsaSpec) -> PhaseParams:
    """α/β selected by inspecting the cost model (paper §3.2, §5.5).

    - α must exceed the cost differential of any scalar↔scalar rule; the
      most lopsided such rule erases two scalar operations (e.g.
      ``(neg (neg a)) ~> a``), so take ``2 * max scalar op cost + 1``.
      Compilation rules clear this easily — eliminating a computed
      ``Vec`` lane saves ~``vec_lane_compute_cost``.
    - β must separate scalar rules from vector rules by aggregate cost;
      the cheapest scalar pattern is one scalar op over leaves, so put β
      at ``min scalar op cost + 2 leaves`` (the cost of ``(+ ?a ?b)``),
      which every scalar-containing rule's aggregate strictly exceeds
      while vector↔vector rule aggregates stay below.
    """
    scalar_costs = [i.base_cost for i in spec.scalar_instructions()]
    if not scalar_costs:
        raise ValueError("ISA spec has no scalar instructions")
    alpha = 2.0 * max(scalar_costs) + 1.0
    beta = min(scalar_costs) + 2.0 * spec.leaf_cost
    return PhaseParams(alpha=alpha, beta=beta)


def assign_phases(
    model: CostModel,
    rules: list[Rewrite],
    params: PhaseParams,
) -> PhasedRuleSet:
    """Split candidate rules into the three phases.

    Within each phase, rules are emitted in canonical order: highest
    cost differential first (most general LHS, then name, on ties).
    The saturation runner applies rules in list order, and under
    budget-capped regimes the e-graph's growth trajectory — and so the
    wall-clock to close — depends on that order; making it a function
    of the cost model alone keeps compile behaviour independent of the
    accidental order synthesis or pruning produced the rules in.

    When tracing is enabled (see :mod:`repro.obs`) emits an
    ``assign_phases`` span with the α/β thresholds and the rule count
    that landed in each phase.
    """
    with current_tracer().span(
        "assign_phases", n_rules=len(rules),
        alpha=params.alpha, beta=params.beta,
    ) as span:
        expansion: list[Rewrite] = []
        compilation: list[Rewrite] = []
        optimization: list[Rewrite] = []
        for rule in rules:
            phase = assign_phase(model, rule, params)
            if phase is Phase.COMPILATION:
                compilation.append(rule)
            elif phase is Phase.EXPANSION:
                expansion.append(rule)
            else:
                optimization.append(rule)
        span.add(
            n_expansion=len(expansion),
            n_compilation=len(compilation),
            n_optimization=len(optimization),
        )

    def canonical(phase_rules: list[Rewrite]) -> tuple[Rewrite, ...]:
        from repro.lang.term import term_size

        return tuple(sorted(
            phase_rules,
            key=lambda r: (
                -cost_differential(model, r),
                term_size(r.lhs),
                r.name,
            ),
        ))

    return PhasedRuleSet(
        expansion=canonical(expansion),
        compilation=canonical(compilation),
        optimization=canonical(optimization),
        params=params,
    )
