"""Phase discovery: the cost model and cost-based rule classification.

Implements paper §3.2: a strictly monotonic abstract cost function over
DSL terms (Definitions 1-2), the cost differential and aggregate cost
of a rewrite rule (Definitions 3-4), and the two-step α/β assignment of
every synthesized rule to the expansion, compilation, or optimization
phase.
"""

from repro.phases.cost import CostModel, check_strict_monotonicity
from repro.phases.assign import (
    Phase,
    PhaseParams,
    cost_differential,
    aggregate_cost,
    assign_phase,
    assign_phases,
    default_params,
)
from repro.phases.ruleset import PhasedRuleSet

__all__ = [
    "CostModel",
    "check_strict_monotonicity",
    "Phase",
    "PhaseParams",
    "cost_differential",
    "aggregate_cost",
    "assign_phase",
    "assign_phases",
    "default_params",
    "PhasedRuleSet",
]
