"""The phased rule set a generated compiler carries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.egraph.rewrite import Rewrite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.phases.assign import PhaseParams


@dataclass(frozen=True)
class PhasedRuleSet:
    """Candidate rules split into the three §3.2 phases."""

    expansion: tuple[Rewrite, ...]
    compilation: tuple[Rewrite, ...]
    optimization: tuple[Rewrite, ...]
    params: "PhaseParams"

    def __len__(self) -> int:
        return (
            len(self.expansion)
            + len(self.compilation)
            + len(self.optimization)
        )

    def __iter__(self) -> Iterator[Rewrite]:
        yield from self.expansion
        yield from self.compilation
        yield from self.optimization

    def all_rules(self) -> list[Rewrite]:
        """Every rule, ignoring phases (the §5.2 no-phasing ablation)."""
        return list(self)

    def counts(self) -> dict[str, int]:
        """Rule count per phase."""
        return {
            "expansion": len(self.expansion),
            "compilation": len(self.compilation),
            "optimization": len(self.optimization),
        }

    def summary(self) -> str:
        """One-line human summary: counts plus the α/β used."""
        counts = self.counts()
        total = len(self)
        return (
            f"{total} rules: {counts['expansion']} expansion, "
            f"{counts['compilation']} compilation, "
            f"{counts['optimization']} optimization "
            f"(alpha={self.params.alpha}, beta={self.params.beta})"
        )
