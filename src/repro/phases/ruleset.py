"""The phased rule set a generated compiler carries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.egraph.rewrite import Rewrite, parse_rewrite

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.phases.assign import PhaseParams

_PHASE_NAMES = ("expansion", "compilation", "optimization")


@dataclass(frozen=True)
class PhasedRuleSet:
    """Candidate rules split into the three §3.2 phases."""

    expansion: tuple[Rewrite, ...]
    compilation: tuple[Rewrite, ...]
    optimization: tuple[Rewrite, ...]
    params: "PhaseParams"

    def __len__(self) -> int:
        return (
            len(self.expansion)
            + len(self.compilation)
            + len(self.optimization)
        )

    def __iter__(self) -> Iterator[Rewrite]:
        yield from self.expansion
        yield from self.compilation
        yield from self.optimization

    def all_rules(self) -> list[Rewrite]:
        """Every rule, ignoring phases (the §5.2 no-phasing ablation)."""
        return list(self)

    def counts(self) -> dict[str, int]:
        """Rule count per phase."""
        return {
            "expansion": len(self.expansion),
            "compilation": len(self.compilation),
            "optimization": len(self.optimization),
        }

    def summary(self) -> str:
        """One-line human summary: counts plus the α/β used."""
        counts = self.counts()
        total = len(self)
        return (
            f"{total} rules: {counts['expansion']} expansion, "
            f"{counts['compilation']} compilation, "
            f"{counts['optimization']} optimization "
            f"(alpha={self.params.alpha}, beta={self.params.beta})"
        )

    def to_text(self) -> str:
        """Serialize rules *with their phase membership* to plain text.

        Offline phase assignment is part of the once-per-ISA product
        (paper §5.3), so persisting it matters: a compiler restored
        from this text (see :meth:`from_text`) does not need to re-run
        ``assign_phases``.  One header line carries the α/β used; each
        rule line is ``phase<TAB>name<TAB>lhs => rhs`` in phase order.
        """
        lines = [f"params\t{self.params.alpha!r}\t{self.params.beta!r}"]
        for phase in _PHASE_NAMES:
            for rule in getattr(self, phase):
                lines.append(f"{phase}\t{rule.name}\t{rule}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "PhasedRuleSet":
        """Parse text produced by :meth:`to_text`.

        Raises ``ValueError`` on any malformed line, unknown phase
        name, or missing ``params`` header — corrupt artifacts must be
        detected, not silently half-loaded.
        """
        from repro.phases.assign import PhaseParams

        params: PhaseParams | None = None
        phases: dict[str, list[Rewrite]] = {p: [] for p in _PHASE_NAMES}
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split("\t")
            if fields[0] == "params":
                if len(fields) != 3:
                    raise ValueError(
                        f"line {lineno}: malformed params line {line!r}"
                    )
                params = PhaseParams(
                    alpha=float(fields[1]), beta=float(fields[2])
                )
                continue
            if len(fields) != 3:
                raise ValueError(
                    f"line {lineno}: malformed rule line {line!r}"
                )
            phase, name, body = fields
            if phase not in phases:
                raise ValueError(
                    f"line {lineno}: unknown phase {phase!r}"
                )
            phases[phase].append(parse_rewrite(name, body))
        if params is None:
            raise ValueError("phased ruleset text lacks a params line")
        return cls(
            expansion=tuple(phases["expansion"]),
            compilation=tuple(phases["compilation"]),
            optimization=tuple(phases["optimization"]),
            params=params,
        )
