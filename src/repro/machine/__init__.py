"""A Fusion-G3-like DSP machine model with a cycle-level simulator.

The paper measures kernels on Tensilica's (closed-source) cycle-level
simulator.  This package is the synthetic equivalent: a small VLIW-ish
DSP with

- a scalar unit and a ``W``-wide vector unit (W = the ISA's width);
- memory holding named arrays, with contiguous vector loads/stores;
- explicit data-movement instructions (lane insert, two-source
  shuffle) — the expensive path that the Isaria cost model penalizes;
- branches, so library-style loop kernels (the Nature baseline) run
  on the same machine as fully unrolled compiled kernels.

The simulator is functional *and* timed: it computes real values (so
every benchmark doubles as a correctness check against numpy) and
counts cycles with an in-order dual-issue model with a register
scoreboard.
"""

from repro.machine.program import (
    Instr,
    Program,
    ProgramBuilder,
    UNITS,
)
from repro.machine.schedule import schedule_program
from repro.machine.simulator import Machine, SimResult, SimulationError

__all__ = [
    "Instr",
    "Program",
    "ProgramBuilder",
    "UNITS",
    "schedule_program",
    "Machine",
    "SimResult",
    "SimulationError",
]
