"""Post-lowering instruction scheduling (list scheduling).

The machine is an in-order dual-issue VLIW: without scheduling, a
dependent chain (e.g. the accumulating MACs a convolution compiles to)
stalls on every result.  This pass reorders instructions within basic
blocks to hide latency, the job the Xtensa toolchain's scheduler does
for the paper's kernels.  It is applied uniformly to every measured
system (scalar, SLP, Nature, Diospyros, Isaria) so comparisons stay
fair.

Algorithm: classic list scheduling per basic block —

1. split at labels, branches, and ``halt`` (control order preserved);
2. build the dependence DAG: register RAW/WAR/WAW edges, plus
   conservative memory edges (a store orders against every prior
   access to the same array; loads may reorder with loads);
3. repeatedly emit the ready instruction with the longest
   latency-weighted critical path to the block's end.

The result computes exactly the same values (the dependence DAG is
respected), which the test-suite cross-checks on random kernels.
"""

from __future__ import annotations

from repro.machine.program import Instr, Program
from repro.obs import current_tracer

_BARRIERS = {"label", "jump", "bnez", "blt", "halt", "loop.begin", "loop.end"}


def _blocks(program: Program):
    """Yield (is_schedulable, instructions) runs."""
    run: list[Instr] = []
    for instr in program.instrs:
        if instr.opcode in _BARRIERS:
            if run:
                yield True, run
                run = []
            yield False, [instr]
        else:
            run.append(instr)
    if run:
        yield True, run


def _memory_key(instr: Instr):
    if instr.opcode in ("s.load", "v.load", "v.loadu", "v.load.m"):
        return ("r", instr.array)
    if instr.opcode in ("s.store", "v.store", "v.store.m"):
        return ("w", instr.array)
    return None


def _reads(instr: Instr) -> tuple:
    return instr.srcs


def _writes(instr: Instr):
    return instr.dst


def _schedule_block(block: list[Instr], latency_of) -> list[Instr]:
    n = len(block)
    if n <= 2:
        return block

    successors: list[set[int]] = [set() for _ in range(n)]
    n_preds = [0] * n

    def add_edge(src: int, dst: int) -> None:
        if dst not in successors[src]:
            successors[src].add(dst)
            n_preds[dst] += 1

    last_write: dict[str, int] = {}
    readers_since_write: dict[str, list[int]] = {}
    last_store: dict[str, int] = {}
    accesses: dict[str, list[int]] = {}

    for i, instr in enumerate(block):
        # Register dependences.
        for src in _reads(instr):
            if src in last_write:
                add_edge(last_write[src], i)  # RAW
            readers_since_write.setdefault(src, []).append(i)
        dst = _writes(instr)
        if dst is not None:
            if dst in last_write:
                add_edge(last_write[dst], i)  # WAW
            for reader in readers_since_write.get(dst, ()):
                if reader != i:
                    add_edge(reader, i)  # WAR
            last_write[dst] = i
            readers_since_write[dst] = []
        # Memory dependences (conservative, per array).
        key = _memory_key(instr)
        if key is not None:
            kind, array = key
            if kind == "w":
                for prior in accesses.get(array, ()):
                    add_edge(prior, i)
            elif array in last_store:
                add_edge(last_store[array], i)
            accesses.setdefault(array, []).append(i)
            if kind == "w":
                last_store[array] = i

    # Priority: latency-weighted path to the block end.
    priority = [0] * n
    for i in range(n - 1, -1, -1):
        tail = max(
            (priority[j] for j in successors[i]), default=0
        )
        priority[i] = latency_of(block[i]) + tail

    ready = [i for i in range(n) if n_preds[i] == 0]
    order: list[Instr] = []
    while ready:
        # Highest priority first; original order breaks ties for
        # determinism and locality.
        ready.sort(key=lambda i: (-priority[i], i))
        chosen = ready.pop(0)
        order.append(block[chosen])
        for succ in successors[chosen]:
            n_preds[succ] -= 1
            if n_preds[succ] == 0:
                ready.append(succ)
    assert len(order) == n, "scheduling dropped instructions"
    return order


def schedule_program(program: Program, machine) -> Program:
    """List-schedule ``program`` for ``machine`` (a
    :class:`~repro.machine.simulator.Machine`).

    When tracing is enabled (see :mod:`repro.obs`) emits a
    ``schedule`` span with the instruction and block counts.
    """
    with current_tracer().span(
        "schedule", n_instructions=len(program.instrs)
    ) as span:
        latency_of = machine.instruction_latency
        out: list[Instr] = []
        n_blocks = 0
        for schedulable, instrs in _blocks(program):
            if schedulable:
                n_blocks += 1
                out.extend(_schedule_block(instrs, latency_of))
            else:
                out.extend(instrs)
        span.add(n_blocks=n_blocks)
    return Program(out)
