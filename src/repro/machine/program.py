"""Machine programs: instruction encoding and a builder.

Registers are virtual and unbounded, named ``s<N>`` (scalar) and
``v<N>`` (vector); the simulator scoreboard tracks readiness per name.
Memory is a set of named arrays; addressing is ``array[offset]`` or
``array[index_reg + offset]`` for loops.

Opcodes (unit in parentheses):

====================  =======================================  =========
opcode                meaning                                  unit
====================  =======================================  =========
``s.const``           dst <- imm                               mem
``s.load``            dst <- array[offset (+ idx reg)]         mem
``s.store``           array[offset (+ idx reg)] <- src         mem
``s.op``              dst <- op(srcs...)                       scalar
``v.const``           dst <- imm (tuple of lanes)              mem
``v.splat``           dst lanes all <- scalar src              vector
``v.load``            dst <- array[offset .. offset+W-1]       mem
``v.store``           array[offset ..] <- src vector           mem
``v.op``              dst <- lanewise op(srcs...)              vector
``v.insert``          dst <- src_vec with lane imm = scalar    vector
``v.extract``         dst scalar <- src_vec lane imm           vector
``v.shuffle``         dst lanes <- concat(a, b)[pattern]       vector
``v.loadu``           unaligned vector load (slower)           mem
``m.const``           mask dst <- imm (tuple of 0/1 lanes)     vector
``v.load.m``          masked load: active lanes only           mem
``v.store.m``         masked store: active lanes only          mem
``v.op.m``            masked lanewise op (inactive -> 0.0)     vector
``label``             branch target marker                     —
``jump``              unconditional branch                     control
``bnez``              branch if src != 0                       control
``blt``               branch if src0 < src1                    control
``loop.begin``        hardware loop: repeat body src times     control
``loop.end``          hardware loop end (zero-overhead)        control
``halt``              stop                                     control
====================  =======================================  =========

``loop.begin``/``loop.end`` model the zero-overhead loop hardware of
Tensilica-class DSPs: the backedge costs no branch penalty.  The trip
count register is read once at loop entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Instr:
    opcode: str
    dst: str | None = None
    srcs: tuple[str, ...] = ()
    op: str | None = None
    array: str | None = None
    offset: int = 0
    imm: object = None
    target: str | None = None

    def __str__(self) -> str:
        parts = [self.opcode]
        if self.dst:
            parts.append(self.dst)
        if self.op:
            parts.append(f"[{self.op}]")
        parts.extend(self.srcs)
        if self.array is not None:
            idx = f"+{self.srcs[-1]}" if self.opcode.endswith("idx") else ""
            parts.append(f"{self.array}[{self.offset}{idx}]")
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.target is not None:
            parts.append(f"->{self.target}")
        return " ".join(str(p) for p in parts)


# Functional unit per opcode; the simulator dual-issues instructions
# that occupy *different* units in the same cycle.
UNITS: dict[str, str] = {
    "s.const": "mem",
    "s.load": "mem",
    "s.store": "mem",
    "s.op": "scalar",
    "v.const": "mem",
    "v.splat": "vector",
    "v.load": "mem",
    "v.store": "mem",
    "v.op": "vector",
    "v.insert": "vector",
    "v.extract": "vector",
    "v.shuffle": "vector",
    "v.loadu": "mem",
    "m.const": "vector",
    "v.load.m": "mem",
    "v.store.m": "mem",
    "v.op.m": "vector",
    "jump": "control",
    "bnez": "control",
    "blt": "control",
    "loop.begin": "control",
    "loop.end": "control",
    "halt": "control",
}


@dataclass
class Program:
    """A straight-line-or-looping machine program."""

    instrs: list[Instr] = field(default_factory=list)

    def labels(self) -> dict[str, int]:
        """Label name → instruction index (duplicates rejected)."""
        table: dict[str, int] = {}
        for i, instr in enumerate(self.instrs):
            if instr.opcode == "label":
                if instr.target in table:
                    raise ValueError(f"duplicate label {instr.target!r}")
                table[instr.target] = i
        return table

    def __len__(self) -> int:
        return len(self.instrs)

    def __str__(self) -> str:
        return "\n".join(str(i) for i in self.instrs)

    def loop_matches(self) -> dict[int, int]:
        """Map each ``loop.begin`` index to its ``loop.end`` index."""
        matches: dict[int, int] = {}
        stack: list[int] = []
        for i, instr in enumerate(self.instrs):
            if instr.opcode == "loop.begin":
                stack.append(i)
            elif instr.opcode == "loop.end":
                if not stack:
                    raise ValueError("loop.end without loop.begin")
                matches[stack.pop()] = i
        if stack:
            raise ValueError("unterminated loop.begin")
        return matches

    def count(self, opcode_prefix: str) -> int:
        """Number of instructions whose opcode starts with the prefix."""
        return sum(
            1 for i in self.instrs if i.opcode.startswith(opcode_prefix)
        )


class ProgramBuilder:
    """Incrementally assembles a :class:`Program` with fresh registers."""

    def __init__(self):
        self.program = Program()
        self._next_scalar = 0
        self._next_vector = 0
        self._next_mask = 0
        self._next_label = 0

    # -- registers and labels ------------------------------------------------

    def scalar_reg(self) -> str:
        """Allocate a fresh virtual scalar register name."""
        reg = f"s{self._next_scalar}"
        self._next_scalar += 1
        return reg

    def vector_reg(self) -> str:
        """Allocate a fresh virtual vector register name."""
        reg = f"v{self._next_vector}"
        self._next_vector += 1
        return reg

    def mask_reg(self) -> str:
        """Allocate a fresh virtual mask register name."""
        reg = f"m{self._next_mask}"
        self._next_mask += 1
        return reg

    def fresh_label(self, hint: str = "L") -> str:
        """Allocate a unique label name (``hint`` + counter)."""
        label = f"{hint}{self._next_label}"
        self._next_label += 1
        return label

    # -- emission --------------------------------------------------------------

    def emit(self, instr: Instr) -> Instr:
        """Append a raw instruction; returns it for convenience."""
        self.program.instrs.append(instr)
        return instr

    def s_const(self, value) -> str:
        """``dst <- value``; returns the fresh scalar register."""
        dst = self.scalar_reg()
        self.emit(Instr("s.const", dst=dst, imm=value))
        return dst

    def s_load(self, array: str, offset: int, index: str | None = None) -> str:
        """``dst <- array[offset (+ index)]``; returns the register."""
        dst = self.scalar_reg()
        srcs = (index,) if index else ()
        self.emit(Instr("s.load", dst=dst, srcs=srcs, array=array,
                        offset=offset))
        return dst

    def s_store(self, array: str, offset: int, src: str,
                index: str | None = None) -> None:
        """``array[offset (+ index)] <- src`` (scalar store)."""
        srcs = (src, index) if index else (src,)
        self.emit(Instr("s.store", srcs=srcs, array=array, offset=offset))

    def s_op(self, op: str, *srcs: str) -> str:
        """Scalar ALU op into a fresh register; returns it."""
        dst = self.scalar_reg()
        self.emit(Instr("s.op", dst=dst, srcs=tuple(srcs), op=op))
        return dst

    def s_op_into(self, dst: str, op: str, *srcs: str) -> str:
        """Scalar op writing an existing register (loop accumulators)."""
        self.emit(Instr("s.op", dst=dst, srcs=tuple(srcs), op=op))
        return dst

    def v_const(self, lanes: tuple) -> str:
        """``dst <- lanes`` (vector immediate); returns the register."""
        dst = self.vector_reg()
        self.emit(Instr("v.const", dst=dst, imm=tuple(lanes)))
        return dst

    def v_splat(self, src: str) -> str:
        """Broadcast scalar ``src`` to every lane of a fresh vector."""
        dst = self.vector_reg()
        self.emit(Instr("v.splat", dst=dst, srcs=(src,)))
        return dst

    def v_load(self, array: str, offset: int, index: str | None = None) -> str:
        """Aligned vector load of W lanes starting at ``offset``."""
        dst = self.vector_reg()
        srcs = (index,) if index else ()
        self.emit(Instr("v.load", dst=dst, srcs=srcs, array=array,
                        offset=offset))
        return dst

    def v_store(self, array: str, offset: int, src: str,
                index: str | None = None) -> None:
        """Aligned vector store of ``src``'s lanes at ``offset``."""
        srcs = (src, index) if index else (src,)
        self.emit(Instr("v.store", srcs=srcs, array=array, offset=offset))

    def v_op(self, op: str, *srcs: str) -> str:
        """Lane-wise vector op into a fresh register; returns it."""
        dst = self.vector_reg()
        self.emit(Instr("v.op", dst=dst, srcs=tuple(srcs), op=op))
        return dst

    def v_op_into(self, dst: str, op: str, *srcs: str) -> str:
        """Vector op writing an existing register (loop accumulators)."""
        self.emit(Instr("v.op", dst=dst, srcs=tuple(srcs), op=op))
        return dst

    def v_insert(self, vec: str, lane: int, scalar: str) -> str:
        """Copy of ``vec`` with ``lane`` replaced by ``scalar``."""
        dst = self.vector_reg()
        self.emit(Instr("v.insert", dst=dst, srcs=(vec, scalar), imm=lane))
        return dst

    def v_extract(self, vec: str, lane: int) -> str:
        """Read one lane of ``vec`` into a fresh scalar register."""
        dst = self.scalar_reg()
        self.emit(Instr("v.extract", dst=dst, srcs=(vec,), imm=lane))
        return dst

    def v_shuffle(self, a: str, b: str, pattern: tuple[int, ...]) -> str:
        """Gather lanes from ``concat(a, b)`` by index ``pattern``."""
        dst = self.vector_reg()
        self.emit(Instr("v.shuffle", dst=dst, srcs=(a, b),
                        imm=tuple(pattern)))
        return dst

    def v_loadu(self, array: str, offset: int,
                index: str | None = None) -> str:
        """Unaligned vector load (alignment-modeling ISAs only)."""
        dst = self.vector_reg()
        srcs = (index,) if index else ()
        self.emit(Instr("v.loadu", dst=dst, srcs=srcs, array=array,
                        offset=offset))
        return dst

    def m_const(self, lanes: tuple) -> str:
        """``dst <- lanes`` (mask immediate of 0/1s); returns the reg."""
        dst = self.mask_reg()
        self.emit(Instr("m.const", dst=dst, imm=tuple(lanes)))
        return dst

    def v_load_m(self, array: str, offset: int, mask: str,
                 index: str | None = None) -> str:
        """Masked vector load: inactive lanes read as 0.0."""
        dst = self.vector_reg()
        srcs = (mask, index) if index else (mask,)
        self.emit(Instr("v.load.m", dst=dst, srcs=srcs, array=array,
                        offset=offset))
        return dst

    def v_store_m(self, array: str, offset: int, src: str, mask: str,
                  index: str | None = None) -> None:
        """Masked vector store: only active lanes touch memory."""
        srcs = (src, mask, index) if index else (src, mask)
        self.emit(Instr("v.store.m", srcs=srcs, array=array,
                        offset=offset))

    def v_op_m(self, op: str, mask: str, *srcs: str) -> str:
        """Masked lane-wise op: inactive lanes produce 0.0."""
        dst = self.vector_reg()
        self.emit(Instr("v.op.m", dst=dst, srcs=(mask,) + tuple(srcs),
                        op=op))
        return dst

    def label(self, name: str) -> None:
        """Place a branch-target marker."""
        self.emit(Instr("label", target=name))

    def jump(self, target: str) -> None:
        """Unconditional branch to ``target``."""
        self.emit(Instr("jump", target=target))

    def bnez(self, src: str, target: str) -> None:
        """Branch to ``target`` when ``src`` is nonzero."""
        self.emit(Instr("bnez", srcs=(src,), target=target))

    def blt(self, a: str, b: str, target: str) -> None:
        """Branch to ``target`` when ``a < b``."""
        self.emit(Instr("blt", srcs=(a, b), target=target))

    def loop_begin(self, count: str) -> None:
        """Open a zero-overhead hardware loop of ``count`` iterations."""
        self.emit(Instr("loop.begin", srcs=(count,)))

    def loop_end(self) -> None:
        """Close the innermost hardware loop (zero-overhead backedge)."""
        self.emit(Instr("loop.end"))

    def halt(self) -> None:
        """Stop the machine."""
        self.emit(Instr("halt"))

    def build(self) -> Program:
        """The assembled :class:`Program`."""
        return self.program
