"""The cycle-level DSP simulator.

Execution model (deliberately simple but hardware-shaped):

- **in-order dual issue**: up to two instructions issue per cycle if
  they occupy different functional units (scalar / vector / mem /
  control) — a 2-slot VLIW, like small Tensilica configurations;
- **register scoreboard**: an instruction issues only when all source
  registers are ready; destination readiness = issue + latency
  (results forward, so back-to-back dependent 1-cycle ops dual-issue a
  cycle apart);
- **taken-branch penalty** of 2 cycles (short DSP pipeline refill);
- **total float semantics**: division by zero and sqrt of a negative
  produce 0.0 (saturating hardware behaviour); the compiler never
  relies on this — rule verification uses the exact interpreter.

The simulator is also a functional evaluator: it computes real values
in memory, so kernel outputs are checked against numpy references in
the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.spec import IsaSpec
from repro.machine.program import Instr, Program, UNITS
from repro.obs import current_tracer

# Machine-level latencies for non-ALU opcodes (cycles).
_STRUCTURAL_LATENCY = {
    "s.const": 1,
    "s.load": 2,
    "s.store": 1,
    "v.const": 2,
    "v.splat": 1,
    "v.load": 2,
    "v.store": 1,
    "v.insert": 2,
    "v.extract": 1,
    "v.shuffle": 1,
    # v.loadu is per-width (set in Machine.__init__): wider registers
    # cross more alignment boundaries, so unaligned access slows down.
    "m.const": 1,
    "v.load.m": 2,
    "v.store.m": 1,
    "jump": 1,
    "bnez": 1,
    "blt": 1,
    "loop.begin": 1,
    "loop.end": 0,  # zero-overhead hardware loop backedge
    "halt": 1,
}

_TAKEN_BRANCH_PENALTY = 2
_ISSUE_WIDTH = 2


class SimulationError(RuntimeError):
    """Malformed program or runaway execution."""


@dataclass
class SimResult:
    """Outcome of one simulated run."""

    cycles: int
    n_instructions: int
    memory: dict
    opcode_counts: dict = field(default_factory=dict)
    trace: list | None = None  # (issue cycle, Instr) when tracing
    # Lane-utilization counters over every vector (``v.*``) instruction:
    # issued = executed vector ops × register width; active = lanes that
    # did real work (popcount of the mask for masked ops, 1 for
    # insert/extract, the full width otherwise).
    lanes_issued: int = 0
    lanes_active: int = 0
    masked_ops: int = 0
    vector_ops: int = 0

    @property
    def lane_utilization(self) -> float:
        """Active/issued lane ratio (1.0 for all-scalar programs)."""
        if self.lanes_issued == 0:
            return 1.0
        return self.lanes_active / self.lanes_issued

    @property
    def masked_op_share(self) -> float:
        """Fraction of vector instructions that ran under a mask."""
        if self.vector_ops == 0:
            return 0.0
        return self.masked_ops / self.vector_ops

    def array(self, name: str) -> list:
        """A copy of array ``name``'s final contents."""
        return list(self.memory[name])

    def format_trace(self, limit: int | None = None) -> str:
        """Human-readable issue log (requires ``run(..., trace=True)``)."""
        if self.trace is None:
            raise ValueError("run with trace=True to record a trace")
        rows = self.trace if limit is None else self.trace[:limit]
        lines = [f"{cycle:6d}  {instr}" for cycle, instr in rows]
        if limit is not None and len(self.trace) > limit:
            lines.append(f"   ...  ({len(self.trace) - limit} more)")
        return "\n".join(lines)


class Machine:
    """A simulator instance specialized to one ISA spec."""

    def __init__(self, spec: IsaSpec, max_instructions: int = 4_000_000):
        self._spec = spec
        self._width = spec.vector_width
        self._max_instructions = max_instructions
        self._lane_fns = {i.name: i.lane_fn for i in spec.instructions}
        self._latency = dict(_STRUCTURAL_LATENCY)
        # Per-width register modeling: an unaligned load touches
        # ceil(W/8)+1 aligned blocks' worth of machinery — one extra
        # cycle at narrow widths, two on 16-lane registers.
        self._latency["v.loadu"] = _STRUCTURAL_LATENCY["v.load"] + (
            1 if spec.vector_width <= 8 else 2
        )
        for instr in spec.instructions:
            self._latency[("op", instr.name)] = instr.latency

    @property
    def vector_width(self) -> int:
        """Lanes per vector register (the ISA's width)."""
        return self._width

    # -- semantics helpers -------------------------------------------------

    def _alu(self, op: str, args: tuple) -> float:
        fn = self._lane_fns.get(op)
        if fn is None:
            raise SimulationError(f"machine has no ALU op {op!r}")
        result = fn(*args)
        # Total hardware semantics: undefined results saturate to 0.
        return 0.0 if result is None else float(result)

    def _instr_latency(self, instr: Instr) -> int:
        if instr.opcode in ("s.op", "v.op", "v.op.m"):
            latency = self._latency.get(("op", instr.op))
            if latency is None:
                raise SimulationError(f"no latency for op {instr.op!r}")
            return latency
        return self._latency[instr.opcode]

    def instruction_latency(self, instr: Instr) -> int:
        """Public latency query (used by the instruction scheduler)."""
        if instr.opcode == "label":
            return 0
        return self._instr_latency(instr)

    # -- execution -----------------------------------------------------------

    def run(
        self, program: Program, memory: dict, trace: bool = False
    ) -> SimResult:
        """Execute ``program`` on a copy of ``memory``.

        ``memory`` maps array names to sequences of floats; the result
        carries the mutated copy.  With ``trace=True`` the result also
        records each instruction's issue cycle (debugging aid; slows
        simulation slightly).
        """
        issue_log: list | None = [] if trace else None
        mem = {name: [float(x) for x in data] for name, data in memory.items()}
        labels = program.labels()
        loop_ends = program.loop_matches()
        loop_stack: list[list] = []  # [begin pc, remaining iterations]
        regs: dict[str, object] = {}
        ready: dict[str, int] = {}
        opcode_counts: dict[str, int] = {}
        lanes_issued = 0
        lanes_active = 0
        masked_ops = 0
        vector_ops = 0

        pc = 0
        cycle = 0
        units_this_cycle: set[str] = set()
        issued_this_cycle = 0
        executed = 0
        instrs = program.instrs
        n_instrs = len(instrs)

        while pc < n_instrs:
            instr = instrs[pc]
            pc += 1
            if instr.opcode == "label":
                continue

            executed += 1
            if executed > self._max_instructions:
                raise SimulationError(
                    f"execution exceeded {self._max_instructions} "
                    "instructions (infinite loop?)"
                )
            opcode_counts[instr.opcode] = (
                opcode_counts.get(instr.opcode, 0) + 1
            )

            # --- lane-utilization accounting -----------------------------
            if instr.opcode.startswith("v."):
                vector_ops += 1
                lanes_issued += self._width
                mask = None
                if instr.opcode in ("v.op.m", "v.load.m"):
                    mask = regs.get(instr.srcs[0])
                elif instr.opcode == "v.store.m":
                    mask = regs.get(instr.srcs[1])
                if mask is not None:
                    masked_ops += 1
                    lanes_active += sum(1 for bit in mask if bit)
                elif instr.opcode in ("v.insert", "v.extract"):
                    lanes_active += 1  # one lane crosses the file
                else:
                    lanes_active += self._width

            # --- timing: find the issue cycle -------------------------------
            operands_ready = cycle
            for src in instr.srcs:
                operands_ready = max(operands_ready, ready.get(src, 0))
            unit = UNITS.get(instr.opcode)
            if unit is None:
                raise SimulationError(f"unknown opcode {instr.opcode!r}")
            issue = max(cycle, operands_ready)
            if issue == cycle and (
                unit in units_this_cycle or issued_this_cycle >= _ISSUE_WIDTH
            ):
                issue = cycle + 1
            if issue > cycle:
                cycle = issue
                units_this_cycle = set()
                issued_this_cycle = 0
            units_this_cycle.add(unit)
            issued_this_cycle += 1
            latency = self._instr_latency(instr)
            if instr.dst is not None:
                ready[instr.dst] = cycle + latency
            if issue_log is not None:
                issue_log.append((cycle, instr))

            # --- semantics ----------------------------------------------------
            if instr.opcode == "loop.begin":
                count = int(regs[instr.srcs[0]])
                if count <= 0:
                    # Skip the whole loop (pays a pipeline refill).
                    pc = loop_ends[pc - 1] + 1
                    cycle += _TAKEN_BRANCH_PENALTY
                    units_this_cycle = set()
                    issued_this_cycle = 0
                else:
                    loop_stack.append([pc, count])
                continue
            if instr.opcode == "loop.end":
                if not loop_stack:
                    raise SimulationError("loop.end outside a loop")
                top = loop_stack[-1]
                top[1] -= 1
                if top[1] > 0:
                    pc = top[0]  # zero-overhead backedge
                else:
                    loop_stack.pop()
                continue

            taken = self._execute(instr, regs, mem, labels)
            if taken is not None:
                pc = taken
                cycle += _TAKEN_BRANCH_PENALTY
                units_this_cycle = set()
                issued_this_cycle = 0
            if instr.opcode == "halt":
                break

        # Drain: account for the longest in-flight latency.
        final = cycle + 1
        for reg_ready in ready.values():
            final = max(final, reg_ready)
        result = SimResult(
            cycles=final,
            n_instructions=executed,
            memory=mem,
            opcode_counts=opcode_counts,
            trace=issue_log,
            lanes_issued=lanes_issued,
            lanes_active=lanes_active,
            masked_ops=masked_ops,
            vector_ops=vector_ops,
        )
        current_tracer().record(
            "machine.run",
            0.0,
            isa=self._spec.name,
            width=self._width,
            cycles=final,
            n_instructions=executed,
            lanes_issued=lanes_issued,
            lanes_active=lanes_active,
            masked_ops=masked_ops,
            vector_ops=vector_ops,
        )
        return result

    def _execute(self, instr, regs, mem, labels):
        """Apply one instruction; returns a new pc if a branch is taken."""
        opcode = instr.opcode
        width = self._width

        if opcode == "s.const":
            regs[instr.dst] = float(instr.imm)
        elif opcode == "s.load":
            base = instr.offset + self._index_of(instr.srcs, 0, regs)
            regs[instr.dst] = self._mem_read(mem, instr.array, base)
        elif opcode == "s.store":
            base = instr.offset + self._index_of(instr.srcs, 1, regs)
            self._mem_write(mem, instr.array, base, regs[instr.srcs[0]])
        elif opcode == "s.op":
            args = tuple(regs[s] for s in instr.srcs)
            regs[instr.dst] = self._alu(instr.op, args)
        elif opcode == "v.const":
            lanes = tuple(float(x) for x in instr.imm)
            if len(lanes) != width:
                raise SimulationError("v.const width mismatch")
            regs[instr.dst] = lanes
        elif opcode == "v.splat":
            regs[instr.dst] = (regs[instr.srcs[0]],) * width
        elif opcode == "v.load":
            base = instr.offset + self._index_of(instr.srcs, 0, regs)
            regs[instr.dst] = tuple(
                self._mem_read(mem, instr.array, base + i)
                for i in range(width)
            )
        elif opcode == "v.store":
            base = instr.offset + self._index_of(instr.srcs, 1, regs)
            vec = regs[instr.srcs[0]]
            for i in range(width):
                self._mem_write(mem, instr.array, base + i, vec[i])
        elif opcode == "v.op":
            vecs = tuple(regs[s] for s in instr.srcs)
            regs[instr.dst] = tuple(
                self._alu(instr.op, tuple(v[i] for v in vecs))
                for i in range(width)
            )
        elif opcode == "v.loadu":
            base = instr.offset + self._index_of(instr.srcs, 0, regs)
            regs[instr.dst] = tuple(
                self._mem_read(mem, instr.array, base + i)
                for i in range(width)
            )
        elif opcode == "m.const":
            mask = tuple(1 if x else 0 for x in instr.imm)
            if len(mask) != width:
                raise SimulationError("m.const width mismatch")
            regs[instr.dst] = mask
        elif opcode == "v.load.m":
            mask = self._mask_of(regs, instr.srcs[0], width)
            base = instr.offset + self._index_of(instr.srcs, 1, regs)
            regs[instr.dst] = tuple(
                self._mem_read(mem, instr.array, base + i)
                if mask[i]
                else 0.0
                for i in range(width)
            )
        elif opcode == "v.store.m":
            mask = self._mask_of(regs, instr.srcs[1], width)
            base = instr.offset + self._index_of(instr.srcs, 2, regs)
            vec = regs[instr.srcs[0]]
            for i in range(width):
                if mask[i]:
                    self._mem_write(mem, instr.array, base + i, vec[i])
        elif opcode == "v.op.m":
            mask = self._mask_of(regs, instr.srcs[0], width)
            vecs = tuple(regs[s] for s in instr.srcs[1:])
            regs[instr.dst] = tuple(
                self._alu(instr.op, tuple(v[i] for v in vecs))
                if mask[i]
                else 0.0
                for i in range(width)
            )
        elif opcode == "v.insert":
            vec = list(regs[instr.srcs[0]])
            vec[instr.imm] = regs[instr.srcs[1]]
            regs[instr.dst] = tuple(vec)
        elif opcode == "v.extract":
            regs[instr.dst] = regs[instr.srcs[0]][instr.imm]
        elif opcode == "v.shuffle":
            joined = regs[instr.srcs[0]] + regs[instr.srcs[1]]
            regs[instr.dst] = tuple(joined[i] for i in instr.imm)
        elif opcode == "jump":
            return self._label_target(labels, instr.target)
        elif opcode == "bnez":
            if regs[instr.srcs[0]] != 0:
                return self._label_target(labels, instr.target)
        elif opcode == "blt":
            if regs[instr.srcs[0]] < regs[instr.srcs[1]]:
                return self._label_target(labels, instr.target)
        elif opcode == "halt":
            pass
        else:
            raise SimulationError(f"unknown opcode {opcode!r}")
        return None

    @staticmethod
    def _mask_of(regs: dict, reg: str, width: int) -> tuple:
        """The mask register's 0/1 lanes (validated against width)."""
        mask = regs.get(reg)
        if not isinstance(mask, tuple) or len(mask) != width:
            raise SimulationError(f"{reg!r} does not hold a {width}-lane mask")
        return mask

    @staticmethod
    def _index_of(srcs: tuple, position: int, regs: dict) -> int:
        """Value of the optional index register at ``position``."""
        if len(srcs) > position:
            return int(regs[srcs[position]])
        return 0

    @staticmethod
    def _mem_read(mem: dict, array: str, index: int) -> float:
        data = mem.get(array)
        if data is None:
            raise SimulationError(f"unknown array {array!r}")
        if not 0 <= index < len(data):
            raise SimulationError(
                f"out-of-bounds read {array}[{index}] (len {len(data)})"
            )
        return data[index]

    @staticmethod
    def _mem_write(mem: dict, array: str, index: int, value) -> None:
        data = mem.get(array)
        if data is None:
            raise SimulationError(f"unknown array {array!r}")
        if not 0 <= index < len(data):
            raise SimulationError(
                f"out-of-bounds write {array}[{index}] (len {len(data)})"
            )
        data[index] = float(value)

    @staticmethod
    def _label_target(labels: dict, target: str) -> int:
        pc = labels.get(target)
        if pc is None:
            raise SimulationError(f"unknown label {target!r}")
        return pc
