"""Wildcard patterns over DSL terms.

A pattern is just a :class:`~repro.lang.term.Term` that may contain
``Wild`` leaves.  This module provides syntactic matching against ground
terms, substitution/instantiation, and wildcard renaming (used by the
lane generalization pass to mint fresh wildcards per lane).

E-graph matching — the workhorse of equality saturation — lives in
:mod:`repro.egraph.ematch`; the syntactic matcher here is used by rule
analyses, tests, and the SLP baseline.
"""

from __future__ import annotations

from repro.lang import term as T
from repro.lang.term import Term


def wildcards_of(pattern: Term) -> tuple[str, ...]:
    """Wildcard names in ``pattern``, in first-occurrence order."""
    seen: dict[str, None] = {}
    for sub in T.subterms(pattern):
        if T.is_wildcard(sub):
            seen.setdefault(sub.payload, None)
    return tuple(seen)


def is_ground(pattern: Term) -> bool:
    """True if ``pattern`` contains no wildcards."""
    return all(not T.is_wildcard(sub) for sub in T.subterms(pattern))


def contains_op(pattern: Term, op: str) -> bool:
    """True if any subterm of ``pattern`` has operator ``op``."""
    return any(sub.op == op for sub in T.subterms(pattern))


def instantiate(pattern: Term, binding: dict[str, Term]) -> Term:
    """Replace every wildcard with its binding.

    Raises ``KeyError`` if a wildcard is unbound, so partially applied
    rules fail loudly.
    """
    if T.is_wildcard(pattern):
        return binding[pattern.payload]
    if not pattern.args:
        return pattern
    args = tuple(instantiate(arg, binding) for arg in pattern.args)
    if args == pattern.args:
        return pattern
    return T.make(pattern.op, *args, payload=pattern.payload)


def match(
    pattern: Term, target: Term, binding: dict[str, Term] | None = None
) -> dict[str, Term] | None:
    """Syntactic match of ``pattern`` against a ground ``target``.

    Returns the (possibly extended) binding on success, ``None`` on
    failure.  Non-linear patterns (repeated wildcards) require equal
    subterms.
    """
    binding = dict(binding) if binding else {}
    stack = [(pattern, target)]
    while stack:
        pat, tgt = stack.pop()
        if T.is_wildcard(pat):
            bound = binding.get(pat.payload)
            if bound is None:
                binding[pat.payload] = tgt
            elif bound != tgt:
                return None
            continue
        if pat.op != tgt.op or pat.payload != tgt.payload:
            return None
        if len(pat.args) != len(tgt.args):
            return None
        stack.extend(zip(pat.args, tgt.args))
    return binding


def rename_wildcards(pattern: Term, mapping: dict[str, str]) -> Term:
    """Rename wildcards according to ``mapping`` (missing names kept)."""
    return instantiate(
        pattern,
        {
            name: T.wildcard(mapping.get(name, name))
            for name in wildcards_of(pattern)
        },
    )


def suffix_wildcards(pattern: Term, suffix: str) -> Term:
    """Append ``suffix`` to every wildcard name (fresh lane copies)."""
    return rename_wildcards(
        pattern, {name: f"{name}{suffix}" for name in wildcards_of(pattern)}
    )
