"""S-expression reader and printer for the Isaria DSL.

Concrete syntax, matching the paper's examples:

- ``(+ (Get x 0) (Get y 0))`` — operators are symbols in head position;
- ``(Get x 3)`` parses to a ``Get`` leaf with payload ``("x", 3)``;
- bare numbers are ``Const`` leaves, bare identifiers ``Symbol`` leaves;
- ``?a`` is a wildcard (patterns only).
"""

from __future__ import annotations

from repro.lang import term as T
from repro.lang.term import Term


class ParseError(ValueError):
    """Raised on malformed s-expression input."""


_DELIMS = set("()")


def _tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
        elif ch in _DELIMS:
            tokens.append(ch)
            i += 1
        elif ch == ";":  # comment to end of line
            while i < n and text[i] != "\n":
                i += 1
        else:
            j = i
            while j < n and not text[j].isspace() and text[j] not in _DELIMS:
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


def _parse_atom(token: str) -> Term:
    if token.startswith("?"):
        if len(token) == 1:
            raise ParseError("empty wildcard name '?'")
        return T.wildcard(token[1:])
    try:
        return T.const(int(token))
    except ValueError:
        pass
    try:
        return T.const(float(token))
    except ValueError:
        pass
    return T.symbol(token)


def _parse_expr(tokens: list[str], pos: int) -> tuple[Term, int]:
    if pos >= len(tokens):
        raise ParseError("unexpected end of input")
    token = tokens[pos]
    if token == ")":
        raise ParseError("unexpected ')'")
    if token != "(":
        return _parse_atom(token), pos + 1

    # Compound form: (op arg ...)
    pos += 1
    if pos >= len(tokens):
        raise ParseError("unexpected end of input after '('")
    op = tokens[pos]
    if op in _DELIMS:
        raise ParseError(f"expected operator symbol, got {op!r}")
    pos += 1
    args: list[Term] = []
    while pos < len(tokens) and tokens[pos] != ")":
        arg, pos = _parse_expr(tokens, pos)
        args.append(arg)
    if pos >= len(tokens):
        raise ParseError("missing ')'")
    pos += 1  # consume ')'

    if op == "Get":
        if (
            len(args) != 2
            or not T.is_symbol(args[0])
            or not T.is_const(args[1])
        ):
            raise ParseError("Get expects (Get <array> <index>)")
        return T.get(args[0].payload, args[1].payload), pos
    return T.make(op, *args), pos


def parse(text: str) -> Term:
    """Parse a single term from ``text``."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty input")
    term, pos = _parse_expr(tokens, 0)
    if pos != len(tokens):
        raise ParseError(f"trailing input at token {pos}: {tokens[pos]!r}")
    return term


def parse_many(text: str) -> list[Term]:
    """Parse a sequence of terms from ``text``."""
    tokens = _tokenize(text)
    terms: list[Term] = []
    pos = 0
    while pos < len(tokens):
        term, pos = _parse_expr(tokens, pos)
        terms.append(term)
    return terms


def _fmt_const(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def to_sexpr(term: Term) -> str:
    """Render ``term`` back to concrete syntax.

    ``parse(to_sexpr(t)) == t`` for every term that the parser can
    produce (i.e. everything except exotic payloads).
    """
    if T.is_const(term):
        return _fmt_const(term.payload)
    if T.is_symbol(term):
        return term.payload
    if T.is_wildcard(term):
        return f"?{term.payload}"
    if T.is_get(term):
        array, index = term.payload
        return f"(Get {array} {index})"
    inner = " ".join(to_sexpr(arg) for arg in term.args)
    return f"({term.op} {inner})" if inner else f"({term.op})"
