"""Operator registry for the Isaria vector DSL.

The grammar (paper Fig. 1) has three syntactic levels:

- *scalar* expressions: arithmetic over numbers, variables, and array
  accesses ``(Get x i)``;
- *vector* expressions: ``Vec`` literals that build a vector from scalar
  lanes, ``Concat``, and lane-wise vector instructions (``VecAdd`` ...);
- *structure*: a top-level ``List`` of outputs.

Operators are described by :class:`Operator` records collected in an
:class:`OperatorRegistry`.  The registry is extensible at runtime: adding
a custom instruction to an ISA spec (paper §5.4) registers its operator
here so the parser, e-graph, and rule synthesizer all see it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpKind(enum.Enum):
    """Syntactic category of an operator."""

    SCALAR = "scalar"  # scalar-valued, scalar arguments
    VECTOR = "vector"  # vector-valued lane-wise instruction
    STRUCTURE = "structure"  # Vec / Concat / List
    LEAF = "leaf"  # Const / Symbol / Get / Wild


VARIADIC = -1

# Canonical leaf operator names.  Leaves carry a payload instead of
# children: Const holds a number, Symbol a variable name, Get an
# (array, index) pair, Wild a wildcard name.
CONST = "Const"
SYMBOL = "Symbol"
GET = "Get"
WILD = "Wild"

LEAF_OPS = frozenset({CONST, SYMBOL, GET, WILD})


@dataclass(frozen=True)
class Operator:
    """Static description of one operator.

    ``vector_of`` links a lane-wise vector instruction to the scalar
    operator computing the same function on one lane (e.g. ``VecAdd`` ->
    ``+``).  Isaria's lane generalization (§3.1) relies on this link in
    both directions.
    """

    name: str
    arity: int
    kind: OpKind
    vector_of: str | None = None
    commutative: bool = False

    @property
    def is_variadic(self) -> bool:
        """True when the operator takes any number of children."""
        return self.arity == VARIADIC


class OperatorRegistry:
    """A mutable set of operators keyed by name."""

    def __init__(self, operators: list[Operator] | None = None):
        self._ops: dict[str, Operator] = {}
        for op in operators or []:
            self.register(op)

    def register(self, op: Operator) -> Operator:
        """Add ``op``; re-registering an identical operator is a no-op."""
        existing = self._ops.get(op.name)
        if existing is not None and existing != op:
            raise ValueError(
                f"operator {op.name!r} already registered with a "
                f"different signature"
            )
        self._ops[op.name] = op
        return op

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def __getitem__(self, name: str) -> Operator:
        return self._ops[name]

    def get(self, name: str) -> Operator | None:
        """The operator named ``name``, or None if unregistered."""
        return self._ops.get(name)

    def names(self) -> list[str]:
        """All registered operator names, sorted."""
        return sorted(self._ops)

    def operators(self) -> list[Operator]:
        """All registered operators, in name order."""
        return [self._ops[name] for name in self.names()]

    def scalar_ops(self) -> list[Operator]:
        """The registered scalar operators, in name order."""
        return [op for op in self.operators() if op.kind is OpKind.SCALAR]

    def vector_ops(self) -> list[Operator]:
        """The registered vector operators, in name order."""
        return [op for op in self.operators() if op.kind is OpKind.VECTOR]

    def scalar_counterpart(self, vector_op: str) -> str | None:
        """Name of the scalar op computing one lane of ``vector_op``."""
        op = self._ops.get(vector_op)
        return op.vector_of if op is not None else None

    def vector_counterpart(self, scalar_op: str) -> str | None:
        """Name of the lane-wise vector op lifting ``scalar_op``."""
        for op in self._ops.values():
            if op.kind is OpKind.VECTOR and op.vector_of == scalar_op:
                return op.name
        return None

    def copy(self) -> "OperatorRegistry":
        """An independent registry with the same operators."""
        return OperatorRegistry(list(self._ops.values()))


def _base_operators() -> list[Operator]:
    """The fixed DSL of paper Fig. 1."""
    return [
        # Leaves.
        Operator(CONST, 0, OpKind.LEAF),
        Operator(SYMBOL, 0, OpKind.LEAF),
        Operator(GET, 0, OpKind.LEAF),
        Operator(WILD, 0, OpKind.LEAF),
        # Scalar arithmetic.
        Operator("+", 2, OpKind.SCALAR, commutative=True),
        Operator("-", 2, OpKind.SCALAR),
        Operator("*", 2, OpKind.SCALAR, commutative=True),
        Operator("/", 2, OpKind.SCALAR),
        Operator("neg", 1, OpKind.SCALAR),
        Operator("sgn", 1, OpKind.SCALAR),
        Operator("sqrt", 1, OpKind.SCALAR),
        # Scalar fused multiply-accumulate: (mac c a b) = c + a * b.
        # This is the one-lane reduction of VecMAC (paper §3.1).
        Operator("mac", 3, OpKind.SCALAR),
        # Structure.
        Operator("Vec", VARIADIC, OpKind.STRUCTURE),
        Operator("Concat", 2, OpKind.STRUCTURE),
        Operator("List", VARIADIC, OpKind.STRUCTURE),
        # Lane-wise vector instructions.
        Operator("VecAdd", 2, OpKind.VECTOR, vector_of="+", commutative=True),
        Operator("VecMinus", 2, OpKind.VECTOR, vector_of="-"),
        Operator("VecMul", 2, OpKind.VECTOR, vector_of="*", commutative=True),
        Operator("VecDiv", 2, OpKind.VECTOR, vector_of="/"),
        Operator("VecNeg", 1, OpKind.VECTOR, vector_of="neg"),
        Operator("VecSgn", 1, OpKind.VECTOR, vector_of="sgn"),
        Operator("VecSqrt", 1, OpKind.VECTOR, vector_of="sqrt"),
        Operator("VecMAC", 3, OpKind.VECTOR, vector_of="mac"),
    ]


def default_registry() -> OperatorRegistry:
    """A fresh registry holding exactly the paper's Fig. 1 DSL."""
    return OperatorRegistry(_base_operators())
