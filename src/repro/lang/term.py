"""Immutable, interned terms of the Isaria DSL.

A :class:`Term` is either

- an interior node ``Term(op, args)`` where ``args`` is a tuple of
  terms, or
- a leaf carrying a payload:  ``Const`` (a number), ``Symbol`` (a
  variable name), ``Get`` (an ``(array, index)`` pair), or ``Wild`` (a
  wildcard name, only in patterns).

Terms are *interned*: constructing the same term twice returns the same
object, so equality is identity and hashing is O(1).  The e-graph,
extraction, and rule minimization all lean on this.
"""

from __future__ import annotations

from typing import Iterator

from repro.lang.ops import CONST, GET, LEAF_OPS, SYMBOL, WILD

_INTERN: dict[tuple, "Term"] = {}


class Term:
    """One DSL term.  Use :func:`make` / the leaf constructors, not
    ``Term(...)`` directly, to get interning."""

    __slots__ = ("op", "args", "payload", "_hash")

    def __init__(self, op: str, args: tuple["Term", ...], payload=None):
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "payload", payload)
        object.__setattr__(self, "_hash", hash((op, args, payload)))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Term is immutable")

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        # Interning makes identity equality sufficient, but support
        # structural equality for robustness (e.g. pickled terms).
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        return (
            self.op == other.op
            and self.payload == other.payload
            and self.args == other.args
        )

    def __repr__(self) -> str:
        from repro.lang.parser import to_sexpr

        return f"Term({to_sexpr(self)})"

    @property
    def is_leaf(self) -> bool:
        """True for const/symbol/get/wildcard terms (no children)."""
        return self.op in LEAF_OPS

    def __reduce__(self):
        # Pickle through the interning constructor so unpickled terms
        # re-enter the intern table (and immutability survives slots).
        return (_reconstruct, (self.op, self.args, self.payload))


def _reconstruct(op: str, args: tuple, payload) -> "Term":
    """Pickle helper: rebuild through :func:`make`."""
    return make(op, *args, payload=payload)


def make(op: str, *args: Term, payload=None) -> Term:
    """Construct (or fetch the interned copy of) a term."""
    key = (op, args, payload)
    term = _INTERN.get(key)
    if term is None:
        for arg in args:
            if not isinstance(arg, Term):
                raise TypeError(f"child of {op} is not a Term: {arg!r}")
        term = Term(op, args, payload)
        _INTERN[key] = term
    return term


def const(value) -> Term:
    """A numeric constant leaf.

    Integral floats are normalized to ``int`` so ``2`` and ``2.0``
    intern to the same leaf.
    """
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"const payload must be a number, got {value!r}")
    return make(CONST, payload=value)


def symbol(name: str) -> Term:
    """A scalar variable leaf."""
    return make(SYMBOL, payload=str(name))


def get(array: str, index: int) -> Term:
    """An array-element leaf ``(Get array index)``.

    Rewrite rules treat array elements as opaque atoms, so ``Get`` is a
    leaf with an ``(array, index)`` payload rather than a binary node.
    """
    return make(GET, payload=(str(array), int(index)))


def wildcard(name: str) -> Term:
    """A pattern wildcard ``?name``."""
    return make(WILD, payload=str(name))


def is_const(term: Term) -> bool:
    """True for numeric constant leaves."""
    return term.op == CONST


def is_symbol(term: Term) -> bool:
    """True for variable leaves."""
    return term.op == SYMBOL


def is_get(term: Term) -> bool:
    """True for array-element leaves."""
    return term.op == GET


def is_wildcard(term: Term) -> bool:
    """True for pattern wildcards."""
    return term.op == WILD


def is_leaf(term: Term) -> bool:
    """True for any leaf (const, symbol, get, wildcard)."""
    return term.op in LEAF_OPS


def subterms(term: Term) -> Iterator[Term]:
    """Distinct subterms of ``term`` (pre-order, each yielded once).

    Terms are interned DAGs: a shared subexpression appears once here
    even if it occurs many times in the tree unfolding.  Kernels like
    QR decomposition share aggressively, so tree-walking them would be
    exponential.
    """
    seen: set[int] = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if id(t) in seen:
            continue
        seen.add(id(t))
        yield t
        stack.extend(reversed(t.args))


def fold_term(term: Term, fn):
    """Bottom-up fold over the term DAG, iteratively and memoized.

    ``fn(subterm, child_results)`` is called exactly once per distinct
    subterm, children first.  Use this instead of naive recursion: it
    is immune to both exponential tree unfolding of shared nodes and
    Python's recursion limit on deep kernels.
    """
    memo: dict[Term, object] = {}
    stack = [term]
    while stack:
        t = stack[-1]
        if t in memo:
            stack.pop()
            continue
        pending = [arg for arg in t.args if arg not in memo]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        memo[t] = fn(t, tuple(memo[arg] for arg in t.args))
    return memo[term]


def term_size(term: Term) -> int:
    """Number of nodes in the term *tree* (shared nodes counted per
    occurrence), computed DAG-efficiently."""
    return fold_term(term, lambda t, child_sizes: 1 + sum(child_sizes))


def term_depth(term: Term) -> int:
    """Height of the term tree (a leaf has depth 1)."""
    return fold_term(
        term,
        lambda t, child_depths: 1 + max(child_depths, default=0),
    )


def intern_table_size() -> int:
    """Number of distinct terms ever constructed (for diagnostics)."""
    return len(_INTERN)
