"""The Diospyros/Isaria vector DSL (paper Fig. 1).

This package defines the term language that Isaria learns rewrite rules
over and that the compiler manipulates:

- :mod:`repro.lang.ops` — the operator registry (scalar, vector, and
  structural operators, plus runtime registration of custom ISA ops).
- :mod:`repro.lang.term` — immutable, interned terms.
- :mod:`repro.lang.parser` — s-expression reader and printer.
- :mod:`repro.lang.pattern` — wildcard patterns, syntactic matching,
  substitution, and instantiation (e-graph matching lives in
  :mod:`repro.egraph.ematch`).
- :mod:`repro.lang.builders` — convenience constructors.
"""

from repro.lang.ops import (
    OpKind,
    Operator,
    OperatorRegistry,
    default_registry,
)
from repro.lang.term import (
    Term,
    make,
    const,
    symbol,
    get,
    wildcard,
    is_const,
    is_symbol,
    is_get,
    is_wildcard,
    is_leaf,
    term_size,
    term_depth,
    subterms,
)
from repro.lang.parser import parse, parse_many, to_sexpr, ParseError
from repro.lang.pattern import (
    wildcards_of,
    instantiate,
    match,
    rename_wildcards,
    is_ground,
    contains_op,
)
from repro.lang import builders

__all__ = [
    "OpKind",
    "Operator",
    "OperatorRegistry",
    "default_registry",
    "Term",
    "make",
    "const",
    "symbol",
    "get",
    "wildcard",
    "is_const",
    "is_symbol",
    "is_get",
    "is_wildcard",
    "is_leaf",
    "term_size",
    "term_depth",
    "subterms",
    "parse",
    "parse_many",
    "to_sexpr",
    "ParseError",
    "wildcards_of",
    "instantiate",
    "match",
    "rename_wildcards",
    "is_ground",
    "contains_op",
    "builders",
]
