"""Convenience constructors for DSL terms.

These keep kernel generators and tests readable:

>>> from repro.lang import builders as B
>>> B.add(B.get("x", 0), B.get("y", 0))
Term((+ (Get x 0) (Get y 0)))
"""

from __future__ import annotations

from repro.lang import term as T
from repro.lang.term import Term

# Re-export the leaf constructors under their natural names.
const = T.const
symbol = T.symbol
get = T.get
wildcard = T.wildcard


def add(a: Term, b: Term) -> Term:
    return T.make("+", a, b)


def sub(a: Term, b: Term) -> Term:
    return T.make("-", a, b)


def mul(a: Term, b: Term) -> Term:
    return T.make("*", a, b)


def div(a: Term, b: Term) -> Term:
    return T.make("/", a, b)


def neg(a: Term) -> Term:
    return T.make("neg", a)


def sgn(a: Term) -> Term:
    return T.make("sgn", a)


def sqrt(a: Term) -> Term:
    return T.make("sqrt", a)


def mac(c: Term, a: Term, b: Term) -> Term:
    """Scalar fused multiply-accumulate: c + a * b."""
    return T.make("mac", c, a, b)


def vec(*lanes: Term) -> Term:
    return T.make("Vec", *lanes)


def concat(a: Term, b: Term) -> Term:
    return T.make("Concat", a, b)


def prog(*outputs: Term) -> Term:
    """A top-level program: a List of output expressions."""
    return T.make("List", *outputs)


def vec_add(a: Term, b: Term) -> Term:
    return T.make("VecAdd", a, b)


def vec_minus(a: Term, b: Term) -> Term:
    return T.make("VecMinus", a, b)


def vec_mul(a: Term, b: Term) -> Term:
    return T.make("VecMul", a, b)


def vec_div(a: Term, b: Term) -> Term:
    return T.make("VecDiv", a, b)


def vec_neg(a: Term) -> Term:
    return T.make("VecNeg", a)


def vec_sgn(a: Term) -> Term:
    return T.make("VecSgn", a)


def vec_sqrt(a: Term) -> Term:
    return T.make("VecSqrt", a)


def vec_mac(c: Term, a: Term, b: Term) -> Term:
    """Lane-wise fused multiply-accumulate: c + a * b per lane."""
    return T.make("VecMAC", c, a, b)


def sum_terms(terms: list[Term]) -> Term:
    """Left-associated sum of one or more scalar terms."""
    if not terms:
        raise ValueError("sum_terms requires at least one term")
    acc = terms[0]
    for t in terms[1:]:
        acc = add(acc, t)
    return acc


def dot_product(xs: list[Term], ys: list[Term]) -> Term:
    """Left-associated dot product of two equal-length term lists."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("dot_product requires equal, non-empty lists")
    return sum_terms([mul(x, y) for x, y in zip(xs, ys)])
