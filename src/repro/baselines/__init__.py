"""Evaluation baselines (paper Fig. 4's comparison systems).

- :mod:`repro.baselines.scalar` — naive scalar code generation: the
  "Clang with auto-vectorization disabled" baseline everything is
  normalized to;
- :mod:`repro.baselines.slp` — a superword-level-parallelism
  auto-vectorizer in the style of Clang/LLVM's SLP pass (greedy
  packing, no search), including LLVM's alternating add/sub packs;
- :mod:`repro.baselines.nature` — hand-written, loop-based,
  size-generic library kernels in the style of the Tensilica "Nature"
  SDK library (good loops, not size-specialized, no coverage of
  irregular kernels like QR — matching the paper's note that Nature
  omits some kernels).
"""

from repro.baselines.scalar import compile_scalar
from repro.baselines.slp import compile_slp
from repro.baselines.nature import nature_program, has_nature_kernel

__all__ = [
    "compile_scalar",
    "compile_slp",
    "nature_program",
    "has_nature_kernel",
]
