"""A superword-level-parallelism auto-vectorizer (the Clang baseline).

Greedy SLP in the style of LLVM's pass (Larsen & Amarasinghe, PLDI
2000): group each run of ``W`` consecutive output elements into a pack
and try to vectorize it bottom-up —

- identical lanes become a splat;
- all-constant lanes become a vector constant;
- a contiguous ascending run of loads becomes a vector load;
- isomorphic operations pack lane-wise if their operands pack;
- mixed ``+``/``-`` lanes use LLVM's *alternating opcode* trick:
  compute both the add and subtract vectors and blend with a shuffle.

No search, no reassociation: when a pack fails, the whole group falls
back to scalar code.  That fixed strategy is exactly why this baseline
does well on regular kernels (matrix multiply, quaternion product) and
poorly on irregular ones (convolution boundaries, QR) — the shape
paper Fig. 4 reports for the Tensilica auto-vectorizer.
"""

from __future__ import annotations

from repro.baselines.scalar import _ScalarGen
from repro.compiler.frontend import KernelProgram, scalar_outputs
from repro.isa.spec import IsaSpec
from repro.lang import term as T
from repro.lang.ops import OpKind
from repro.lang.term import Term
from repro.machine.program import Program


class _SlpGen:
    def __init__(self, spec: IsaSpec):
        self._spec = spec
        self._width = spec.vector_width
        self._scalar = _ScalarGen(spec)
        self._builder = self._scalar.builder
        self._pack_memo: dict[tuple[Term, ...], str | None] = {}

    # -- packing -------------------------------------------------------------

    def pack(self, lanes: tuple[Term, ...]) -> str | None:
        """Vector register computing ``lanes``, or None if unpackable."""
        cached = self._pack_memo.get(lanes, "miss")
        if cached != "miss":
            return cached
        reg = self._pack_uncached(lanes)
        self._pack_memo[lanes] = reg
        return reg

    def _pack_uncached(self, lanes: tuple[Term, ...]) -> str | None:
        builder = self._builder

        if all(T.is_const(lane) for lane in lanes):
            return builder.v_const(
                tuple(float(lane.payload) for lane in lanes)
            )
        if len(set(lanes)) == 1:
            return builder.v_splat(self._scalar.lower(lanes[0]))
        if all(T.is_get(lane) for lane in lanes):
            return self._pack_loads(lanes)

        ops = {lane.op for lane in lanes}
        if len(ops) == 1:
            return self._pack_isomorphic(lanes)
        if ops == {"+", "-"}:
            return self._pack_altop(lanes)
        return None

    def _pack_loads(self, lanes: tuple[Term, ...]) -> str | None:
        """Contiguous loads, or a permuted load within one window."""
        arrays = {lane.payload[0] for lane in lanes}
        if len(arrays) != 1:
            return None
        array = lanes[0].payload[0]
        indices = [lane.payload[1] for lane in lanes]
        if indices == list(range(indices[0], indices[0] + len(indices))):
            return self._builder.v_load(array, indices[0])
        # LLVM's SLP also handles a shuffled load when all lanes fall in
        # one vector-sized window.
        width = self._width
        window = (min(indices) // width) * width
        if any(not window <= i < window + width for i in indices):
            return None
        loaded = self._builder.v_load(array, window)
        pattern = tuple(i - window for i in indices)
        return self._builder.v_shuffle(loaded, loaded, pattern)

    def _pack_isomorphic(self, lanes: tuple[Term, ...]) -> str | None:
        op = lanes[0].op
        if not self._spec.has_instruction(op):
            return None
        instr = self._spec.instruction(op)
        if instr.kind is not OpKind.SCALAR:
            return None
        vector_op = self._spec.vector_counterpart(op)
        if vector_op is None:
            return None
        arity = instr.arity
        if any(len(lane.args) != arity for lane in lanes):
            return None
        operand_regs = []
        for j in range(arity):
            operand = self.pack(tuple(lane.args[j] for lane in lanes))
            if operand is None:
                return None
            operand_regs.append(operand)
        return self._builder.v_op(vector_op, *operand_regs)

    def _pack_altop(self, lanes: tuple[Term, ...]) -> str | None:
        """LLVM's alternating add/sub pack.

        ``left ± right`` per lane is one fused op on a MAC machine:
        ``left + signs * right`` with a constant sign vector (the
        addsub idiom).
        """
        if any(len(lane.args) != 2 for lane in lanes):
            return None
        left = self.pack(tuple(lane.args[0] for lane in lanes))
        if left is None:
            return None
        right = self.pack(tuple(lane.args[1] for lane in lanes))
        if right is None:
            return None
        signs = self._builder.v_const(
            tuple(1.0 if lane.op == "+" else -1.0 for lane in lanes)
        )
        return self._builder.v_op("VecMAC", left, signs, right)

    # -- driver ----------------------------------------------------------------

    def compile(self, program: KernelProgram) -> Program:
        width = self._width
        outputs = scalar_outputs(program, source=True)
        padded = list(outputs)
        while len(padded) % width:
            padded.append(T.const(0))
        for start in range(0, len(padded), width):
            group = tuple(padded[start : start + width])
            reg = self.pack(group)
            if reg is not None:
                self._builder.v_store(program.output, start, reg)
                continue
            # Fall back to scalar for this group (skip padding lanes).
            for offset, lane in enumerate(group):
                index = start + offset
                if index >= program.output_len:
                    break
                self._builder.s_store(
                    program.output, index, self._scalar.lower(lane)
                )
        return self._scalar.finish()


def compile_slp(program: KernelProgram, spec: IsaSpec) -> Program:
    """Auto-vectorize a traced kernel with greedy SLP packing."""
    return _SlpGen(spec).compile(program)
