"""Nature-style library kernels: hand-written, loop-based, size-generic.

The Tensilica SDK's "Nature" library provides expertly hand-vectorized
routines that work for *any* size: they loop instead of unrolling, and
they pay fixed costs — copying operands into stride-padded scratch
buffers so vector loads never cross row boundaries, loop bookkeeping,
and a copy-back pass.  That is why the paper finds library kernels
strong on large regular sizes but 1-6.9x slower than searched
size-specialized code on small and irregular kernels, and why the
library simply omits some kernels (no QR here, matching §5.1's note).

``nature_program`` returns the machine program plus the scratch arrays
it needs (the harness zero-allocates them).
"""

from __future__ import annotations

from repro.isa.spec import IsaSpec
from repro.kernels.specs import KernelInstance
from repro.machine.program import Program, ProgramBuilder


def has_nature_kernel(
    instance: KernelInstance, spec: IsaSpec | None = None
) -> bool:
    """Nature covers conv2d, matmul, and quaternion product — not QR.

    The conv2d and matmul routines are size- and width-generic (they
    loop over ``spec.vector_width`` blocks), but the quaternion
    product is a fixed 4-wide shuffle recipe; on any other width the
    library simply does not provide it, so with a ``spec`` the QP
    entry reports uncovered instead of failing at build time — the
    same "library omits some kernels" behavior §5.1 notes for QR.
    """
    if instance.family == "QP":
        return spec is None or spec.vector_width == 4
    return instance.family in ("2DConv", "MatMul")


def nature_program(
    instance: KernelInstance, spec: IsaSpec
) -> tuple[Program, dict]:
    """Library code + scratch arrays for one kernel instance."""
    if instance.family == "MatMul":
        return _matmul(instance, spec)
    if instance.family == "2DConv":
        return _conv2d(instance, spec)
    if instance.family == "QP":
        return _qprod(instance, spec)
    raise ValueError(
        f"the Nature library has no {instance.family} kernel "
        f"(instance {instance.key})"
    )


def _pad(value: int, width: int) -> int:
    return ((value + width - 1) // width) * width


def _counted_loop(builder: ProgramBuilder, bound_reg: str, label: str):
    """Start a zero-overhead hardware loop; returns (counter, one).

    The counter register still increments per iteration (loop bodies
    use it for addressing), but the backedge itself is free —
    Tensilica-class DSPs provide exactly this (LOOP/LEND), and library
    code leans on it.  ``label`` is kept for readability only.
    """
    counter = builder.s_const(0)
    one = builder.s_const(1)
    builder.loop_begin(bound_reg)
    return counter, one


def _loop_end(
    builder: ProgramBuilder,
    counter: str,
    one: str,
    bound_reg: str,
    label: str,
) -> None:
    builder.s_op_into(counter, "+", counter, one)
    builder.loop_end()


def _copy_strided(
    builder: ProgramBuilder,
    src: str,
    src_stride: int,
    dst: str,
    dst_stride: int,
    rows: int,
    cols: int,
    dst_row0: int = 0,
    dst_col0: int = 0,
) -> None:
    """Row-by-row scalar copy between differently strided buffers.

    Rows iterate in a machine loop; columns are unrolled (library code
    unrolls short fixed inner loops).
    """
    row_bound = builder.s_const(rows)
    src_stride_reg = builder.s_const(src_stride)
    dst_stride_reg = builder.s_const(dst_stride)
    label = builder.fresh_label("copy")
    row, one = _counted_loop(builder, row_bound, label)
    src_base = builder.s_op("*", row, src_stride_reg)
    dst_base = builder.s_op("*", row, dst_stride_reg)
    for col in range(cols):
        value = builder.s_load(src, col, index=src_base)
        builder.s_store(
            dst,
            dst_row0 * dst_stride + dst_col0 + col,
            value,
            index=dst_base,
        )
    _loop_end(builder, row, one, row_bound, label)


def _matmul(instance: KernelInstance, spec: IsaSpec):
    """Row loop; full vector blocks over columns, scalar tail columns.

    The classic library structure: the vector loop covers
    ``floor(n / W) * W`` columns with splat-MAC accumulation directly
    on the caller's row-major buffers, and the awkward tail columns
    fall back to scalar dot products — which is why small or odd
    ``n`` pays disproportionate overhead.
    """
    m = instance.params["m"]
    k = instance.params["k"]
    n = instance.params["n"]
    width = spec.vector_width
    n_full = (n // width) * width
    out = instance.program.output

    builder = ProgramBuilder()
    i_bound = builder.s_const(m)
    k_imm = builder.s_const(k)
    n_imm = builder.s_const(n)
    wstep = builder.s_const(width)

    i_label = builder.fresh_label("mm_i")
    i_reg, one = _counted_loop(builder, i_bound, i_label)
    a_row = builder.s_op("*", i_reg, k_imm)
    out_row = builder.s_op("*", i_reg, n_imm)

    if n_full:
        j_trips = builder.s_const(n_full // width)
        jb = builder.s_const(0)
        builder.loop_begin(j_trips)
        acc = builder.v_const((0.0,) * width)
        for kk in range(k):
            a_elem = builder.s_load("A", kk, index=a_row)
            a_splat = builder.v_splat(a_elem)
            b_vec = builder.v_load("B", kk * n, index=jb)
            builder.v_op_into(acc, "VecMAC", acc, a_splat, b_vec)
        out_addr = builder.s_op("+", out_row, jb)
        builder.v_store(out, 0, acc, index=out_addr)
        builder.s_op_into(jb, "+", jb, wstep)
        builder.loop_end()

    # Scalar tail columns (unrolled: there are fewer than W of them).
    for j in range(n_full, n):
        acc_s = builder.s_const(0.0)
        for kk in range(k):
            a_elem = builder.s_load("A", kk, index=a_row)
            b_elem = builder.s_load("B", kk * n + j)
            builder.s_op_into(acc_s, "mac", acc_s, a_elem, b_elem)
        builder.s_store(out, j, acc_s, index=out_row)

    _loop_end(builder, i_reg, one, i_bound, i_label)
    builder.halt()
    return builder.build(), {}


def _conv2d(instance: KernelInstance, spec: IsaSpec):
    """Padded-image convolution: vector column blocks + scalar tail.

    The image is first copied into a zero-bordered scratch buffer so
    the tap loop needs no boundary tests (the fixed library tax).  The
    compute loop then covers full vector blocks of each output row
    directly, with scalar code for the tail columns.
    """
    rows = instance.params["rows"]
    cols = instance.params["cols"]
    frows = instance.params["frows"]
    fcols = instance.params["fcols"]
    width = spec.vector_width

    out_rows = rows + frows - 1
    out_cols = cols + fcols - 1
    out_full = (out_cols // width) * width
    out = instance.program.output
    # Zero-padded image: (frows-1)/(fcols-1) borders plus extra right
    # margin so vector loads at any tap offset stay in bounds.
    p_cols = cols + 2 * (fcols - 1) + width
    p_rows = rows + 2 * (frows - 1)

    builder = ProgramBuilder()
    p_total = _pad(p_rows * p_cols, width)
    scratch = {"nat_P": p_total}

    # Stage 0: clear the padded buffer (the zero border is load-bearing;
    # a real library memsets its workspace rather than trusting the
    # allocator).
    zero_vec = builder.v_const((0.0,) * width)
    clear_trips = builder.s_const(p_total // width)
    clear_step = builder.s_const(width)
    clear_idx = builder.s_const(0)
    builder.loop_begin(clear_trips)
    builder.v_store("nat_P", 0, zero_vec, index=clear_idx)
    builder.s_op_into(clear_idx, "+", clear_idx, clear_step)
    builder.loop_end()

    # Stage 1: copy the image into the padded buffer.
    _copy_strided(
        builder, "I", cols, "nat_P", p_cols, rows, cols,
        dst_row0=frows - 1, dst_col0=fcols - 1,
    )

    # Stage 2: r over output rows (loop); c over full vector blocks
    # (loop) with the filter taps unrolled; scalar tail columns.
    r_bound = builder.s_const(out_rows)
    pcols_imm = builder.s_const(p_cols)
    ocols_imm = builder.s_const(out_cols)
    wstep = builder.s_const(width)

    r_label = builder.fresh_label("cv_r")
    r_reg, one = _counted_loop(builder, r_bound, r_label)
    p_row = builder.s_op("*", r_reg, pcols_imm)
    o_row = builder.s_op("*", r_reg, ocols_imm)

    if out_full:
        c_trips = builder.s_const(out_full // width)
        cb = builder.s_const(0)
        builder.loop_begin(c_trips)
        acc = builder.v_const((0.0,) * width)
        base = builder.s_op("+", p_row, cb)
        for i in range(frows):
            for j in range(fcols):
                tap = builder.s_load("F", i * fcols + j)
                tap_splat = builder.v_splat(tap)
                offset = (frows - 1 - i) * p_cols + (fcols - 1 - j)
                window = builder.v_load("nat_P", offset, index=base)
                builder.v_op_into(acc, "VecMAC", acc, tap_splat, window)
        out_addr = builder.s_op("+", o_row, cb)
        builder.v_store(out, 0, acc, index=out_addr)
        builder.s_op_into(cb, "+", cb, wstep)
        builder.loop_end()

    for c in range(out_full, out_cols):
        acc_s = builder.s_const(0.0)
        for i in range(frows):
            for j in range(fcols):
                tap = builder.s_load("F", i * fcols + j)
                offset = (
                    (frows - 1 - i) * p_cols + (fcols - 1 - j) + c
                )
                pixel = builder.s_load("nat_P", offset, index=p_row)
                builder.s_op_into(acc_s, "mac", acc_s, tap, pixel)
        builder.s_store(out, c, acc_s, index=o_row)

    _loop_end(builder, r_reg, one, r_bound, r_label)
    builder.halt()
    return builder.build(), scratch


def _qprod(instance: KernelInstance, spec: IsaSpec):
    """Library quaternion product: shuffles + sign masks + MACs.

    The shuffle patterns and sign masks are intrinsically 4-wide;
    callers should gate on :func:`has_nature_kernel` (which reports QP
    uncovered off width 4) rather than catch this error.
    """
    width = spec.vector_width
    if width != 4:
        raise ValueError(
            f"the library quaternion product is 4-wide; "
            f"{spec.name!r} is {width}-wide (has_nature_kernel "
            "reports this instance uncovered)"
        )
    builder = ProgramBuilder()

    q = builder.v_load("q", 0)
    acc = builder.v_op("VecMul", builder.v_splat(builder.s_load("p", 0)), q)
    plans = [
        (1, (1, 0, 3, 2), (-1.0, 1.0, -1.0, 1.0)),
        (2, (2, 3, 0, 1), (-1.0, 1.0, 1.0, -1.0)),
        (3, (3, 2, 1, 0), (-1.0, -1.0, 1.0, 1.0)),
    ]
    for lane, pattern, signs in plans:
        shuffled = builder.v_shuffle(q, q, pattern)
        signed = builder.v_op("VecMul", shuffled, builder.v_const(signs))
        p_splat = builder.v_splat(builder.s_load("p", lane))
        acc = builder.v_op("VecMAC", acc, p_splat, signed)
    builder.v_store(instance.program.output, 0, acc)
    builder.halt()
    return builder.build(), {}
