"""Naive scalar code generation (the normalization baseline).

Computes every output element with scalar instructions, sharing common
subexpressions (a compiler without vectorization still does CSE).
This is the stand-in for the paper's "xt-clang with auto-vectorization
disabled" C++ baseline that Fig. 4 normalizes against.
"""

from __future__ import annotations

from repro.compiler.frontend import KernelProgram, scalar_outputs
from repro.isa.spec import IsaSpec
from repro.lang import term as T
from repro.lang.ops import OpKind
from repro.lang.term import Term
from repro.machine.program import Program, ProgramBuilder


class _ScalarGen:
    def __init__(self, spec: IsaSpec):
        self._builder = ProgramBuilder()
        self._memo: dict[Term, str] = {}
        self._kinds = {i.name: i.kind for i in spec.instructions}

    def lower(self, term: Term) -> str:
        reg = self._memo.get(term)
        if reg is not None:
            return reg
        builder = self._builder
        if T.is_const(term):
            reg = builder.s_const(float(term.payload))
        elif T.is_get(term):
            array, index = term.payload
            reg = builder.s_load(array, index)
        elif self._kinds.get(term.op) is OpKind.SCALAR:
            args = [self.lower(arg) for arg in term.args]
            reg = builder.s_op(term.op, *args)
        else:
            raise ValueError(
                f"scalar codegen cannot lower operator {term.op!r}"
            )
        self._memo[term] = reg
        return reg

    def finish(self) -> Program:
        self._builder.halt()
        return self._builder.build()

    @property
    def builder(self) -> ProgramBuilder:
        return self._builder


def compile_scalar(program: KernelProgram, spec: IsaSpec) -> Program:
    """Emit purely scalar machine code for a traced kernel."""
    gen = _ScalarGen(spec)
    for i, term in enumerate(scalar_outputs(program, source=True)):
        reg = gen.lower(term)
        gen.builder.s_store(program.output, i, reg)
    return gen.finish()
