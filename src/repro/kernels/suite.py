"""The benchmark suite grid (paper Fig. 4's x-axis, scaled down).

The paper's grid runs 2DConv up to 18²x4², MatMul up to 20², QP, and
QrD at 3 and 4.  Our grid keeps every family, the irregular/regular
mix, and the small-to-large progression, at sizes a Python e-graph
compiles in seconds-to-minutes each (mapping recorded in
EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.kernels.conv2d import conv2d_kernel
from repro.kernels.mat_mul import matmul_kernel
from repro.kernels.qr import qr_kernel
from repro.kernels.quaternion import quaternion_product_kernel
from repro.kernels.specs import KernelInstance, default_vector_width
from repro.obs import current_tracer

# (rows, cols, frows, fcols) — paper label "r² x f²" style.
CONV2D_SIZES = [
    (3, 3, 2, 2),
    (3, 3, 3, 3),
    (4, 4, 2, 2),
    (4, 4, 3, 3),
    (6, 6, 3, 3),
    (8, 8, 3, 3),
]

# (m, k, n)
MATMUL_SIZES = [
    (2, 2, 2),
    (2, 3, 3),
    (3, 3, 3),
    (4, 4, 4),
    (5, 5, 5),
    (6, 6, 6),
]

QR_SIZES = [3, 4]


def default_suite(
    width: int | None = None,
    conv2d_sizes=None,
    matmul_sizes=None,
    qr_sizes=None,
    include_qprod: bool = True,
    spec=None,
) -> list[KernelInstance]:
    """The full benchmark suite in Fig. 4 display order.

    Kernels trace at ``spec.vector_width`` when an
    :class:`~repro.isa.spec.IsaSpec` is given, else at ``width``, else
    at :func:`~repro.kernels.specs.default_vector_width` — so the same
    suite retargets to any ISA family without per-kernel width
    plumbing.  Building an instance traces its kernel through the
    front end, so this is the first pipeline stage of a suite run;
    when tracing is enabled (see :mod:`repro.obs`) it emits a
    ``suite.build`` span with the family breakdown.
    """
    if width is None:
        width = (
            spec.vector_width if spec is not None
            else default_vector_width()
        )
    elif spec is not None and spec.vector_width != width:
        raise ValueError(
            f"width={width} conflicts with spec {spec.name!r} "
            f"(vector_width={spec.vector_width})"
        )
    with current_tracer().span("suite.build", width=width) as span:
        instances: list[KernelInstance] = []
        n_conv = n_matmul = n_qr = 0
        for rows, cols, frows, fcols in (
            CONV2D_SIZES if conv2d_sizes is None else conv2d_sizes
        ):
            instances.append(conv2d_kernel(rows, cols, frows, fcols, width))
            n_conv += 1
        for m, k, n in MATMUL_SIZES if matmul_sizes is None else matmul_sizes:
            instances.append(matmul_kernel(m, k, n, width))
            n_matmul += 1
        if include_qprod:
            instances.append(quaternion_product_kernel(width))
        for n in QR_SIZES if qr_sizes is None else qr_sizes:
            instances.append(qr_kernel(n, width))
            n_qr += 1
        span.add(
            n_kernels=len(instances),
            n_conv2d=n_conv,
            n_matmul=n_matmul,
            n_qr=n_qr,
            qprod=include_qprod,
        )
    return instances


def suite_by_key(width: int | None = None, spec=None) -> dict:
    """The default suite indexed by kernel key.

    ``width``/``spec`` resolve exactly as in :func:`default_suite`.
    """
    return {
        inst.key: inst for inst in default_suite(width, spec=spec)
    }
