"""Kernel instances: traced program + reference + input generation."""

from __future__ import annotations

import hashlib
import os
import random
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.compiler.frontend import KernelProgram


def default_vector_width() -> int:
    """The vector width kernels trace at when none is given.

    Reads ``REPRO_VECTOR_WIDTH`` (default 4, the base fusion-g3
    width), so a whole suite can be re-traced for a wider ISA family
    without threading a width argument through every call site.
    """
    raw = os.environ.get("REPRO_VECTOR_WIDTH", "")
    if not raw:
        return 4
    try:
        width = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_VECTOR_WIDTH={raw!r} is not an integer"
        ) from exc
    if width < 2:
        raise ValueError(
            f"REPRO_VECTOR_WIDTH={width} must be at least 2"
        )
    return width


@dataclass(frozen=True)
class KernelInstance:
    """One benchmarkable kernel at one size.

    ``reference`` maps a dict of (unpadded) numpy input arrays to the
    expected (unpadded) output array — an independent implementation,
    not derived from the traced program.
    """

    key: str
    family: str
    params: dict
    program: KernelProgram
    reference: Callable

    @property
    def arrays(self) -> dict:
        """Input/output array name → unpadded length."""
        return self.program.arrays

    @property
    def output_len(self) -> int:
        """Unpadded length of the kernel's output array."""
        return self.program.output_len

    def make_inputs(self, seed: int = 0) -> dict:
        """Seeded random inputs, one list per input array."""
        rng = random.Random((hash(self.key) & 0xFFFF) * 1_000 + seed)
        return {
            name: [round(rng.uniform(-4.0, 4.0), 3) for _ in range(length)]
            for name, length in self.arrays.items()
        }


def kernel_spec_hash(program: KernelProgram) -> str:
    """Stable short hash of a kernel's compilable surface.

    Covers everything the compiler consumes — the canonicalized term,
    output array/length, input array layout, and vector width — so two
    programs with the same hash compile identically.  Used to identify
    kernels in error reports and as the leading component of
    expansion-cache keys.
    """
    from repro.lang.parser import to_sexpr

    parts = [
        program.name,
        to_sexpr(program.term),
        program.output,
        str(program.output_len),
        ",".join(f"{k}={v}" for k, v in sorted(program.arrays.items())),
        str(program.width),
    ]
    blob = "\n".join(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


def padded_memory(instance: KernelInstance, inputs: dict) -> dict:
    """Machine memory for a run: inputs and output padded to width."""
    width = instance.program.width
    memory: dict = {}
    for name, length in instance.arrays.items():
        data = list(inputs[name])
        if len(data) != length:
            raise ValueError(
                f"{instance.key}: input {name!r} has {len(data)} values, "
                f"expected {length}"
            )
        while len(data) % width:
            data.append(0.0)
        memory[name] = data
    memory[instance.program.output] = [0.0] * instance.program.padded_len
    return memory


def run_reference(instance: KernelInstance, inputs: dict) -> np.ndarray:
    """Evaluate the numpy reference on the given inputs."""
    np_inputs = {
        name: np.asarray(inputs[name], dtype=float)
        for name in instance.arrays
    }
    return np.asarray(instance.reference(np_inputs), dtype=float).ravel()
