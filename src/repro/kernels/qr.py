"""QR decomposition by Householder reflections (the paper's QrD family).

The kernel computes the ``R`` factor of an ``n x n`` matrix with
Householder reflections.  Each step forms

    alpha = sqrt(norm_sq) * sgn(-x0)

which is exactly the fused ``VecSqrtSgn`` pattern the paper hardens in
§5.4, and updates trailing columns with multiply-subtract chains — the
``VecMulSub`` pattern.  The reference is an independent numeric
implementation of the same algorithm (sign conventions of
``np.linalg.qr`` differ, so the test suite compares against both: this
reference exactly, and ``|R|`` from numpy).
"""

from __future__ import annotations

import numpy as np

from repro.compiler.frontend import sym_sgn, sym_sqrt, trace_kernel
from repro.kernels.specs import KernelInstance, default_vector_width


def _trace_qr(n: int):
    def kernel(a):
        # R as a mutable list of traced scalars, row-major.
        r = [a[i] for i in range(n * n)]

        def at(i, j):
            return r[i * n + j]

        for k in range(n - 1):
            norm_sq = at(k, k) * at(k, k)
            for i in range(k + 1, n):
                norm_sq = norm_sq + at(i, k) * at(i, k)
            # alpha = -sgn(x0) * ||x||, phrased as the sqrt-sgn product.
            alpha = sym_sqrt(norm_sq) * sym_sgn(-at(k, k))
            v = [at(i, k) for i in range(k, n)]
            v[0] = v[0] - alpha
            v_norm_sq = v[0] * v[0]
            for i in range(1, len(v)):
                v_norm_sq = v_norm_sq + v[i] * v[i]
            for j in range(k, n):
                dot = v[0] * at(k, j)
                for i in range(1, len(v)):
                    dot = dot + v[i] * at(k + i, j)
                scale = (dot + dot) / v_norm_sq
                for i in range(len(v)):
                    r[(k + i) * n + j] = at(k + i, j) - scale * v[i]
        return r

    return kernel


def qr_reference(matrix: np.ndarray) -> np.ndarray:
    """Numeric Householder R-factor with the kernel's sign convention."""
    r = matrix.astype(float).copy()
    n = r.shape[0]
    for k in range(n - 1):
        x = r[k:, k]
        norm = np.sqrt(np.sum(x * x))
        alpha = -np.sign(x[0]) * norm
        v = x.copy()
        v[0] -= alpha
        v_norm_sq = np.sum(v * v)
        if v_norm_sq == 0:
            continue
        r[k:, k:] -= np.outer(2.0 * v / v_norm_sq, v @ r[k:, k:])
    return r


def qr_kernel(n: int, width: int | None = None) -> KernelInstance:
    """QR decomposition (R factor) of an ``n x n`` matrix.

    ``width`` defaults to :func:`~repro.kernels.specs.default_vector_width`.
    """
    program = trace_kernel(
        f"qr-{n}x{n}",
        _trace_qr(n),
        {"A": n * n},
        width if width is not None else default_vector_width(),
    )

    def reference(inputs: dict) -> np.ndarray:
        return qr_reference(inputs["A"].reshape(n, n))

    return KernelInstance(
        key=f"qr-{n}x{n}",
        family="QrD",
        params={"n": n},
        program=program,
        reference=reference,
    )
