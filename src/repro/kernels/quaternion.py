"""Quaternion product (the paper's QP kernel).

The Hamilton product of two quaternions — the single fixed-size kernel
the paper includes, "commonly used in pose estimation".  Its 16
multiplies with irregular sign structure vectorize well under search
but poorly under fixed-strategy vectorizers.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.frontend import trace_kernel
from repro.kernels.specs import KernelInstance, default_vector_width


def _trace_qprod():
    def kernel(p, q):
        pw, px, py, pz = p[0], p[1], p[2], p[3]
        qw, qx, qy, qz = q[0], q[1], q[2], q[3]
        return [
            pw * qw - px * qx - py * qy - pz * qz,
            pw * qx + px * qw + py * qz - pz * qy,
            pw * qy - px * qz + py * qw + pz * qx,
            pw * qz + px * qy - py * qx + pz * qw,
        ]

    return kernel


def quaternion_product_kernel(width: int | None = None) -> KernelInstance:
    """The fixed-size Hamilton-product kernel (paper's QP).

    ``width`` defaults to :func:`~repro.kernels.specs.default_vector_width`.
    """
    program = trace_kernel(
        "qprod",
        _trace_qprod(),
        {"p": 4, "q": 4},
        width if width is not None else default_vector_width(),
    )

    def reference(inputs: dict) -> np.ndarray:
        pw, px, py, pz = inputs["p"]
        qw, qx, qy, qz = inputs["q"]
        return np.array(
            [
                pw * qw - px * qx - py * qy - pz * qz,
                pw * qx + px * qw + py * qz - pz * qy,
                pw * qy - px * qz + py * qw + pz * qx,
                pw * qz + px * qy - py * qx + pz * qw,
            ]
        )

    return KernelInstance(
        key="qprod",
        family="QP",
        params={},
        program=program,
        reference=reference,
    )
