"""Matrix multiplication kernels (the paper's Matrix Mul family)."""

from __future__ import annotations

import numpy as np

from repro.compiler.frontend import trace_kernel
from repro.kernels.specs import KernelInstance, default_vector_width


def _trace_matmul(m: int, k: int, n: int):
    def kernel(a, b):
        outputs = []
        for i in range(m):
            for j in range(n):
                acc = a[i * k] * b[j]
                for kk in range(1, k):
                    acc = acc + a[i * k + kk] * b[kk * n + j]
                outputs.append(acc)
        return outputs

    return kernel


def matmul_kernel(
    m: int, k: int, n: int, width: int | None = None
) -> KernelInstance:
    """An ``m x k`` by ``k x n`` matrix multiplication instance.

    ``width`` defaults to :func:`~repro.kernels.specs.default_vector_width`.
    """
    program = trace_kernel(
        f"matmul-{m}x{k}-{k}x{n}",
        _trace_matmul(m, k, n),
        {"A": m * k, "B": k * n},
        width if width is not None else default_vector_width(),
    )

    def reference(inputs: dict) -> np.ndarray:
        a = inputs["A"].reshape(m, k)
        b = inputs["B"].reshape(k, n)
        return a @ b

    return KernelInstance(
        key=f"matmul-{m}x{k}x{n}",
        family="MatMul",
        params={"m": m, "k": k, "n": n},
        program=program,
        reference=reference,
    )
