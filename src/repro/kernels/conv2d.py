"""2D convolution kernels (the paper's 2DConv family).

Full 2D convolution of an ``m x n`` input with a ``p x q`` filter,
producing an ``(m+p-1) x (n+q-1)`` output — the irregular boundary
regions are what make this family hard for traditional
auto-vectorizers and interesting for search-based ones.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.frontend import trace_kernel
from repro.kernels.specs import KernelInstance, default_vector_width


def _trace_conv2d(rows: int, cols: int, frows: int, fcols: int):
    def kernel(image, kernel2d):
        out_rows = rows + frows - 1
        out_cols = cols + fcols - 1
        outputs = []
        for r in range(out_rows):
            for c in range(out_cols):
                acc = None
                for i in range(frows):
                    for j in range(fcols):
                        rr, cc = r - i, c - j
                        if not (0 <= rr < rows and 0 <= cc < cols):
                            continue
                        prod = (
                            image[rr * cols + cc]
                            * kernel2d[i * fcols + j]
                        )
                        acc = prod if acc is None else acc + prod
                outputs.append(acc if acc is not None else 0)
        return outputs

    return kernel


def _reference(rows: int, cols: int, frows: int, fcols: int):
    def reference(inputs: dict) -> np.ndarray:
        image = inputs["I"].reshape(rows, cols)
        filt = inputs["F"].reshape(frows, fcols)
        out = np.zeros((rows + frows - 1, cols + fcols - 1))
        for i in range(frows):
            for j in range(fcols):
                out[i : i + rows, j : j + cols] += filt[i, j] * image
        return out

    return reference


def conv2d_kernel(
    rows: int, cols: int, frows: int, fcols: int,
    width: int | None = None,
) -> KernelInstance:
    """A 2DConv instance: ``rows x cols`` image, ``frows x fcols`` filter.

    ``width`` defaults to :func:`~repro.kernels.specs.default_vector_width`.
    """
    program = trace_kernel(
        f"conv2d-{rows}x{cols}-{frows}x{fcols}",
        _trace_conv2d(rows, cols, frows, fcols),
        {"I": rows * cols, "F": frows * fcols},
        width if width is not None else default_vector_width(),
    )
    return KernelInstance(
        key=f"2dconv-{rows}x{cols}-{frows}x{fcols}",
        family="2DConv",
        params={
            "rows": rows,
            "cols": cols,
            "frows": frows,
            "fcols": fcols,
        },
        program=program,
        reference=_reference(rows, cols, frows, fcols),
    )
