"""The benchmark kernel suite (paper §5, "Benchmarks").

The same four families Diospyros and Isaria evaluate on — 2D
convolution, matrix multiplication, QR decomposition, and quaternion
product — expressed as imperative Python kernels traced through the
compiler front end, each paired with an independent numpy reference
for correctness checking.

Sizes are scaled down relative to the paper (see DESIGN.md): a Python
e-graph is orders of magnitude slower per node than egg, and every
experimental *comparison* survives the scaling.
"""

from repro.kernels.specs import (
    KernelInstance,
    default_vector_width,
    kernel_spec_hash,
    padded_memory,
    run_reference,
)
from repro.kernels.conv2d import conv2d_kernel
from repro.kernels.mat_mul import matmul_kernel
from repro.kernels.qr import qr_kernel
from repro.kernels.quaternion import quaternion_product_kernel
from repro.kernels.suite import default_suite, suite_by_key

__all__ = [
    "KernelInstance",
    "default_vector_width",
    "kernel_spec_hash",
    "padded_memory",
    "run_reference",
    "conv2d_kernel",
    "matmul_kernel",
    "qr_kernel",
    "quaternion_product_kernel",
    "default_suite",
    "suite_by_key",
]
