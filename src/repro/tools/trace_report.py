"""Render a pipeline trace as a per-phase timeline + hottest rules.

Usage::

    python -m repro.tools.trace_report trace.jsonl [--top N] [--max-depth D]

Reads the JSONL trace that ``REPRO_TRACE=trace.jsonl`` produces (see
``docs/observability.md`` for the span schema), rebuilds the span
tree, and prints:

1. a **timeline table**: every span in start order, indented by
   nesting depth, with its offset from trace start, duration, and a
   compact payload summary;
2. a **phase rollup**: total wall-clock per span name;
3. a **pipeline pass rollup**: wall-clock per ``pass.<name>`` span —
   the span-level view of ``CompileReport.pass_times()``, aggregated
   across every compilation in the trace;
4. a **pipeline stage rollup**: per-stage execution vs queue-wait
   times from the ``pipeline.stage`` records the staged
   ``compile_many`` emits, plus expansion-cache hit/miss tallies;
5. a **service rollup**: compile-server health from ``service.*``
   records — queue wait, batch size, and the result-cache / in-flight
   dedupe hit rates (see ``docs/service.md``);
6. an **isa rollup**: per-ISA-family cycles, lane utilization, and
   masked-op share from the ``machine.run`` records every simulator
   run emits;
7. a **synthesis rollup**: per-term-size enumeration timings and the
   verify batching counters carried by ``synthesize.*`` spans (the
   span-level view of ``SynthesisPerf``);
8. a **minimize rollup**: the rule-count funnel of the minimization
   stages — dominated-rule cost pruning and the derivability shrink —
   from the ``synthesize.cost_prune`` / ``synthesize.minimize``
   records;
9. the **top-N hottest rules** by cumulative e-match time, aggregated
   from the ``SaturationPerf`` payloads of every ``eqsat`` span;
10. a **scheduling rollup**: every rule's match-time share next to the
   merges it bought, flagging zero-merge rules as disable candidates
   for ``repro-autotune`` (see :mod:`repro.tools.autotune`).
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Payload keys hidden from the timeline "notes" column: per-rule
# breakdowns (aggregated separately) and raw per-iteration apply maps.
_NOISY_KEYS = ("rule_match_time", "rule_node_visits", "applied")


def load_events(path) -> list[dict]:
    """Parse a JSONL trace file into a list of span event dicts.

    Blank lines are skipped; a malformed line raises ``ValueError``
    naming the line number (truncated traces from a killed process are
    better diagnosed loudly than silently dropped).
    """
    events = []
    text = Path(path).read_text()
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{path}:{lineno}: not valid JSON ({exc})"
            ) from None
    return events


def _depths(events: list[dict]) -> dict[int, int]:
    """Nesting depth per span id (roots at 0).

    Parent links can cross process boundaries in merged traces, so a
    dangling parent id is treated as a root rather than an error.
    """
    by_id = {e["id"]: e for e in events if "id" in e}
    depths: dict[int, int] = {}

    def depth_of(span_id: int) -> int:
        if span_id in depths:
            return depths[span_id]
        event = by_id[span_id]
        parent = event.get("parent")
        if parent is None or parent not in by_id:
            d = 0
        else:
            d = depth_of(parent) + 1
        depths[span_id] = d
        return d

    for event in by_id.values():
        depth_of(event["id"])
    return depths


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _notes(attrs: dict, limit: int = 5) -> str:
    parts = []
    for key, value in attrs.items():
        if key in _NOISY_KEYS or isinstance(value, (dict, list)):
            continue
        parts.append(f"{key}={_fmt_value(value)}")
        if len(parts) >= limit:
            break
    return " ".join(parts)


def timeline_table(events: list[dict], max_depth: int | None = None) -> str:
    """The indented start-ordered span table."""
    spans = [e for e in events if "id" in e and "ts" in e]
    if not spans:
        return "(empty trace)"
    depths = _depths(spans)
    t0 = min(e["ts"] for e in spans)
    spans.sort(key=lambda e: (e["ts"], e["id"]))
    lines = [f"{'offset':>10}  {'duration':>10}  span"]
    lines.append("-" * 72)
    for event in spans:
        depth = depths[event["id"]]
        if max_depth is not None and depth > max_depth:
            continue
        name = "  " * depth + event["name"]
        notes = _notes(event.get("attrs", {}))
        lines.append(
            f"{(event['ts'] - t0) * 1e3:>8.1f}ms"
            f"  {event.get('dur', 0.0) * 1e3:>8.1f}ms"
            f"  {name}" + (f"  [{notes}]" if notes else "")
        )
    return "\n".join(lines)


def phase_rollup(events: list[dict]) -> str:
    """Total wall-clock and span count per span name.

    Nested spans of the same name (e.g. every ``eqsat`` call) are all
    counted, so the rollup answers "where did the time go by stage",
    not "what fraction of the total" — parents include children.
    """
    totals: dict[str, tuple[float, int]] = {}
    for event in events:
        name = event.get("name")
        if name is None:
            continue
        dur, count = totals.get(name, (0.0, 0))
        totals[name] = (dur + event.get("dur", 0.0), count + 1)
    lines = [f"{'total':>10}  {'calls':>6}  span name"]
    lines.append("-" * 44)
    for name, (dur, count) in sorted(
        totals.items(), key=lambda kv: -kv[1][0]
    ):
        lines.append(f"{dur * 1e3:>8.1f}ms  {count:>6}  {name}")
    return "\n".join(lines)


def pass_rollup(events: list[dict]) -> str:
    """Wall-clock per pipeline pass, aggregated across compilations.

    Reads the ``pass.<name>`` spans the pass pipeline emits (see
    :mod:`repro.compiler.pipeline`); skipped runs (ablation options,
    disabled validation) are counted separately so the ok-call timings
    stay comparable.
    """
    totals: dict[str, tuple[float, int, int]] = {}
    for event in events:
        name = event.get("name", "")
        if not name.startswith("pass."):
            continue
        attrs = event.get("attrs", {})
        dur, count, skipped = totals.get(name[5:], (0.0, 0, 0))
        if attrs.get("status") == "skipped":
            skipped += 1
        else:
            dur += event.get("dur", 0.0)
            count += 1
        totals[name[5:]] = (dur, count, skipped)
    if not totals:
        return "(no pipeline pass spans in this trace)"
    lines = [f"{'total':>10}  {'calls':>6}  {'skipped':>8}  pass"]
    lines.append("-" * 44)
    for name, (dur, count, skipped) in sorted(
        totals.items(), key=lambda kv: -kv[1][0]
    ):
        lines.append(
            f"{dur * 1e3:>8.1f}ms  {count:>6}  {skipped:>8}  {name}"
        )
    return "\n".join(lines)


def synthesis_rollup(events: list[dict]) -> str:
    """Offline-stage breakdown from ``synthesize.*`` spans.

    Shows per-term-size enumeration cost (time, terms constructed, new
    representatives — the ``SynthesisPerf`` per-size counters the
    enumerate span carries) and how much of verification ran batched
    vs through the legacy per-environment loop, aggregated across
    every synthesis run in the trace.
    """
    size_times: dict[str, float] = {}
    size_terms: dict[str, int] = {}
    size_new: dict[str, int] = {}
    backend = None
    shards = 0
    batched_terms = 0
    legacy_terms = 0
    screened = 0
    seen = False
    for event in events:
        name = event.get("name", "")
        if not name.startswith("synthesize."):
            continue
        seen = True
        attrs = event.get("attrs", {})
        if name == "synthesize.enumerate":
            backend = attrs.get("cvec_backend", backend)
            shards += attrs.get("shards", 0)
            for totals, key in (
                (size_times, "size_times"),
                (size_terms, "size_terms"),
                (size_new, "size_new"),
            ):
                for size, value in (attrs.get(key) or {}).items():
                    totals[size] = totals.get(size, 0) + value
        elif name == "synthesize.verify":
            batched_terms += attrs.get("batched_terms", 0)
            legacy_terms += attrs.get("legacy_terms", 0)
        elif name == "synthesize.minimize":
            screened += attrs.get("n_screened", 0)
    if not seen:
        return "(no synthesis spans in this trace)"
    lines = []
    if backend is not None:
        lines.append(f"cvec backend: {backend} (shards: {shards})")
    if size_times:
        lines.append(f"{'size':>6}  {'time':>10}  {'terms':>8}  {'new':>8}")
        lines.append("-" * 40)
        for size in sorted(size_times, key=lambda s: int(s)):
            lines.append(
                f"{size:>6}"
                f"  {size_times[size] * 1e3:>8.1f}ms"
                f"  {size_terms.get(size, 0):>8}"
                f"  {size_new.get(size, 0):>8}"
            )
    lines.append(
        f"verify sides: {batched_terms} batched, {legacy_terms} legacy"
        f"; minimize screened: {screened}"
    )
    return "\n".join(lines)


def minimize_rollup(events: list[dict]) -> str:
    """Ruleset-shrinking summary from the minimization-stage spans.

    Aggregates the ``synthesize.cost_prune`` records (dominated-rule
    pruning: rules in/kept, dominated drops, derivability rescues) and
    the ``synthesize.minimize`` records (derivability shrink: rules
    in/kept, unsound candidates screened) across every synthesis run
    in the trace — the span-level view of the rule-count funnel the
    offline stage applies before anything ships to a compiler.
    """
    prune_in = prune_kept = dominated = rescued = 0
    prune_time = 0.0
    min_in = min_kept = screened = 0
    min_time = 0.0
    seen = False
    for event in events:
        name = event.get("name", "")
        attrs = event.get("attrs", {})
        if name == "synthesize.cost_prune":
            seen = True
            prune_in += attrs.get("n_in", 0)
            prune_kept += attrs.get("n_kept", 0)
            dominated += attrs.get("n_dominated", 0)
            rescued += attrs.get("n_rescued", 0)
            prune_time += event.get("dur", 0.0)
        elif name == "synthesize.minimize":
            seen = True
            min_in += attrs.get("n_in", 0)
            min_kept += attrs.get("n_kept", 0)
            screened += attrs.get("n_screened", 0)
            min_time += event.get("dur", 0.0)
    if not seen:
        return "(no minimization spans in this trace)"
    lines = []
    if prune_in:
        lines.append(
            f"cost prune: {prune_in} -> {prune_kept} rules "
            f"({dominated} dominated, {rescued} rescued, "
            f"{prune_time * 1e3:.1f}ms)"
        )
    if min_in:
        lines.append(
            f"derivability shrink: {min_in} -> {min_kept} rules "
            f"({screened} screened unsound, {min_time * 1e3:.1f}ms)"
        )
    return "\n".join(lines) or "(no minimization spans in this trace)"


def hottest_rules(events: list[dict], top: int = 10) -> str:
    """Top-``top`` rules by cumulative e-match time across the trace."""
    match_time: dict[str, float] = {}
    node_visits: dict[str, int] = {}
    for event in events:
        attrs = event.get("attrs", {})
        for name, t in (attrs.get("rule_match_time") or {}).items():
            match_time[name] = match_time.get(name, 0.0) + t
        for name, n in (attrs.get("rule_node_visits") or {}).items():
            node_visits[name] = node_visits.get(name, 0) + n
    if not match_time:
        return "(no rule-level counters in this trace)"
    lines = [f"{'match time':>12}  {'node visits':>12}  rule"]
    lines.append("-" * 60)
    for name, t in sorted(
        match_time.items(), key=lambda kv: -kv[1]
    )[:top]:
        lines.append(
            f"{t * 1e3:>10.1f}ms  {node_visits.get(name, 0):>12}  {name}"
        )
    return "\n".join(lines)


def scheduling_rollup(events: list[dict]) -> str:
    """Rules ranked by match-time share, with productivity flags.

    The trace-level view the schedule autotuner (see
    :mod:`repro.tools.autotune`) automates: each rule's share of total
    e-match time next to how many merges that time actually bought.
    Rules with nonzero match time and **zero** merges are flagged as
    disable candidates.  Merges come from the ``rule_unions`` counter
    on ``eqsat`` spans; for traces recorded before that counter
    existed they are reconstructed from the per-iteration ``applied``
    maps.
    """
    match_time: dict[str, float] = {}
    unions: dict[str, int] = {}
    for event in events:
        attrs = event.get("attrs", {})
        for name, t in (attrs.get("rule_match_time") or {}).items():
            match_time[name] = match_time.get(name, 0.0) + t
        for name, n in (attrs.get("rule_unions") or {}).items():
            unions[name] = unions.get(name, 0) + n
        if event.get("name") == "eqsat.iteration":
            for name, n in (attrs.get("applied") or {}).items():
                unions[name] = unions.get(name, 0) + n
    if not match_time:
        return "(no rule-level counters in this trace)"
    total = sum(match_time.values()) or 1.0
    lines = [f"{'share':>7}  {'match time':>12}  {'merges':>8}  rule"]
    lines.append("-" * 60)
    flagged = []
    for name, t in sorted(
        match_time.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        merged = unions.get(name, 0)
        note = ""
        if merged == 0 and t > 0.0:
            flagged.append(name)
            note = "  <- zero merges"
        lines.append(
            f"{t / total:>6.1%}  {t * 1e3:>10.1f}ms  {merged:>8}"
            f"  {name}{note}"
        )
    if flagged:
        lines.append(
            f"{len(flagged)} rule(s) spend match time without ever "
            "merging — disable candidates for repro-autotune: "
            + ", ".join(flagged)
        )
    return "\n".join(lines)


def pipeline_rollup(events: list[dict]) -> str:
    """Stage execution vs queue-wait times from ``pipeline.stage``
    records.

    The staged ``compile_many`` (see
    :func:`repro.compiler.pipeline.compile_many`) emits one
    ``pipeline.stage`` record per completed stage, carrying the
    in-worker execution seconds (``dur``) and how long the stage sat
    ready-but-unscheduled (``wait_s``).  This section aggregates both
    per stage kind (``start`` / ``round`` / ``optimize`` / ``finish``)
    — high wait relative to exec means the pool is the bottleneck, not
    the stages — and appends the expansion-cache hit/miss/corrupt
    tallies when any cache records are present.
    """
    totals: dict[str, tuple[float, float, int]] = {}
    cache: dict[str, int] = {}
    for event in events:
        name = event.get("name", "")
        if name.startswith("expansion_cache."):
            kind = name.split(".", 1)[1]
            cache[kind] = cache.get(kind, 0) + 1
            continue
        if name != "pipeline.stage":
            continue
        attrs = event.get("attrs", {})
        label = str(attrs.get("label", ""))
        stage = label.rsplit(":", 1)[-1] if ":" in label else label
        stage = re.sub(r"\d+$", "", stage) or "(unlabelled)"
        exec_s, wait_s, count = totals.get(stage, (0.0, 0.0, 0))
        totals[stage] = (
            exec_s + event.get("dur", 0.0),
            wait_s + attrs.get("wait_s", 0.0),
            count + 1,
        )
    if not totals and not cache:
        return "(no pipeline stage records in this trace)"
    lines = []
    if totals:
        lines.append(
            f"{'exec':>10}  {'wait':>10}  {'stages':>7}  stage"
        )
        lines.append("-" * 48)
        for stage, (exec_s, wait_s, count) in sorted(
            totals.items(), key=lambda kv: -kv[1][0]
        ):
            lines.append(
                f"{exec_s * 1e3:>8.1f}ms  {wait_s * 1e3:>8.1f}ms"
                f"  {count:>7}  {stage}"
            )
    if cache:
        parts = ", ".join(
            f"{cache.get(kind, 0)} {kind}"
            for kind in ("hit", "miss", "store", "corrupt")
            if cache.get(kind, 0)
        )
        lines.append(f"expansion cache: {parts}")
    return "\n".join(lines)


def service_rollup(events: list[dict]) -> str:
    """Serve-loop health from ``service.*`` records.

    Aggregates the ``service.request`` records the compile server
    emits (one per compile request, carrying ``cache_hit``,
    ``deduped``, and the seconds the job sat queued before its batch
    started) and the ``service.batch`` records (one per compile_many
    dispatch, carrying the batch size).  The rates answer the
    capacity-planning questions in ``docs/service.md``: how much
    traffic the result cache and in-flight dedupe absorb, and whether
    queue wait — not compile time — is the latency driver.
    """
    requests = 0
    cache_hits = 0
    deduped = 0
    request_time = 0.0
    queue_total = 0.0
    queue_max = 0.0
    batches = 0
    batch_kernels = 0
    batch_max = 0
    batch_time = 0.0
    seen = False
    for event in events:
        name = event.get("name", "")
        if not name.startswith("service."):
            continue
        seen = True
        attrs = event.get("attrs", {})
        if name == "service.request":
            requests += 1
            request_time += event.get("dur", 0.0)
            if attrs.get("cache_hit"):
                cache_hits += 1
            if attrs.get("deduped"):
                deduped += 1
            wait = attrs.get("queue_s", 0.0)
            queue_total += wait
            queue_max = max(queue_max, wait)
        elif name == "service.batch":
            batches += 1
            n = attrs.get("n_kernels", 0)
            batch_kernels += n
            batch_max = max(batch_max, n)
            batch_time += event.get("dur", 0.0)
    if not seen:
        return "(no service records in this trace)"
    lines = []
    if requests:
        misses = requests - cache_hits - deduped
        lines.append(
            f"requests: {requests} "
            f"({cache_hits} cache hits, {deduped} deduped, "
            f"{misses} compiled)"
        )
        lines.append(
            f"cache hit rate: {cache_hits / requests:.1%}"
            f"  dedupe rate: {deduped / requests:.1%}"
        )
        lines.append(
            f"request time: {request_time / requests * 1e3:.1f}ms avg"
            f"  queue wait: {queue_total / requests * 1e3:.1f}ms avg, "
            f"{queue_max * 1e3:.1f}ms max"
        )
    if batches:
        lines.append(
            f"batches: {batches} "
            f"({batch_kernels / batches:.1f} kernels avg, "
            f"{batch_max} max, {batch_time / batches * 1e3:.1f}ms avg)"
        )
    return "\n".join(lines)


def isa_rollup(events: list[dict]) -> str:
    """Per-ISA-family machine-run rollup from ``machine.run`` records.

    Every simulator run records its ISA name, cycle count, and
    lane-utilization counters (see
    :class:`repro.machine.simulator.SimResult`); this section groups
    them by family (``masked-w8`` and ``masked-w16`` both roll up
    under ``masked`` via :func:`repro.isa.families.family_of`) and
    reports total cycles, the active/issued lane-utilization ratio,
    and what share of vector instructions were masked — the
    at-a-glance view of how well each family's compiled code fills its
    lanes.
    """
    from repro.isa.families import family_of

    runs: dict[str, dict] = {}
    for event in events:
        if event.get("name") != "machine.run":
            continue
        attrs = event.get("attrs", {})
        family = family_of(str(attrs.get("isa", "?")))
        agg = runs.setdefault(
            family,
            {
                "runs": 0, "cycles": 0, "issued": 0, "active": 0,
                "masked": 0, "vector": 0, "widths": set(),
            },
        )
        agg["runs"] += 1
        agg["cycles"] += attrs.get("cycles", 0)
        agg["issued"] += attrs.get("lanes_issued", 0)
        agg["active"] += attrs.get("lanes_active", 0)
        agg["masked"] += attrs.get("masked_ops", 0)
        agg["vector"] += attrs.get("vector_ops", 0)
        if "width" in attrs:
            agg["widths"].add(attrs["width"])
    if not runs:
        return "(no machine.run records in this trace)"
    lines = [
        f"{'runs':>6}  {'cycles':>10}  {'util':>6}  {'masked':>7}"
        "  family (widths)"
    ]
    lines.append("-" * 56)
    for family, agg in sorted(
        runs.items(), key=lambda kv: -kv[1]["cycles"]
    ):
        util = (
            f"{agg['active'] / agg['issued']:.3f}"
            if agg["issued"] else "  -"
        )
        masked_share = (
            f"{agg['masked'] / agg['vector']:.1%}"
            if agg["vector"] else "  -"
        )
        widths = ",".join(str(w) for w in sorted(agg["widths"]))
        lines.append(
            f"{agg['runs']:>6}  {agg['cycles']:>10}  {util:>6}"
            f"  {masked_share:>7}  {family} ({widths})"
        )
    return "\n".join(lines)


def render_report(
    events: list[dict], top: int = 10, max_depth: int | None = None
) -> str:
    """The full multi-section report as one string."""
    sections = [
        "== timeline ==",
        timeline_table(events, max_depth=max_depth),
        "",
        "== per-phase rollup ==",
        phase_rollup(events),
        "",
        "== pipeline passes ==",
        pass_rollup(events),
        "",
        "== pipeline ==",
        pipeline_rollup(events),
        "",
        "== service ==",
        service_rollup(events),
        "",
        "== isa ==",
        isa_rollup(events),
        "",
        "== synthesis ==",
        synthesis_rollup(events),
        "",
        "== minimize ==",
        minimize_rollup(events),
        "",
        f"== hottest rules (top {top} by match time) ==",
        hottest_rules(events, top=top),
        "",
        "== scheduling ==",
        scheduling_rollup(events),
    ]
    return "\n".join(sections)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.trace_report",
        description="Render a REPRO_TRACE JSONL file as a timeline.",
    )
    parser.add_argument("trace", help="path to the JSONL trace file")
    parser.add_argument(
        "--top", type=int, default=10,
        help="how many hottest rules to list (default 10)",
    )
    parser.add_argument(
        "--max-depth", type=int, default=None,
        help="hide timeline spans nested deeper than this",
    )
    args = parser.parse_args(argv)
    try:
        events = load_events(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(render_report(events, top=args.top, max_depth=args.max_depth))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
