"""One-line old-vs-new comparison per ``BENCH_*.json`` benchmark.

CI's perf job regenerates the BENCH files in the worktree; the
committed versions (``git show HEAD:<file>``) are the previous
numbers.  This tool prints a compact per-bench line so the job log
answers "did this PR move the needle" without downloading artifacts::

    BENCH_saturation.json  speedup 3.41x (was 3.18x, +7%)  floor 2.0x ok

Usage::

    python -m repro.tools.bench_summary [--root DIR] [--ref HEAD]

Exit code is 0 even when a speedup regressed — the floors asserted by
the benchmarks themselves are the gate; this is a reporting surface.
A file with no committed counterpart (a brand-new bench) is reported
as ``new``.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path


def _speedups(doc: dict) -> dict[str, float]:
    """Flatten every comparable metric out of a bench document.

    Picks up numeric ``speedup`` / ``*_speedup`` ratios and ``*_rate``
    fractions.  Keys are dotted paths into ``results`` (the top-level
    ``speedup`` flattens to just ``speedup``), so benches with one
    global ratio and benches with per-workload ratios both summarize
    uniformly.
    """
    found: dict[str, float] = {}

    def walk(node, path):
        if isinstance(node, dict):
            for key, value in node.items():
                if key == "speedup" and isinstance(value, (int, float)):
                    found[".".join(path) or "speedup"] = float(value)
                elif key.endswith(("_speedup", "_rate")) and isinstance(
                    value, (int, float)
                ):
                    found[".".join(path + [key])] = float(value)
                else:
                    walk(value, path + [key])

    walk(doc.get("results", {}), [])
    return found


def _committed_doc(path: Path, ref: str, root: Path) -> dict | None:
    """The bench document at ``ref``, or ``None`` if it wasn't there."""
    try:
        blob = subprocess.run(
            ["git", "show", f"{ref}:{path.relative_to(root)}"],
            cwd=root, capture_output=True, check=True,
        ).stdout
        return json.loads(blob)
    except (subprocess.CalledProcessError, OSError, ValueError):
        return None


def summary_line(path: Path, new: dict, old: dict | None) -> str:
    """The one-line comparison for one bench file."""
    parts = [f"{path.name:24s}"]
    old_speedups = _speedups(old) if old else {}
    for key, value in sorted(_speedups(new).items()):
        # Rates are fractions, not ratios — no "x" suffix.
        unit = "" if key.endswith("_rate") else "x"
        cell = f"{key} {value:.2f}{unit}"
        was = old_speedups.get(key)
        if was:
            delta = (value - was) / was * 100.0
            cell += f" (was {was:.2f}{unit}, {delta:+.0f}%)"
        elif old is None:
            cell += " (new)"
        parts.append(cell)
    floors = new.get("floors") or {}
    if floors:
        text = ", ".join(
            f"{k}≥{v}" for k, v in sorted(floors.items())
        )
        parts.append(f"[floors: {text}]")
    return "  ".join(parts)


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.bench_summary",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="repo root holding the BENCH_*.json files (default: cwd)",
    )
    parser.add_argument(
        "--ref", default="HEAD",
        help="git ref supplying the old numbers (default: HEAD)",
    )
    args = parser.parse_args(argv)
    paths = sorted(args.root.glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json files under {args.root}", file=sys.stderr)
        return 1
    for path in paths:
        try:
            new = json.loads(path.read_text())
        except ValueError as exc:
            print(f"{path.name}: unreadable ({exc})", file=sys.stderr)
            return 1
        old = _committed_doc(path, args.ref, args.root)
        print(summary_line(path, new, old))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
