"""Generate the API reference under ``docs/api/``.

Usage::

    python -m repro.tools.build_api_docs [output-dir] [--force-fallback]

Prefers `pdoc <https://pdoc.dev>`_ when it is installed (the CI docs
job installs it); otherwise falls back to a dependency-free generator
that walks every ``repro`` module with :mod:`pkgutil` and renders each
module's docstring plus the signature and docstring of every public
symbol to Markdown.  Either way, a module that fails to import or a
public symbol that cannot be introspected fails the build — that is
the point: doc breakage surfaces on every PR.
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import pkgutil
import subprocess
import sys
from pathlib import Path


def iter_module_names(package: str = "repro") -> list[str]:
    """Every importable module name under ``package``, sorted."""
    root = importlib.import_module(package)
    names = [package]
    for info in pkgutil.walk_packages(root.__path__, prefix=f"{package}."):
        names.append(info.name)
    return sorted(names)


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return "(...)"


def _first_line(doc: str | None) -> str:
    return (doc or "").strip().splitlines()[0] if (doc or "").strip() else ""


def render_module_md(name: str) -> str:
    """One module's Markdown page (stdlib fallback renderer)."""
    module = importlib.import_module(name)
    lines = [f"# `{name}`", ""]
    if module.__doc__:
        lines += [inspect.cleandoc(module.__doc__), ""]
    exported = getattr(module, "__all__", None)
    if exported is None:
        exported = [
            n for n, obj in vars(module).items()
            if not n.startswith("_")
            and getattr(obj, "__module__", None) == name
        ]
    for symbol in exported:
        obj = getattr(module, symbol)
        if inspect.isclass(obj):
            lines += [f"## class `{symbol}{_signature(obj)}`", ""]
            if obj.__doc__:
                lines += [inspect.cleandoc(obj.__doc__), ""]
            for meth_name, meth in sorted(vars(obj).items()):
                if meth_name.startswith("_"):
                    continue
                if callable(meth) or isinstance(
                    meth, (property, staticmethod, classmethod)
                ):
                    fn = getattr(obj, meth_name)
                    lines.append(
                        f"- `{meth_name}{_signature(fn)}` — "
                        f"{_first_line(getattr(fn, '__doc__', None))}"
                    )
            lines.append("")
        elif inspect.isfunction(obj):
            lines += [f"## `{symbol}{_signature(obj)}`", ""]
            if obj.__doc__:
                lines += [inspect.cleandoc(obj.__doc__), ""]
        else:
            lines += [
                f"## `{symbol}` = `{obj!r}`"
                if not inspect.ismodule(obj)
                else f"## module `{symbol}`",
                "",
            ]
    return "\n".join(lines) + "\n"


def build_fallback(out_dir: Path, package: str = "repro") -> list[Path]:
    """Render every module to ``out_dir`` with the stdlib renderer."""
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    names = iter_module_names(package)
    index = ["# API reference", "", "Modules:", ""]
    for name in names:
        page = out_dir / f"{name}.md"
        page.write_text(render_module_md(name))
        written.append(page)
        module = importlib.import_module(name)
        index.append(f"- [`{name}`]({name}.md) — {_first_line(module.__doc__)}")
    (out_dir / "index.md").write_text("\n".join(index) + "\n")
    written.append(out_dir / "index.md")
    return written


def build_pdoc(out_dir: Path, package: str = "repro") -> bool:
    """Build HTML docs with pdoc; ``False`` if pdoc is unavailable."""
    try:
        importlib.import_module("pdoc")
    except ImportError:
        return False
    subprocess.run(
        [sys.executable, "-m", "pdoc", package, "-o", str(out_dir)],
        check=True,
    )
    return True


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.tools.build_api_docs",
        description="Generate the repro API reference.",
    )
    parser.add_argument(
        "out_dir", nargs="?", default="docs/api",
        help="output directory (default docs/api)",
    )
    parser.add_argument(
        "--force-fallback", action="store_true",
        help="skip pdoc even if installed (exercise the stdlib path)",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out_dir)
    if not args.force_fallback and build_pdoc(out_dir):
        print(f"wrote pdoc HTML reference to {out_dir}/")
        return 0
    written = build_fallback(out_dir)
    print(f"wrote {len(written)} Markdown pages to {out_dir}/ (stdlib renderer)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
