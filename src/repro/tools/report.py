"""Regenerate a measured experiment report on this machine.

Usage: python -m repro.tools.report [output.md]

Runs a small Fig. 4-style sweep (every system on a reduced kernel
grid) and writes the Markdown tables EXPERIMENTS.md is based on.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.bench.harness import run_suite
from repro.bench.report import suite_report_md
from repro.compiler.diospyros import DiospyrosCompiler
from repro.core import default_compiler
from repro.kernels import default_suite


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "EXPERIMENT-REPORT.md"
    )
    isaria = default_compiler()
    spec = isaria.spec
    rows = run_suite(
        default_suite(
            conv2d_sizes=[(3, 3, 2, 2), (4, 4, 3, 3)],
            matmul_sizes=[(2, 2, 2), (4, 4, 4)],
            qr_sizes=[3],
        ),
        spec,
        isaria=isaria,
        diospyros=DiospyrosCompiler(spec),
        systems=("scalar", "slp", "nature"),
    )
    report = suite_report_md(
        rows, "Measured kernel sweep (reduced grid)"
    )
    out.write_text(report)
    print(f"wrote {out}")
    print(report)


if __name__ == "__main__":
    main()
