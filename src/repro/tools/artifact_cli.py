"""``repro-artifact``: build / inspect / compile with compiler artifacts.

The command-line face of the offline↔online split (paper §5.3).
``build`` runs the offline stage once and writes a
:class:`~repro.core.artifact.CompilerArtifact` file; ``inspect``
prints its provenance; ``compile`` loads it and drives the online
pass pipeline over kernels from the bundled suite — without ever
re-running rule synthesis or phase assignment.

    python -m repro.tools.artifact_cli build -o fusion.json --pregen
    python -m repro.tools.artifact_cli inspect fusion.json
    python -m repro.tools.artifact_cli compile fusion.json --jobs 4

(Installed entry point: ``repro-artifact``.)
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.compiler.compile import CompileOptions
from repro.egraph.runner import RunnerLimits


def _quick_options() -> CompileOptions:
    """Reduced saturation limits for smoke runs (CI, tests)."""
    return CompileOptions(
        max_rounds=4,
        expansion_limits=RunnerLimits(
            max_iterations=4, max_nodes=12_000, time_limit=6.0
        ),
        compilation_limits=RunnerLimits(
            max_iterations=10, max_nodes=20_000, time_limit=8.0
        ),
        optimization_limits=RunnerLimits(
            max_iterations=5, max_nodes=12_000, time_limit=5.0
        ),
    )


def _cmd_build(args: argparse.Namespace) -> int:
    from repro.core.artifact import CompilerArtifact
    from repro.isa import fusion_g3_spec
    from repro.ruler.synthesize import SynthesisConfig

    spec = fusion_g3_spec()
    config = SynthesisConfig(max_term_size=args.term_size)
    t0 = time.monotonic()
    if args.pregen:
        # The shipped rule set: phase assignment still runs (cheap),
        # synthesis does not — the CI fast path.
        import dataclasses as _dc

        from repro.core.pregen import (
            DEFAULT_RULES_FILE,
            FULL_RULES_FILE,
            default_compiler,
            load_pregenerated_rules,
        )
        from repro.ruler.cost_prune import (
            cost_model_digest,
            legacy_costprune_requested,
        )

        compiler = default_compiler(spec=spec)
        artifact = CompilerArtifact.from_compiler(
            compiler,
            config=config,
            provenance={"source": "pregenerated"},
        )
        if not legacy_costprune_requested() and FULL_RULES_FILE.exists():
            # The shipped default file is the cost-pruned derivation of
            # the full set; record that lineage on the artifact.  The
            # rescue count is only in the pruned file's header comment
            # (regen_rules stamps it there), so recover it from that.
            import re as _re

            n_kept = len(load_pregenerated_rules(DEFAULT_RULES_FILE))
            n_in = len(load_pregenerated_rules(FULL_RULES_FILE))
            info = {
                "n_in": n_in,
                "n_kept": n_kept,
                "n_dominated": n_in - n_kept,
                "cost_model_digest": cost_model_digest(spec),
            }
            header = DEFAULT_RULES_FILE.read_text().split("\n", 8)[:8]
            for line in header:
                match = _re.search(r"(\d+) rescued", line)
                if match:
                    info["n_rescued"] = int(match.group(1))
                    break
            artifact = _dc.replace(artifact, pruning={"pregen": info})
    else:
        from repro.core.framework import IsariaFramework

        framework = IsariaFramework(spec, synthesis_config=config)
        compiler = framework.generate_compiler()
        artifact = compiler.to_artifact(config=config)
    if args.schedule is not None:
        import dataclasses

        from repro.egraph.scheduling import ScheduleSpec

        artifact = dataclasses.replace(
            artifact, schedule=ScheduleSpec.load(args.schedule)
        )
    path = artifact.save(args.output)
    print(
        f"wrote {path} ({len(artifact.ruleset)} rules, "
        f"{time.monotonic() - t0:.1f}s offline)"
    )
    return 0


def _format_bytes(n: int) -> str:
    """``1234567`` → ``"1.2 MB"`` (for cache summaries)."""
    for unit in ("B", "KB", "MB", "GB"):
        if n < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n} B"
        n /= 1024
    return f"{n} B"  # pragma: no cover - loop always returns


def _expansion_cache_section() -> str:
    """The expansion-cache rollup printed by ``inspect``.

    Reports the cache directory, entry count, and total bytes, then
    one line per kernel listing its stored phase-boundary snapshots
    (the keys a warm compile will hit).  The cache may be absent or
    empty — both render as a one-line note, not an error.
    """
    from repro.core.cache import expansion_cache_dir, ExpansionCache

    directory = expansion_cache_dir()
    if not directory.is_dir():
        return (
            "expansion cache: empty "
            f"(no cache directory at {directory})"
        )
    stats = ExpansionCache(directory).stats()
    lines = [
        f"expansion cache: {stats['entries']} entries, "
        f"{_format_bytes(stats['total_bytes'])} in {stats['dir']}"
    ]
    if stats["corrupt"]:
        lines.append(f"  corrupt entries: {stats['corrupt']}")
    for kernel in sorted(stats["kernels"]):
        entries = stats["kernels"][kernel]
        keys = ", ".join(
            f"{e['phase']}:{e['key'][:12]}" for e in entries
        )
        lines.append(
            f"  {kernel}: {len(entries)} snapshots ({keys})"
        )
    return "\n".join(lines)


def _registry_section(root: Path | None) -> str:
    """The compile-service registry rollup printed by ``inspect``.

    One line per published artifact (fingerprint, ISA, rule count),
    plus result-cache and expansion-warm-layer entry counts — the
    operator's view of what ``repro-serve`` can answer without any
    offline work.  An absent registry renders as a note, not an error.
    """
    from repro.service.registry import ArtifactRegistry, service_cache_dir

    directory = root if root is not None else service_cache_dir()
    if not directory.is_dir():
        return f"registry: empty (no registry at {directory})"
    stats = ArtifactRegistry(directory).stats()
    lines = [
        f"registry: {len(stats['artifacts'])} artifacts, "
        f"{stats['n_results']} cached results, "
        f"{stats['expansion_entries']} expansion snapshots "
        f"({_format_bytes(stats['expansion_bytes'])}) in {stats['root']}"
    ]
    if stats["corrupt_artifacts"]:
        lines.append(f"  corrupt artifacts: {stats['corrupt_artifacts']}")
    for art in stats["artifacts"]:
        lines.append(
            f"  {art['fingerprint'][:16]}  {art['isa']} "
            f"(width {art['vector_width']}, {art['n_rules']} rules, "
            f"{_format_bytes(art['bytes'])})"
        )
    return "\n".join(lines)


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.core.artifact import CompilerArtifact

    if args.registry is not None:
        # Bare ``--registry`` (const True) means the env-default root.
        root = None if args.registry is True else args.registry
        print(_registry_section(root))
        if args.artifact is None:
            return 0
        print()
    if args.artifact is None:
        print(
            "inspect: an artifact path or --registry is required",
            file=sys.stderr,
        )
        return 2
    artifact = CompilerArtifact.load(args.artifact)
    print(artifact.summary())
    print()
    print(_expansion_cache_section())
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.compiler.pipeline import compile_many
    from repro.core.artifact import CompilerArtifact
    from repro.core.framework import GeneratedCompiler
    from repro.isa import fusion_g3_spec
    from repro.kernels import default_suite

    artifact = CompilerArtifact.load(args.artifact)
    spec = fusion_g3_spec()
    options = _quick_options() if args.quick else None
    compiler = GeneratedCompiler.from_artifact(
        artifact, spec, options=options
    )

    suite = default_suite(spec=spec)
    if args.kernel:
        wanted = set(args.kernel)
        suite = [inst for inst in suite if inst.key in wanted]
        missing = wanted - {inst.key for inst in suite}
        if missing:
            print(f"unknown kernels: {sorted(missing)}", file=sys.stderr)
            return 2
    t0 = time.monotonic()
    kernels = compile_many(
        compiler,
        suite,
        validate=not args.no_validate,
        jobs=args.jobs,
    )
    wall = time.monotonic() - t0
    for kernel in kernels:
        report = kernel.report
        times = " ".join(
            f"{name}={elapsed:.2f}s"
            for name, elapsed in report.pass_times().items()
        )
        print(
            f"{kernel.name:24s} cost {report.initial_cost:>10.1f} -> "
            f"{report.final_cost:>8.1f}  ({times})"
        )
    print(f"{len(kernels)} kernels in {wall:.1f}s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-artifact`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-artifact", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser(
        "build", help="run the offline stage, write an artifact file"
    )
    build.add_argument(
        "-o", "--output", type=Path, default=Path("artifact.json"),
        help="artifact file to write (default: artifact.json)",
    )
    build.add_argument(
        "--pregen", action="store_true",
        help="use the shipped pregenerated rules instead of live synthesis",
    )
    build.add_argument(
        "--term-size", type=int, default=4,
        help="synthesis enumeration depth (default: 4)",
    )
    build.add_argument(
        "--schedule", type=Path, default=None,
        help="ScheduleSpec JSON (e.g. from repro-autotune) to embed "
        "in the artifact",
    )
    build.set_defaults(fn=_cmd_build)

    inspect_ = sub.add_parser(
        "inspect", help="print an artifact's provenance and rule counts"
    )
    inspect_.add_argument("artifact", type=Path, nargs="?", default=None)
    inspect_.add_argument(
        "--registry", type=Path, nargs="?", const=True, default=None,
        metavar="DIR",
        help="print the compile-service artifact registry at DIR "
        "(default: REPRO_SERVICE_CACHE) — usable with or without an "
        "artifact file",
    )
    inspect_.set_defaults(fn=_cmd_inspect)

    compile_ = sub.add_parser(
        "compile", help="compile suite kernels with a saved artifact"
    )
    compile_.add_argument("artifact", type=Path)
    compile_.add_argument(
        "--kernel", action="append",
        help="suite kernel key to compile (repeatable; default: all)",
    )
    compile_.add_argument(
        "--jobs", type=int, default=None,
        help="compile kernels in N parallel worker processes",
    )
    compile_.add_argument(
        "--no-validate", action="store_true",
        help="skip translation validation",
    )
    compile_.add_argument(
        "--quick", action="store_true",
        help="reduced saturation limits (smoke runs)",
    )
    compile_.set_defaults(fn=_cmd_compile)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
