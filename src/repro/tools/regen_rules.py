"""Regenerate the pregenerated rule set shipped under repro/data.

Usage: python -m repro.tools.regen_rules [max_term_size]
"""

from __future__ import annotations

import sys
import time

from repro.core.artifact import rules_to_text
from repro.core.pregen import DEFAULT_RULES_FILE
from repro.isa import fusion_g3_spec
from repro.ruler import SynthesisConfig, synthesize_rules


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    spec = fusion_g3_spec()
    start = time.time()
    result = synthesize_rules(spec, SynthesisConfig(max_term_size=size))
    header = (
        "Pregenerated Isaria rule set for the fusion-g3 base ISA.\n"
        f"Produced by synthesize_rules(SynthesisConfig(max_term_size={size}));\n"
        "regenerate with: python -m repro.tools.regen_rules\n"
        f"single-lane rules: {len(result.single_lane_rules)}; "
        f"full-width rules: {len(result.rules)}"
    )
    DEFAULT_RULES_FILE.parent.mkdir(parents=True, exist_ok=True)
    DEFAULT_RULES_FILE.write_text(rules_to_text(result.rules, header))
    print(
        f"wrote {len(result.rules)} rules to {DEFAULT_RULES_FILE} "
        f"in {time.time() - start:.0f}s"
    )


if __name__ == "__main__":
    main()
