"""Regenerate the pregenerated rule sets shipped under repro/data.

Writes both shipped files: ``fusion_g3_rules_full.txt`` (the unpruned
synthesis output, the ``REPRO_LEGACY_COSTPRUNE=1`` baseline) and
``fusion_g3_rules.txt`` (the default — the same set with cost-dominated
rules pruned via :mod:`repro.ruler.cost_prune`).  Deriving the pruned
file from the full one keeps the two sets differential-testable: the
pruned set is exactly the full set minus dominated rules.

Usage: python -m repro.tools.regen_rules [max_term_size]
"""

from __future__ import annotations

import sys
import time

from repro.core.artifact import rules_to_text
from repro.core.pregen import DEFAULT_RULES_FILE
from repro.isa import fusion_g3_spec
from repro.ruler import SynthesisConfig, synthesize_rules
from repro.ruler.cost_prune import cost_prune_rules


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    spec = fusion_g3_spec()
    # The full file always sits next to the default file (tests point
    # DEFAULT_RULES_FILE at a scratch path; both writes must follow).
    full_file = DEFAULT_RULES_FILE.with_name(
        DEFAULT_RULES_FILE.stem + "_full" + DEFAULT_RULES_FILE.suffix
    )
    start = time.time()
    result = synthesize_rules(
        spec, SynthesisConfig(max_term_size=size, cost_prune=False)
    )
    full_header = (
        "Pregenerated Isaria rule set for the fusion-g3 base ISA "
        "(full, unpruned).\n"
        f"Produced by synthesize_rules(SynthesisConfig(max_term_size={size}, "
        "cost_prune=False));\n"
        "regenerate with: python -m repro.tools.regen_rules\n"
        f"single-lane rules: {len(result.single_lane_rules)}; "
        f"full-width rules: {len(result.rules)}"
    )
    full_file.parent.mkdir(parents=True, exist_ok=True)
    full_file.write_text(rules_to_text(result.rules, full_header))
    print(f"wrote {len(result.rules)} rules to {full_file}")

    pruned, report = cost_prune_rules(result.rules, spec)
    pruned_header = (
        "Pregenerated Isaria rule set for the fusion-g3 base ISA "
        "(cost-pruned default).\n"
        f"Derived from {full_file.name} "
        f"(synthesized at max_term_size={size}) by "
        "repro.ruler.cost_prune;\n"
        "regenerate with: python -m repro.tools.regen_rules\n"
        f"kept {report.n_kept} of {report.n_in} rules "
        f"({report.n_dominated} dominated, {report.n_rescued} rescued); "
        f"cost model {report.cost_model_digest}"
    )
    DEFAULT_RULES_FILE.write_text(rules_to_text(pruned, pruned_header))
    print(
        f"wrote {len(pruned)} rules to {DEFAULT_RULES_FILE} "
        f"in {time.time() - start:.0f}s"
    )


if __name__ == "__main__":
    main()
