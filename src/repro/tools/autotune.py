"""``repro-autotune``: search saturation schedules from perf data.

The offline half of the adaptive-scheduling loop.  Trace data shows
per-rule costs are heavily skewed (on the quaternion-style workload
two of five rules consume ~60% of match time while merging nothing);
the paper's phased schedule (§5) is a *hand-tuned* answer to the same
problem.  This tool searches the schedule space automatically:

1. **profile** — run each workload under the default backoff schedule
   (or replay a ``REPRO_TRACE`` corpus) and aggregate per-rule match
   time, node visits, and productive unions;
2. **propose** — derive candidate schedule moves: disable rules with
   match cost and zero merges, tighten match budgets / lengthen bans
   for the hottest productive rules, cap phase iterations at the
   observed count;
3. **search** — greedy hill-climbing over those moves with
   random-restart move orders, deterministic under a fixed seed: the
   objective is total matcher *node visits* (a deterministic proxy
   for match time), never wall clock;
4. **validate** — a move is accepted only if every workload's
   extracted cost stays equal-or-better than the default schedule's;
   the final spec is re-validated the same way before it is returned.

The emitted :class:`~repro.egraph.scheduling.ScheduleSpec` can be
saved to a file (consumed via ``REPRO_SCHEDULE``) or attached to a
:class:`~repro.core.artifact.CompilerArtifact` (``--attach``), where
the compile pipeline picks it up for every saturation phase.

    python -m repro.tools.autotune --workload skewed -o schedule.json
    python -m repro.tools.autotune --attach artifact.json --seed 7

(Installed entry point: ``repro-autotune``.)
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor
from repro.egraph.rewrite import Rewrite, parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.egraph.scheduling import (
    PhasePolicy,
    RulePolicy,
    ScheduleSpec,
)
from repro.lang.parser import parse, to_sexpr
from repro.obs import current_tracer

# Match-budget ladder the search may tighten a hot productive rule to,
# and the ban length it may stretch an overflowing rule to.
_BUDGET_LADDER = (16, 64)
_LONG_BAN = 4

# A rule must carry at least this share of total node visits before
# budget-tightening moves are proposed for it (disables have no floor:
# a zero-merge rule is dead weight at any share).
_HOT_SHARE = 0.10


@dataclass
class TuneWorkload:
    """One replayable saturation workload the tuner measures.

    ``build`` returns a fresh e-graph plus the e-class roots whose
    extracted cost defines the quality bar; ``phase`` names which
    schedule phase the workload's saturation stands for (its phase
    policies apply).  The same 5-tuple of rules/limits/graph runs
    under every candidate schedule, so measurements are comparable.
    """

    name: str
    phase: str
    rules: list
    limits: RunnerLimits
    build: Callable[[], tuple]
    cost_model: object


@dataclass
class Measurement:
    """One workload run under one schedule."""

    workload: str
    elapsed: float
    node_visits: int
    cost: float
    extracted: tuple
    stop_reason: str
    n_iterations: int
    perf: object


@dataclass
class RuleProfile:
    """Aggregated per-rule counters driving move proposal."""

    match_time: dict = field(default_factory=dict)
    node_visits: dict = field(default_factory=dict)
    unions: dict = field(default_factory=dict)
    iterations: int = 0

    def absorb_perf(self, perf, n_iterations: int = 0) -> None:
        """Fold one run's ``SaturationPerf`` counters into this."""
        for name, t in perf.rule_match_time.items():
            self.match_time[name] = self.match_time.get(name, 0.0) + t
        for name, n in perf.rule_node_visits.items():
            self.node_visits[name] = self.node_visits.get(name, 0) + n
        for name, n in perf.rule_unions.items():
            self.unions[name] = self.unions.get(name, 0) + n
        self.iterations = max(self.iterations, n_iterations)

    @classmethod
    def from_trace_events(cls, events: list) -> "RuleProfile":
        """Aggregate a ``REPRO_TRACE`` JSONL corpus into a profile.

        Reads the per-rule counters off every ``eqsat`` span; merges
        are taken from ``rule_unions`` payloads when present and
        reconstructed from ``eqsat.iteration`` ``applied`` maps for
        traces recorded before that counter existed.
        """
        profile = cls()
        for event in events:
            attrs = event.get("attrs", {})
            for name, t in (attrs.get("rule_match_time") or {}).items():
                profile.match_time[name] = (
                    profile.match_time.get(name, 0.0) + t
                )
            for name, n in (attrs.get("rule_node_visits") or {}).items():
                profile.node_visits[name] = (
                    profile.node_visits.get(name, 0) + n
                )
            for name, n in (attrs.get("rule_unions") or {}).items():
                profile.unions[name] = profile.unions.get(name, 0) + n
            if event.get("name") == "eqsat.iteration":
                for name, n in (attrs.get("applied") or {}).items():
                    profile.unions[name] = (
                        profile.unions.get(name, 0) + n
                    )

    # from_trace_events intentionally tolerates rule names appearing
    # in only some maps: a rule with match time but no recorded unions
    # is exactly the disable candidate the tuner looks for.

        return profile

    def table(self) -> str:
        """Human-readable profile: rules ranked by match-time share."""
        total = sum(self.match_time.values()) or 1.0
        lines = [
            f"{'share':>7}  {'match time':>11}  {'visits':>10}  "
            f"{'merges':>8}  rule"
        ]
        lines.append("-" * 60)
        for name, t in sorted(
            self.match_time.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(
                f"{t / total:>6.1%}  {t * 1e3:>9.1f}ms"
                f"  {self.node_visits.get(name, 0):>10}"
                f"  {self.unions.get(name, 0):>8}  {name}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Move:
    """One candidate schedule mutation the search may apply."""

    description: str
    apply: Callable[[ScheduleSpec], ScheduleSpec]


@dataclass
class AutotuneResult:
    """What one autotune run produced."""

    spec: ScheduleSpec
    baseline: list
    tuned: list
    decisions: list
    seed: int

    @property
    def visit_reduction(self) -> float:
        """Baseline/tuned ratio of total matcher node visits."""
        before = sum(m.node_visits for m in self.baseline)
        after = sum(m.node_visits for m in self.tuned)
        return before / after if after else float("inf")

    def summary(self) -> str:
        """One-paragraph human description of the tuned schedule."""
        before = sum(m.elapsed for m in self.baseline)
        after = sum(m.elapsed for m in self.tuned)
        lines = [
            f"tuned schedule: {self.spec.summary()}",
            f"  node visits: {self.visit_reduction:.2f}x fewer "
            f"({sum(m.node_visits for m in self.baseline)} -> "
            f"{sum(m.node_visits for m in self.tuned)})",
            f"  saturation time: {before:.3f}s -> {after:.3f}s "
            "(informational; the search objective is visits)",
        ]
        for decision in self.decisions:
            lines.append(f"  + {decision}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# measurement
# ---------------------------------------------------------------------------


def measure(
    workload: TuneWorkload, spec: ScheduleSpec | None = None
) -> Measurement:
    """Run ``workload`` under ``spec`` (None → default backoff).

    Rebuilds the graph from scratch, saturates, and extracts the
    cheapest term per root — so cost comparisons between schedules are
    end-to-end, not proxy-based.
    """
    egraph, roots = workload.build()
    limits = workload.limits
    scheduler = None
    if spec is not None:
        limits = spec.limits_for(workload.phase, limits)
        scheduler = spec.scheduler_for(workload.phase, limits)
    t0 = time.perf_counter()
    report = run_saturation(
        egraph, workload.rules, limits, scheduler=scheduler
    )
    elapsed = time.perf_counter() - t0
    extractor = Extractor(egraph, workload.cost_model)
    cost = 0.0
    extracted = []
    for root in roots:
        best_cost, term = extractor.best(egraph.find(root))
        cost += best_cost
        extracted.append(to_sexpr(term))
    return Measurement(
        workload=workload.name,
        elapsed=elapsed,
        node_visits=report.perf.node_visits,
        cost=cost,
        extracted=tuple(extracted),
        stop_reason=report.stop_reason.value,
        n_iterations=report.n_iterations,
        perf=report.perf,
    )


def profile_workloads(workloads: list) -> tuple[RuleProfile, list]:
    """Default-schedule profile + baseline measurements per workload."""
    profile = RuleProfile()
    baseline = []
    for workload in workloads:
        m = measure(workload, None)
        baseline.append(m)
        profile.absorb_perf(m.perf, m.n_iterations)
    return profile, baseline


# ---------------------------------------------------------------------------
# move proposal
# ---------------------------------------------------------------------------


def candidate_moves(
    profile: RuleProfile, workloads: list
) -> list[Move]:
    """The deterministic move list the search explores, in rank order.

    Disables come first (largest match-time savings), then budget
    tightening and ban stretching for hot productive rules, then
    phase iteration caps.  Order matters only for the plain greedy
    pass — restarts shuffle it.
    """
    moves: list[Move] = []
    total_visits = sum(profile.node_visits.values()) or 1
    # Rank by node visits, never wall time: the move list (and with it
    # every decision description) must be identical across runs.
    seen = set(profile.node_visits) | set(profile.match_time)
    by_cost = sorted(
        seen, key=lambda n: (-profile.node_visits.get(n, 0), n)
    )
    for name in by_cost:
        merges = profile.unions.get(name, 0)
        visits = profile.node_visits.get(name, 0)
        if profile.match_time.get(name, 0.0) <= 0.0 and visits <= 0:
            continue
        if merges == 0:
            moves.append(
                Move(
                    f"disable {name} (zero merges, "
                    f"{visits} node visits)",
                    _rule_move(name, RulePolicy(disabled=True)),
                )
            )
    for name in by_cost:
        merges = profile.unions.get(name, 0)
        visits = profile.node_visits.get(name, 0)
        if merges == 0 or visits / total_visits < _HOT_SHARE:
            continue
        for budget in _BUDGET_LADDER:
            moves.append(
                Move(
                    f"cap {name} at {budget} matches/iteration",
                    _rule_move(name, RulePolicy(match_limit=budget)),
                )
            )
        moves.append(
            Move(
                f"stretch {name} ban to {_LONG_BAN} iterations",
                _rule_move(name, RulePolicy(ban_length=_LONG_BAN)),
            )
        )
    for workload in workloads:
        observed = profile.iterations
        if 0 < observed < workload.limits.max_iterations:
            moves.append(
                Move(
                    f"cap {workload.phase} phase at {observed} "
                    "iterations (observed maximum)",
                    _phase_move(
                        workload.phase,
                        PhasePolicy(max_iterations=observed),
                    ),
                )
            )
    return moves


def _rule_move(name: str, policy: RulePolicy):
    def apply(spec: ScheduleSpec) -> ScheduleSpec:
        return spec.with_rule(name, policy)

    return apply


def _phase_move(phase: str, policy: PhasePolicy):
    def apply(spec: ScheduleSpec) -> ScheduleSpec:
        return spec.with_phase(phase, policy)

    return apply


# ---------------------------------------------------------------------------
# search
# ---------------------------------------------------------------------------


def _evaluate(
    workloads: list, spec: ScheduleSpec, baseline: list
) -> tuple[int, bool, list]:
    """(total visits, cost-parity-holds, measurements) for one spec."""
    measurements = [measure(w, spec) for w in workloads]
    visits = sum(m.node_visits for m in measurements)
    ok = all(
        m.cost <= b.cost for m, b in zip(measurements, baseline)
    )
    return visits, ok, measurements


def autotune(
    workloads: list,
    seed: int = 0,
    restarts: int = 2,
    profile: RuleProfile | None = None,
) -> AutotuneResult:
    """Search a :class:`ScheduleSpec` for ``workloads``.

    Greedy first-improvement over :func:`candidate_moves`, restarted
    ``restarts`` times with seed-derived move orders; the best spec by
    total node visits wins (ties broken by serialized form, so the
    result is a pure function of workloads and ``seed``).  Every
    accepted move — and the final spec — must keep each workload's
    extracted cost equal-or-better than the default schedule's.

    ``profile`` replaces the profiling run (e.g. one built by
    :meth:`RuleProfile.from_trace_events` from a trace corpus);
    baseline measurements are always taken fresh, since validation
    needs them.
    """
    with current_tracer().span(
        "autotune", n_workloads=len(workloads), seed=seed
    ) as span:
        measured_profile, baseline = profile_workloads(workloads)
        if profile is None:
            profile = measured_profile
        moves = candidate_moves(profile, workloads)
        baseline_visits = sum(m.node_visits for m in baseline)

        best: tuple | None = None  # (visits, spec_json, spec, decisions)
        for restart in range(max(1, restarts)):
            order = list(moves)
            if restart:
                random.Random(seed * 9973 + restart).shuffle(order)
            spec = ScheduleSpec()
            visits = baseline_visits
            decisions: list[str] = []
            improved = True
            while improved:
                improved = False
                for move in order:
                    candidate = move.apply(spec)
                    if candidate.to_dict() == spec.to_dict():
                        continue
                    cand_visits, ok, _ = _evaluate(
                        workloads, candidate, baseline
                    )
                    if ok and cand_visits < visits:
                        spec, visits = candidate, cand_visits
                        decisions.append(move.description)
                        improved = True
            key = (visits, spec.to_json())
            if best is None or key < (best[0], best[1]):
                best = (visits, spec.to_json(), spec, decisions)

        spec, decisions = best[2], best[3]
        names = ",".join(w.name for w in workloads)
        spec = ScheduleSpec(
            rules=spec.rules,
            phases=spec.phases,
            note=f"autotuned seed={seed} workloads={names}",
        )
        # Final validation: the emitted spec must never worsen
        # extracted cost on its own validation set.
        _, ok, tuned = _evaluate(workloads, spec, baseline)
        if not ok:
            raise AssertionError(
                "autotuned schedule worsened extracted cost on the "
                "validation set — refusing to emit it"
            )
        if span.enabled:
            span.add(
                n_moves=len(moves),
                n_accepted=len(decisions),
                baseline_visits=baseline_visits,
                tuned_visits=sum(m.node_visits for m in tuned),
            )
        return AutotuneResult(
            spec=spec,
            baseline=baseline,
            tuned=tuned,
            decisions=decisions,
            seed=seed,
        )


# ---------------------------------------------------------------------------
# the bundled workload corpus
# ---------------------------------------------------------------------------


def skewed_workload(
    n_plus: int = 400, n_mul: int = 60, n_vec: int = 40,
    n_driver: int = 10,
) -> TuneWorkload:
    """The quaternion-style skewed corpus (BENCH_saturation's shape).

    One very wide ``+`` e-class that several fail-late rules scan in
    full every iteration without ever matching, plus a cheap driver
    rule that keeps iterations coming.  The pathological case the
    tuner exists for: most match time buys zero merges.
    """
    from repro.isa import fusion_g3_spec
    from repro.phases.cost import CostModel

    rules = [
        parse_rewrite("drive-comm", "(- ?a ?b) => (- ?b ?a)"),
        parse_rewrite(
            "mul-lift",
            "(* (+ ?a ?b) (+ ?c ?d)) => (* (+ ?b ?a) (+ ?d ?c))",
        ),
        parse_rewrite(
            "mul-lift-flip",
            "(* (+ ?a ?b) (+ ?c ?d)) => (* (+ ?d ?c) (+ ?b ?a))",
        ),
        parse_rewrite("mul-sq", "(* (+ ?a ?a) ?c) => (* ?c (+ ?a ?a))"),
        parse_rewrite(
            "vec-sq",
            "(Vec (+ ?a ?a) ?b ?c ?d) => (Vec (+ ?a ?a) ?d ?c ?b)",
        ),
    ]

    def build():
        g = EGraph()
        plus = g.add_term(parse("(+ (Get a 0) (Get b 0))"))
        for i in range(1, n_plus):
            g.union(
                plus, g.add_term(parse(f"(+ (Get a {i}) (Get b {i}))"))
            )
        mul = g.add_term(parse("(* (+ (Get a 0) (Get b 0)) (Get k 0))"))
        for i in range(1, n_mul):
            g.union(mul, g.add_term(parse(
                f"(* (+ (Get a {i}) (Get b {i})) (Get k {i}))"
            )))
        vec = g.add_term(parse(
            "(Vec (+ (Get a 0) (Get b 0)) (Get c 0) (Get d 0) (Get e 0))"
        ))
        for i in range(1, n_vec):
            g.union(vec, g.add_term(parse(
                f"(Vec (+ (Get a {i}) (Get b {i})) "
                f"(Get c {i}) (Get d {i}) (Get e {i}))"
            )))
        for i in range(n_driver):
            g.add_term(parse(f"(- (Get p {i}) (Get q {i}))"))
        g.rebuild()
        return g, [mul, vec]

    return TuneWorkload(
        name="skewed",
        phase="unphased",
        rules=rules,
        limits=RunnerLimits(
            max_iterations=10,
            max_nodes=10**9,
            time_limit=120.0,
            match_limit=10**9,
            match_work=10**9,
        ),
        build=build,
        cost_model=CostModel(fusion_g3_spec()),
    )


def chain_workload(depth: int = 7) -> TuneWorkload:
    """Assoc/comm explosion on a sum chain: every rule is productive.

    The backoff-tuning (rather than disabling) case — the tuner may
    tighten budgets or stretch bans, but cost parity forces it to keep
    the closure rich enough that extraction stays optimal.
    """
    from repro.isa import fusion_g3_spec
    from repro.phases.cost import CostModel

    rules = [
        parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
        parse_rewrite("assoc", "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))"),
    ]

    def build():
        g = EGraph()
        term = "(Get x 0)"
        for i in range(1, depth):
            term = f"(+ {term} (Get x {i}))"
        root = g.add_term(parse(term))
        g.rebuild()
        return g, [root]

    return TuneWorkload(
        name="chain",
        phase="unphased",
        rules=rules,
        limits=RunnerLimits(
            max_iterations=8,
            max_nodes=50_000,
            time_limit=60.0,
            match_limit=400,
            ban_length=2,
        ),
        build=build,
        cost_model=CostModel(fusion_g3_spec()),
    )


#: Named workloads the CLI can tune against.
WORKLOADS: dict[str, Callable[[], TuneWorkload]] = {
    "skewed": skewed_workload,
    "chain": chain_workload,
}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-autotune`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-autotune", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--workload", action="append", choices=sorted(WORKLOADS),
        help="corpus workload to tune against (repeatable; "
        "default: skewed)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="search seed (the result is deterministic per seed)",
    )
    parser.add_argument(
        "--restarts", type=int, default=2,
        help="random-restart move orders to try (default: 2)",
    )
    parser.add_argument(
        "--trace", type=Path, default=None,
        help="REPRO_TRACE JSONL corpus to profile from instead of a "
        "fresh profiling run",
    )
    parser.add_argument(
        "-o", "--output", type=Path, default=None,
        help="write the tuned ScheduleSpec JSON here",
    )
    parser.add_argument(
        "--attach", type=Path, default=None,
        help="compiler artifact file to embed the tuned schedule into",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    workloads = [
        WORKLOADS[name]() for name in (args.workload or ["skewed"])
    ]

    profile = None
    if args.trace is not None:
        from repro.tools.trace_report import load_events

        try:
            profile = RuleProfile.from_trace_events(
                load_events(args.trace)
            )
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"== profile (from {args.trace}) ==")
    else:
        print("== profile (fresh run, default schedule) ==")

    result = autotune(
        workloads,
        seed=args.seed,
        restarts=args.restarts,
        profile=profile,
    )
    shown = profile
    if shown is None:
        shown = RuleProfile()
        for m in result.baseline:
            shown.absorb_perf(m.perf, m.n_iterations)
    print(shown.table())
    print()
    print(result.summary())

    if args.output is not None:
        path = result.spec.save(args.output)
        print(f"wrote {path}")
    if args.attach is not None:
        import dataclasses as _dc

        from repro.core.artifact import ARTIFACT_VERSION, CompilerArtifact

        artifact = CompilerArtifact.load(args.attach)
        artifact = _dc.replace(
            artifact, schedule=result.spec, version=ARTIFACT_VERSION
        )
        artifact.save(args.attach)
        print(f"attached schedule to {args.attach}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
