"""Maintenance command-line tools."""
