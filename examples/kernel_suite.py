"""Run the paper's kernel families across every compiler and baseline.

A miniature of the Figure 4 experiment: 2D convolution, matrix
multiplication, and the quaternion product, each measured on the
cycle-level simulator under

- the naive scalar baseline,
- the Clang-like SLP auto-vectorizer,
- the Nature-style vendor library,
- the Diospyros hand-written-rules compiler,
- the Isaria generated compiler.

Run:  python examples/kernel_suite.py
"""

from repro.bench import format_speedup, print_table, run_suite
from repro.compiler.diospyros import DiospyrosCompiler
from repro.core import default_compiler
from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    quaternion_product_kernel,
)


def main() -> None:
    isaria = default_compiler()
    spec = isaria.spec
    diospyros = DiospyrosCompiler(spec)

    suite = [
        conv2d_kernel(3, 3, 2, 2),
        matmul_kernel(2, 2, 2),
        matmul_kernel(4, 4, 4),
        quaternion_product_kernel(),
    ]
    rows = run_suite(
        suite, spec, isaria=isaria, diospyros=diospyros,
        systems=("scalar", "slp", "nature"),
    )

    table = []
    for row in rows:
        table.append(
            [
                row.key,
                row.cycles("scalar"),
                format_speedup(row.speedup("slp")),
                format_speedup(row.speedup("nature")),
                format_speedup(row.speedup("diospyros")),
                format_speedup(row.speedup("isaria")),
            ]
        )
    print_table(
        ["kernel", "scalar cycles", "clang-slp", "nature", "diospyros",
         "isaria"],
        table,
        title="Speedup over the scalar baseline (cycle-level simulator)",
    )

    for row in rows:
        for system, m in row.measurements.items():
            if m.error is None and not m.correct:
                raise SystemExit(f"{row.key}/{system}: WRONG OUTPUT")
    print("\nall outputs match the numpy references")


if __name__ == "__main__":
    main()
