"""Explore an ISA customization without touching the compiler (§5.4).

The DSP engineer's workflow from the paper:

1. add ``VecSqrtSgn`` — ``sqrt(a) * sign(-b)`` per lane, the fused
   pattern at the heart of Householder QR — to the ISA specification
   (a lane-semantics function) and the cost model (one number);
2. re-run the offline stage;
3. recompile the QR kernel and measure.

No rewrite rules are written by hand: synthesis discovers the bridge
``(* (sqrt ?a) (sgn (neg ?b))) ~> (sqrtsgn ?a ?b)`` and the lane
generalizer lifts it to ``VecSqrtSgn``.

Run:  python examples/custom_instruction.py   (takes a few minutes:
the focused offline stage runs live)
"""

from repro.bench.harness import measure_compiled
from repro.core import GeneratedCompiler, load_pregenerated_rules
from repro.core.customize import synthesize_custom_rules
from repro.isa import customized_spec, fusion_g3_spec
from repro.kernels import qr_kernel
from repro.phases import CostModel, assign_phases, default_params


def compiler_for(spec, extra_rules=()):
    rules = list(load_pregenerated_rules())
    seen = {str(r) for r in rules}
    rules.extend(r for r in extra_rules if str(r) not in seen)
    cost_model = CostModel(spec)
    ruleset = assign_phases(cost_model, rules, default_params(spec))
    return GeneratedCompiler(spec=spec, cost_model=cost_model,
                             ruleset=ruleset)


def main() -> None:
    base = fusion_g3_spec()
    instance = qr_kernel(3)

    baseline = compiler_for(base)
    base_m = measure_compiled("isaria", baseline, instance)
    print(f"base ISA:        {base_m.cycles} cycles "
          f"(correct={base_m.correct})")

    custom = customized_spec(base, sqrtsgn=True)
    print("\nrunning the focused offline stage for sqrtsgn ...")
    focused = synthesize_custom_rules(
        custom,
        ("sqrtsgn", "VecSqrtSgn"),
        neighbourhood=("*", "sqrt", "sgn", "neg"),
        time_budget=150.0,
    )
    print(f"synthesized {len(focused)} rules mentioning the new "
          "instruction, e.g.:")
    for rule in focused[:4]:
        print("  ", rule)

    customized = compiler_for(custom, focused)
    custom_m = measure_compiled("isaria", customized, instance)
    print(f"\ncustom ISA:      {custom_m.cycles} cycles "
          f"(correct={custom_m.correct})")
    gain = (base_m.cycles - custom_m.cycles) / base_m.cycles * 100
    print(f"improvement:     {gain:+.1f}%  (paper's Table 2: +1.7% for "
          "VecSqrtSgn alone)")


if __name__ == "__main__":
    main()
