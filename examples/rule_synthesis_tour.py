"""A tour of the offline stage: from ISA spec to phased rule set.

Runs a small live synthesis (term size 3, seconds) and shows each step
of the paper's Fig. 2 pipeline: enumeration statistics, sample
candidate rules, lane generalization, and the cost-based phase
assignment with its alpha/beta thresholds.

Run:  python examples/rule_synthesis_tour.py
"""

from repro.isa import fusion_g3_spec
from repro.phases import (
    CostModel,
    aggregate_cost,
    assign_phases,
    cost_differential,
    default_params,
)
from repro.ruler import SynthesisConfig, synthesize_rules


def main() -> None:
    spec = fusion_g3_spec()
    print(f"ISA: {spec.name} ({len(spec.instructions)} instructions, "
          f"{spec.vector_width}-wide vectors)\n")

    result = synthesize_rules(spec, SynthesisConfig(max_term_size=3))
    print("offline stage (term size 3):")
    print(f"  terms enumerated:       {result.n_enumerated}")
    print(f"  distinct behaviours:    {result.n_representatives}")
    print(f"  cvec-equal pairs:       {result.n_pairs}")
    print(f"  directed candidates:    {result.n_candidates}")
    print(f"  verified sound:         {result.n_verified}")
    print(f"  after minimization:     {len(result.single_lane_rules)}")
    print(f"  full-width rules:       {len(result.rules)}")
    print(f"  elapsed:                {result.elapsed:.1f}s\n")

    print("sample single-lane rules:")
    for rule in result.single_lane_rules[:6]:
        print("  ", rule)

    from repro.ruler.stats import summarize

    print(f"\nrule-set statistics:\n{summarize(result.rules, spec)}")

    cost_model = CostModel(spec)
    params = default_params(spec)
    ruleset = assign_phases(cost_model, result.rules, params)
    print(f"\nphase assignment ({ruleset.summary()}):")
    for phase_name, rules in (
        ("expansion", ruleset.expansion),
        ("compilation", ruleset.compilation),
        ("optimization", ruleset.optimization),
    ):
        rule = rules[0]
        print(
            f"  {phase_name:12s} e.g. {str(rule)[:60]:62s} "
            f"CA={aggregate_cost(cost_model, rule):7.0f} "
            f"CD={cost_differential(cost_model, rule):7.0f}"
        )


if __name__ == "__main__":
    main()
