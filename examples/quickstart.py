"""Quickstart: compile a small DSP kernel with a generated compiler.

This walks the paper's §2.1 example end-to-end:

1. write an imperative kernel as a plain Python function;
2. trace it through the front end (symbolic evaluation);
3. vectorize it with the Isaria-generated compiler for the base DSP
   (rule set pregenerated from the ISA spec — see
   ``python -m repro.tools.regen_rules``);
4. inspect the compiled vector IR and the emitted C-with-intrinsics;
5. run both scalar and vectorized code on the cycle-level simulator.

Run:  python examples/quickstart.py
"""

from repro.baselines import compile_scalar
from repro.compiler import trace_kernel
from repro.core import default_compiler
from repro.lang.parser import to_sexpr
from repro.machine import Machine


def irregular_add(x, y):
    """The paper's motivating kernel: an elementwise add where the
    last lane has no second operand."""
    return [x[0] + y[0], x[1] + y[1], x[2] + y[2], x[3]]


def main() -> None:
    compiler = default_compiler()
    spec = compiler.spec

    program = trace_kernel(
        "irregular_add", irregular_add, {"x": 4, "y": 4},
        spec.vector_width,
    )
    print("scalar program (traced + normalized):")
    print(" ", to_sexpr(program.term), "\n")

    kernel = compiler.compile_kernel(program)
    print("vectorized program:")
    print(" ", to_sexpr(kernel.compiled_term), "\n")

    print("emitted C:")
    print(kernel.c_source(), "\n")

    machine = Machine(spec)
    memory = {
        "x": [1.0, 2.0, 3.0, 4.0],
        "y": [10.0, 20.0, 30.0, 40.0],
        "out": [0.0] * 4,
    }
    vec = machine.run(kernel.machine_program, memory)
    scal = machine.run(compile_scalar(program, spec), memory)
    print(f"output:           {vec.array('out')}")
    print(f"vectorized:       {vec.cycles} cycles")
    print(f"scalar baseline:  {scal.cycles} cycles")
    print(f"speedup:          {scal.cycles / vec.cycles:.2f}x")
    assert vec.array("out") == scal.array("out")


if __name__ == "__main__":
    main()
