"""A miniature of the paper's Figure 9: sweep the phase thresholds.

Re-assigns the pregenerated rule set to phases under a grid of
(alpha, beta) values and compiles one convolution kernel per cell,
printing the extraction cost.  The broad plateau of good cells around
the defaults — and the failure of the degenerate corner where every
rule becomes an optimization rule — is the paper's §5.5 observation.

Run:  python examples/alpha_beta_sweep.py   (a few minutes)
"""

from repro.bench import print_table
from repro.compiler.compile import compile_term
from repro.core import default_compiler
from repro.kernels import conv2d_kernel
from repro.phases import PhaseParams, assign_phases

ALPHAS = (5.0, 25.0, 10_000.0)
BETAS = (4.0, 12.0, 10_000.0)


def main() -> None:
    compiler = default_compiler()
    rules = compiler.ruleset.all_rules()
    instance = conv2d_kernel(3, 3, 2, 2)

    rows = []
    for alpha in ALPHAS:
        row = [f"alpha={alpha:g}"]
        for beta in BETAS:
            ruleset = assign_phases(
                compiler.cost_model, rules,
                PhaseParams(alpha=alpha, beta=beta),
            )
            _term, report = compile_term(
                instance.program.term,
                ruleset,
                compiler.cost_model,
                compiler.options,
            )
            counts = ruleset.counts()
            row.append(
                f"{report.final_cost:.0f} "
                f"(e{counts['expansion']}/c{counts['compilation']}"
                f"/o{counts['optimization']})"
            )
        rows.append(row)

    print_table(
        ["cost (phase sizes)"] + [f"beta={b:g}" for b in BETAS],
        rows,
        title="alpha/beta sweep on 2dconv-3x3-2x2 (lower cost is "
        "better)",
    )


if __name__ == "__main__":
    main()
