"""Tracing tour: watch one kernel go through the whole pipeline.

Every pipeline stage — phase assignment, each bounded ``EqSat`` call
and its iterations, extraction, translation validation, lowering,
instruction scheduling — emits a *span* when tracing is enabled (see
``docs/observability.md``).  This example compiles one small kernel
with an in-memory sink, prints the resulting span tree, and then
shows the same trace rendered by the ``trace_report`` CLI.

Outside a program, the same trace comes from the environment alone::

    REPRO_TRACE=trace.jsonl python examples/quickstart.py
    python -m repro.tools.trace_report trace.jsonl

Run:  python examples/tracing_tour.py
"""

from repro.compiler import trace_kernel
from repro.core import default_compiler
from repro.machine import Machine, schedule_program
from repro.obs import ListSink, Tracer, use_tracer
from repro.tools.trace_report import render_report


def dot_product(x, y):
    """A 4-element dot product: reduces to one vector MAC + adds."""
    return [x[0] * y[0] + x[1] * y[1] + x[2] * y[2] + x[3] * y[3]]


def main() -> None:
    compiler = default_compiler()
    spec = compiler.spec
    program = trace_kernel(
        "dot_product", dot_product, {"x": 4, "y": 4}, spec.vector_width
    )

    # Install a tracer for the dynamic extent of the compile.  The
    # ListSink keeps finished spans in memory; JsonlFileSink (or just
    # REPRO_TRACE=path) writes the same events to disk instead.
    sink = ListSink()
    with use_tracer(Tracer(sink)):
        kernel = compiler.compile_kernel(program)
        schedule_program(kernel.machine_program, Machine(spec))

    print(f"compile produced {len(sink.events)} spans\n")

    print("span tree (name, duration, payload keys):")
    children: dict = {}
    roots = []
    for event in sink.events:
        children.setdefault(event.get("parent"), []).append(event)
    for event in sorted(sink.events, key=lambda e: e["ts"]):
        if event.get("parent") is None:
            roots.append(event)

    def show(event, depth):
        keys = ", ".join(sorted(event.get("attrs", {})))
        print(
            f"  {'  ' * depth}{event['name']:<24}"
            f"{event['dur'] * 1e3:>8.1f}ms  {keys}"
        )
        for child in sorted(
            children.get(event["id"], []), key=lambda e: e["ts"]
        ):
            show(child, depth + 1)

    for root in roots:
        show(root, 0)

    print("\nthe same trace through `python -m repro.tools.trace_report`:")
    print(render_report(sink.events, top=5, max_depth=2))

    sat = kernel.report.saturation_perf()
    print(
        f"\nfolded counters: {sat.node_visits} e-nodes visited, "
        f"{kernel.report.n_eqsat_calls} EqSat calls, "
        f"final cost {kernel.report.final_cost}"
    )


if __name__ == "__main__":
    main()
