"""Visualize equality saturation on the paper's §2.1 example.

Writes three Graphviz files you can render with ``dot -Tsvg``:

- ``egraph_0_initial.dot`` — the scalar program as first inserted;
- ``egraph_1_expanded.dot`` — after the expansion phase;
- ``egraph_2_compiled.dot`` — after the compilation phase, when the
  vectorized form lives in the root class.

Run:  python examples/egraph_visualization.py [out_dir]
"""

import sys
from pathlib import Path

from repro.core import default_compiler
from repro.egraph import EGraph, run_saturation, to_dot
from repro.egraph.extract import Extractor
from repro.lang.parser import parse, to_sexpr


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(".")
    compiler = default_compiler()

    program = parse(
        "(List (Vec (+ (Get x 0) (Get y 0)) (+ (Get x 1) (Get y 1))"
        " (+ (Get x 2) (Get y 2)) (Get x 3)))"
    )
    egraph = EGraph()
    root = egraph.add_term(program)
    stages = {"egraph_0_initial.dot": to_dot(egraph)}

    run_saturation(
        egraph,
        list(compiler.ruleset.expansion),
        compiler.options.expansion_limits,
    )
    stages["egraph_1_expanded.dot"] = to_dot(egraph, max_classes=60)

    run_saturation(
        egraph,
        list(compiler.ruleset.compilation),
        compiler.options.compilation_limits,
        frontier=True,
    )
    stages["egraph_2_compiled.dot"] = to_dot(egraph, max_classes=60)

    for name, dot in stages.items():
        path = out_dir / name
        path.write_text(dot)
        print(f"wrote {path}")

    cost, best = Extractor(egraph, compiler.cost_model).best(root)
    print(f"\nextracted (cost {cost:.0f}): {to_sexpr(best)}")
    print("render with: dot -Tsvg egraph_2_compiled.dot -o out.svg")


if __name__ == "__main__":
    main()
