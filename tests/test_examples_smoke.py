"""Smoke tests: the shipped examples run end to end.

The slow examples (live synthesis) are exercised with reduced
parameters through their building blocks; the quickstart runs as-is.
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.pregen import DEFAULT_RULES_FILE

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"

needs_pregen = pytest.mark.skipif(
    not DEFAULT_RULES_FILE.exists(),
    reason="pregenerated rules not built",
)


@needs_pregen
def test_quickstart_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "speedup" in proc.stdout
    assert "vec_" in proc.stdout  # emitted intrinsics


def test_rule_synthesis_tour_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "rule_synthesis_tour.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "phase assignment" in proc.stdout
    assert "compilation" in proc.stdout


@needs_pregen
def test_tracing_tour_runs():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "tracing_tour.py")],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    # The span tree covers the pipeline end to end...
    assert "compile_kernel" in proc.stdout
    assert "eqsat" in proc.stdout
    assert "extract" in proc.stdout
    # ...and the rendered report sections appear.
    assert "== timeline ==" in proc.stdout
    assert "== per-phase rollup ==" in proc.stdout


def test_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), script.name
        assert "__main__" in text, script.name
