"""Unit tests for the machine model and cycle-level simulator."""

import pytest

from repro.machine import Machine, ProgramBuilder, SimulationError
from repro.machine.program import Instr, Program


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


class TestProgramBuilder:
    def test_fresh_registers(self):
        b = ProgramBuilder()
        assert b.scalar_reg() != b.scalar_reg()
        assert b.vector_reg() != b.vector_reg()
        assert b.fresh_label() != b.fresh_label()

    def test_labels_resolution(self):
        b = ProgramBuilder()
        b.label("top")
        b.jump("top")
        program = b.build()
        assert program.labels() == {"top": 0}

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        b.label("x")
        with pytest.raises(ValueError):
            b.build().labels()

    def test_count_by_prefix(self):
        b = ProgramBuilder()
        b.s_const(1.0)
        b.v_const((0.0,) * 4)
        b.halt()
        program = b.build()
        assert program.count("s.") == 1
        assert program.count("v.") == 1

    def test_str_rendering(self):
        b = ProgramBuilder()
        r = b.s_const(1.5)
        b.s_store("out", 0, r)
        text = str(b.build())
        assert "s.const" in text and "out[0]" in text


class TestScalarExecution:
    def test_arith(self, machine):
        b = ProgramBuilder()
        x = b.s_load("x", 0)
        y = b.s_load("x", 1)
        b.s_store("out", 0, b.s_op("+", x, y))
        b.s_store("out", 1, b.s_op("*", x, y))
        b.s_store("out", 2, b.s_op("-", x, y))
        b.s_store("out", 3, b.s_op("/", x, y))
        b.halt()
        res = machine.run(b.build(), {"x": [8.0, 2.0], "out": [0.0] * 4})
        assert res.array("out") == [10.0, 16.0, 6.0, 4.0]

    def test_saturating_semantics(self, machine):
        # Hardware-style total float ops: /0 and sqrt(-) give 0.
        b = ProgramBuilder()
        one = b.s_const(1.0)
        zero = b.s_const(0.0)
        neg = b.s_const(-4.0)
        b.s_store("out", 0, b.s_op("/", one, zero))
        b.s_store("out", 1, b.s_op("sqrt", neg))
        b.halt()
        res = machine.run(b.build(), {"out": [9.0, 9.0]})
        assert res.array("out") == [0.0, 0.0]

    def test_indexed_addressing(self, machine):
        b = ProgramBuilder()
        idx = b.s_const(2)
        val = b.s_load("x", 1, index=idx)  # x[3]
        b.s_store("out", 0, val)
        b.halt()
        res = machine.run(b.build(), {"x": [0, 1, 2, 3.5], "out": [0.0]})
        assert res.array("out") == [3.5]


class TestVectorExecution:
    def test_vector_ops(self, machine):
        b = ProgramBuilder()
        vx = b.v_load("x", 0)
        vy = b.v_load("y", 0)
        b.v_store("out", 0, b.v_op("VecMAC", vx, vy, vy))
        b.halt()
        res = machine.run(
            b.build(),
            {"x": [1, 1, 1, 1], "y": [1, 2, 3, 4], "out": [0.0] * 4},
        )
        assert res.array("out") == [2.0, 5.0, 10.0, 17.0]

    def test_insert_extract_shuffle_splat(self, machine):
        b = ProgramBuilder()
        v = b.v_load("x", 0)
        v2 = b.v_insert(v, 2, b.s_const(9.0))
        b.v_store("out", 0, b.v_shuffle(v2, v2, (3, 2, 1, 0)))
        b.s_store("out", 4, b.v_extract(v2, 2))
        b.v_store("out", 8, b.v_splat(b.s_const(7.0)))
        b.halt()
        res = machine.run(
            b.build(), {"x": [1, 2, 3, 4], "out": [0.0] * 12}
        )
        assert res.array("out")[:4] == [4.0, 9.0, 2.0, 1.0]
        assert res.array("out")[4] == 9.0
        assert res.array("out")[8:] == [7.0] * 4


class TestControlFlow:
    def test_loop_sum(self, machine):
        b = ProgramBuilder()
        i = b.s_const(0)
        n = b.s_const(8)
        one = b.s_const(1)
        acc = b.s_const(0.0)
        b.label("loop")
        x = b.s_load("x", 0, index=i)
        b.s_op_into(acc, "+", acc, x)
        b.s_op_into(i, "+", i, one)
        b.blt(i, n, "loop")
        b.s_store("out", 0, acc)
        b.halt()
        res = machine.run(
            b.build(), {"x": list(range(8)), "out": [0.0]}
        )
        assert res.array("out") == [28.0]

    def test_bnez_and_jump(self, machine):
        b = ProgramBuilder()
        flag = b.s_load("x", 0)
        b.bnez(flag, "then")
        b.s_store("out", 0, b.s_const(100.0))
        b.jump("end")
        b.label("then")
        b.s_store("out", 0, b.s_const(200.0))
        b.label("end")
        b.halt()
        res = machine.run(b.build(), {"x": [1.0], "out": [0.0]})
        assert res.array("out") == [200.0]
        res = machine.run(b.build(), {"x": [0.0], "out": [0.0]})
        assert res.array("out") == [100.0]

    def test_infinite_loop_guard(self, spec):
        machine = Machine(spec, max_instructions=1000)
        b = ProgramBuilder()
        b.label("spin")
        b.jump("spin")
        with pytest.raises(SimulationError):
            machine.run(b.build(), {})


class TestTiming:
    def test_vector_beats_scalar_on_elementwise_add(self, machine):
        scalar = ProgramBuilder()
        for i in range(4):
            x = scalar.s_load("x", i)
            y = scalar.s_load("y", i)
            scalar.s_store("out", i, scalar.s_op("+", x, y))
        scalar.halt()

        vector = ProgramBuilder()
        vector.v_store(
            "out", 0,
            vector.v_op("VecAdd", vector.v_load("x", 0),
                        vector.v_load("y", 0)),
        )
        vector.halt()

        mem = {"x": [1.0] * 4, "y": [2.0] * 4, "out": [0.0] * 4}
        s = machine.run(scalar.build(), dict(mem))
        v = machine.run(vector.build(), dict(mem))
        assert s.array("out") == v.array("out")
        assert v.cycles * 2 < s.cycles

    def test_dependent_chain_slower_than_independent(self, machine):
        dep = ProgramBuilder()
        acc = dep.s_load("x", 0)
        for i in range(1, 8):
            acc = dep.s_op("*", acc, dep.s_load("x", i))
        dep.s_store("out", 0, acc)
        dep.halt()

        indep = ProgramBuilder()
        regs = [indep.s_load("x", i) for i in range(8)]
        pairs = [
            indep.s_op("*", regs[i], regs[i + 1]) for i in range(0, 8, 2)
        ]
        top = indep.s_op(
            "*",
            indep.s_op("*", pairs[0], pairs[1]),
            indep.s_op("*", pairs[2], pairs[3]),
        )
        indep.s_store("out", 0, top)
        indep.halt()

        mem = {"x": [1.0] * 8, "out": [0.0]}
        chain = machine.run(dep.build(), dict(mem))
        tree = machine.run(indep.build(), dict(mem))
        assert tree.cycles < chain.cycles

    def test_taken_branch_costs_more(self, machine):
        taken = ProgramBuilder()
        one = taken.s_const(1.0)
        taken.bnez(one, "skip")
        taken.label("skip")
        taken.s_store("out", 0, one)
        taken.halt()

        untaken = ProgramBuilder()
        zero = untaken.s_const(0.0)
        untaken.bnez(zero, "skip")
        untaken.label("skip")
        untaken.s_store("out", 0, zero)
        untaken.halt()

        t = machine.run(taken.build(), {"out": [0.0]})
        u = machine.run(untaken.build(), {"out": [0.0]})
        assert t.cycles > u.cycles


class TestErrors:
    def test_out_of_bounds_read(self, machine):
        b = ProgramBuilder()
        b.s_load("x", 10)
        b.halt()
        with pytest.raises(SimulationError):
            machine.run(b.build(), {"x": [1.0]})

    def test_unknown_array(self, machine):
        b = ProgramBuilder()
        b.s_load("ghost", 0)
        b.halt()
        with pytest.raises(SimulationError):
            machine.run(b.build(), {})

    def test_unknown_label(self, machine):
        b = ProgramBuilder()
        b.jump("nowhere")
        with pytest.raises(SimulationError):
            machine.run(b.build(), {})

    def test_unknown_opcode(self, machine):
        program = Program([Instr("warp")])
        with pytest.raises(SimulationError):
            machine.run(program, {})

    def test_memory_isolated_between_runs(self, machine):
        b = ProgramBuilder()
        b.s_store("out", 0, b.s_const(5.0))
        b.halt()
        mem = {"out": [0.0]}
        machine.run(b.build(), mem)
        assert mem["out"] == [0.0]  # caller's memory untouched
