"""Parser edge cases beyond the basics."""

import pytest

from repro.lang import builders as B
from repro.lang.parser import ParseError, parse, parse_many, to_sexpr


class TestNumericEdges:
    def test_negative_float(self):
        assert parse("-0.25") == B.const(-0.25)

    def test_integral_float_literal(self):
        # 2.0 normalizes to the int leaf
        assert parse("2.0") is B.const(2)

    def test_scientific_notation(self):
        assert parse("1e-3") == B.const(0.001)

    def test_symbol_with_digits(self):
        term = parse("x1")
        assert term == B.symbol("x1")

    def test_dash_symbol_vs_number(self):
        # a lone '-' in head position is the subtraction operator
        assert parse("(- 1 2)").op == "-"


class TestWhitespaceAndNesting:
    def test_deep_nesting(self):
        depth = 60
        text = "(neg " * depth + "x" + ")" * depth
        term = parse(text)
        from repro.lang.term import term_depth

        assert term_depth(term) == depth + 1

    def test_newlines_and_tabs(self):
        term = parse("(+\n\t1\n\t2)")
        assert term == B.add(B.const(1), B.const(2))

    def test_parse_many_mixed(self):
        terms = parse_many("1 (neg 2)\n; comment\n(Get a 0)")
        assert len(terms) == 3
        assert terms[2] == B.get("a", 0)

    def test_empty_parse_many(self):
        assert parse_many("; only a comment") == []


class TestGetEdgeCases:
    def test_get_requires_symbol_then_const(self):
        with pytest.raises(ParseError):
            parse("(Get 1 x)")
        with pytest.raises(ParseError):
            parse("(Get x 1 2)")

    def test_get_roundtrip_large_index(self):
        term = B.get("buffer", 12345)
        assert parse(to_sexpr(term)) is term


class TestPrinterEdges:
    def test_zero_arg_compound(self):
        from repro.lang.term import make

        term = make("List")
        assert to_sexpr(term) == "(List)"

    def test_float_repr_roundtrips(self):
        for value in (0.1, -2.5, 1e-7, 3.141592653589793):
            term = B.const(value)
            assert parse(to_sexpr(term)) is term
