"""Congruence-repair cascade scenarios (the hairiest e-graph paths)."""

from repro.egraph.egraph import EGraph
from repro.lang.parser import parse


class TestRepairCascades:
    def test_union_during_repair_extends_worklist(self):
        # Merging leaves triggers parent congruence, whose union must
        # itself be repaired (grandparent congruence).
        g = EGraph()
        ggp_a = g.add_term(parse("(neg (neg (Get a 0)))"))
        ggp_b = g.add_term(parse("(neg (neg (Get b 0)))"))
        g.union(
            g.add_term(parse("(Get a 0)")),
            g.add_term(parse("(Get b 0)")),
        )
        g.rebuild()
        assert g.equivalent(ggp_a, ggp_b)

    def test_two_independent_cascades_same_rebuild(self):
        g = EGraph()
        pa = g.add_term(parse("(sgn (Get a 0))"))
        pb = g.add_term(parse("(sgn (Get b 0))"))
        qc = g.add_term(parse("(sqrt (Get c 0))"))
        qd = g.add_term(parse("(sqrt (Get d 0))"))
        g.union(g.add_term(parse("(Get a 0)")),
                g.add_term(parse("(Get b 0)")))
        g.union(g.add_term(parse("(Get c 0)")),
                g.add_term(parse("(Get d 0)")))
        g.rebuild()
        assert g.equivalent(pa, pb)
        assert g.equivalent(qc, qd)
        assert not g.equivalent(pa, qc)

    def test_hashcons_sound_after_cross_merges(self):
        g = EGraph()
        t1 = g.add_term(parse("(+ (Get a 0) (Get b 0))"))
        t2 = g.add_term(parse("(+ (Get b 0) (Get a 0))"))
        g.union(
            g.add_term(parse("(Get a 0)")),
            g.add_term(parse("(Get b 0)")),
        )
        g.rebuild()
        # with a == b, both additions are congruent
        assert g.equivalent(t1, t2)
        # and re-adding either maps into the merged class
        assert g.equivalent(
            g.add_term(parse("(+ (Get a 0) (Get a 0))")), t1
        )

    def test_node_dedup_after_merge(self):
        g = EGraph()
        t1 = g.add_term(parse("(neg (Get a 0))"))
        g.add_term(parse("(neg (Get b 0))"))
        g.union(
            g.add_term(parse("(Get a 0)")),
            g.add_term(parse("(Get b 0)")),
        )
        g.rebuild()
        merged = g.eclass(t1)
        # the two (neg ...) nodes canonicalize identically: one remains
        assert len(merged.nodes) == 1

    def test_parents_list_repaired(self):
        g = EGraph()
        g.add_term(parse("(+ (neg (Get a 0)) 1)"))
        g.add_term(parse("(+ (neg (Get b 0)) 1)"))
        g.union(
            g.add_term(parse("(Get a 0)")),
            g.add_term(parse("(Get b 0)")),
        )
        g.rebuild()
        # the leaf class's parent list references canonical classes
        leaf = g.eclass(g.add_term(parse("(Get a 0)")))
        for pnode, pclass in leaf.parents:
            assert g.canonicalize(pnode) == pnode
            assert g.find(pclass) == pclass
