"""Structural checks on the QR kernel through compilation stages.

QR is the pipeline's stress test: deep division/sqrt chains, heavy
sharing, and the custom-instruction patterns of §5.4.  These tests pin
the structural properties that make it compile at all.
"""

import numpy as np
import pytest

from repro.kernels import qr_kernel, run_reference
from repro.lang.pattern import contains_op
from repro.lang.term import subterms, term_depth, term_size


class TestQrTraceStructure:
    def test_dag_much_smaller_than_tree(self):
        instance = qr_kernel(3)
        term = instance.program.term
        dag_nodes = sum(1 for _ in subterms(term))
        tree_nodes = term_size(term)
        assert tree_nodes > dag_nodes * 5  # heavy sharing

    def test_depth_is_bounded(self):
        # depth grows with n but must stay recursion-safe
        d3 = term_depth(qr_kernel(3).program.term)
        d4 = term_depth(qr_kernel(4).program.term)
        assert d3 < d4 < 500

    def test_sqrt_sgn_product_pattern_present(self):
        # the alpha = sqrt(norm)*sgn(-x0) shape §5.4 hardens
        instance = qr_kernel(3)
        found = False
        for sub in subterms(instance.program.term):
            if (
                sub.op == "*"
                and sub.args[0].op == "sqrt"
                and sub.args[1].op == "sgn"
                and sub.args[1].args[0].op == "neg"
            ):
                found = True
                break
        assert found, "QR trace lost the sqrt-sgn-product pattern"

    def test_division_by_vnorm_present(self):
        instance = qr_kernel(3)
        assert contains_op(instance.program.term, "/")


class TestQrNumerics:
    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_reference_recovers_r(self, spec, n):
        instance = qr_kernel(n)
        inputs = instance.make_inputs(13)
        want = run_reference(instance, inputs)
        a = np.array(inputs["A"]).reshape(n, n)
        r = np.array(want).reshape(n, n)
        # R reproduces A's column norms on the diagonal magnitudes
        assert abs(abs(r[0, 0]) - np.linalg.norm(a[:, 0])) < 1e-8

    def test_orthogonality_implied(self):
        # || A ||_F == || R ||_F (Householder reflections preserve it)
        instance = qr_kernel(3)
        inputs = instance.make_inputs(3)
        r = run_reference(instance, inputs)
        a_norm = np.linalg.norm(np.array(inputs["A"]))
        r_norm = np.linalg.norm(np.array(r))
        assert abs(a_norm - r_norm) < 1e-8


@pytest.mark.slow
class TestQrCompile:
    def test_qr2_compiles_and_matches(self, spec, isaria_compiler):
        instance = qr_kernel(2)
        kernel = isaria_compiler.compile_kernel(instance)
        inputs = instance.make_inputs(1)
        result = kernel.run(inputs)
        got = result.array("out")[: instance.output_len]
        want = run_reference(instance, inputs)
        assert np.allclose(got, want, rtol=1e-3, atol=1e-4)
