"""Unit tests for the e-graph: hashcons, union, congruence closure."""

from repro.egraph.egraph import EGraph
from repro.egraph.unionfind import UnionFind
from repro.lang.parser import parse


class TestUnionFind:
    def test_make_set_and_find(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        assert uf.find(a) == a
        assert uf.find(b) == b
        assert not uf.in_same_set(a, b)

    def test_union_directed(self):
        uf = UnionFind()
        a, b = uf.make_set(), uf.make_set()
        uf.union(a, b)
        assert uf.find(b) == a
        assert uf.in_same_set(a, b)

    def test_path_compression_chain(self):
        uf = UnionFind()
        ids = [uf.make_set() for _ in range(100)]
        for x, y in zip(ids, ids[1:]):
            uf.union(x, y)
        assert all(uf.find(i) == ids[0] for i in ids)


class TestAddTerm:
    def test_hashcons_dedupes(self):
        g = EGraph()
        a = g.add_term(parse("(+ (Get x 0) 1)"))
        b = g.add_term(parse("(+ (Get x 0) 1)"))
        assert a == b
        assert g.n_classes == 3  # get, const, add

    def test_shared_subterms_share_classes(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) (Get x 0))"))
        assert g.n_classes == 2

    def test_payload_distinguishes(self):
        g = EGraph()
        a = g.add_term(parse("(Get x 0)"))
        b = g.add_term(parse("(Get x 1)"))
        assert a != b


class TestUnion:
    def test_union_merges(self):
        g = EGraph()
        a = g.add_term(parse("(+ 1 2)"))
        b = g.add_term(parse("(+ 2 1)"))
        assert not g.equivalent(a, b)
        assert g.union(a, b)
        assert g.equivalent(a, b)
        assert not g.union(a, b)  # already merged

    def test_union_count(self):
        g = EGraph()
        a = g.add_term(parse("1"))
        b = g.add_term(parse("2"))
        before = g.n_unions
        g.union(a, b)
        assert g.n_unions == before + 1


class TestCongruence:
    def test_parents_merge_after_rebuild(self):
        # if a == b then f(a) == f(b) after rebuild.
        g = EGraph()
        fa = g.add_term(parse("(neg a)"))
        fb = g.add_term(parse("(neg b)"))
        a = g.add_term(parse("a"))
        b = g.add_term(parse("b"))
        g.union(a, b)
        assert not g.equivalent(fa, fb)
        g.rebuild()
        assert g.equivalent(fa, fb)

    def test_congruence_cascades(self):
        # a == b  =>  g(f(a)) == g(f(b)) transitively.
        g = EGraph()
        gfa = g.add_term(parse("(sgn (neg a))"))
        gfb = g.add_term(parse("(sgn (neg b))"))
        g.union(g.add_term(parse("a")), g.add_term(parse("b")))
        g.rebuild()
        assert g.equivalent(gfa, gfb)
        assert g.is_clean

    def test_multi_arg_congruence(self):
        g = EGraph()
        t1 = g.add_term(parse("(+ a c)"))
        t2 = g.add_term(parse("(+ b c)"))
        g.union(g.add_term(parse("a")), g.add_term(parse("b")))
        g.rebuild()
        assert g.equivalent(t1, t2)

    def test_rebuild_idempotent(self):
        g = EGraph()
        g.add_term(parse("(+ a b)"))
        g.rebuild()
        assert g.rebuild() == 0


class TestLookup:
    def test_lookup_existing(self):
        g = EGraph()
        root = g.add_term(parse("(+ a b)"))
        assert g.lookup_term(parse("(+ a b)")) == g.find(root)
        assert g.lookup_term(parse("(+ b a)")) is None

    def test_lookup_after_union(self):
        g = EGraph()
        ab = g.add_term(parse("(+ a b)"))
        ba = g.add_term(parse("(+ b a)"))
        g.union(ab, ba)
        g.rebuild()
        assert g.lookup_term(parse("(+ a b)")) == g.lookup_term(
            parse("(+ b a)")
        )


class TestInstantiation:
    def test_add_instantiation_binds_classes(self):
        g = EGraph()
        a = g.add_term(parse("(Get x 0)"))
        b = g.add_term(parse("(Get y 0)"))
        root = g.add_instantiation(
            parse("(+ ?u ?v)"), {"u": a, "v": b}
        )
        assert g.lookup_term(parse("(+ (Get x 0) (Get y 0))")) == g.find(
            root
        )

    def test_node_count(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) (Get x 1))"))
        assert g.n_nodes == 3
        assert g.n_classes == 3
