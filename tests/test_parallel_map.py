"""Tests for the process-parallel fan-out helper (repro.bench.parallel).

``os.cpu_count()`` may be 1 in CI, so tests that exercise the real
pool force ``max_workers=2`` explicitly; the env-knob tests cover the
auto-sizing path.
"""

from __future__ import annotations

import pytest

from repro.bench.parallel import parallel_map, parallel_starmap, parallel_workers


# Pool targets must be picklable → module-level functions.
def _square(x):
    return x * x


def _affine(x, y):
    return 10 * x + y


def _boom(x):
    if x == 3:
        raise ValueError("worker failure")
    return -x


def _slow_then_value(x):
    if x == 1:
        import time

        time.sleep(5.0)
    return x + 100


class TestWorkerCount:
    def test_env_zero_forces_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert parallel_workers() == 1

    def test_env_count_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "6")
        assert parallel_workers() == 6

    def test_env_garbage_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "many")
        assert parallel_workers() >= 1

    def test_explicit_limit_caps_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL", raising=False)
        assert parallel_workers(limit=1) == 1


class TestParallelMap:
    # ``max_workers`` is a cap, not a floor, and CI boxes may report a
    # single CPU — so tests that must exercise the real pool force the
    # worker count through the environment.
    @pytest.fixture(autouse=True)
    def _two_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "2")

    def test_results_in_input_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, max_workers=2) == [
            x * x for x in items
        ]

    def test_serial_and_parallel_agree(self, monkeypatch):
        items = list(range(12))
        parallel = parallel_map(_square, items, max_workers=2)
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        serial = parallel_map(_square, items)
        assert parallel == serial

    def test_empty_and_tiny_inputs(self):
        assert parallel_map(_square, [], max_workers=2) == []
        # Below min_items the pool is skipped entirely.
        assert parallel_map(_square, [7], max_workers=2) == [49]

    def test_worker_exception_falls_back_to_serial(self):
        # A failed task is recomputed serially, so the caller sees the
        # original exception, not a pool artifact.
        with pytest.raises(ValueError, match="worker failure"):
            parallel_map(_boom, [1, 2, 3, 4], max_workers=2)

    def test_unpicklable_fn_degrades_to_serial(self):
        results = parallel_map(lambda x: x + 1, [1, 2, 3, 4], max_workers=2)
        assert results == [2, 3, 4, 5]

    def test_timeout_recovers_serially(self):
        # Task 1 sleeps past the per-task timeout; the pool is
        # abandoned and every unfinished item recomputed serially.
        results = parallel_map(
            _slow_then_value,
            [0, 2, 4],
            max_workers=2,
            task_timeout=30.0,
        )
        assert results == [100, 102, 104]


class TestParallelStarmap:
    @pytest.fixture(autouse=True)
    def _two_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL", "2")

    def test_argument_unpacking_and_order(self):
        pairs = [(i, i + 1) for i in range(8)]
        assert parallel_starmap(_affine, pairs, max_workers=2) == [
            10 * x + y for x, y in pairs
        ]

    def test_serial_env_identical(self, monkeypatch):
        pairs = [(3, 4), (5, 6)]
        fanned = parallel_starmap(_affine, pairs, max_workers=2)
        monkeypatch.setenv("REPRO_PARALLEL", "0")
        assert parallel_starmap(_affine, pairs) == fanned
