"""Unit tests for candidates, minimization, lane generalization, and
the synthesis pipeline end-to-end."""

from repro.egraph.rewrite import Rewrite, parse_rewrite
from repro.lang.parser import parse, to_sexpr
from repro.ruler import (
    SynthesisConfig,
    generalize_rules,
    minimize_rules,
    synthesize_rules,
)
from repro.ruler.candidates import (
    candidate_rules,
    canonical_wildcards,
    orient_pair,
    to_pattern,
)
from repro.ruler.lanes import deep_lift, lift_lhs, scalarize, vectorize
from repro.ruler.minimize import is_derivable


class TestCandidates:
    def test_to_pattern(self):
        assert to_pattern(parse("(+ a (neg b))")) == parse(
            "(+ ?a (neg ?b))"
        )

    def test_orient_both_directions(self):
        pairs = orient_pair(parse("(+ a b)"), parse("(+ b a)"))
        assert len(pairs) == 2

    def test_orient_var_dropping_one_direction(self):
        pairs = orient_pair(parse("(* a 0)"), parse("0"))
        assert len(pairs) == 1
        lhs, rhs = pairs[0]
        assert lhs == parse("(* ?w0 0)")
        assert rhs == parse("0")

    def test_canonical_wildcards(self):
        lhs, rhs = canonical_wildcards(
            parse("(+ ?x ?y)"), parse("(+ ?y ?x)")
        )
        assert to_sexpr(lhs) == "(+ ?w0 ?w1)"
        assert to_sexpr(rhs) == "(+ ?w1 ?w0)"

    def test_candidate_rules_dedupe(self):
        pairs = [
            (parse("(+ a b)"), parse("(+ b a)")),
            (parse("(+ x y)"), parse("(+ y x)")),  # same after renaming
        ]
        rules = candidate_rules(pairs)
        # Commutativity is self-inverse under canonical renaming, so
        # the two pairs (and both orientations) collapse to one rule.
        assert len(rules) == 1
        assert str(rules[0]) == "(+ ?w0 ?w1) => (+ ?w1 ?w0)"

    def test_trivial_identity_dropped(self):
        pairs = [(parse("(+ a b)"), parse("(+ a b)"))]
        assert candidate_rules(pairs) == []


class TestMinimize:
    def test_derivable_instance_dropped(self):
        general = parse_rewrite("mul0", "(* ?w0 0) => 0")
        instance = parse_rewrite("mul0-inst", "(* (neg ?w0) 0) => 0")
        assert is_derivable(instance, [general])

    def test_underivable_kept(self):
        comm = parse_rewrite("comm", "(+ ?w0 ?w1) => (+ ?w1 ?w0)")
        assoc = parse_rewrite(
            "assoc", "(+ (+ ?w0 ?w1) ?w2) => (+ ?w0 (+ ?w1 ?w2))"
        )
        assert not is_derivable(assoc, [comm])

    def test_minimize_orders_and_filters(self):
        rules = candidate_rules(
            [
                (parse("(* a 0)"), parse("0")),
                (parse("(* (neg a) 0)"), parse("0")),
                (parse("(+ a b)"), parse("(+ b a)")),
            ]
        )
        kept, aborted = minimize_rules(rules, batch_size=1)
        assert not aborted
        texts = {str(r) for r in kept}
        assert "(* ?w0 0) => 0" in texts
        assert "(* (neg ?w0) 0) => 0" not in texts

    def test_deadline_aborts(self):
        rules = candidate_rules(
            [(parse("(+ a b)"), parse("(+ b a)"))] * 1
        )
        kept, aborted = minimize_rules(rules, deadline=0.0)
        assert aborted and kept == []


class TestLaneTransforms:
    def test_scalarize_vector_ops(self, spec):
        assert scalarize(parse("(VecAdd ?a (VecMul ?b ?c))"), spec) == (
            parse("(+ ?a (* ?b ?c))")
        )

    def test_vectorize_scalar_ops_and_consts(self, spec):
        assert vectorize(parse("(+ ?a 0)"), spec) == parse(
            "(VecAdd ?a (Vec 0 0 0 0))"
        )

    def test_deep_lift(self, spec):
        lifted = deep_lift(parse("(mac ?c ?a ?b)"), spec)
        assert lifted == parse(
            "(VecMAC (Vec ?c.0 ?c.1 ?c.2 ?c.3) "
            "(Vec ?a.0 ?a.1 ?a.2 ?a.3) (Vec ?b.0 ?b.1 ?b.2 ?b.3))"
        )

    def test_lift_lhs_fresh_wildcards_per_lane(self, spec):
        lifted = lift_lhs(parse("(+ ?a ?b)"), spec)
        assert lifted == parse(
            "(Vec (+ ?a.0 ?b.0) (+ ?a.1 ?b.1) (+ ?a.2 ?b.2) "
            "(+ ?a.3 ?b.3))"
        )


class TestGeneralization:
    def test_produces_the_canonical_lift_rule(self, spec):
        # the rule connecting + and its single-lane VecAdd
        seed = [Rewrite("r", parse("(+ ?a ?b)"), parse("(VecAdd ?a ?b)"))]
        rules, report = generalize_rules(seed, spec)
        texts = [str(r) for r in rules]
        assert (
            "(Vec (+ ?w0 ?w1) (+ ?w2 ?w3) (+ ?w4 ?w5) (+ ?w6 ?w7)) => "
            "(VecAdd (Vec ?w0 ?w2 ?w4 ?w6) (Vec ?w1 ?w3 ?w5 ?w7))"
            in texts
        )
        assert report.n_generated == len(rules)

    def test_padding_rules_from_identity(self, spec):
        seed = [Rewrite("pad", parse("?a"), parse("(+ ?a 0)"))]
        rules, _ = generalize_rules(seed, spec)
        pads = [r for r in rules if r.lhs.op == "Vec" and r.rhs.op == "Vec"]
        assert len(pads) == spec.vector_width
        assert str(pads[0]).startswith(
            "(Vec ?w0 ?w1 ?w2 ?w3) => (Vec (+ ?w0 0)"
        )

    def test_canonical_lifts_always_present(self, spec):
        # Even from an empty seed, every vector instruction gets its
        # canonical lift rule (minimization may have dropped the
        # single-lane bridge rule it would otherwise come from).
        rules, _ = generalize_rules([], spec)
        lifted_ops = {r.rhs.op for r in rules if r.lhs.op == "Vec"}
        assert {"VecAdd", "VecMinus", "VecMul", "VecDiv", "VecMAC",
                "VecNeg", "VecSgn", "VecSqrt"} <= lifted_ops

    def test_ground_rules_stay_scalar_only(self, spec):
        seed = [Rewrite("fold", parse("(sqrt 1)"), parse("1"))]
        baseline, _ = generalize_rules([], spec)
        rules, _ = generalize_rules(seed, spec)
        extra = [r for r in rules if str(r) not in
                 {str(b) for b in baseline}]
        assert [str(r) for r in extra] == ["(sqrt 1) => 1"]

    def test_unsound_generalization_rejected(self, spec):
        # A deliberately bogus single-lane "rule" whose full-width
        # expansion is unsound must be dropped by re-verification.
        seed = [Rewrite("bogus", parse("(+ ?a ?b)"), parse("(* ?a ?b)"))]
        baseline, _ = generalize_rules([], spec)
        rules, report = generalize_rules(seed, spec)
        assert len(rules) == len(baseline)
        assert report.n_rejected >= 1


class TestSynthesisPipeline:
    def test_size3_smoke(self, synthesis_size3):
        res = synthesis_size3
        assert res.n_enumerated > 100
        assert res.n_candidates > 50
        assert res.n_unsound == 0  # cvec filtering already screened
        assert len(res.rules) > 30
        assert not res.aborted

    def test_finds_commutativity(self, synthesis_size3):
        texts = {str(r) for r in synthesis_size3.rules}
        assert "(+ ?w0 ?w1) => (+ ?w1 ?w0)" in texts
        assert "(VecAdd ?w0 ?w1) => (VecAdd ?w1 ?w0)" in texts

    def test_finds_the_vecadd_lift(self, synthesis_size3):
        lift = [
            r
            for r in synthesis_size3.rules
            if r.lhs.op == "Vec" and r.rhs.op == "VecAdd"
        ]
        assert lift

    def test_size4_finds_mac_identities(self, synthesis_size4):
        # The full (mac c a b) <=> (+ c (* a b)) link needs size-5
        # enumeration; size 4 already connects mac to multiplication.
        texts = {str(r) for r in synthesis_size4.rules}
        assert "(* ?w0 ?w1) => (mac 0 ?w0 ?w1)" in texts

    def test_size4_finds_sub_neg_bridge(self, synthesis_size4):
        texts = {str(r) for r in synthesis_size4.rules}
        assert "(- ?w0 ?w1) => (+ ?w0 (neg ?w1))" in texts or (
            "(+ ?w0 (neg ?w1)) => (- ?w0 ?w1)" in texts
        )

    def test_all_rules_verify(self, spec, synthesis_size3):
        from repro.lang.ops import OpKind
        from repro.ruler.verify import verify_rule, verify_vector_rule

        def vectorish(rule):
            for side in (rule.lhs, rule.rhs):
                for sub in _subterms(side):
                    if sub.op == "Vec":
                        return True
                    if (
                        spec.has_instruction(sub.op)
                        and spec.instruction(sub.op).kind is OpKind.VECTOR
                    ):
                        return True
            return False

        for rule in synthesis_size3.rules[:60]:
            if vectorish(rule):
                assert verify_vector_rule(
                    rule.lhs, rule.rhs, spec, n_samples=8
                ).ok, str(rule)
            else:
                assert verify_rule(
                    rule.lhs, rule.rhs, spec, n_samples=16, seed=99
                ).ok, str(rule)

    def test_budget_abort_marks_result(self, spec):
        res = synthesize_rules(
            spec, SynthesisConfig(max_term_size=6, time_budget=0.5)
        )
        assert res.aborted

    def test_budgeted_config_tiers(self):
        assert SynthesisConfig.budgeted(1).max_term_size == 3
        assert SynthesisConfig.budgeted(10).max_term_size == 4
        assert SynthesisConfig.budgeted(600).max_term_size == 5


def _subterms(term):
    from repro.lang.term import subterms

    return subterms(term)
