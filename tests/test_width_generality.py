"""Width generality: the whole pipeline at a non-default vector width.

The paper's future work points at scalable vector widths (ARM SVE);
every stage here — lane generalization, lowering, machine model,
kernels — is width-parametric, which these tests pin down at width 2.
"""

import numpy as np
import pytest

from repro.core import IsariaFramework
from repro.egraph.rewrite import Rewrite
from repro.isa import fusion_g3_spec
from repro.kernels import matmul_kernel, padded_memory, run_reference
from repro.lang.parser import parse
from repro.machine import Machine
from repro.ruler import SynthesisConfig
from repro.ruler.lanes import generalize_rules


@pytest.fixture(scope="module")
def spec_w2():
    return fusion_g3_spec(vector_width=2)


class TestWidth2Generalization:
    def test_lift_rules_are_two_wide(self, spec_w2):
        seed = [
            Rewrite("r", parse("(+ ?a ?b)"), parse("(VecAdd ?a ?b)"))
        ]
        rules, _ = generalize_rules(seed, spec_w2)
        lifts = [
            r
            for r in rules
            if r.lhs.op == "Vec" and r.rhs.op == "VecAdd"
        ]
        assert lifts
        assert len(lifts[0].lhs.args) == 2  # two lanes

    def test_machine_runs_two_wide(self, spec_w2):
        machine = Machine(spec_w2)
        assert machine.vector_width == 2
        from repro.machine import ProgramBuilder

        b = ProgramBuilder()
        v = b.v_load("x", 0)
        b.v_store("out", 0, b.v_op("VecAdd", v, v))
        b.halt()
        result = machine.run(
            b.build(), {"x": [1.0, 2.0], "out": [0.0, 0.0]}
        )
        assert result.array("out") == [2.0, 4.0]


@pytest.mark.slow
class TestWidth2EndToEnd:
    def test_generate_and_compile(self, spec_w2):
        framework = IsariaFramework(
            spec_w2, synthesis_config=SynthesisConfig(max_term_size=3)
        )
        compiler = framework.generate_compiler()
        instance = matmul_kernel(2, 2, 2, width=2)
        kernel = compiler.compile_kernel(instance)
        inputs = instance.make_inputs(1)
        result = Machine(spec_w2).run(
            kernel.machine_program, padded_memory(instance, inputs)
        )
        assert np.allclose(
            result.array("out")[: instance.output_len],
            run_reference(instance, inputs),
            rtol=1e-4,
        )
