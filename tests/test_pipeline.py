"""The pass pipeline: per-pass reports, stable order, batch driver."""

import dataclasses

import pytest

from repro.compiler.compile import CompileOptions, compile_term
from repro.compiler.pipeline import (
    CompilationContext,
    FnPass,
    Pipeline,
    baseline_kernel_pipeline,
    compile_many,
    kernel_pipeline,
    term_pipeline,
)
from repro.compiler.frontend import trace_kernel


@pytest.fixture(scope="module")
def vadd_program():
    return trace_kernel(
        "vadd",
        lambda x, y: [x[i] + y[i] for i in range(4)],
        {"x": 4, "y": 4},
        4,
    )


@pytest.fixture(scope="module")
def compiled_report(isaria_compiler, vadd_program):
    _, report = isaria_compiler.compile_term(vadd_program.term)
    return report


class TestPassReports:
    def test_pass_entries_sum_to_elapsed(self, compiled_report):
        total = sum(p.elapsed for p in compiled_report.passes)
        assert total == pytest.approx(compiled_report.elapsed, abs=1e-6)

    def test_term_pipeline_pass_names(self, compiled_report):
        assert [p.name for p in compiled_report.passes] == [
            "saturate", "optimize", "extract",
        ]
        assert all(p.status == "ok" for p in compiled_report.passes)

    def test_pass_times_keys_in_order(self, compiled_report):
        assert list(compiled_report.pass_times()) == [
            "saturate", "optimize", "extract",
        ]

    def test_kernel_pipeline_reports_all_stages(
        self, isaria_compiler, vadd_program
    ):
        kernel = isaria_compiler.compile_kernel(vadd_program)
        report = kernel.report
        assert [p.name for p in report.passes] == [
            "frontend", "saturate", "optimize", "extract", "validate",
            "lower",
        ]
        assert sum(p.elapsed for p in report.passes) == pytest.approx(
            report.elapsed, abs=1e-6
        )
        lower = report.passes[-1]
        assert lower.detail["n_instructions"] == len(
            kernel.machine_program.instrs
        )

    def test_disabled_validation_reports_skipped(
        self, isaria_compiler, vadd_program
    ):
        kernel = isaria_compiler.compile_kernel(vadd_program,
                                                validate=False)
        by_name = {p.name: p for p in kernel.report.passes}
        assert by_name["validate"].status == "skipped"


class TestAblationStability:
    def _names_and_statuses(self, compiler, term, **overrides):
        options = dataclasses.replace(compiler.options, **overrides)
        _, report = compile_term(
            term, compiler.ruleset, compiler.cost_model, options
        )
        return report, [(p.name, p.status) for p in report.passes]

    def test_order_stable_under_unphased(
        self, isaria_compiler, vadd_program
    ):
        report, passes = self._names_and_statuses(
            isaria_compiler, vadd_program.term, phased=False
        )
        assert [name for name, _ in passes] == [
            "saturate", "optimize", "extract",
        ]
        assert dict(passes)["optimize"] == "skipped"
        # Report shape of the ablation is unchanged by the pipeline.
        assert len(report.rounds) == 1
        assert report.rounds[0].expansion is None
        assert report.optimization is None
        assert sum(p.elapsed for p in report.passes) == pytest.approx(
            report.elapsed, abs=1e-6
        )

    def test_order_stable_under_no_pruning(
        self, isaria_compiler, vadd_program
    ):
        report, passes = self._names_and_statuses(
            isaria_compiler, vadd_program.term, pruning=False
        )
        assert [name for name, _ in passes] == [
            "saturate", "optimize", "extract",
        ]
        assert all(status == "ok" for _, status in passes)

    def test_pipeline_factories_report_names(self):
        assert term_pipeline().names() == ["saturate", "optimize",
                                           "extract"]
        assert kernel_pipeline().names() == [
            "frontend", "saturate", "optimize", "extract", "validate",
            "lower",
        ]
        assert kernel_pipeline(schedule=True).names()[-1] == "schedule"
        assert baseline_kernel_pipeline(lambda t: (t, None)).names() == [
            "frontend", "saturate", "lower",
        ]


class TestPipelineMechanics:
    def test_fn_pass_detail_lands_in_report(self, isaria_compiler):
        ctx = CompilationContext(cost_model=isaria_compiler.cost_model,
                                 term=trace_kernel(
                                     "t", lambda x: [x[0]], {"x": 1}, 4
                                 ).term)
        pipeline = Pipeline([
            FnPass("seed", lambda c: (c.ensure_report(), None)[1]),
            FnPass("probe", lambda c: {"answer": 42}),
        ])
        pipeline.run(ctx)
        assert [p.name for p in ctx.report.passes] == ["seed", "probe"]
        assert ctx.report.passes[1].detail == {"answer": 42}

    def test_adopted_report_keeps_earlier_pass_entries(
        self, isaria_compiler
    ):
        from repro.compiler.compile import CompileReport

        term = trace_kernel("t", lambda x: [x[0]], {"x": 1}, 4).term

        def adopt(ctx):
            ctx.report = CompileReport(initial_cost=9.0, final_cost=3.0)
            return None

        ctx = CompilationContext(cost_model=isaria_compiler.cost_model,
                                 term=term)
        Pipeline([
            FnPass("seed", lambda c: (c.ensure_report(), None)[1]),
            FnPass("adopt", adopt),
        ]).run(ctx)
        assert [p.name for p in ctx.report.passes] == ["seed", "adopt"]
        assert ctx.report.initial_cost == 9.0
        assert sum(p.elapsed for p in ctx.report.passes) == pytest.approx(
            ctx.report.elapsed, abs=1e-6
        )


class TestCompileMany:
    def test_serial_batch_matches_individual_compiles(
        self, isaria_compiler, vadd_program
    ):
        other = trace_kernel(
            "vmul",
            lambda x, y: [x[i] * y[i] for i in range(4)],
            {"x": 4, "y": 4},
            4,
        )
        batch = compile_many(isaria_compiler, [vadd_program, other])
        assert [k.name for k in batch] == ["vadd", "vmul"]
        single = isaria_compiler.compile_kernel(other)
        assert str(batch[1].compiled_term) == str(single.compiled_term)
        assert (
            batch[1].report.final_cost == single.report.final_cost
        )

    def test_parallel_batch_preserves_order_and_results(
        self, isaria_compiler, vadd_program
    ):
        other = trace_kernel(
            "vsub",
            lambda x, y: [x[i] - y[i] for i in range(4)],
            {"x": 4, "y": 4},
            4,
        )
        serial = compile_many(isaria_compiler, [vadd_program, other])
        fanned = compile_many(
            isaria_compiler, [vadd_program, other], jobs=2
        )
        assert [k.name for k in fanned] == [k.name for k in serial]
        assert [k.report.final_cost for k in fanned] == [
            k.report.final_cost for k in serial
        ]
        assert [str(k.compiled_term) for k in fanned] == [
            str(k.compiled_term) for k in serial
        ]
