"""Phase-assignment consistency across the whole shipped rule set."""

import pytest

from repro.core.pregen import DEFAULT_RULES_FILE, load_pregenerated_rules
from repro.isa import fusion_g3_spec
from repro.phases import (
    CostModel,
    Phase,
    aggregate_cost,
    assign_phase,
    assign_phases,
    cost_differential,
    default_params,
)

pytestmark = pytest.mark.skipif(
    not DEFAULT_RULES_FILE.exists(),
    reason="pregenerated rules not built",
)


@pytest.fixture(scope="module")
def setup():
    spec = fusion_g3_spec()
    model = CostModel(spec)
    rules = load_pregenerated_rules()
    params = default_params(spec)
    return spec, model, rules, params


class TestAssignmentIsAFunction:
    def test_deterministic(self, setup):
        _spec, model, rules, params = setup
        a = assign_phases(model, rules, params)
        b = assign_phases(model, rules, params)
        assert a.counts() == b.counts()
        assert [str(r) for r in a] == [str(r) for r in b]

    def test_partition_is_total_and_disjoint(self, setup):
        _spec, model, rules, params = setup
        ruleset = assign_phases(model, rules, params)
        assert len(ruleset) == len(rules)
        names = [r.name for r in ruleset]
        assert len(names) == len(set(names))

    def test_phase_matches_metrics(self, setup):
        _spec, model, rules, params = setup
        ruleset = assign_phases(model, rules, params)
        for rule in ruleset.compilation:
            assert cost_differential(model, rule) > params.alpha
        for rule in ruleset.expansion:
            assert cost_differential(model, rule) <= params.alpha
            assert aggregate_cost(model, rule) > params.beta
        for rule in ruleset.optimization:
            assert cost_differential(model, rule) <= params.alpha
            assert aggregate_cost(model, rule) <= params.beta

    def test_single_rule_assignment_matches_bulk(self, setup):
        _spec, model, rules, params = setup
        ruleset = assign_phases(model, rules, params)
        lookup = {}
        for phase, bucket in (
            (Phase.EXPANSION, ruleset.expansion),
            (Phase.COMPILATION, ruleset.compilation),
            (Phase.OPTIMIZATION, ruleset.optimization),
        ):
            for rule in bucket:
                lookup[str(rule)] = phase
        for rule in rules[::29]:
            assert assign_phase(model, rule, params) is lookup[str(rule)]
