"""The schedule autotuner: determinism, cost-parity validation, move
proposal from perf and trace profiles, and the CLI surface.

Search runs here use shrunken corpus workloads so the whole file stays
in test-suite time; the full-scale before/after measurement lives in
``benchmarks/test_perf_schedule.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.egraph.scheduling import ScheduleSpec
from repro.tools.autotune import (
    RuleProfile,
    autotune,
    candidate_moves,
    chain_workload,
    main,
    measure,
    skewed_workload,
)

_SMALL = dict(n_plus=120, n_mul=20, n_vec=15, n_driver=6)


@pytest.fixture(scope="module")
def skewed_result():
    return autotune([skewed_workload(**_SMALL)], seed=0, restarts=2)


class TestSearch:
    def test_disables_every_zero_merge_rule(self, skewed_result):
        assert skewed_result.spec.disabled_rules() == [
            "mul-lift", "mul-lift-flip", "mul-sq", "vec-sq"
        ]
        # The one productive rule survives.
        assert not skewed_result.spec.rule_policy("drive-comm").disabled

    def test_deterministic_under_a_fixed_seed(self, skewed_result):
        again = autotune([skewed_workload(**_SMALL)], seed=0, restarts=2)
        assert again.spec == skewed_result.spec
        assert again.decisions == skewed_result.decisions
        assert [m.node_visits for m in again.tuned] == [
            m.node_visits for m in skewed_result.tuned
        ]

    def test_cost_parity_holds(self, skewed_result):
        for before, after in zip(
            skewed_result.baseline, skewed_result.tuned
        ):
            assert after.cost <= before.cost
            assert after.extracted == before.extracted

    def test_visits_strictly_improve(self, skewed_result):
        assert skewed_result.visit_reduction > 1.0
        assert skewed_result.spec.note.startswith("autotuned seed=0")

    def test_tuned_spec_transfers_to_a_larger_instance(
        self, skewed_result
    ):
        big = skewed_workload(n_plus=300, n_mul=40, n_vec=30, n_driver=8)
        default = measure(big, None)
        tuned = measure(big, skewed_result.spec)
        assert tuned.extracted == default.extracted
        assert tuned.node_visits < default.node_visits

    def test_productive_workload_keeps_cost_while_capping(self):
        result = autotune([chain_workload(depth=6)], seed=1, restarts=1)
        # Every rule merges on the chain, so nothing may be disabled;
        # improvements can only come from budget/ban tuning.
        assert result.spec.disabled_rules() == []
        for before, after in zip(result.baseline, result.tuned):
            assert after.cost <= before.cost


class TestMoves:
    def test_zero_merge_rules_rank_before_budget_moves(self):
        profile = RuleProfile(
            match_time={"dead": 0.9, "hot": 0.5},
            node_visits={"dead": 900, "hot": 500},
            unions={"hot": 40},
        )
        moves = candidate_moves(profile, [])
        assert moves[0].description.startswith("disable dead")
        assert any("cap hot" in m.description for m in moves)
        assert not any("disable hot" in m.description for m in moves)

    def test_cold_productive_rules_are_left_alone(self):
        profile = RuleProfile(
            match_time={"hot": 1.0, "cold": 0.01},
            node_visits={"hot": 10_000, "cold": 5},
            unions={"hot": 3, "cold": 2},
        )
        descriptions = [
            m.description for m in candidate_moves(profile, [])
        ]
        assert not any("cold" in d for d in descriptions)


class TestTraceProfile:
    def test_aggregates_eqsat_span_counters(self):
        events = [
            {
                "name": "eqsat",
                "attrs": {
                    "rule_match_time": {"a": 0.5, "b": 0.1},
                    "rule_node_visits": {"a": 100, "b": 20},
                    "rule_unions": {"b": 4},
                },
            },
            {
                "name": "eqsat",
                "attrs": {"rule_match_time": {"a": 0.25}},
            },
        ]
        profile = RuleProfile.from_trace_events(events)
        assert profile.match_time["a"] == 0.75
        assert profile.unions == {"b": 4}
        moves = candidate_moves(profile, [])
        assert moves and moves[0].description.startswith("disable a")

    def test_legacy_traces_reconstruct_merges_from_applied(self):
        events = [
            {
                "name": "eqsat.iteration",
                "attrs": {"applied": {"b": 7}},
            },
        ]
        profile = RuleProfile.from_trace_events(events)
        assert profile.unions == {"b": 7}


class TestCli:
    def test_writes_a_loadable_spec(self, tmp_path, capsys):
        out = tmp_path / "schedule.json"
        argv = [
            "--workload", "skewed", "--seed", "0", "--restarts", "1",
            "-o", str(out),
        ]
        assert main(argv) == 0
        spec = ScheduleSpec.load(out)
        assert "mul-sq" in spec.disabled_rules()
        text = capsys.readouterr().out
        assert "== profile" in text
        assert "tuned schedule:" in text

    def test_profiles_from_a_trace_corpus(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        event = {
            "name": "eqsat",
            "attrs": {
                "rule_match_time": {"mul-sq": 2.0},
                "rule_node_visits": {"mul-sq": 999},
            },
        }
        trace.write_text(json.dumps(event) + "\n")
        assert main(["--trace", str(trace), "--restarts", "1"]) == 0
        assert "from" in capsys.readouterr().out

    def test_attaches_to_an_artifact(self, tmp_path, isaria_compiler):
        from repro.core.artifact import CompilerArtifact

        path = tmp_path / "artifact.json"
        isaria_compiler.to_artifact().save(path)
        assert main(["--restarts", "1", "--attach", str(path)]) == 0
        restored = CompilerArtifact.load(path)
        assert restored.schedule is not None
        assert restored.schedule.disabled_rules()

    def test_missing_trace_file_fails_cleanly(self, tmp_path, capsys):
        rc = main(["--trace", str(tmp_path / "nope.jsonl")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err
