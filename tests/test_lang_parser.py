"""Unit tests for the s-expression reader/printer."""

import pytest

from repro.lang import builders as B
from repro.lang.parser import ParseError, parse, parse_many, to_sexpr


class TestParse:
    def test_atoms(self):
        assert parse("3") == B.const(3)
        assert parse("-2") == B.const(-2)
        assert parse("0.5") == B.const(0.5)
        assert parse("x") == B.symbol("x")
        assert parse("?a") == B.wildcard("a")

    def test_compound(self):
        term = parse("(+ (Get x 0) (Get y 1))")
        assert term == B.add(B.get("x", 0), B.get("y", 1))

    def test_get_becomes_leaf(self):
        term = parse("(Get x 3)")
        assert term.is_leaf
        assert term.payload == ("x", 3)

    def test_vector_ops(self):
        term = parse("(VecAdd (Vec 1 2 3 4) (Vec ?a ?b ?c ?d))")
        assert term.op == "VecAdd"
        assert term.args[0].op == "Vec"
        assert len(term.args[1].args) == 4

    def test_comments_and_whitespace(self):
        term = parse("; heading\n  (+ 1 ; inline\n 2)\n")
        assert term == B.add(B.const(1), B.const(2))

    def test_parse_many(self):
        terms = parse_many("(+ 1 2) x (neg ?a)")
        assert len(terms) == 3

    @pytest.mark.parametrize(
        "text",
        ["", "(", ")", "(+ 1 2", "(+ 1 2))", "(Get x)", "(Get 1 2)", "?"],
    )
    def test_malformed_raises(self, text):
        with pytest.raises(ParseError):
            parse(text)


class TestRoundtrip:
    @pytest.mark.parametrize(
        "text",
        [
            "(+ (Get x 0) (Get y 0))",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3))",
            "(VecMAC ?c ?a ?b)",
            "(List (Vec 1 2 3 4) (VecSqrt (Vec 0 0 0 0)))",
            "(sqrt (sgn (neg x)))",
            "(- 0.5 (/ a b))",
        ],
    )
    def test_parse_print_parse(self, text):
        term = parse(text)
        assert parse(to_sexpr(term)) == term

    def test_float_consts_roundtrip(self):
        term = B.const(0.1)
        assert parse(to_sexpr(term)) is term
