"""Sanity of the shared test fixtures themselves."""

class TestSessionFixtures:
    def test_spec_fixture_is_base_isa(self, spec):
        assert spec.name == "fusion-g3"
        assert spec.vector_width == 4

    def test_cost_model_bound_to_spec(self, spec, cost_model):
        assert cost_model.node_cost("+", None, ()) == (
            spec.instruction("+").base_cost
        )

    def test_synthesis_fixtures_are_cached(
        self, synthesis_size3, synthesis_size4
    ):
        assert len(synthesis_size4.rules) > len(synthesis_size3.rules)

    def test_isaria_compiler_ready(self, isaria_compiler):
        assert len(isaria_compiler.ruleset) > 100
        counts = isaria_compiler.ruleset.counts()
        assert all(v > 0 for v in counts.values())

    def test_fast_options_are_bounded(self, isaria_compiler):
        options = isaria_compiler.options
        assert options.expansion_limits.time_limit <= 10
        assert options.compilation_limits.time_limit <= 10
        assert options.max_rounds <= 5
