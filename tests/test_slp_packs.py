"""Focused SLP packing tests (the baseline's decision points)."""

import numpy as np

from repro.baselines.slp import _SlpGen
from repro.compiler.frontend import trace_kernel
from repro.baselines import compile_slp
from repro.kernels.specs import padded_memory
from repro.lang.parser import parse
from repro.machine import Machine


def run(spec, fn, arrays, memory):
    program = trace_kernel("t", fn, arrays, spec.vector_width,
                           normalize=False)
    machine_prog = compile_slp(program, spec)
    result = Machine(spec).run(machine_prog, memory)
    return machine_prog, result


class TestPackDecisions:
    def test_splat_pack(self, spec):
        gen = _SlpGen(spec)
        lanes = tuple(parse("(Get x 0)") for _ in range(4))
        assert gen.pack(lanes) is not None
        assert gen._builder.program.count("v.splat") == 1

    def test_const_pack(self, spec):
        gen = _SlpGen(spec)
        lanes = tuple(parse(str(i)) for i in range(4))
        assert gen.pack(lanes) is not None
        assert gen._builder.program.count("v.const") == 1

    def test_contiguous_load_pack(self, spec):
        gen = _SlpGen(spec)
        lanes = tuple(parse(f"(Get x {i})") for i in range(4))
        assert gen.pack(lanes) is not None
        assert gen._builder.program.count("v.load") == 1
        assert gen._builder.program.count("v.shuffle") == 0

    def test_permuted_load_pack_uses_shuffle(self, spec):
        gen = _SlpGen(spec)
        lanes = tuple(parse(f"(Get x {i})") for i in (3, 1, 0, 2))
        assert gen.pack(lanes) is not None
        assert gen._builder.program.count("v.shuffle") == 1

    def test_cross_window_gather_fails(self, spec):
        gen = _SlpGen(spec)
        lanes = tuple(parse(f"(Get x {i})") for i in (0, 2, 5, 7))
        assert gen.pack(lanes) is None

    def test_cross_array_pack_fails(self, spec):
        gen = _SlpGen(spec)
        lanes = (
            parse("(Get x 0)"), parse("(Get y 1)"),
            parse("(Get x 2)"), parse("(Get x 3)"),
        )
        assert gen.pack(lanes) is None

    def test_isomorphic_op_pack(self, spec):
        gen = _SlpGen(spec)
        lanes = tuple(
            parse(f"(* (Get x {i}) (Get y {i}))") for i in range(4)
        )
        assert gen.pack(lanes) is not None
        program = gen._builder.program
        assert any(
            i.opcode == "v.op" and i.op == "VecMul"
            for i in program.instrs
        )

    def test_mixed_unrelated_ops_fail(self, spec):
        gen = _SlpGen(spec)
        lanes = (
            parse("(* (Get x 0) (Get y 0))"),
            parse("(/ (Get x 1) (Get y 1))"),
            parse("(* (Get x 2) (Get y 2))"),
            parse("(* (Get x 3) (Get y 3))"),
        )
        assert gen.pack(lanes) is None

    def test_memoization_shares_packs(self, spec):
        gen = _SlpGen(spec)
        lanes = tuple(parse(f"(Get x {i})") for i in range(4))
        first = gen.pack(lanes)
        second = gen.pack(lanes)
        assert first == second
        assert gen._builder.program.count("v.load") == 1


class TestAltOpPack:
    def test_addsub_lanes_vectorize(self, spec):
        def kern(x, y):
            return [
                x[0] + y[0], x[1] - y[1], x[2] + y[2], x[3] - y[3],
            ]

        memory = {
            "x": [1.0, 2.0, 3.0, 4.0],
            "y": [10.0, 10.0, 10.0, 10.0],
            "out": [0.0] * 4,
        }
        program, result = run(spec, kern, {"x": 4, "y": 4}, memory)
        assert result.array("out") == [11.0, -8.0, 13.0, -6.0]
        assert any(
            i.opcode == "v.op" and i.op == "VecMAC"
            for i in program.instrs
        )

    def test_signs_encoded_in_const_vector(self, spec):
        def kern(x, y):
            return [x[0] - y[0], x[1] + y[1], x[2] - y[2], x[3] + y[3]]

        program, _ = run(
            spec, kern, {"x": 4, "y": 4},
            {"x": [0.0] * 4, "y": [0.0] * 4, "out": [0.0] * 4},
        )
        sign_consts = [
            i.imm for i in program.instrs if i.opcode == "v.const"
        ]
        assert (-1.0, 1.0, -1.0, 1.0) in sign_consts


class TestEndToEndGroups:
    def test_partial_group_fallback(self, spec):
        # First group packs, second (irregular) falls back to scalar.
        def kern(x, y):
            packed = [x[i] + y[i] for i in range(4)]
            ragged = [x[0] * y[1], x[1] / y[2], x[2] - y[3], x[3]]
            return packed + ragged

        memory = {
            "x": [1.0, 2.0, 3.0, 4.0],
            "y": [1.0, 2.0, 4.0, 8.0],
            "out": [0.0] * 8,
        }
        program, result = run(spec, kern, {"x": 4, "y": 4}, memory)
        got = result.array("out")
        assert got[:4] == [2.0, 4.0, 7.0, 12.0]
        assert np.allclose(got[4:], [2.0, 0.5, -5.0, 4.0])
        assert program.count("v.store") >= 1
        assert program.count("s.store") >= 3
