"""Codegen rendering of hardware loops and Nature programs."""

from repro.baselines.nature import nature_program
from repro.compiler.codegen import emit_c
from repro.kernels import matmul_kernel


class TestLoopRendering:
    def test_hw_loop_renders_as_for(self, spec):
        instance = matmul_kernel(4, 4, 4)
        program, _ = nature_program(instance, spec)
        text = emit_c(program, name="nat_mm", arrays=instance.arrays)
        assert "for (int n = " in text
        assert "/* hw loop */" in text
        assert text.count("for (int n") == text.count("}") - 1
        # function braces balance
        assert text.count("{") == text.count("}")

    def test_nature_conv_renders(self, spec):
        from repro.kernels import conv2d_kernel

        instance = conv2d_kernel(3, 3, 2, 2)
        program, _ = nature_program(instance, spec)
        text = emit_c(program, arrays=instance.arrays)
        assert "vec_splat" in text
        assert "vec_mac" in text
