"""Tests for the report CLI (heavy dependencies stubbed)."""

import sys

from repro.bench.harness import Measurement, SuiteRow


def test_report_main_writes_markdown(tmp_path, monkeypatch):
    from repro.tools import report as report_tool

    row = SuiteRow(key="matmul-2x2x2", family="MatMul")
    row.measurements["scalar"] = Measurement("scalar", 100, True)
    row.measurements["isaria"] = Measurement(
        "isaria", 20, True, compile_time=1.0
    )

    class _FakeCompiler:
        spec = object()

    monkeypatch.setattr(
        report_tool, "default_compiler", lambda: _FakeCompiler()
    )
    monkeypatch.setattr(
        report_tool, "DiospyrosCompiler", lambda spec: object()
    )
    monkeypatch.setattr(
        report_tool, "default_suite", lambda **kw: ["stub"]
    )
    monkeypatch.setattr(
        report_tool, "run_suite", lambda *a, **kw: [row]
    )
    out = tmp_path / "report.md"
    monkeypatch.setattr(sys, "argv", ["report", str(out)])
    report_tool.main()
    text = out.read_text()
    assert text.startswith("## Measured kernel sweep")
    assert "matmul-2x2x2" in text
    assert "5.00x" in text  # 100/20
