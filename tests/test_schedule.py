"""Tests for the post-lowering list scheduler."""

import numpy as np
import pytest

from repro.baselines import compile_scalar, compile_slp
from repro.baselines.nature import nature_program
from repro.kernels import (
    conv2d_kernel,
    matmul_kernel,
    padded_memory,
    qr_kernel,
    run_reference,
)
from repro.machine import Machine, ProgramBuilder, schedule_program


@pytest.fixture(scope="module")
def machine(spec):
    return Machine(spec)


class TestSemanticsPreserved:
    @pytest.mark.parametrize(
        "instance",
        [
            matmul_kernel(3, 3, 3),
            conv2d_kernel(3, 3, 2, 2),
            qr_kernel(3),
        ],
        ids=lambda k: k.key,
    )
    def test_scalar_kernels_unchanged_results(
        self, spec, machine, instance
    ):
        program = compile_scalar(instance.program, spec)
        scheduled = schedule_program(program, machine)
        inputs = instance.make_inputs(3)
        before = machine.run(program, padded_memory(instance, inputs))
        after = machine.run(scheduled, padded_memory(instance, inputs))
        assert before.array("out") == after.array("out")
        want = run_reference(instance, inputs)
        assert np.allclose(
            after.array("out")[: instance.output_len], want, rtol=1e-3
        )

    def test_loop_kernels_unchanged_results(self, spec, machine):
        instance = matmul_kernel(3, 4, 5)
        program, extra = nature_program(instance, spec)
        scheduled = schedule_program(program, machine)
        inputs = instance.make_inputs(2)
        memory = padded_memory(instance, inputs)
        for name, size in extra.items():
            memory[name] = [0.0] * size
        before = machine.run(program, dict(memory))
        after = machine.run(scheduled, dict(memory))
        assert before.array("out") == after.array("out")

    def test_in_place_updates_ordered(self, spec, machine):
        # acc is read-modified-written twice: WAW/WAR edges must keep
        # the order.
        b = ProgramBuilder()
        acc = b.s_const(1.0)
        two = b.s_const(2.0)
        b.s_op_into(acc, "*", acc, two)  # acc = 2
        b.s_op_into(acc, "+", acc, two)  # acc = 4
        b.s_store("out", 0, acc)
        b.halt()
        scheduled = schedule_program(b.build(), machine)
        result = machine.run(scheduled, {"out": [0.0]})
        assert result.array("out") == [4.0]

    def test_store_load_order_same_array(self, spec, machine):
        b = ProgramBuilder()
        v = b.s_const(5.0)
        b.s_store("buf", 0, v)
        loaded = b.s_load("buf", 0)
        b.s_store("out", 0, loaded)
        b.halt()
        scheduled = schedule_program(b.build(), machine)
        result = machine.run(scheduled, {"buf": [0.0], "out": [0.0]})
        assert result.array("out") == [5.0]

    def test_instruction_multiset_preserved(self, spec, machine):
        instance = conv2d_kernel(3, 3, 2, 2)
        program = compile_scalar(instance.program, spec)
        scheduled = schedule_program(program, machine)
        assert sorted(map(str, program.instrs)) == sorted(
            map(str, scheduled.instrs)
        )


class TestSchedulingWins:
    def test_dependent_chains_interleave(self, spec, machine):
        # Two independent multiply chains emitted serially: the
        # scheduler should interleave them and cut cycles.
        b = ProgramBuilder()
        for base in ("x", "y"):
            acc = b.s_load(base, 0)
            for i in range(1, 6):
                acc = b.s_op("*", acc, b.s_load(base, i))
            b.s_store("out", 0 if base == "x" else 1, acc)
        b.halt()
        program = b.build()
        scheduled = schedule_program(program, machine)
        mem = {"x": [1.0] * 6, "y": [2.0] * 6, "out": [0.0, 0.0]}
        before = machine.run(program, dict(mem))
        after = machine.run(scheduled, dict(mem))
        assert after.array("out") == before.array("out")
        assert after.cycles < before.cycles

    def test_vectorized_conv_benefits(self, spec, machine):
        # SLP-compiled matmul has parallel packs; scheduling should
        # not hurt and usually helps.
        instance = matmul_kernel(4, 4, 4)
        program = compile_slp(instance.program, spec)
        scheduled = schedule_program(program, machine)
        inputs = instance.make_inputs(0)
        before = machine.run(program, padded_memory(instance, inputs))
        after = machine.run(scheduled, padded_memory(instance, inputs))
        assert after.cycles <= before.cycles
        assert before.array("out") == after.array("out")
