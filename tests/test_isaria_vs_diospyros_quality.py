"""Head-to-head quality invariants between the two eqsat compilers.

These encode the Fig. 4 comparability claim at test scale: on uniform
kernels, the automatically generated compiler must match the
hand-written baseline's result quality.
"""

import pytest

from repro.compiler.diospyros import DiospyrosCompiler
from repro.kernels import matmul_kernel
from repro.lang.parser import parse


@pytest.fixture(scope="module")
def dios(spec):
    return DiospyrosCompiler(spec)


class TestHeadToHead:
    def test_intro_example_same_quality(self, isaria_compiler, dios):
        program = parse(
            "(List (Vec (+ (Get x 0) (Get y 0)) (+ (Get x 1) (Get y 1))"
            " (+ (Get x 2) (Get y 2)) (Get x 3)))"
        )
        _i_term, i_report = isaria_compiler.compile_term(program)
        _d_term, d_report = dios.compile(program)
        # both collapse the chunk to a single vector add
        assert i_report.final_cost < 100
        assert d_report.final_cost < 100

    def test_matmul_cost_within_factor_two(self, isaria_compiler, dios):
        program = matmul_kernel(2, 2, 2).program.term
        _it, i_report = isaria_compiler.compile_term(program)
        _dt, d_report = dios.compile(program)
        ratio = i_report.final_cost / d_report.final_cost
        assert 0.5 <= ratio <= 2.0, ratio

    def test_both_validate_against_source(
        self, isaria_compiler, dios, spec
    ):
        program = matmul_kernel(2, 2, 2).program.term
        i_term, _ = isaria_compiler.compile_term(program)
        d_term, _ = dios.compile(program)
        isaria_compiler.validate_equivalence(program, i_term)
        isaria_compiler.validate_equivalence(program, d_term)
