"""Program-level loop bookkeeping and scheduler block splitting."""

import pytest

from repro.machine.program import Instr, Program, ProgramBuilder
from repro.machine.schedule import _blocks


class TestLoopMatches:
    def test_simple_pair(self):
        b = ProgramBuilder()
        c = b.s_const(2)
        b.loop_begin(c)
        b.s_const(0.0)
        b.loop_end()
        b.halt()
        program = b.build()
        matches = program.loop_matches()
        assert len(matches) == 1
        (begin, end), = matches.items()
        assert program.instrs[begin].opcode == "loop.begin"
        assert program.instrs[end].opcode == "loop.end"

    def test_nested(self):
        b = ProgramBuilder()
        c = b.s_const(2)
        b.loop_begin(c)
        b.loop_begin(c)
        b.loop_end()
        b.loop_end()
        b.halt()
        matches = b.build().loop_matches()
        begins = sorted(matches)
        assert matches[begins[0]] > matches[begins[1]]

    def test_unbalanced_rejected(self):
        with pytest.raises(ValueError):
            Program([Instr("loop.end")]).loop_matches()
        b = ProgramBuilder()
        c = b.s_const(1)
        b.loop_begin(c)
        with pytest.raises(ValueError):
            b.build().loop_matches()


class TestBlockSplitting:
    def test_loops_are_barriers(self):
        b = ProgramBuilder()
        r = b.s_const(1.0)
        c = b.s_const(3)
        b.loop_begin(c)
        b.s_op_into(r, "+", r, r)
        b.loop_end()
        b.s_store("out", 0, r)
        b.halt()
        kinds = [
            (schedulable, [i.opcode for i in instrs])
            for schedulable, instrs in _blocks(b.build())
        ]
        barrier_ops = [
            ops[0] for schedulable, ops in kinds if not schedulable
        ]
        assert "loop.begin" in barrier_ops
        assert "loop.end" in barrier_ops
        assert "halt" in barrier_ops

    def test_body_stays_inside_loop(self, spec):
        # The loop body instruction must remain between begin/end after
        # scheduling the whole program.
        from repro.machine import Machine, schedule_program

        b = ProgramBuilder()
        r = b.s_const(1.0)
        c = b.s_const(3)
        b.loop_begin(c)
        b.s_op_into(r, "+", r, r)
        b.loop_end()
        b.s_store("out", 0, r)
        b.halt()
        machine = Machine(spec)
        scheduled = schedule_program(b.build(), machine)
        opcodes = [i.opcode for i in scheduled.instrs]
        begin = opcodes.index("loop.begin")
        end = opcodes.index("loop.end")
        assert "s.op" in opcodes[begin:end]
        result = machine.run(scheduled, {"out": [0.0]})
        assert result.array("out") == [8.0]
