"""Unit tests for rewrite application and the saturation runner."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite, apply_rewrite, parse_rewrite
from repro.egraph.runner import (
    BackoffScheduler,
    RunnerLimits,
    StopReason,
    run_saturation,
)
from repro.lang.parser import parse


class TestRewrite:
    def test_parse_rewrite(self):
        rule = parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")
        assert rule.name == "comm"
        assert rule.is_reversible

    def test_rhs_wildcards_must_be_bound(self):
        with pytest.raises(ValueError):
            parse_rewrite("bad", "(+ ?a 0) => (+ ?a ?b)")

    def test_directed_rule_not_reversible(self):
        rule = parse_rewrite("zero", "(* ?a 0) => 0")
        assert not rule.is_reversible

    def test_reversed(self):
        rule = parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")
        rev = rule.reversed()
        assert rev.lhs == rule.rhs and rev.rhs == rule.lhs

    def test_apply_unions_match_with_rhs(self):
        g = EGraph()
        root = g.add_term(parse("(+ (Get x 0) 0)"))
        stats = apply_rewrite(g, parse_rewrite("id", "(+ ?a 0) => ?a"))
        g.rebuild()
        assert stats.n_matches == 1
        assert stats.n_unions == 1
        assert g.equivalent(root, g.lookup_term(parse("(Get x 0)")))


class TestSaturation:
    def test_saturates_small_system(self):
        g = EGraph()
        root = g.add_term(parse("(+ (+ a b) c)"))
        report = run_saturation(
            g,
            [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")],
            RunnerLimits(max_iterations=20),
        )
        assert report.stop_reason is StopReason.SATURATED
        # closure contains the fully commuted variants
        assert g.lookup_term(parse("(+ c (+ b a))")) == g.find(root)

    def test_transitive_derivation(self):
        g = EGraph()
        a = g.add_term(parse("(- x x)"))
        b = g.add_term(parse("(* x 0)"))
        rules = [
            parse_rewrite("sub-self", "(- ?a ?a) => 0"),
            parse_rewrite("mul-zero", "(* ?a 0) => 0"),
        ]
        run_saturation(g, rules, RunnerLimits(max_iterations=5))
        assert g.equivalent(a, b)

    def test_iteration_limit(self):
        # Commutativity needs two iterations to saturate (apply, then
        # observe no change); with a budget of one the runner must
        # report the iteration limit.
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) (Get y 0))"))
        report = run_saturation(
            g,
            [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")],
            RunnerLimits(max_iterations=1, max_nodes=10**9),
        )
        assert report.stop_reason is StopReason.ITERATION_LIMIT
        assert report.n_iterations == 1
        assert report.iterations[0].n_unions > 0

    def test_identity_introduction_self_limits(self):
        # ?a => (+ ?a 0) looks infinite but the e-graph tames it: the
        # new term is unioned into the matched class, so saturation is
        # reached (the §2.2 "must be used carefully" rule is safe here).
        g = EGraph()
        g.add_term(parse("(Get x 0)"))
        report = run_saturation(
            g,
            [parse_rewrite("pad", "?a => (+ ?a 0)")],
            RunnerLimits(max_iterations=10),
        )
        assert report.stop_reason is StopReason.SATURATED

    def test_node_limit(self):
        g = EGraph()
        g.add_term(parse("(+ (+ (+ a b) c) (+ d (+ e f)))"))
        report = run_saturation(
            g,
            [
                parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
                parse_rewrite(
                    "assoc", "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))"
                ),
                parse_rewrite("grow", "?a => (+ ?a 0)"),
            ],
            RunnerLimits(max_iterations=50, max_nodes=500),
        )
        assert report.stop_reason is StopReason.NODE_LIMIT

    def test_graph_rebuilt_on_return(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) 0)"))
        run_saturation(
            g, [parse_rewrite("id", "(+ ?a 0) => ?a")], RunnerLimits()
        )
        assert g.is_clean

    def test_empty_rule_list_saturates_immediately(self):
        g = EGraph()
        g.add_term(parse("(+ a b)"))
        report = run_saturation(g, [], RunnerLimits())
        assert report.saturated


class TestBackoffScheduler:
    def test_ban_after_overflow(self):
        sched = BackoffScheduler(match_limit=10, ban_length=2)
        rule = parse_rewrite("r", "(+ ?a ?b) => (+ ?b ?a)")
        assert sched.can_apply(rule, 0)
        sched.record(rule, 0, n_matches=11)
        assert not sched.can_apply(rule, 1)
        assert not sched.can_apply(rule, 2)
        assert sched.can_apply(rule, 3)

    def test_threshold_doubles(self):
        sched = BackoffScheduler(match_limit=10, ban_length=1)
        rule = parse_rewrite("r", "(+ ?a ?b) => (+ ?b ?a)")
        sched.record(rule, 0, n_matches=11)
        assert sched.threshold(rule) == 20
        sched.record(rule, 3, n_matches=21)
        assert sched.threshold(rule) == 40

    def test_under_threshold_no_ban(self):
        sched = BackoffScheduler(match_limit=10, ban_length=2)
        rule = parse_rewrite("r", "(+ ?a ?b) => (+ ?b ?a)")
        sched.record(rule, 0, n_matches=5)
        assert sched.can_apply(rule, 1)
        assert not sched.any_banned(1)

    def test_ban_expires_exactly_on_schedule(self):
        # Banned at iteration i with ban_length L → usable again at
        # i + 1 + L, not one iteration early.
        sched = BackoffScheduler(match_limit=10, ban_length=3)
        rule = parse_rewrite("r", "(+ ?a ?b) => (+ ?b ?a)")
        sched.record(rule, 5, n_matches=100)
        for it in (6, 7, 8):
            assert not sched.can_apply(rule, it)
            assert sched.any_banned(it)
        assert sched.can_apply(rule, 9)
        assert not sched.any_banned(9)

    def test_repeated_overflow_keeps_doubling(self):
        sched = BackoffScheduler(match_limit=8, ban_length=1)
        rule = parse_rewrite("r", "(+ ?a ?b) => (+ ?b ?a)")
        expected = 8
        for i in range(4):
            sched.record(rule, 3 * i, n_matches=expected + 1)
            expected *= 2
            assert sched.threshold(rule) == expected

    def test_bans_are_per_rule(self):
        sched = BackoffScheduler(match_limit=10, ban_length=2)
        noisy = parse_rewrite("noisy", "(+ ?a ?b) => (+ ?b ?a)")
        quiet = parse_rewrite("quiet", "(* ?a 1) => ?a")
        sched.record(noisy, 0, n_matches=50)
        assert not sched.can_apply(noisy, 1)
        assert sched.can_apply(quiet, 1)
        assert sched.threshold(quiet) == 10


class TestFrontierMatching:
    def test_frontier_restricts_to_touched_roots(self):
        # Two disjoint (+ _ 0) redexes; the frontier after iteration 0
        # only contains classes iteration 0 changed, so a redex added
        # *after* the run started would be skipped.  Here we verify the
        # positive direction: chained rules keep firing because each
        # application touches the class the next one matches.
        g = EGraph()
        root = g.add_term(parse("(s (s (s (s z))))"))
        report = run_saturation(
            g,
            [parse_rewrite("drop", "(s ?n) => ?n")],
            RunnerLimits(max_iterations=10),
            frontier=True,
        )
        assert report.saturated
        assert g.equivalent(root, g.lookup_term(parse("z")))

    def test_frontier_skips_untouched_roots(self):
        # After iteration 0 rewrites the (* _ 1) redex, the (+ a 0)
        # redex — whose rule only enters the rule list via a scheduler
        # ban expiring later — is NOT in the frontier, so the restricted
        # run misses it while the unrestricted run finds it.
        def build():
            g = EGraph()
            keep = g.add_term(parse("(+ a 0)"))
            g.add_term(parse("(* b 1)"))
            return g, keep

        class OneShotScheduler(BackoffScheduler):
            """Bans add-id for iteration 0 only."""

            def can_apply(self, rule, iteration):
                if rule.name == "add-id" and iteration == 0:
                    return False
                return super().can_apply(rule, iteration)

        rules = [
            parse_rewrite("mul-id", "(* ?a 1) => ?a"),
            parse_rewrite("add-id", "(+ ?a 0) => ?a"),
        ]
        limits = RunnerLimits(max_iterations=6)

        g_full, keep_full = build()
        run_saturation(g_full, rules, limits, scheduler=OneShotScheduler())
        assert g_full.equivalent(keep_full, g_full.lookup_term(parse("a")))

        g_front, keep_front = build()
        run_saturation(
            g_front,
            rules,
            limits,
            scheduler=OneShotScheduler(),
            frontier=True,
        )
        # (+ a 0) was never touched by iteration 0, so the frontier
        # run never matched it: incompleteness is real and intended.
        assert not g_front.equivalent(
            keep_front, g_front.lookup_term(parse("a"))
        )


class TestPerfCounters:
    def test_report_carries_populated_perf(self):
        g = EGraph()
        g.add_term(parse("(+ (+ a b) (+ c d))"))
        report = run_saturation(
            g,
            [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")],
            RunnerLimits(max_iterations=10),
        )
        perf = report.perf
        assert perf.node_visits > 0
        assert perf.match_time >= 0.0
        assert perf.rebuild_time > 0.0
        assert perf.rule_node_visits["comm"] == perf.node_visits
        assert set(perf.rule_match_time) == {"comm"}

    def test_absorb_accumulates(self):
        g1 = EGraph()
        g1.add_term(parse("(+ a b)"))
        r1 = run_saturation(
            g1, [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")]
        )
        g2 = EGraph()
        g2.add_term(parse("(* c d)"))
        r2 = run_saturation(
            g2, [parse_rewrite("mcomm", "(* ?a ?b) => (* ?b ?a)")]
        )
        total = r1.perf.__class__()
        total.absorb(r1.perf)
        total.absorb(r2.perf)
        assert total.node_visits == r1.perf.node_visits + r2.perf.node_visits
        assert set(total.rule_node_visits) == {"comm", "mcomm"}
        round_trip = total.as_dict()
        assert round_trip["node_visits"] == total.node_visits
        assert "rule_match_time" in round_trip
