"""Unit tests for rewrite application and the saturation runner."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.rewrite import Rewrite, apply_rewrite, parse_rewrite
from repro.egraph.runner import (
    BackoffScheduler,
    RunnerLimits,
    StopReason,
    run_saturation,
)
from repro.lang.parser import parse


class TestRewrite:
    def test_parse_rewrite(self):
        rule = parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")
        assert rule.name == "comm"
        assert rule.is_reversible

    def test_rhs_wildcards_must_be_bound(self):
        with pytest.raises(ValueError):
            parse_rewrite("bad", "(+ ?a 0) => (+ ?a ?b)")

    def test_directed_rule_not_reversible(self):
        rule = parse_rewrite("zero", "(* ?a 0) => 0")
        assert not rule.is_reversible

    def test_reversed(self):
        rule = parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")
        rev = rule.reversed()
        assert rev.lhs == rule.rhs and rev.rhs == rule.lhs

    def test_apply_unions_match_with_rhs(self):
        g = EGraph()
        root = g.add_term(parse("(+ (Get x 0) 0)"))
        stats = apply_rewrite(g, parse_rewrite("id", "(+ ?a 0) => ?a"))
        g.rebuild()
        assert stats.n_matches == 1
        assert stats.n_unions == 1
        assert g.equivalent(root, g.lookup_term(parse("(Get x 0)")))


class TestSaturation:
    def test_saturates_small_system(self):
        g = EGraph()
        root = g.add_term(parse("(+ (+ a b) c)"))
        report = run_saturation(
            g,
            [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")],
            RunnerLimits(max_iterations=20),
        )
        assert report.stop_reason is StopReason.SATURATED
        # closure contains the fully commuted variants
        assert g.lookup_term(parse("(+ c (+ b a))")) == g.find(root)

    def test_transitive_derivation(self):
        g = EGraph()
        a = g.add_term(parse("(- x x)"))
        b = g.add_term(parse("(* x 0)"))
        rules = [
            parse_rewrite("sub-self", "(- ?a ?a) => 0"),
            parse_rewrite("mul-zero", "(* ?a 0) => 0"),
        ]
        run_saturation(g, rules, RunnerLimits(max_iterations=5))
        assert g.equivalent(a, b)

    def test_iteration_limit(self):
        # Commutativity needs two iterations to saturate (apply, then
        # observe no change); with a budget of one the runner must
        # report the iteration limit.
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) (Get y 0))"))
        report = run_saturation(
            g,
            [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")],
            RunnerLimits(max_iterations=1, max_nodes=10**9),
        )
        assert report.stop_reason is StopReason.ITERATION_LIMIT
        assert report.n_iterations == 1
        assert report.iterations[0].n_unions > 0

    def test_identity_introduction_self_limits(self):
        # ?a => (+ ?a 0) looks infinite but the e-graph tames it: the
        # new term is unioned into the matched class, so saturation is
        # reached (the §2.2 "must be used carefully" rule is safe here).
        g = EGraph()
        g.add_term(parse("(Get x 0)"))
        report = run_saturation(
            g,
            [parse_rewrite("pad", "?a => (+ ?a 0)")],
            RunnerLimits(max_iterations=10),
        )
        assert report.stop_reason is StopReason.SATURATED

    def test_node_limit(self):
        g = EGraph()
        g.add_term(parse("(+ (+ (+ a b) c) (+ d (+ e f)))"))
        report = run_saturation(
            g,
            [
                parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
                parse_rewrite(
                    "assoc", "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))"
                ),
                parse_rewrite("grow", "?a => (+ ?a 0)"),
            ],
            RunnerLimits(max_iterations=50, max_nodes=500),
        )
        assert report.stop_reason is StopReason.NODE_LIMIT

    def test_graph_rebuilt_on_return(self):
        g = EGraph()
        g.add_term(parse("(+ (Get x 0) 0)"))
        run_saturation(
            g, [parse_rewrite("id", "(+ ?a 0) => ?a")], RunnerLimits()
        )
        assert g.is_clean

    def test_empty_rule_list_saturates_immediately(self):
        g = EGraph()
        g.add_term(parse("(+ a b)"))
        report = run_saturation(g, [], RunnerLimits())
        assert report.saturated


class TestBackoffScheduler:
    def test_ban_after_overflow(self):
        sched = BackoffScheduler(match_limit=10, ban_length=2)
        rule = parse_rewrite("r", "(+ ?a ?b) => (+ ?b ?a)")
        assert sched.can_apply(rule, 0)
        sched.record(rule, 0, n_matches=11)
        assert not sched.can_apply(rule, 1)
        assert not sched.can_apply(rule, 2)
        assert sched.can_apply(rule, 3)

    def test_threshold_doubles(self):
        sched = BackoffScheduler(match_limit=10, ban_length=1)
        rule = parse_rewrite("r", "(+ ?a ?b) => (+ ?b ?a)")
        sched.record(rule, 0, n_matches=11)
        assert sched.threshold(rule) == 20
        sched.record(rule, 3, n_matches=21)
        assert sched.threshold(rule) == 40

    def test_under_threshold_no_ban(self):
        sched = BackoffScheduler(match_limit=10, ban_length=2)
        rule = parse_rewrite("r", "(+ ?a ?b) => (+ ?b ?a)")
        sched.record(rule, 0, n_matches=5)
        assert sched.can_apply(rule, 1)
        assert not sched.any_banned(1)
