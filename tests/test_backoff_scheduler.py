"""Direct unit tests for ``BackoffScheduler``'s ban/threshold algebra.

The scheduler is normally exercised only through ``run_saturation``;
these tests pin its arithmetic — threshold doubling, ban expiry at
exactly ``ban_length`` iterations, and ``any_banned`` across a mix of
rules — so scheduler subclasses (``TunedScheduler``) inherit verified
machinery.
"""

from __future__ import annotations

from repro.egraph.runner import BackoffScheduler, RuleScheduler
from repro.egraph.rewrite import parse_rewrite

_COMM = parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")
_ASSOC = parse_rewrite("assoc", "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))")


def test_threshold_doubles_per_ban():
    sched = BackoffScheduler(match_limit=10, ban_length=1)
    assert sched.threshold(_COMM) == 10
    sched.record(_COMM, iteration=0, n_matches=11)
    assert sched.threshold(_COMM) == 20
    # The next overflow must beat the *doubled* threshold.
    sched.record(_COMM, iteration=3, n_matches=20)
    assert sched.threshold(_COMM) == 20
    sched.record(_COMM, iteration=4, n_matches=21)
    assert sched.threshold(_COMM) == 40


def test_at_threshold_is_not_overflow():
    sched = BackoffScheduler(match_limit=10, ban_length=2)
    sched.record(_COMM, iteration=0, n_matches=10)
    assert sched.can_apply(_COMM, 1)
    assert not sched.any_banned(1)
    assert sched.threshold(_COMM) == 10


def test_ban_expires_after_exactly_ban_length_iterations():
    sched = BackoffScheduler(match_limit=5, ban_length=3)
    sched.record(_COMM, iteration=2, n_matches=6)
    # Banned for iterations 3, 4, 5; eligible again at 6.
    for iteration in (3, 4, 5):
        assert not sched.can_apply(_COMM, iteration), iteration
        assert sched.any_banned(iteration)
    assert sched.can_apply(_COMM, 6)
    assert not sched.any_banned(6)


def test_any_banned_tracks_mixed_rules():
    sched = BackoffScheduler(match_limit=5, ban_length=1)
    sched.record(_COMM, iteration=0, n_matches=6)   # banned for iter 1
    assert not sched.can_apply(_COMM, 1)
    assert sched.can_apply(_ASSOC, 1)
    assert sched.any_banned(1)
    sched.record(_ASSOC, iteration=1, n_matches=9)  # banned for iter 2
    # comm's ban has expired at 2 but assoc's is live.
    assert sched.can_apply(_COMM, 2)
    assert not sched.can_apply(_ASSOC, 2)
    assert sched.any_banned(2)
    assert not sched.any_banned(3)


def test_rules_are_tracked_independently():
    sched = BackoffScheduler(match_limit=8, ban_length=2)
    sched.record(_COMM, iteration=0, n_matches=9)
    assert sched.threshold(_COMM) == 16
    assert sched.threshold(_ASSOC) == 8
    assert sched.can_apply(_ASSOC, 1)


def test_base_scheduler_is_permissive():
    sched = RuleScheduler()
    assert not sched.is_disabled(_COMM)
    assert sched.can_apply(_COMM, 0)
    sched.record(_COMM, 0, 10**9)
    assert sched.can_apply(_COMM, 1)
    assert not sched.any_banned(1)
    assert sched.threshold(_COMM) >= 10**9


def test_backoff_never_disables():
    sched = BackoffScheduler(match_limit=1, ban_length=1)
    sched.record(_COMM, iteration=0, n_matches=100)
    assert not sched.is_disabled(_COMM)
