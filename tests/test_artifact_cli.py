"""The repro-artifact CLI: build, inspect, compile."""

import pytest

from repro.core.pregen import DEFAULT_RULES_FILE
from repro.tools.artifact_cli import main

pytestmark = pytest.mark.skipif(
    not DEFAULT_RULES_FILE.exists(),
    reason="pregenerated rules not built",
)


@pytest.fixture(scope="module")
def artifact_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("artifact") / "fusion.json"
    assert main(["build", "-o", str(path), "--pregen"]) == 0
    return path


class TestBuildAndInspect:
    def test_build_writes_a_loadable_artifact(self, artifact_file):
        from repro.core.artifact import CompilerArtifact

        artifact = CompilerArtifact.load(artifact_file)
        assert artifact.isa_name == "fusion-g3"
        assert len(artifact.ruleset) > 300
        assert artifact.provenance["source"] == "pregenerated"

    def test_inspect_prints_summary(self, artifact_file, capsys):
        assert main(["inspect", str(artifact_file)]) == 0
        out = capsys.readouterr().out
        assert "fusion-g3" in out
        assert "expansion" in out
        assert "pregenerated" in out

    def test_build_output_echoed(self, artifact_file, capsys):
        # fixture already ran main(); run again into the same path to
        # capture stdout in this test's capsys window.
        assert main(["build", "-o", str(artifact_file), "--pregen"]) == 0
        assert "wrote" in capsys.readouterr().out


class TestCompile:
    def test_compile_one_kernel_quick(self, artifact_file, capsys):
        code = main([
            "compile", str(artifact_file),
            "--kernel", "matmul-2x2x2",
            "--quick", "--no-validate",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "matmul-2x2-2x2" in out
        assert "saturate=" in out  # per-pass timings in the table
        assert "1 kernels" in out

    def test_unknown_kernel_is_an_error(self, artifact_file, capsys):
        code = main([
            "compile", str(artifact_file), "--kernel", "nope-0x0",
        ])
        assert code == 2
        assert "unknown kernels" in capsys.readouterr().err


class TestInspectRegistry:
    def test_registry_flag_with_explicit_dir(self, tmp_path, capsys):
        from repro.service.registry import ArtifactRegistry

        registry = ArtifactRegistry(tmp_path / "svc")
        registry.entry_for("fusion-g3")
        assert main(["inspect", "--registry", str(registry.root)]) == 0
        out = capsys.readouterr().out
        assert "registry: 1 artifacts" in out
        assert "fusion-g3" in out

    def test_bare_registry_flag_uses_env_default(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SERVICE_CACHE", str(tmp_path / "svc"))
        assert main(["inspect", "--registry"]) == 0
        out = capsys.readouterr().out
        # Nothing published yet: an empty registry is a note, and the
        # env-default root (not the cwd) is the one being read.
        assert "registry: empty" in out
        assert str(tmp_path / "svc") in out

    def test_inspect_without_arguments_is_an_error(self, capsys):
        assert main(["inspect"]) == 2
        assert "--registry" in capsys.readouterr().err
