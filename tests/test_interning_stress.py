"""Interning and hashing behaviour under load."""

from repro.lang import builders as B
from repro.lang.term import Term, intern_table_size, make


class TestInterningStress:
    def test_many_identical_constructions(self):
        before = intern_table_size()
        terms = [
            B.add(B.get("x", i % 4), B.const(i % 3)) for i in range(500)
        ]
        # only 12 distinct (4 gets x 3 consts) plus leaves
        distinct = {id(t) for t in terms}
        assert len(distinct) <= 12
        after = intern_table_size()
        assert after - before <= 24

    def test_hash_stability(self):
        term = B.mac(B.symbol("a"), B.symbol("b"), B.const(2))
        assert hash(term) == hash(term)
        clone = make("mac", B.symbol("a"), B.symbol("b"), B.const(2))
        assert hash(clone) == hash(term)
        assert clone is term

    def test_payload_types_distinguish(self):
        # int 1 vs the symbol "1" must be different leaves
        assert B.const(1) is not B.symbol("1")
        assert hash(B.const(1)) != hash(B.symbol("1")) or (
            B.const(1) != B.symbol("1")
        )

    def test_structural_eq_with_fresh_term_object(self):
        # Simulate a term that bypassed interning (e.g. constructed
        # directly): structural equality must still work.
        direct = Term("+", (B.const(1), B.const(2)), None)
        interned = B.add(B.const(1), B.const(2))
        assert direct == interned
        assert hash(direct) == hash(interned)

    def test_terms_usable_in_sets_and_dicts(self):
        a = B.add(B.symbol("a"), B.symbol("b"))
        b = B.add(B.symbol("b"), B.symbol("a"))
        bucket = {a: 1, b: 2}
        assert len(bucket) == 2
        assert bucket[B.add(B.symbol("a"), B.symbol("b"))] == 1
