"""The tracing subsystem: spans, sinks, env wiring, zero-cost-off."""

import json

import pytest

from repro.obs import (
    NULL_TRACER,
    JsonlFileSink,
    ListSink,
    NullTracer,
    StderrSink,
    Tracer,
    current_tracer,
    set_tracer,
    tracer_from_env,
    use_tracer,
)


class TestEnvWiring:
    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no"])
    def test_falsy_values_disable(self, value):
        assert tracer_from_env(value) is NULL_TRACER

    def test_unset_env_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert current_tracer() is NULL_TRACER

    @pytest.mark.parametrize("value", ["1", "true", "stderr", "on"])
    def test_truthy_values_go_to_stderr(self, value):
        tracer = tracer_from_env(value)
        assert isinstance(tracer, Tracer)
        assert isinstance(tracer.sink, StderrSink)

    def test_other_values_are_file_paths(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = tracer_from_env(str(path))
        assert isinstance(tracer.sink, JsonlFileSink)
        assert tracer.sink.path == path

    def test_current_tracer_follows_env_changes(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert current_tracer() is NULL_TRACER
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.jsonl"))
        tracer = current_tracer()
        assert isinstance(tracer, Tracer)
        # Same value → same cached tracer (not rebuilt per call).
        assert current_tracer() is tracer

    def test_explicit_tracer_wins_over_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE", str(tmp_path / "t.jsonl"))
        mine = Tracer(ListSink())
        with use_tracer(mine):
            assert current_tracer() is mine
        assert current_tracer() is not mine

    def test_set_tracer_none_reverts_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        mine = Tracer(ListSink())
        set_tracer(mine)
        try:
            assert current_tracer() is mine
        finally:
            set_tracer(None)
        assert current_tracer() is NULL_TRACER


class TestSpans:
    def test_span_emits_event_with_payload(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("work", n_rules=3) as span:
            span.add(n_unions=7)
        (event,) = sink.events
        assert event["name"] == "work"
        assert event["attrs"] == {"n_rules": 3, "n_unions": 7}
        assert event["dur"] >= 0.0
        assert "parent" not in event

    def test_nesting_tracks_parent_ids(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        inner, sibling, outer_ev = sink.events
        assert inner["name"] == "inner"
        assert inner["parent"] == outer.span_id
        assert sibling["parent"] == outer.span_id
        assert "parent" not in outer_ev
        assert len({e["id"] for e in sink.events}) == 3

    def test_exception_still_emits_and_flags_error(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (event,) = sink.events
        assert event["attrs"]["error"] is True

    def test_record_parents_under_open_span(self):
        sink = ListSink()
        tracer = Tracer(sink)
        with tracer.span("stage") as stage:
            tracer.record("stage.sub", 0.25, n_items=4)
        sub, _stage_ev = sink.events
        assert sub["name"] == "stage.sub"
        assert sub["parent"] == stage.span_id
        assert sub["dur"] == 0.25
        assert sub["attrs"] == {"n_items": 4}
        # Retroactive: stamped as starting `duration` before it ended.
        assert sub["ts"] <= _stage_ev["ts"] + _stage_ev["dur"]

    def test_finish_is_idempotent(self):
        sink = ListSink()
        tracer = Tracer(sink)
        span = tracer.span("once")
        span.finish()
        span.finish()
        assert len(sink.events) == 1


class TestNullTracer:
    def test_null_span_is_shared_and_inert(self):
        tracer = NullTracer()
        a = tracer.span("x", n=1)
        b = tracer.span("y")
        assert a is b  # one shared object, no allocation per span
        assert a.enabled is False
        with a as span:
            assert span.add(foo=1) is span
        tracer.record("z", 1.0)
        tracer.close()

    def test_enabled_flags(self):
        assert NULL_TRACER.enabled is False
        assert Tracer(ListSink()).enabled is True


class TestJsonlFileSink:
    def test_appends_parseable_lines(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        tracer = Tracer(JsonlFileSink(path))
        with tracer.span("a"):
            pass
        tracer.close()
        # Append mode: a second tracer accumulates into the same file.
        tracer2 = Tracer(JsonlFileSink(path))
        with tracer2.span("b"):
            pass
        tracer2.close()
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["name"] for e in events] == ["a", "b"]


class TestPipelineIntegration:
    def test_saturation_emits_eqsat_spans(self):
        from repro.egraph.egraph import EGraph
        from repro.egraph.rewrite import parse_rewrite
        from repro.egraph.runner import run_saturation
        from repro.lang.parser import parse

        sink = ListSink()
        with use_tracer(Tracer(sink)):
            egraph = EGraph()
            egraph.add_term(parse("(+ a (+ b c))"))
            rules = [
                parse_rewrite("comm-add", "(+ ?a ?b) => (+ ?b ?a)"),
                parse_rewrite(
                    "assoc-add",
                    "(+ ?a (+ ?b ?c)) => (+ (+ ?a ?b) ?c)",
                ),
            ]
            report = run_saturation(egraph, rules)
        (eqsat,) = sink.by_name("eqsat")
        assert eqsat["attrs"]["n_rules"] == 2
        assert eqsat["attrs"]["stop_reason"] == report.stop_reason.value
        # SaturationPerf counters are folded into the span payload.
        assert eqsat["attrs"]["node_visits"] == report.perf.node_visits
        assert "rule_match_time" in eqsat["attrs"]
        iterations = sink.by_name("eqsat.iteration")
        assert len(iterations) == report.n_iterations
        assert all(e["parent"] == eqsat["id"] for e in iterations)

    def test_assign_phases_and_extract_spans(self):
        from repro.egraph.egraph import EGraph
        from repro.egraph.extract import extract_best
        from repro.isa.fusion_g3 import fusion_g3_spec
        from repro.lang.parser import parse
        from repro.phases.assign import assign_phases, default_params
        from repro.phases.cost import CostModel

        spec = fusion_g3_spec()
        model = CostModel(spec)
        sink = ListSink()
        with use_tracer(Tracer(sink)):
            assign_phases(model, [], default_params(spec))
            egraph = EGraph()
            root = egraph.add_term(parse("(+ a b)"))
            extract_best(egraph, root, model)
        (assign,) = sink.by_name("assign_phases")
        assert assign["attrs"]["n_rules"] == 0
        (extract,) = sink.by_name("extract")
        assert extract["attrs"]["n_solved"] >= 1

    def test_disabled_tracing_adds_no_spans(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        from repro.egraph.egraph import EGraph
        from repro.egraph.rewrite import parse_rewrite
        from repro.egraph.runner import run_saturation
        from repro.lang.parser import parse

        egraph = EGraph()
        egraph.add_term(parse("(+ a b)"))
        report = run_saturation(
            egraph, [parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")]
        )
        assert report.saturated
