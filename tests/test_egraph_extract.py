"""Unit tests for minimum-cost extraction."""

import pytest

from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor, extract_best
from repro.egraph.rewrite import parse_rewrite
from repro.egraph.runner import RunnerLimits, run_saturation
from repro.lang.parser import parse


def unit_cost(op, payload, child_terms):
    return 1.0


class TestExtractBasics:
    def test_single_term(self):
        g = EGraph()
        root = g.add_term(parse("(+ a b)"))
        cost, term = extract_best(g, root, unit_cost)
        assert term == parse("(+ a b)")
        assert cost == 3.0

    def test_picks_cheaper_variant(self):
        g = EGraph()
        root = g.add_term(parse("(+ (Get x 0) 0)"))
        g.union(root, g.add_term(parse("(Get x 0)")))
        g.rebuild()
        cost, term = extract_best(g, root, unit_cost)
        assert term == parse("(Get x 0)")
        assert cost == 1.0

    def test_extract_after_saturation(self):
        g = EGraph()
        root = g.add_term(parse("(* (+ a 0) 1)"))
        run_saturation(
            g,
            [
                parse_rewrite("add0", "(+ ?a 0) => ?a"),
                parse_rewrite("mul1", "(* ?a 1) => ?a"),
            ],
            RunnerLimits(max_iterations=5),
        )
        _, term = extract_best(g, root, unit_cost)
        assert term == parse("a")

    def test_cost_weights_choose_representation(self):
        def cost(op, payload, child_terms):
            return 100.0 if op == "*" else 1.0

        g = EGraph()
        root = g.add_term(parse("(* a 2)"))
        g.union(root, g.add_term(parse("(+ a a)")))
        g.rebuild()
        _, term = extract_best(g, root, cost)
        assert term == parse("(+ a a)")

    def test_structural_cost_sees_child_terms(self):
        # Vec of leaves cheap, Vec of computation expensive: extraction
        # must pick (Vec a b) over (Vec (+ a 0) b) via child inspection.
        def cost(op, payload, child_terms):
            if op == "Vec":
                return sum(
                    1.0 if not t.args else 1000.0 for t in child_terms
                )
            return 1.0

        g = EGraph()
        root = g.add_term(parse("(Vec (+ a 0) b)"))
        run_saturation(
            g,
            [parse_rewrite("add0", "(+ ?a 0) => ?a")],
            RunnerLimits(max_iterations=3),
        )
        extracted_cost, term = extract_best(g, root, cost)
        assert term == parse("(Vec a b)")
        assert extracted_cost == 4.0


class TestCycles:
    def test_cyclic_class_with_base_case(self):
        # a == (+ a 0): the cycle must not trap extraction.
        g = EGraph()
        root = g.add_term(parse("(+ a 0)"))
        g.union(root, g.add_term(parse("a")))
        g.rebuild()
        cost, term = extract_best(g, root, unit_cost)
        assert term == parse("a")

    def test_unextractable_raises(self):
        # A class whose only node refers to itself has no finite term.
        g = EGraph()
        a = g.add_term(parse("a"))
        loop = g.add_enode("neg", None, (a,))
        g.union(a, loop)
        g.rebuild()
        # Still extractable: `a` is a base case in the same class.
        extractor = Extractor(g, unit_cost)
        assert extractor.has_solution(a)
        _, term = extractor.best(a)
        assert term == parse("a")


class TestExtractorObject:
    def test_best_cost_and_term_agree(self):
        g = EGraph()
        root = g.add_term(parse("(+ (neg a) b)"))
        extractor = Extractor(g, unit_cost)
        cost, term = extractor.best(root)
        assert cost == extractor.best_cost(root)
        assert term == extractor.best_term(root)

    def test_missing_class_raises(self):
        g = EGraph()
        g.add_term(parse("a"))
        extractor = Extractor(g, unit_cost)
        with pytest.raises((KeyError, IndexError)):
            extractor.best(999)
