"""Property-based tests (hypothesis) for the e-graph core.

Invariants checked on random term sets and union sequences:

- hashcons: re-adding any term gives its original class;
- union-find: equivalence is reflexive/symmetric/transitive;
- congruence: equal children imply equal parents after rebuild;
- extraction: the extracted term is represented in the class and its
  reported cost equals the cost function applied to the term.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.egraph.egraph import EGraph
from repro.egraph.extract import Extractor
from repro.lang import builders as B
from repro.lang.term import Term


def terms(max_depth: int = 3):
    leaves = st.one_of(
        st.integers(min_value=-2, max_value=2).map(B.const),
        st.sampled_from(["a", "b", "c"]).map(B.symbol),
        st.tuples(
            st.sampled_from(["x", "y"]),
            st.integers(min_value=0, max_value=3),
        ).map(lambda p: B.get(*p)),
    )

    def extend(children):
        unary = st.builds(B.neg, children)
        binary = st.one_of(
            st.builds(B.add, children, children),
            st.builds(B.mul, children, children),
            st.builds(B.sub, children, children),
        )
        ternary = st.builds(B.mac, children, children, children)
        return st.one_of(unary, binary, ternary)

    return st.recursive(leaves, extend, max_leaves=12)


def unit_cost(op, payload, child_terms):
    return 1.0


class TestHashcons:
    @given(st.lists(terms(), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_readding_terms_is_stable(self, term_list):
        g = EGraph()
        ids = [g.add_term(t) for t in term_list]
        for t, class_id in zip(term_list, ids):
            assert g.find(g.add_term(t)) == g.find(class_id)

    @given(st.lists(terms(), min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_structural_equality_implies_same_class(self, term_list):
        g = EGraph()
        for t in term_list:
            g.add_term(t)
        seen: dict[Term, int] = {}
        for t in term_list:
            class_id = g.find(g.add_term(t))
            if t in seen:
                assert seen[t] == class_id
            seen[t] = class_id


class TestUnionCongruence:
    @given(
        st.lists(terms(), min_size=2, max_size=6),
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            max_size=6,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_equivalence_relation(self, term_list, merges):
        g = EGraph()
        ids = [g.add_term(t) for t in term_list]
        for i, j in merges:
            g.union(ids[i % len(ids)], ids[j % len(ids)])
        g.rebuild()
        n = len(ids)
        for i in range(n):
            assert g.equivalent(ids[i], ids[i])
            for j in range(n):
                assert g.equivalent(ids[i], ids[j]) == g.equivalent(
                    ids[j], ids[i]
                )
                for k in range(n):
                    if g.equivalent(ids[i], ids[j]) and g.equivalent(
                        ids[j], ids[k]
                    ):
                        assert g.equivalent(ids[i], ids[k])

    @given(terms(), terms())
    @settings(max_examples=60, deadline=None)
    def test_congruence_of_parents(self, t1, t2):
        g = EGraph()
        f1 = g.add_term(B.neg(t1))
        f2 = g.add_term(B.neg(t2))
        a = g.add_term(t1)
        b = g.add_term(t2)
        g.union(a, b)
        g.rebuild()
        assert g.equivalent(f1, f2)

    @given(st.lists(terms(), min_size=2, max_size=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_hashcons_canonical_after_rebuild(self, term_list, data):
        g = EGraph()
        ids = [g.add_term(t) for t in term_list]
        i = data.draw(st.integers(0, len(ids) - 1))
        j = data.draw(st.integers(0, len(ids) - 1))
        g.union(ids[i], ids[j])
        g.rebuild()
        # every hashcons entry must map a canonical node to a
        # canonical class
        for node, class_id in g._hashcons.items():
            assert g.canonicalize(node) == node
            assert g.find(class_id) in {
                c.id for c in g.classes()
            }


class TestExtractionProperties:
    @given(st.lists(terms(), min_size=1, max_size=6), st.data())
    @settings(max_examples=40, deadline=None)
    def test_extracted_cost_consistent(self, term_list, data):
        g = EGraph()
        ids = [g.add_term(t) for t in term_list]
        if len(ids) > 1:
            i = data.draw(st.integers(0, len(ids) - 1))
            j = data.draw(st.integers(0, len(ids) - 1))
            g.union(ids[i], ids[j])
            g.rebuild()
        extractor = Extractor(g, unit_cost)
        for class_id in ids:
            cost, term = extractor.best(class_id)
            # cost of a term under unit cost = its tree size
            from repro.lang.term import term_size

            assert cost == term_size(term)
            # extracted term re-adds into the same class
            assert g.equivalent(g.add_term(term), class_id)

    @given(terms(), terms())
    @settings(max_examples=40, deadline=None)
    def test_extraction_picks_min_of_unioned(self, t1, t2):
        from repro.lang.term import term_size

        g = EGraph()
        a = g.add_term(t1)
        b = g.add_term(t2)
        g.union(a, b)
        g.rebuild()
        extractor = Extractor(g, unit_cost)
        cost, _ = extractor.best(a)
        assert cost <= min(term_size(t1), term_size(t2))
