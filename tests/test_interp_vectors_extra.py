"""Extra interpreter coverage: vector edge cases, env forms, memo."""

import pytest
from fractions import Fraction

from repro.interp.env import merge_envs, random_env
from repro.interp.interpreter import EvalError
from repro.interp.value import UNDEFINED, make_vector
from repro.lang.parser import parse


@pytest.fixture(scope="module")
def interp(spec):
    return spec.interpreter()


class TestMakeVector:
    def test_plain(self):
        assert make_vector([1, 2]) == (1, 2)

    def test_undefined_lane_collapses(self):
        assert make_vector([1, UNDEFINED]) is UNDEFINED


class TestNestedStructure:
    def test_list_of_mixed_chunks(self, interp):
        term = parse("(List (Vec 1 2 3 4) (VecNeg (Vec 1 2 3 4)))")
        assert interp.evaluate(term, {}) == (
            (1, 2, 3, 4),
            (-1, -2, -3, -4),
        )

    def test_concat_then_op_width8(self, interp):
        term = parse(
            "(VecAdd (Concat (Vec 1 2) (Vec 3 4)) "
            "(Concat (Vec 10 20) (Vec 30 40)))"
        )
        assert interp.evaluate(term, {}) == (11, 22, 33, 44)

    def test_vec_of_vector_rejected(self, interp):
        with pytest.raises(EvalError):
            interp.evaluate(parse("(Vec (Vec 1 2) 3)"), {})

    def test_concat_of_scalars_rejected(self, interp):
        with pytest.raises(EvalError):
            interp.evaluate(parse("(Concat 1 2)"), {})


class TestSharedSubtermEvaluation:
    def test_dag_evaluated_once(self, spec):
        # A counting semantics wrapper proves memoization.
        calls = {"n": 0}
        plus = spec.instruction("+").lane_fn

        def counting_add(a, b):
            calls["n"] += 1
            return plus(a, b)

        from repro.interp.interpreter import Interpreter
        from repro.lang.ops import OpKind

        interp = Interpreter({"+": counting_add}, {"+": OpKind.SCALAR})
        shared = parse("(+ a b)")
        from repro.lang import builders as B

        term = B.add(shared, shared)
        assert interp.evaluate(term, {"a": 1, "b": 2}) == 6
        assert calls["n"] == 2  # shared evaluated once, outer once


class TestEnvHelpers:
    def test_random_env_exact_mode(self):
        import random

        env = random_env(("a", "b"), random.Random(1))
        assert all(isinstance(v, Fraction) for v in env.values())

    def test_random_env_float_mode(self):
        import random

        env = random_env(("a",), random.Random(1), exact=False)
        assert isinstance(env["a"], float)

    def test_merge_envs_later_wins(self):
        merged = merge_envs([{"a": 1}, {"a": 2, "b": 3}])
        assert merged == {"a": 2, "b": 3}


class TestMixedNumericTypes:
    def test_fraction_and_int_mix(self, interp):
        env = {"a": Fraction(1, 2), "b": 3}
        assert interp.evaluate(parse("(* a b)"), env) == Fraction(3, 2)

    def test_exact_sqrt_of_perfect_square_fraction(self, interp):
        env = {"a": Fraction(9, 4)}
        assert interp.evaluate(parse("(sqrt a)"), env) == Fraction(3, 2)

    def test_inexact_sqrt_is_float(self, interp):
        value = interp.evaluate(parse("(sqrt 2)"), {})
        assert isinstance(value, float)
        assert abs(value - 2 ** 0.5) < 1e-12
