"""Schema validation for every committed ``BENCH_*.json`` artifact.

CI archives these files and future PRs are judged against them, so a
bench that silently drops a key (or writes a string where a number
belongs) would corrupt the comparison baseline.  This test pins the
envelope (``name`` / ``schema_version`` / ``results`` / ``floors``)
for *all* BENCH files at the repo root plus the per-bench fields the
speedup-floor assertions read.
"""

from __future__ import annotations

import json
import numbers
from pathlib import Path

import pytest

from repro.bench.report import write_bench_json

_REPO_ROOT = Path(__file__).resolve().parent.parent
_BENCH_FILES = sorted(_REPO_ROOT.glob("BENCH_*.json"))

# Every bench's floor keys must point at a matching measured value in
# ``results`` — (path-into-results, floor-key) per bench name.
_SPEEDUP_PATHS = {
    "saturation-hot-path": lambda r, key: r[key],
    "adaptive-schedule": lambda r, key: r[key],
    "synthesis-offline-stage": lambda r, key: r["workloads"][key][
        "speedup"
    ],
    "compile-pipeline": lambda r, key: r[key]["speedup"],
    "compile-service": lambda r, key: r[key],
    "isa-families": lambda r, key: r[key],
    "rule-minimization": lambda r, key: r[key],
}


def _load(path: Path) -> dict:
    return json.loads(path.read_text())


def test_bench_corpus_is_present():
    names = {p.name for p in _BENCH_FILES}
    assert {
        "BENCH_saturation.json",
        "BENCH_synthesis.json",
        "BENCH_schedule.json",
        "BENCH_pipeline.json",
        "BENCH_service.json",
        "BENCH_isa.json",
        "BENCH_minimize.json",
    } <= names, names


@pytest.mark.parametrize(
    "path", _BENCH_FILES, ids=lambda p: p.name
)
def test_envelope_schema(path: Path):
    doc = _load(path)
    assert set(doc) == {"name", "schema_version", "results", "floors"}
    assert isinstance(doc["name"], str) and doc["name"]
    assert isinstance(doc["schema_version"], int)
    assert doc["schema_version"] >= 2
    assert isinstance(doc["results"], dict) and doc["results"]
    assert isinstance(doc["floors"], dict) and doc["floors"]


@pytest.mark.parametrize(
    "path", _BENCH_FILES, ids=lambda p: p.name
)
def test_floors_match_measured_speedups(path: Path):
    doc = _load(path)
    resolve = _SPEEDUP_PATHS.get(doc["name"])
    assert resolve is not None, (
        f"unknown bench {doc['name']!r}: teach test_bench_schemas.py "
        "where its speedups live"
    )
    for key, floor in doc["floors"].items():
        # Speedup floors must demand an actual improvement (> 1.0);
        # ``*_rate`` floors are fractions and live in (0, 1].
        assert isinstance(floor, numbers.Real)
        if key.endswith("_rate"):
            assert 0.0 < floor <= 1.0, (path.name, key, floor)
        else:
            assert floor > 1.0, (path.name, key, floor)
        measured = resolve(doc["results"], key)
        assert isinstance(measured, numbers.Real)
        # The committed numbers must themselves clear the floor the
        # bench asserts — otherwise the baseline documents a failure.
        assert measured >= floor, (path.name, key, measured, floor)


def test_schedule_bench_records_parity_evidence():
    doc = _load(_REPO_ROOT / "BENCH_schedule.json")
    results = doc["results"]
    assert results["default"]["cost"] == results["tuned"]["cost"]
    assert (
        results["tuned"]["node_visits"]
        < results["default"]["node_visits"]
    )
    assert results["schedule"]["decisions"]
    # The persisted spec must be loadable by today's reader.
    from repro.egraph.scheduling import ScheduleSpec

    spec = ScheduleSpec.from_dict(results["schedule"]["spec"])
    assert spec.disabled_rules()


def test_isa_bench_sweeps_widths_and_families():
    doc = _load(_REPO_ROOT / "BENCH_isa.json")
    results = doc["results"]
    assert set(results["widths"]) == {4, 8, 16}
    assert len(results["families"]) >= 2
    covered = {(r["family"], r["width"]) for r in results["rows"]}
    for family in results["families"]:
        for width in results["widths"]:
            assert (family, width) in covered, (family, width)
    for row in results["rows"]:
        assert row["correct"], row["isa"]
        # The tentpole claim the baseline must document: masked-family
        # tails carry no scalar epilogue.
        if row["masked_family"] and row["length"] % row["width"]:
            assert row["scalar_instructions"] == 0, row["isa"]
            assert row["masked_ops"] > 0, row["isa"]


def test_minimize_bench_records_parity_evidence():
    doc = _load(_REPO_ROOT / "BENCH_minimize.json")
    results = doc["results"]
    # The floors the perf job re-asserts live in the committed file.
    assert doc["floors"]["ruleset_reduction_rate"] == 0.2
    assert doc["floors"]["saturation_speedup"] == 1.2
    # Size: every matrix cell shrinks, at least one by >= 20 %.
    assert results["cells"]
    for cell in results["cells"]:
        assert 0 < cell["rules_pruned"] <= cell["rules_full"], cell
    assert max(
        c["reduction_rate"] for c in results["cells"]
    ) >= 0.2
    assert (
        results["shipped_rules_pruned"] < results["shipped_rules_full"]
    )
    # Parity: no kernel got costlier, and non-identical outputs must
    # have paid for themselves.
    assert results["total_kernels"] == len(results["kernels"])
    for row in results["kernels"]:
        assert row["pruned_cost"] <= row["full_cost"], row
        assert row["identical"] or row["pruned_cost"] < row["full_cost"]
    assert 0 < results["identical_kernels"] <= results["total_kernels"]


def test_write_bench_json_envelope(tmp_path):
    doc = write_bench_json(
        tmp_path / "BENCH_x.json", "x", {"speedup": 2.0},
        floors={"speedup": 1.5},
    )
    assert doc == json.loads((tmp_path / "BENCH_x.json").read_text())
    assert doc["schema_version"] == 2
    assert doc["floors"] == {"speedup": 1.5}
