"""Unit tests for the cost model and phase assignment (§3.2)."""

import pytest

from repro.egraph.rewrite import parse_rewrite
from repro.lang.parser import parse
from repro.phases import (
    Phase,
    PhaseParams,
    aggregate_cost,
    assign_phase,
    assign_phases,
    check_strict_monotonicity,
    cost_differential,
    default_params,
)


class TestCostModel:
    def test_leaf_costs(self, cost_model):
        assert cost_model.term_cost(parse("1")) == cost_model.leaf_cost
        assert cost_model.term_cost(parse("(Get x 0)")) == (
            cost_model.leaf_cost
        )
        assert cost_model.term_cost(parse("?a")) == cost_model.leaf_cost

    def test_scalar_vs_vector_op(self, cost_model):
        scalar = cost_model.term_cost(parse("(+ ?a ?b)"))
        vector = cost_model.term_cost(parse("(VecAdd ?a ?b)"))
        assert scalar > vector

    def test_vec_of_leaves_is_cheap(self, cost_model):
        leafy = cost_model.term_cost(parse("(Vec ?a ?b ?c ?d)"))
        computed = cost_model.term_cost(
            parse("(Vec (+ ?a 0) ?b ?c ?d)")
        )
        assert computed > leafy + cost_model.vec_lane_compute_cost / 2

    def test_contiguous_get_run_is_a_load(self, cost_model):
        load = cost_model.term_cost(
            parse("(Vec (Get x 0) (Get x 1) (Get x 2) (Get x 3))")
        )
        gather = cost_model.term_cost(
            parse("(Vec (Get x 0) (Get x 2) (Get x 1) (Get x 3))")
        )
        assert load < gather

    def test_constant_vector_is_cheap(self, cost_model):
        assert cost_model.term_cost(parse("(Vec 1 2 3 4)")) == (
            cost_model.vec_contiguous_cost + 4 * cost_model.leaf_cost
        )

    def test_unknown_op_raises(self, cost_model):
        with pytest.raises(KeyError):
            cost_model.node_cost("Frobnicate", None, ())

    def test_strict_monotonicity_on_samples(self, cost_model):
        samples = [
            parse(t)
            for t in (
                "(+ (Get x 0) (Get y 0))",
                "(VecMAC (Vec 1 2 3 4) ?a ?b)",
                "(List (Vec ?a ?b ?c ?d))",
                "(Concat (Vec 1 2 3 4) (Vec 5 6 7 8))",
                "(sqrt (/ ?a ?b))",
            )
        ]
        assert check_strict_monotonicity(cost_model, samples) == []


class TestMetrics:
    def test_cost_differential_sign(self, cost_model):
        lowering = parse_rewrite(
            "lift",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) => "
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        )
        assert cost_differential(cost_model, lowering) > 1000

    def test_symmetric_rule_zero_differential(self, cost_model):
        comm = parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)")
        assert cost_differential(cost_model, comm) == 0
        assert aggregate_cost(cost_model, comm) == (
            2 * cost_model.term_cost(parse("(+ ?a ?b)"))
        )


class TestAssignment:
    def test_lift_rule_is_compilation(self, spec, cost_model):
        rule = parse_rewrite(
            "lift",
            "(Vec (+ ?a0 ?b0) (+ ?a1 ?b1) (+ ?a2 ?b2) (+ ?a3 ?b3)) => "
            "(VecAdd (Vec ?a0 ?a1 ?a2 ?a3) (Vec ?b0 ?b1 ?b2 ?b3))",
        )
        params = default_params(spec)
        assert assign_phase(cost_model, rule, params) is Phase.COMPILATION

    def test_scalar_rule_is_expansion(self, spec, cost_model):
        params = default_params(spec)
        for text in (
            "(+ ?a ?b) => (+ ?b ?a)",
            "(+ (+ ?a ?b) ?c) => (+ ?a (+ ?b ?c))",
            "(neg (neg ?a)) => ?a",
            "(- ?a ?b) => (+ ?a (neg ?b))",
        ):
            rule = parse_rewrite("r", text)
            assert assign_phase(cost_model, rule, params) is (
                Phase.EXPANSION
            ), text

    def test_vector_rule_is_optimization(self, spec, cost_model):
        params = default_params(spec)
        for text in (
            "(VecAdd ?a ?b) => (VecAdd ?b ?a)",
            "(VecAdd ?c (VecMul ?a ?b)) => (VecMAC ?c ?a ?b)",
            "(VecAdd (VecAdd ?a ?b) ?c) => (VecAdd ?a (VecAdd ?b ?c))",
        ):
            rule = parse_rewrite("r", text)
            assert assign_phase(cost_model, rule, params) is (
                Phase.OPTIMIZATION
            ), text

    def test_extreme_params_collapse_to_one_phase(self, cost_model):
        # Very large beta: everything non-compilation becomes
        # optimization (the paper's Fig. 9 top-right corner).
        rules = [
            parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
            parse_rewrite("vcomm", "(VecAdd ?a ?b) => (VecAdd ?b ?a)"),
        ]
        ruleset = assign_phases(
            cost_model, rules, PhaseParams(alpha=10**9, beta=10**9)
        )
        assert not ruleset.expansion
        assert not ruleset.compilation
        assert len(ruleset.optimization) == 2

    def test_counts_and_iteration(self, cost_model, spec):
        rules = [
            parse_rewrite("comm", "(+ ?a ?b) => (+ ?b ?a)"),
            parse_rewrite("vcomm", "(VecAdd ?a ?b) => (VecAdd ?b ?a)"),
        ]
        ruleset = assign_phases(cost_model, rules, default_params(spec))
        assert len(ruleset) == 2
        assert set(ruleset.counts()) == {
            "expansion",
            "compilation",
            "optimization",
        }
        assert sorted(r.name for r in ruleset.all_rules()) == [
            "comm",
            "vcomm",
        ]
        assert "2 rules" in ruleset.summary()


class TestDefaultParams:
    def test_defaults_reasonable(self, spec):
        params = default_params(spec)
        assert params.alpha > 0
        assert 0 < params.beta < params.alpha
