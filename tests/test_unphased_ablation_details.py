"""The §5.2 no-phasing ablation at unit-test scale."""

import dataclasses

from repro.egraph.runner import RunnerLimits
from repro.kernels import conv2d_kernel, matmul_kernel
from repro.lang.term import subterms


def _vectorized(term) -> bool:
    return any(
        s.op.startswith("Vec") and s.op != "Vec" for s in subterms(term)
    )


class TestUnphased:
    def test_unphased_worse_than_phased_on_conv(self, isaria_compiler):
        instance = conv2d_kernel(3, 3, 2, 2)
        phased_term, phased = isaria_compiler.compile_term(
            instance.program.term
        )
        options = dataclasses.replace(
            isaria_compiler.options,
            phased=False,
            unphased_limits=RunnerLimits(
                max_iterations=6,
                max_nodes=30_000,
                time_limit=15.0,
            ),
        )
        unphased_term, unphased = isaria_compiler.compile_term(
            instance.program.term, options=options
        )
        assert _vectorized(phased_term)
        assert phased.final_cost < unphased.final_cost

    def test_unphased_report_shape(self, isaria_compiler):
        options = dataclasses.replace(
            isaria_compiler.options,
            phased=False,
            unphased_limits=RunnerLimits(
                max_iterations=3, max_nodes=10_000, time_limit=5.0
            ),
        )
        program = matmul_kernel(2, 2, 2).program.term
        _t, report = isaria_compiler.compile_term(
            program, options=options
        )
        assert len(report.rounds) == 1
        assert report.rounds[0].expansion is None
        assert report.optimization is None
